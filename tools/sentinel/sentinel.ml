(* Whirlpool Sentinel driver.

   Scans a build tree for .cmt files and reports static findings.
   Exit codes follow the repo-wide convention for finding-producing
   commands: 0 clean, 1 findings, 2 usage or load errors. *)

module D = Wp_analysis.Diagnostic
module Json = Wp_json.Json
module Sentinel = Wp_sentinel.Sentinel

let default_root () = if Sys.file_exists "_build/default" then "_build/default" else "."

let diagnostic_to_json (d : D.t) =
  Json.Obj
    [
      ("severity", Json.String (D.severity_label d.severity));
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let () =
  let root = ref None in
  let json = ref false in
  let dirs = ref None in
  let usage = "sentinel [--root DIR] [--dirs d1,d2,..] [--json]" in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR build tree to scan (default: _build/default if present, else .)"
      );
      ( "--dirs",
        Arg.String
          (fun s -> dirs := Some (String.split_on_char ',' s)),
        "D1,D2 comma-separated subdirectories to scan (default: lib,bin,tools,examples,bench)"
      );
      ("--json", Arg.Set json, " machine-readable output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    usage;
  let root = match !root with Some r -> r | None -> default_root () in
  let report = Sentinel.run ?dirs:!dirs ~root () in
  if !json then
    print_endline
      (Json.to_string
         (Json.Obj
            [
              ("units", Json.Int report.units);
              ( "findings",
                Json.List (List.map diagnostic_to_json report.diagnostics) );
              ( "load_errors",
                Json.List
                  (List.map (fun e -> Json.String e) report.load_errors) );
            ]))
  else begin
    List.iter (fun e -> Printf.eprintf "sentinel: %s\n" e) report.load_errors;
    List.iter (fun d -> Format.printf "%a@." D.pp d) report.diagnostics;
    Printf.printf "sentinel: %d finding(s) in %d unit(s)\n"
      (List.length report.diagnostics)
      report.units
  end;
  if report.load_errors <> [] then exit 2
  else if report.diagnostics <> [] then exit 1
