(* Whirlpool Sentinel driver.

   Scans a build tree for .cmt files and reports static findings.
   [--interproc] adds the call-graph rules (lock ranks, blocking and
   allocation through calls, cancellation totality); [--prove-bounds]
   runs the prune-soundness prover over every shipped scoring config
   and reports non-provable ones as findings.  Exit codes follow the
   repo-wide convention for finding-producing commands: 0 clean, 1
   findings, 2 usage or load errors. *)

module D = Wp_analysis.Diagnostic
module Json = Wp_json.Json
module Sentinel = Wp_sentinel.Sentinel
module Prove = Wp_analysis.Prove

let default_root () = if Sys.file_exists "_build/default" then "_build/default" else "."

let diagnostic_to_json (d : D.t) =
  Json.Obj
    [
      ("severity", Json.String (D.severity_label d.severity));
      ("code", Json.String d.code);
      ("message", Json.String d.message);
    ]

let certificate_to_json (c : Prove.certificate) =
  Json.Obj
    [
      ("subject", Json.String c.Prove.subject);
      ("certified", Json.Bool (Prove.certified c));
      ( "obligations",
        Json.List
          (List.map
             (fun (o : Prove.obligation) ->
               Json.Obj
                 [
                   ("id", Json.String o.Prove.oid);
                   ("claim", Json.String o.Prove.claim);
                   ( "status",
                     Json.String
                       (match o.Prove.verdict with
                       | Prove.Proved -> "proved"
                       | Prove.Refuted _ -> "refuted") );
                   ( "detail",
                     Json.String
                       (match o.Prove.verdict with
                       | Prove.Proved -> o.Prove.argument
                       | Prove.Refuted w -> w) );
                 ])
             c.Prove.obligations) );
    ]

let () =
  let root = ref None in
  let json = ref false in
  let dirs = ref None in
  let interproc = ref false in
  let prove = ref false in
  let usage =
    "sentinel [--root DIR] [--dirs d1,d2,..] [--interproc] [--prove-bounds] \
     [--json]"
  in
  let spec =
    [
      ( "--root",
        Arg.String (fun s -> root := Some s),
        "DIR build tree to scan (default: _build/default if present, else .)"
      );
      ( "--dirs",
        Arg.String
          (fun s -> dirs := Some (String.split_on_char ',' s)),
        "D1,D2 comma-separated subdirectories to scan (default: lib,bin,tools,examples,bench)"
      );
      ( "--interproc",
        Arg.Set interproc,
        " add the interprocedural rules (call-graph lock/blocking/alloc \
         propagation, cancellation totality)" );
      ( "--prove-bounds",
        Arg.Set prove,
        " prove prune-soundness of every shipped scoring config" );
      ("--json", Arg.Set json, " machine-readable output");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    usage;
  let root = match !root with Some r -> r | None -> default_root () in
  let report = Sentinel.run ?dirs:!dirs ~interproc:!interproc ~root () in
  let certificates = if !prove then Prove.check_shipped () else [] in
  let findings =
    List.sort Sentinel.compare_findings
      (report.diagnostics @ Prove.diagnostics certificates)
  in
  if !json then
    print_endline
      (Json.to_string
         (Json.Obj
            ([
               ("units", Json.Int report.units);
               ( "findings",
                 Json.List (List.map diagnostic_to_json findings) );
               ( "load_errors",
                 Json.List
                   (List.map (fun e -> Json.String e) report.load_errors) );
             ]
            @
            if !prove then
              [
                ( "certificates",
                  Json.List (List.map certificate_to_json certificates) );
              ]
            else [])))
  else begin
    List.iter (fun e -> Printf.eprintf "sentinel: %s\n" e) report.load_errors;
    List.iter (fun d -> Format.printf "%a@." D.pp d) findings;
    if !prove then
      List.iter
        (fun c ->
          Printf.printf "sentinel: prove %s: %s\n" c.Prove.subject
            (if Prove.certified c then "certified" else "REFUTED"))
        certificates;
    Printf.printf "sentinel: %d finding(s) in %d unit(s)\n"
      (List.length findings) report.units
  end;
  if report.load_errors <> [] then exit 2
  else if findings <> [] then exit 1
