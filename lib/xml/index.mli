(** Tag indexes with subtree range search.

    For each element tag the index stores the node identifiers bearing it,
    in document order.  Because identifiers are preorder ranks, all nodes
    with a given tag inside the subtree of any node [r] form a contiguous
    slice of that array, located by binary search — this is the index
    lookup each Whirlpool server performs to find candidate extensions
    below a partial match's root binding. *)

type t

val wildcard : string
(** The pseudo-tag ["*"], matched by every element; all lookup functions
    accept it. *)

val build : Doc.t -> t

val doc : t -> Doc.t
(** The document this index was built from. *)

val ids : t -> string -> int array
(** All nodes with the given tag, in document order.  The returned array
    is owned by the index and must not be mutated; it is empty for tags
    absent from the document. *)

val count : t -> string -> int

val subtree_slice : t -> string -> root:Doc.node_id -> int * int
(** [subtree_slice idx tag ~root] is the half-open interval [(lo, hi)]
    into [ids idx tag] holding the nodes with [tag] that are {e proper}
    descendants of [root]. *)

val iter_descendants : t -> string -> root:Doc.node_id -> (Doc.node_id -> unit) -> unit
(** Iterate the proper descendants of [root] bearing [tag]. *)

val fold_descendants :
  t -> string -> root:Doc.node_id -> ('a -> Doc.node_id -> 'a) -> 'a -> 'a

val descendants : t -> string -> root:Doc.node_id -> Doc.node_id list

val children : t -> string -> parent:Doc.node_id -> Doc.node_id list
(** The children of [parent] bearing [tag], in document order — a walk
    of the document's actual child list (first-child/next-sibling via
    subtree extents), O(number of children) rather than O(subtree). *)

val count_descendants : t -> string -> root:Doc.node_id -> int
(** Cardinality of {!subtree_slice}, in O(log n). *)
