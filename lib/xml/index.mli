(** Tag indexes with subtree range search.

    For each element tag the index stores the node identifiers bearing it,
    in document order.  Because identifiers are preorder ranks, all nodes
    with a given tag inside the subtree of any node [r] form a contiguous
    slice of that array, located by binary search — this is the index
    lookup each Whirlpool server performs to find candidate extensions
    below a partial match's root binding. *)

type t

val wildcard : string
(** The pseudo-tag ["*"], matched by every element; all lookup functions
    accept it. *)

val build : Doc.t -> t

type int32_view =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The element type of a memory-mapped postings section. *)

val of_mapped :
  doc:Doc.t ->
  postings:int32_view ->
  extents:(string * int * int) list ->
  t
(** An index whose per-tag postings are [(offset, length)] windows into
    one shared [Int32] bigarray — the postings section of a
    memory-mapped on-disk index ([Wp_storage]).  Lookups read the
    mapped pages directly; {!ids} materializes an [int array] copy per
    call on this backend (the range functions below never do).  Each
    extent's window must hold that tag's node ids in document order —
    the storage layer guarantees this; only window bounds are checked
    here.
    @raise Invalid_argument if an extent exceeds the postings view. *)

val doc : t -> Doc.t
(** The document this index was built from. *)

val ids : t -> string -> int array
(** All nodes with the given tag, in document order; empty for tags
    absent from the document.  On the in-memory backend the array is
    owned by the index and must not be mutated; on a mapped backend it
    is a fresh copy per call — prefer the range functions below on hot
    paths. *)

val count : t -> string -> int

val subtree_slice : t -> string -> root:Doc.node_id -> int * int
(** [subtree_slice idx tag ~root] is the half-open interval [(lo, hi)]
    into [ids idx tag] holding the nodes with [tag] that are {e proper}
    descendants of [root]. *)

val iter_descendants : t -> string -> root:Doc.node_id -> (Doc.node_id -> unit) -> unit
(** Iterate the proper descendants of [root] bearing [tag]. *)

val fold_descendants :
  t -> string -> root:Doc.node_id -> ('a -> Doc.node_id -> 'a) -> 'a -> 'a

val descendants : t -> string -> root:Doc.node_id -> Doc.node_id list

val children : t -> string -> parent:Doc.node_id -> Doc.node_id list
(** The children of [parent] bearing [tag], in document order — a walk
    of the document's actual child list (first-child/next-sibling via
    subtree extents), O(number of children) rather than O(subtree). *)

val count_descendants : t -> string -> root:Doc.node_id -> int
(** Cardinality of {!subtree_slice}, in O(log n). *)
