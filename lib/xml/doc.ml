type node_id = int

(* Two physical representations behind one interface:

   - [Mem]: the classical frozen arrays, built by [of_tree] and friends —
     everything materialized, including Dewey labels.
   - [Ext]: an externally-backed view (in practice: a memory-mapped
     on-disk index from [Wp_storage]); per-node facts are fetched through
     accessor closures over the mapped columns, and Dewey labels are
     reconstructed on demand from the stored child ranks.  Nothing here
     depends on how the backing store is implemented, which keeps this
     library free of [Unix] and lets tests back a document with plain
     functions. *)

type ext = {
  ext_size : int;
  ext_tag : int -> string;
  ext_value : int -> string option;
  ext_parent : int -> int;  (* -1 for the root *)
  ext_subtree_end : int -> int;  (* exclusive *)
  ext_depth : int -> int;
  ext_rank : int -> int;  (* 1-based child rank; 0 for the root *)
  ext_tags : string list;  (* distinct tags, first-occurrence order *)
}

type mem = {
  tags : string array;
  values : string option array;
  deweys : Dewey.t array;
  parents : int array;  (* -1 for the root *)
  subtree_ends : int array;  (* exclusive *)
}

type t = Mem of mem | Ext of ext

let of_tree tree =
  let n = Tree.size tree in
  let tags = Array.make n "" in
  let values = Array.make n None in
  let deweys = Array.make n Dewey.root in
  let parents = Array.make n (-1) in
  let subtree_ends = Array.make n 0 in
  (* Preorder numbering; [next] is the next free id. *)
  let next = ref 0 in
  let rec assign parent dewey (node : Tree.t) =
    let id = !next in
    incr next;
    tags.(id) <- Tree.tag node;
    values.(id) <- Tree.value node;
    deweys.(id) <- dewey;
    parents.(id) <- parent;
    List.iteri
      (fun i child -> assign id (Dewey.child dewey (i + 1)) child)
      (Tree.children node);
    subtree_ends.(id) <- !next
  in
  assign (-1) Dewey.root tree;
  Mem { tags; values; deweys; parents; subtree_ends }

let of_forest ?(root_tag = "doc-root") trees =
  of_tree (Tree.el root_tag trees)

let of_components ~tags ~values ~parents =
  let n = Array.length tags in
  if Array.length values <> n || Array.length parents <> n then
    invalid_arg "Doc.of_components: array lengths differ";
  if n = 0 then invalid_arg "Doc.of_components: empty document";
  if parents.(0) <> -1 then
    invalid_arg "Doc.of_components: node 0 must be the root";
  for i = 1 to n - 1 do
    if parents.(i) < 0 || parents.(i) >= i then
      invalid_arg "Doc.of_components: parents must precede children"
  done;
  (* Subtree extents: scanning ids backwards, a child's extent is final
     before its parent's is read. *)
  let subtree_ends = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let p = parents.(i) in
    if subtree_ends.(i) > subtree_ends.(p) then
      subtree_ends.(p) <- subtree_ends.(i)
  done;
  (* Dewey labels from per-parent child ranks. *)
  let next_rank = Array.make n 0 in
  let deweys = Array.make n Dewey.root in
  for i = 1 to n - 1 do
    let p = parents.(i) in
    next_rank.(p) <- next_rank.(p) + 1;
    deweys.(i) <- Dewey.child deweys.(p) next_rank.(p)
  done;
  Mem
    {
      tags = Array.copy tags;
      values = Array.copy values;
      deweys;
      parents = Array.copy parents;
      subtree_ends;
    }

let of_ext ~size ~tag ~value ~parent ~subtree_end ~depth ~rank ~distinct_tags =
  if size < 1 then invalid_arg "Doc.of_ext: empty document";
  Ext
    {
      ext_size = size;
      ext_tag = tag;
      ext_value = value;
      ext_parent = parent;
      ext_subtree_end = subtree_end;
      ext_depth = depth;
      ext_rank = rank;
      ext_tags = distinct_tags;
    }

let root _ = 0
let size = function Mem d -> Array.length d.tags | Ext e -> e.ext_size
let tag t i = match t with Mem d -> d.tags.(i) | Ext e -> e.ext_tag i
let value t i = match t with Mem d -> d.values.(i) | Ext e -> e.ext_value i

(* Reconstruct a mapped node's Dewey label by collecting child ranks up
   the parent chain — O(depth), only paid on answer rendering and axis
   diagnostics, never in the engines' structural hot path (which uses
   [depth]/[subtree_end]/[is_ancestor]). *)
let ext_dewey e i =
  let d = e.ext_depth i in
  let ranks = Array.make d 0 in
  let rec fill j lvl =
    if lvl >= 0 then begin
      ranks.(lvl) <- e.ext_rank j;
      fill (e.ext_parent j) (lvl - 1)
    end
  in
  fill i (d - 1);
  Dewey.of_array ranks

let dewey t i = match t with Mem d -> d.deweys.(i) | Ext e -> ext_dewey e i

let parent t i =
  let p = match t with Mem d -> d.parents.(i) | Ext e -> e.ext_parent i in
  if p < 0 then None else Some p

let depth t i =
  match t with Mem d -> Dewey.depth d.deweys.(i) | Ext e -> e.ext_depth i

let subtree_end t i =
  match t with Mem d -> d.subtree_ends.(i) | Ext e -> e.ext_subtree_end i

let children t i =
  let stop = subtree_end t i in
  let rec loop j acc =
    if j >= stop then List.rev acc else loop (subtree_end t j) (j :: acc)
  in
  loop (i + 1) []

let is_parent t ~parent:p ~child:c =
  (match t with Mem d -> d.parents.(c) | Ext e -> e.ext_parent c) = p

let is_ancestor t ~anc ~desc = anc < desc && desc < subtree_end t anc

let rec to_tree t i =
  let cs = List.map (to_tree t) (children t i) in
  { Tree.tag = tag t i; value = value t i; children = cs }

let fold f t acc =
  let r = ref acc in
  for i = 0 to size t - 1 do
    r := f i !r
  done;
  !r

let distinct_tags = function
  | Ext e -> e.ext_tags
  | Mem d ->
      let seen = Hashtbl.create 16 in
      let out = ref [] in
      Array.iter
        (fun t ->
          if not (Hashtbl.mem seen t) then begin
            Hashtbl.add seen t ();
            out := t :: !out
          end)
        d.tags;
      List.rev !out

let pp_node t ppf i =
  Format.fprintf ppf "%s[%a]" (tag t i) Dewey.pp (dewey t i);
  match value t i with
  | None -> ()
  | Some v -> Format.fprintf ppf "(%s)" v
