(** Frozen, array-based XML documents.

    A [Doc.t] stores element nodes in document (pre)order, so that node
    identifiers double as preorder ranks: the descendants of node [i] are
    exactly the identifiers in the half-open interval
    [(i, subtree_end doc i)].  Together with per-node Dewey labels this
    supports constant-time structural predicates and contiguous-range
    subtree scans, the two operations the Whirlpool servers rely on. *)

type node_id = int
(** Preorder rank of a node; the (possibly synthetic) root is [0]. *)

type t

val of_tree : Tree.t -> t
(** Freeze a single tree; its root becomes node [0]. *)

val of_forest : ?root_tag:string -> Tree.t list -> t
(** Freeze a forest under a synthetic root (default tag ["doc-root"]),
    matching the paper's data model of "a forest of node labeled trees". *)

val of_components :
  tags:string array -> values:string option array -> parents:int array -> t
(** Rebuild a document from its preorder components ([parents.(0) = -1],
    every other parent precedes its child); subtree extents and Dewey
    labels are recomputed.  Used by {!Doc_io} snapshots.
    @raise Invalid_argument if the arrays are not a valid preorder
    encoding. *)

val of_ext :
  size:int ->
  tag:(node_id -> string) ->
  value:(node_id -> string option) ->
  parent:(node_id -> node_id) ->
  subtree_end:(node_id -> node_id) ->
  depth:(node_id -> int) ->
  rank:(node_id -> int) ->
  distinct_tags:string list ->
  t
(** An externally-backed document view: every per-node fact is fetched
    through the given accessors instead of materialized arrays.
    [Wp_storage] uses this to present a memory-mapped on-disk index as
    a [Doc.t] without loading it — pages fault in on demand.  [parent]
    must return [-1] for the root, [rank] the 1-based child rank ([0]
    for the root); Dewey labels are reconstructed on demand from
    [rank]/[parent] in O(depth).  The accessors must describe a valid
    preorder encoding — this constructor performs no validation beyond
    [size >= 1]; the storage layer validates before mapping.
    @raise Invalid_argument if [size < 1]. *)

val root : t -> node_id
val size : t -> int

val tag : t -> node_id -> string
val value : t -> node_id -> string option
val dewey : t -> node_id -> Dewey.t
val parent : t -> node_id -> node_id option
val depth : t -> node_id -> int

val subtree_end : t -> node_id -> node_id
(** [subtree_end d i] is one past the last descendant of [i]; the subtree
    rooted at [i] occupies ids [i .. subtree_end d i - 1]. *)

val children : t -> node_id -> node_id list

val is_parent : t -> parent:node_id -> child:node_id -> bool
val is_ancestor : t -> anc:node_id -> desc:node_id -> bool
(** Proper ancestorship, in O(1) via preorder intervals. *)

val to_tree : t -> node_id -> Tree.t
(** Rebuild the subtree rooted at a node (inverse of {!of_tree}). *)

val fold : (node_id -> 'a -> 'a) -> t -> 'a -> 'a
(** Fold over all nodes in document order. *)

val distinct_tags : t -> string list
(** Distinct tags in first-occurrence order. *)

val pp_node : t -> Format.formatter -> node_id -> unit
(** One-line [tag\[dewey\](value?)] rendering for diagnostics. *)
