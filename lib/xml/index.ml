(* Postings live either in ordinary [int array]s (built by {!build})
   or as a window into one shared [Int32] bigarray — the tag-extent
   section of a memory-mapped on-disk index ({!of_mapped}).  All range
   machinery below works uniformly over both, so the engines see
   identical slices (and charge identical counters) regardless of the
   backing store. *)

type int32_view =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type postings =
  | P_mem of int array
  | P_map of { base : int32_view; off : int; len : int }

type t = {
  doc : Doc.t;
  by_tag : (string, postings) Hashtbl.t;
  mutable all_ids : int array option;  (* lazily built for "*" lookups *)
}

let wildcard = "*"

let plen = function P_mem a -> Array.length a | P_map { len; _ } -> len

let pget p i =
  match p with
  | P_mem a -> Array.unsafe_get a i
  | P_map { base; off; _ } -> Int32.to_int (Bigarray.Array1.unsafe_get base (off + i))

let build doc =
  let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  for i = Doc.size doc - 1 downto 0 do
    let tag = Doc.tag doc i in
    match Hashtbl.find_opt buckets tag with
    | Some l -> l := i :: !l
    | None -> Hashtbl.add buckets tag (ref [ i ])
  done;
  let by_tag = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun tag l -> Hashtbl.add by_tag tag (P_mem (Array.of_list !l)))
    buckets;
  { doc; by_tag; all_ids = None }

let of_mapped ~doc ~postings ~extents =
  let total = Bigarray.Array1.dim postings in
  let by_tag = Hashtbl.create (List.length extents * 2) in
  List.iter
    (fun (tag, off, len) ->
      if off < 0 || len < 0 || off + len > total then
        invalid_arg "Index.of_mapped: extent out of range";
      Hashtbl.replace by_tag tag (P_map { base = postings; off; len }))
    extents;
  { doc; by_tag; all_ids = None }

let doc t = t.doc
let empty = P_mem [||]
let empty_ids = [||]

let all t =
  match t.all_ids with
  | Some a -> a
  | None ->
      (* Identity postings for "*": every node, in document order.  A
         racing second builder computes the same array; the last
         single-field write wins harmlessly. *)
      let a = Array.init (Doc.size t.doc) Fun.id in
      t.all_ids <- Some a;
      a

let postings t tag =
  if String.equal tag wildcard then P_mem (all t)
  else Option.value (Hashtbl.find_opt t.by_tag tag) ~default:empty

let ids t tag =
  if String.equal tag wildcard then all t
  else
    match Hashtbl.find_opt t.by_tag tag with
    | None -> empty_ids
    | Some (P_mem a) -> a
    | Some (P_map _ as p) ->
        let n = plen p in
        Array.init n (fun i -> pget p i)

let count t tag = plen (postings t tag)

(* First position in [p] whose value is >= [v]. *)
let lower_bound p v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if pget p mid < v then go (mid + 1) hi else go lo mid
  in
  go 0 (plen p)

let slice t tag ~root =
  let p = postings t tag in
  let lo = lower_bound p (root + 1) in
  let hi = lower_bound p (Doc.subtree_end t.doc root) in
  (p, lo, hi)

let subtree_slice t tag ~root =
  let _, lo, hi = slice t tag ~root in
  (lo, hi)

let iter_descendants t tag ~root f =
  let p, lo, hi = slice t tag ~root in
  for i = lo to hi - 1 do
    f (pget p i)
  done

let fold_descendants t tag ~root f acc =
  let p, lo, hi = slice t tag ~root in
  let r = ref acc in
  for i = lo to hi - 1 do
    r := f !r (pget p i)
  done;
  !r

let descendants t tag ~root =
  List.rev (fold_descendants t tag ~root (fun acc i -> i :: acc) [])

(* Walk the document's first-child/next-sibling structure (a child's
   subtree end is its next sibling's id) and keep the tagged ones:
   O(children of parent) instead of filtering the parent's entire
   subtree slice. *)
let children t tag ~parent =
  let doc = t.doc in
  let wild = String.equal tag wildcard in
  let stop = Doc.subtree_end doc parent in
  let rec go i acc =
    if i >= stop then List.rev acc
    else
      go (Doc.subtree_end doc i)
        (if wild || String.equal (Doc.tag doc i) tag then i :: acc else acc)
  in
  go (parent + 1) []

let count_descendants t tag ~root =
  let lo, hi = subtree_slice t tag ~root in
  hi - lo
