type t = {
  doc : Doc.t;
  by_tag : (string, int array) Hashtbl.t;
  mutable all_ids : int array option;  (* lazily built for "*" lookups *)
}

let wildcard = "*"

let build doc =
  let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 64 in
  for i = Doc.size doc - 1 downto 0 do
    let tag = Doc.tag doc i in
    match Hashtbl.find_opt buckets tag with
    | Some l -> l := i :: !l
    | None -> Hashtbl.add buckets tag (ref [ i ])
  done;
  let by_tag = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter (fun tag l -> Hashtbl.add by_tag tag (Array.of_list !l)) buckets;
  { doc; by_tag; all_ids = None }

let doc t = t.doc
let empty_ids = [||]

let ids t tag =
  if String.equal tag wildcard then begin
    match t.all_ids with
    | Some a -> a
    | None ->
        let a = Array.init (Doc.size t.doc) Fun.id in
        t.all_ids <- Some a;
        a
  end
  else Option.value (Hashtbl.find_opt t.by_tag tag) ~default:empty_ids

let count t tag = Array.length (ids t tag)

(* First position in [a] whose value is >= [v]. *)
let lower_bound a v =
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if a.(mid) < v then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length a)

let subtree_slice t tag ~root =
  let a = ids t tag in
  let lo = lower_bound a (root + 1) in
  let hi = lower_bound a (Doc.subtree_end t.doc root) in
  (lo, hi)

let iter_descendants t tag ~root f =
  let a = ids t tag in
  let lo, hi = subtree_slice t tag ~root in
  for i = lo to hi - 1 do
    f a.(i)
  done

let fold_descendants t tag ~root f acc =
  let a = ids t tag in
  let lo, hi = subtree_slice t tag ~root in
  let r = ref acc in
  for i = lo to hi - 1 do
    r := f !r a.(i)
  done;
  !r

let descendants t tag ~root =
  List.rev (fold_descendants t tag ~root (fun acc i -> i :: acc) [])

(* Walk the document's first-child/next-sibling structure (a child's
   subtree end is its next sibling's id) and keep the tagged ones:
   O(children of parent) instead of filtering the parent's entire
   subtree slice. *)
let children t tag ~parent =
  let doc = t.doc in
  let wild = String.equal tag wildcard in
  let stop = Doc.subtree_end doc parent in
  let rec go i acc =
    if i >= stop then List.rev acc
    else
      go (Doc.subtree_end doc i)
        (if wild || String.equal (Doc.tag doc i) tag then i :: acc else acc)
  in
  go (parent + 1) []

let count_descendants t tag ~root =
  let lo, hi = subtree_slice t tag ~root in
  hi - lo
