let magic = "WPDOC"
let version = 1

let write_u8 oc v = output_byte oc (v land 0xFF)

let write_u32 oc v =
  if v < 0 || v > 0xFFFFFFFF then invalid_arg "Doc_io: u32 overflow";
  output_byte oc (v land 0xFF);
  output_byte oc ((v lsr 8) land 0xFF);
  output_byte oc ((v lsr 16) land 0xFF);
  output_byte oc ((v lsr 24) land 0xFF)

let write_string oc s =
  write_u32 oc (String.length s);
  output_string oc s

let read_u8 ic = input_byte ic

let read_u32 ic =
  let a = input_byte ic in
  let b = input_byte ic in
  let c = input_byte ic in
  let d = input_byte ic in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let remaining ic = in_channel_length ic - pos_in ic

let read_string ic =
  let n = read_u32 ic in
  (* Never trust a length field further than the bytes actually left:
     a corrupt or truncated file must fail before a multi-gigabyte
     allocation, not after. *)
  if n > remaining ic then raise End_of_file;
  really_input_string ic n

let write oc doc =
  let n = Doc.size doc in
  (* String table: tags and values interned together; id 0 is reserved
     for "no value". *)
  let table = Hashtbl.create 256 in
  let strings = ref [] in
  let n_strings = ref 0 in
  let intern s =
    match Hashtbl.find_opt table s with
    | Some id -> id
    | None ->
        incr n_strings;
        let id = !n_strings in
        Hashtbl.add table s id;
        strings := s :: !strings;
        id
  in
  let tag_ids = Array.init n (fun i -> intern (Doc.tag doc i)) in
  let value_ids =
    Array.init n (fun i ->
        match Doc.value doc i with None -> 0 | Some v -> intern v)
  in
  output_string oc magic;
  write_u8 oc version;
  write_u32 oc n;
  write_u32 oc !n_strings;
  List.iter (write_string oc) (List.rev !strings);
  for i = 0 to n - 1 do
    write_u32 oc tag_ids.(i);
    write_u32 oc value_ids.(i);
    write_u32 oc (1 + Option.value (Doc.parent doc i) ~default:(-1));
    write_u32 oc (Doc.subtree_end doc i)
  done

let read ic =
  let fail msg = failwith ("Doc_io.read: " ^ msg) in
  let header =
    try really_input_string ic (String.length magic)
    with End_of_file -> fail "truncated header"
  in
  if not (String.equal header magic) then fail "bad magic";
  try
    let v = read_u8 ic in
    if v <> version then fail (Printf.sprintf "unsupported version %d" v);
    let n = read_u32 ic in
    if n = 0 then fail "empty document";
    (* Each node record is 4 u32s; each string costs at least its length
       prefix.  Counts beyond what the file can hold are corruption —
       reject them before sizing any array after them. *)
    if n > remaining ic / 16 then fail "node count exceeds file size";
    let n_strings = read_u32 ic in
    if n_strings > remaining ic / 4 then
      fail "string count exceeds file size";
    let strings = Array.make (n_strings + 1) "" in
    for i = 1 to n_strings do
      strings.(i) <- read_string ic
    done;
    let string_of id =
      if id < 1 || id > n_strings then fail "string id out of range"
      else strings.(id)
    in
    let tags = Array.make n "" in
    let values = Array.make n None in
    let parents = Array.make n (-1) in
    for i = 0 to n - 1 do
      tags.(i) <- string_of (read_u32 ic);
      (let vid = read_u32 ic in
       if vid <> 0 then values.(i) <- Some (string_of vid));
      parents.(i) <- read_u32 ic - 1;
      ignore (read_u32 ic) (* subtree_end: recomputed *)
    done;
    Doc.of_components ~tags ~values ~parents
  with
  | End_of_file -> fail "truncated input"
  | Invalid_argument m -> fail m

let save path doc =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> write oc doc)

let load path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> read ic)
