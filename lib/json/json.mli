(** Minimal JSON emission and parsing.

    Enough for the CLI and benchmark harness to produce and read back
    machine-consumable output without an external dependency.  Strings
    are escaped per RFC 8259; floats print with round-trip precision
    ([%.17g] trimmed), and non-finite floats are emitted as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** Escaped content without the surrounding quotes. *)

val to_buffer : Buffer.t -> t -> unit
val to_string : t -> string
(** Compact (single-line) rendering. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering (2-space). *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document (RFC 8259 subset: [\u] escapes decode
    to UTF-8, integers overflowing the OCaml [int] range fall back to
    [Float]).  [Error] carries a message with the failing offset.  Used
    by [bench/report --check] to read committed baselines back. *)

val member : string -> t -> t option
(** Field of an [Obj] ([None] for other constructors or missing keys). *)
