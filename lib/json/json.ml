type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    (* Trim to the shortest representation that round-trips. *)
    let rec shorten p =
      if p >= 17 then s
      else
        let c = Printf.sprintf "%.*g" p f in
        if float_of_string c = f then c else shorten (p + 1)
    in
    shorten 1

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string key);
          Buffer.add_string b "\":";
          to_buffer b value)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

(* --- parsing (recursive descent; enough to read back what we emit) --- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt =
    Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at offset %d: %s" !pos m))) fmt
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some d when d = c -> advance ()
    | Some d -> error "expected '%c', found '%c'" c d
    | None -> error "expected '%c', found end of input" c
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error "invalid literal"
  in
  let add_utf8 b code =
    if code < 0x80 then Buffer.add_char b (Char.chr code)
    else if code < 0x800 then begin
      Buffer.add_char b (Char.chr (0xc0 lor (code lsr 6)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
    else begin
      Buffer.add_char b (Char.chr (0xe0 lor (code lsr 12)));
      Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
      Buffer.add_char b (Char.chr (0x80 lor (code land 0x3f)))
    end
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        (if !pos >= n then error "unterminated escape";
         let e = s.[!pos] in
         advance ();
         match e with
         | '"' -> Buffer.add_char b '"'
         | '\\' -> Buffer.add_char b '\\'
         | '/' -> Buffer.add_char b '/'
         | 'b' -> Buffer.add_char b '\b'
         | 'f' -> Buffer.add_char b '\012'
         | 'n' -> Buffer.add_char b '\n'
         | 'r' -> Buffer.add_char b '\r'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
             if !pos + 4 > n then error "truncated \\u escape";
             let hex = String.sub s !pos 4 in
             pos := !pos + 4;
             let code =
               try int_of_string ("0x" ^ hex)
               with Failure _ -> error "invalid \\u escape %S" hex
             in
             add_utf8 b code
         | e -> error "invalid escape '\\%c'" e);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_float = ref false in
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') ->
          advance ();
          digits ()
      | Some ('.' | 'e' | 'E' | '+' | '-') ->
          is_float := true;
          advance ();
          digits ()
      | _ -> ()
    in
    digits ();
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> error "invalid number %S" text
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          (* Integer syntax overflowing the OCaml int range. *)
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> error "invalid number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> error "expected ',' or ']' in array"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (key, v)
          in
          let rec fields acc =
            let f = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (f :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (f :: acc))
            | _ -> error "expected ',' or '}' in object"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error "unexpected character '%c'" c
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (key, value) =
        Format.fprintf ppf "@[<hv 2>\"%s\":@ %a@]" (escape_string key) pp value
      in
      Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        fields
