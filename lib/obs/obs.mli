(** Observability context — hierarchical span tracing and per-server
    cost attribution for one (or a few related) engine runs.

    A context is either {!disabled} — a shared, allocation-free no-op
    every engine accepts by default — or created with {!create}, in
    which case span constructors return [Some span] (subject to
    probabilistic {e sampling} and the {e span cap}) and the profile
    table aggregates exact per-server costs regardless of sampling.

    Span model: one {e root} span per query run, child spans per
    iteration batch and per server visit.  Spans carry timestamped
    events (the engine feeds its {!Whirlpool.Trace} stream in) and
    numeric attributes.  All operations are thread-safe: Whirlpool-M
    server domains report into one shared context.

    The internal mutex ({!mutex_name}) is leaf-only in the declared
    lock hierarchy: span and profile calls never take another lock. *)

type t
(** The context.  Passed to the engines through
    {!Whirlpool.Engine.Config.t}'s [obs] field. *)

type span

val disabled : t
(** The no-op context: every span constructor returns [None], every
    recording operation is a cheap early return, and the engines'
    counters and answers are bit-identical to a run without it. *)

val create : ?sample:float -> ?seed:int -> ?max_spans:int -> unit -> t
(** An enabled context.  [sample] (default [1.0]) is the probability
    that a root span — and therefore its whole subtree — is collected;
    the decision is made per {!root} call with a deterministic
    generator seeded by [seed] (default 0), so sampled runs are
    reproducible.  [max_spans] (default [4096]) caps collected spans;
    beyond it new spans are dropped (counted by {!dropped_spans}) while
    the profile table keeps aggregating. *)

val enabled : t -> bool

val mutex_name : string
(** ["obs.ctx.mutex"], leaf rank in {!Whirlpool.Race.lock_rank}. *)

(** {1 Spans} *)

val root : t -> string -> span option
(** Open a root span ([None] when disabled, unsampled, or capped). *)

val child : t -> parent:span option -> string -> span option
(** Open a child span; [None] propagates from an absent parent, so an
    unsampled subtree costs nothing. *)

val event : t -> span option -> (unit -> string) -> unit
(** Record a timestamped event on the span; the message thunk is only
    forced when the span is live. *)

val attr : t -> span option -> string -> float -> unit

val finish : t -> span option -> unit
(** Close the span (stamps its end time).  Finishing twice keeps the
    first stamp. *)

(** {1 Per-server cost profile} *)

type server_cost = {
  visits : int;  (** partial matches processed at the server *)
  comparisons : int;
  cache_hits : int;
  cache_misses : int;
  time_ns : int64;  (** wall time spent inside the server's joins *)
}

val visit :
  t ->
  server:int ->
  comparisons:int ->
  cache_hits:int ->
  cache_misses:int ->
  ns:int64 ->
  unit
(** Attribute one server operation's cost.  Exact (never sampled);
    no-op on a disabled context. *)

val per_server : t -> (int * server_cost) list
(** Aggregated costs, sorted by server id. *)

(** {1 Export} *)

type span_record = {
  sid : int;
  parent : int option;
  name : string;
  start_ns : int64;
  end_ns : int64;  (** equals [start_ns] when never finished *)
  events : (int64 * string) list;  (** in emission order *)
  attrs : (string * float) list;
}

val spans : t -> span_record list
(** Collected spans in creation order. *)

val dropped_spans : t -> int

val span_tree_json : t -> Wp_json.Json.t
(** The span forest as nested JSON: each node carries [name],
    [start_ns], [duration_ns], [attrs], [events] and [children]. *)

val profile_json : t -> Wp_json.Json.t
(** The per-server cost table as JSON (one object per server with
    visits, comparisons, cache hits/misses/rate and milliseconds). *)
