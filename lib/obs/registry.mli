(** Metrics registry — one namespace of counters, gauges and histograms
    with Prometheus text-exposition and JSON exporters.

    A registry is the single snapshot path for every figure the system
    publishes: push-style metrics ({!counter}, {!gauge}, {!histogram})
    are updated at event sites, pull-style metrics ({!pull_counter},
    {!pull_gauge}) read their value from a callback at snapshot time —
    that is how {!Whirlpool.Stats} accumulators and the serve-layer
    request/latency state register without paying registry costs on
    their hot paths.

    All operations are thread-safe under one internal mutex
    ({!mutex_name}, leaf-only: no callback may re-enter the registry,
    and the registry never calls out while locked except into
    registered pull callbacks, which must not take locks ranked at or
    above it). *)

type t

val create : unit -> t

val mutex_name : string
(** ["obs.registry.mutex"] — leaf rank in the declared lock hierarchy
    ({!Whirlpool.Race.lock_rank}): never held while acquiring any other
    ranked lock. *)

(** {1 Push-style metrics} *)

type counter

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter
(** Register (or retrieve) the counter [name] with the given label set.
    Re-registering the same (name, labels) returns the existing metric;
    a kind clash raises [Invalid_argument]. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1, must be >= 0) to the counter. *)

val counter_value : counter -> int

type gauge

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> float -> unit

type histogram

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:float list ->
  string ->
  histogram
(** [buckets] are upper bounds in increasing order (default: latency-ish
    milliseconds [0.5; 1; 2.5; 5; 10; 25; 50; 100; 250; 500; 1000]); a
    [+Inf] bucket is always appended. *)

val observe : histogram -> float -> unit

(** {1 Pull-style metrics} *)

val pull_counter :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> float) ->
  unit
(** Register a cumulative counter whose value is read from the callback
    at every {!snapshot}. *)

val pull_gauge :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> float) ->
  unit

(** {1 Snapshot and exporters} *)

type value =
  | Sample of float
  | Buckets of { buckets : (float * int) list; sum : float; count : int }
      (** cumulative histogram counts per upper bound, last bound is
          [infinity] *)

type kind = Counter | Gauge | Histogram

type sample = {
  name : string;
  help : string;
  kind : kind;
  labels : (string * string) list;
  value : value;
}

val snapshot : t -> sample list
(** Every registered metric, in registration order; pull callbacks are
    invoked outside the registry lock. *)

val to_prometheus : sample list -> string
(** Prometheus text exposition (version 0.0.4): [# HELP] / [# TYPE]
    once per metric family, then one line per sample.  Histograms emit
    [_bucket{le=...}], [_sum] and [_count] series. *)

val to_json : sample list -> Wp_json.Json.t

val validate_exposition : string -> (unit, string) result
(** Structural check of a Prometheus text page: every line must be
    blank, a well-formed [# HELP]/[# TYPE] comment, or a sample line
    [name{label="value",...} number] whose metric name is legal and
    whose number is finite.  [Error] names the first offending line —
    the CI scrape gate and the exposition tests share this. *)
