module Json = Wp_json.Json

let mutex_name = "obs.registry.mutex"

type kind = Counter | Gauge | Histogram

type value =
  | Sample of float
  | Buckets of { buckets : (float * int) list; sum : float; count : int }

type sample = {
  name : string;
  help : string;
  kind : kind;
  labels : (string * string) list;
  value : value;
}

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;  (* strictly increasing, +inf excluded *)
  counts : int array;  (* per bound, plus one +inf slot at the end *)
  mutable sum : float;
  mutable count : int;
}

type metric =
  | M_counter of counter
  | M_gauge of gauge
  | M_histogram of histogram
  | M_pull_counter of (unit -> float)
  | M_pull_gauge of (unit -> float)

type entry = {
  e_name : string;
  e_help : string;
  e_labels : (string * string) list;
  e_metric : metric;
}

type t = {
  mutex : Mutex.t;
  mutable entries : entry list;  (* reverse registration order *)
}

let create () = { mutex = Mutex.create (); entries = [] }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let kind_of = function
  | M_counter _ | M_pull_counter _ -> Counter
  | M_gauge _ | M_pull_gauge _ -> Gauge
  | M_histogram _ -> Histogram

let valid_name name =
  name <> ""
  && (match name.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       name

(* Register [make ()] under (name, labels), or return the existing
   metric when one of the same kind is already there. *)
let register t ~help ~labels ~name ~same ~make =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Registry: illegal metric name %S" name);
  with_lock t (fun () ->
      match
        List.find_opt
          (fun e -> e.e_name = name && e.e_labels = labels)
          t.entries
      with
      | Some e -> (
          match same e.e_metric with
          | Some m -> m
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Registry: %s already registered with a different kind"
                   name))
      | None ->
          let m = make () in
          t.entries <-
            {
              e_name = name;
              e_help = help;
              e_labels = labels;
              e_metric =
                (match m with
                | `C c -> M_counter c
                | `G g -> M_gauge g
                | `H h -> M_histogram h
                | `PC f -> M_pull_counter f
                | `PG f -> M_pull_gauge f);
            }
            :: t.entries;
          m)

let counter t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels ~name
      ~same:(function M_counter c -> Some (`C c) | _ -> None)
      ~make:(fun () -> `C { c = 0 })
  with
  | `C c -> c
  | _ -> assert false

let incr ?(by = 1) (c : counter) =
  if by < 0 then invalid_arg "Registry.incr: by >= 0";
  c.c <- c.c + by

let counter_value (c : counter) = c.c

let gauge t ?(help = "") ?(labels = []) name =
  match
    register t ~help ~labels ~name
      ~same:(function M_gauge g -> Some (`G g) | _ -> None)
      ~make:(fun () -> `G { g = 0.0 })
  with
  | `G g -> g
  | _ -> assert false

let set (g : gauge) v = g.g <- v

let default_buckets =
  [ 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0; 500.0; 1000.0 ]

let histogram t ?(help = "") ?(labels = []) ?(buckets = default_buckets) name =
  let bounds = Array.of_list buckets in
  let ok = ref (Array.length bounds > 0) in
  Array.iteri
    (fun i b ->
      if not (Float.is_finite b) then ok := false
      else if i > 0 && b <= bounds.(i - 1) then ok := false)
    bounds;
  if not !ok then
    invalid_arg "Registry.histogram: buckets must be finite and increasing";
  match
    register t ~help ~labels ~name
      ~same:(function M_histogram h -> Some (`H h) | _ -> None)
      ~make:(fun () ->
        `H
          {
            bounds;
            counts = Array.make (Array.length bounds + 1) 0;
            sum = 0.0;
            count = 0;
          })
  with
  | `H h -> h
  | _ -> assert false

let observe (h : histogram) v =
  let n = Array.length h.bounds in
  let rec slot i = if i >= n then n else if v <= h.bounds.(i) then i else slot (i + 1) in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum <- h.sum +. v;
  h.count <- h.count + 1

let pull_counter t ?(help = "") ?(labels = []) name f =
  ignore
    (register t ~help ~labels ~name
       ~same:(fun _ -> None)
       ~make:(fun () -> `PC f))

let pull_gauge t ?(help = "") ?(labels = []) name f =
  ignore
    (register t ~help ~labels ~name
       ~same:(fun _ -> None)
       ~make:(fun () -> `PG f))

(* Snapshot: copy the entry list under the lock, then read values.  Pull
   callbacks run outside the lock so they may themselves take (lower or
   unrelated) locks; push metrics race benignly with concurrent updates
   (a torn int is impossible in OCaml, a slightly stale value is fine). *)
let snapshot t =
  let entries = with_lock t (fun () -> List.rev t.entries) in
  List.map
    (fun e ->
      let value =
        match e.e_metric with
        | M_counter c -> Sample (float_of_int c.c)
        | M_gauge g -> Sample g.g
        | M_pull_counter f | M_pull_gauge f -> Sample (f ())
        | M_histogram h ->
            let acc = ref 0 in
            let buckets =
              Array.to_list
                (Array.mapi
                   (fun i n ->
                     acc := !acc + n;
                     let bound =
                       if i < Array.length h.bounds then h.bounds.(i)
                       else infinity
                     in
                     (bound, !acc))
                   h.counts)
            in
            Buckets { buckets; sum = h.sum; count = h.count }
      in
      {
        name = e.e_name;
        help = e.e_help;
        kind = kind_of e.e_metric;
        labels = e.e_labels;
        value;
      })
    entries

(* --- Prometheus text exposition --- *)

let escape_label_value v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let format_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    string_of_int (int_of_float v)
  else Printf.sprintf "%.17g" v

let format_bound b = if b = infinity then "+Inf" else format_value b

let labels_string labels =
  match labels with
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
             ls)
      ^ "}"

let kind_string = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram -> "histogram"

let to_prometheus samples =
  let b = Buffer.create 1024 in
  let headed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      if not (Hashtbl.mem headed s.name) then begin
        Hashtbl.add headed s.name ();
        if s.help <> "" then
          Buffer.add_string b
            (Printf.sprintf "# HELP %s %s\n" s.name
               (String.map (function '\n' -> ' ' | c -> c) s.help));
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" s.name (kind_string s.kind))
      end;
      match s.value with
      | Sample v ->
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" s.name (labels_string s.labels)
               (format_value v))
      | Buckets { buckets; sum; count } ->
          List.iter
            (fun (bound, n) ->
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" s.name
                   (labels_string (s.labels @ [ ("le", format_bound bound) ]))
                   n))
            buckets;
          Buffer.add_string b
            (Printf.sprintf "%s_sum%s %s\n" s.name (labels_string s.labels)
               (format_value sum));
          Buffer.add_string b
            (Printf.sprintf "%s_count%s %d\n" s.name (labels_string s.labels)
               count))
    samples;
  Buffer.contents b

(* --- JSON export --- *)

let to_json samples =
  let metric s =
    let base =
      [
        ("name", Json.String s.name);
        ("kind", Json.String (kind_string s.kind));
      ]
    in
    let labels =
      match s.labels with
      | [] -> []
      | ls ->
          [
            ( "labels",
              Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) ls) );
          ]
    in
    let value =
      match s.value with
      | Sample v -> [ ("value", Json.Float v) ]
      | Buckets { buckets; sum; count } ->
          [
            ( "buckets",
              Json.List
                (List.map
                   (fun (bound, n) ->
                     Json.Obj
                       [
                         ( "le",
                           if bound = infinity then Json.String "+Inf"
                           else Json.Float bound );
                         ("count", Json.Int n);
                       ])
                   buckets) );
            ("sum", Json.Float sum);
            ("count", Json.Int count);
          ]
    in
    Json.Obj (base @ labels @ value)
  in
  Json.Obj [ ("metrics", Json.List (List.map metric samples)) ]

(* --- exposition validation --- *)

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
  | _ -> false

let is_label_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false

(* One sample line: name[{labels}] SP value.  Returns an error message
   or None. *)
let check_sample_line line =
  let n = String.length line in
  let err m = Some m in
  let rec name_end i =
    if i < n && is_name_char line.[i] then name_end (i + 1) else i
  in
  if n = 0 || not (is_name_start line.[0]) then err "illegal metric name"
  else begin
    let i = name_end 1 in
    (* optional label set *)
    let after_labels =
      if i < n && line.[i] = '{' then begin
        (* walk label pairs *)
        let rec pairs j =
          (* j at label name start *)
          if j >= n then Error "unterminated label set"
          else if line.[j] = '}' then Ok (j + 1)
          else if not (is_label_start line.[j]) then
            Error "illegal label name"
          else begin
            let rec lname k =
              if k < n && is_name_char line.[k] then lname (k + 1) else k
            in
            let j = lname (j + 1) in
            if j + 1 >= n || line.[j] <> '=' || line.[j + 1] <> '"' then
              Error "label value must be quoted"
            else begin
              let rec value k =
                if k >= n then Error "unterminated label value"
                else if line.[k] = '\\' then
                  if k + 1 < n then value (k + 2)
                  else Error "unterminated escape"
                else if line.[k] = '"' then Ok (k + 1)
                else value (k + 1)
              in
              match value (j + 2) with
              | Error m -> Error m
              | Ok k ->
                  if k < n && line.[k] = ',' then pairs (k + 1)
                  else if k < n && line.[k] = '}' then Ok (k + 1)
                  else Error "expected ',' or '}' after label value"
            end
          end
        in
        pairs (i + 1)
      end
      else Ok i
    in
    match after_labels with
    | Error m -> err m
    | Ok i ->
        if i >= n || line.[i] <> ' ' then
          err "expected a space before the sample value"
        else begin
          let v = String.sub line (i + 1) (n - i - 1) in
          match float_of_string_opt v with
          | None -> err (Printf.sprintf "unparsable sample value %S" v)
          | Some f ->
              if Float.is_finite f then None
              else err (Printf.sprintf "non-finite sample value %S" v)
        end
  end

let check_comment_line line =
  (* "# HELP name ..." | "# TYPE name counter|gauge|histogram" *)
  match String.split_on_char ' ' line with
  | "#" :: "HELP" :: name :: _ when valid_name name -> None
  | "#" :: "TYPE" :: name :: [ kind ] when valid_name name ->
      if List.mem kind [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ]
      then None
      else Some (Printf.sprintf "unknown metric type %S" kind)
  | "#" :: "HELP" :: _ -> Some "malformed HELP comment"
  | "#" :: "TYPE" :: _ -> Some "malformed TYPE comment"
  | _ -> Some "malformed comment"

let validate_exposition text =
  let lines = String.split_on_char '\n' text in
  let rec go n = function
    | [] -> Ok ()
    | line :: rest -> (
        let verdict =
          if line = "" then None
          else if line.[0] = '#' then check_comment_line line
          else check_sample_line line
        in
        match verdict with
        | None -> go (n + 1) rest
        | Some m -> Error (Printf.sprintf "line %d: %s: %s" n m line))
  in
  go 1 lines
