module Json = Wp_json.Json

let mutex_name = "obs.ctx.mutex"

type span = {
  sid : int;
  parent : int option;
  name : string;
  start_ns : int64;
  mutable end_ns : int64;
  mutable rev_events : (int64 * string) list;
  mutable rev_attrs : (string * float) list;
}

type server_cost = {
  visits : int;
  comparisons : int;
  cache_hits : int;
  cache_misses : int;
  time_ns : int64;
}

type cost_acc = {
  mutable a_visits : int;
  mutable a_comparisons : int;
  mutable a_cache_hits : int;
  mutable a_cache_misses : int;
  mutable a_time_ns : int64;
}

type state = {
  mutex : Mutex.t;
  sample : float;
  max_spans : int;
  mutable rng : int64;
  mutable next_sid : int;
  mutable collected : int;
  mutable dropped : int;
  mutable rev_spans : span list;
  costs : (int, cost_acc) Hashtbl.t;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let enabled = function Disabled -> false | Enabled _ -> true

let create ?(sample = 1.0) ?(seed = 0) ?(max_spans = 4096) () =
  if not (Float.is_finite sample) || sample < 0.0 || sample > 1.0 then
    invalid_arg "Obs.create: sample must be in [0, 1]";
  if max_spans < 1 then invalid_arg "Obs.create: max_spans >= 1";
  Enabled
    {
      mutex = Mutex.create ();
      sample;
      max_spans;
      rng = Int64.of_int seed;
      next_sid = 0;
      collected = 0;
      dropped = 0;
      rev_spans = [];
      costs = Hashtbl.create 8;
    }

let with_lock st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

(* splitmix64: deterministic per-seed sampling decisions. *)
let next_uniform st =
  st.rng <- Int64.add st.rng 0x9E3779B97F4A7C15L;
  let z = st.rng in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_float (Int64.shift_right_logical z 11) *. (1.0 /. 9007199254740992.0)

let alloc_span st ~parent name =
  if st.collected >= st.max_spans then begin
    st.dropped <- st.dropped + 1;
    None
  end
  else begin
    let sid = st.next_sid in
    st.next_sid <- sid + 1;
    st.collected <- st.collected + 1;
    let now = Clock.now_ns () in
    let s =
      {
        sid;
        parent;
        name;
        start_ns = now;
        end_ns = now;
        rev_events = [];
        rev_attrs = [];
      }
    in
    st.rev_spans <- s :: st.rev_spans;
    Some s
  end

let root t name =
  match t with
  | Disabled -> None
  | Enabled st ->
      with_lock st (fun () ->
          if st.sample >= 1.0 || next_uniform st < st.sample then
            alloc_span st ~parent:None name
          else None)

let child t ~parent name =
  match (t, parent) with
  | Disabled, _ | _, None -> None
  | Enabled st, Some (p : span) ->
      with_lock st (fun () -> alloc_span st ~parent:(Some p.sid) name)

let event t sp msg =
  match (t, sp) with
  | Disabled, _ | _, None -> ()
  | Enabled st, Some s ->
      with_lock st (fun () ->
          s.rev_events <- (Clock.now_ns (), msg ()) :: s.rev_events)

let attr t sp name v =
  match (t, sp) with
  | Disabled, _ | _, None -> ()
  | Enabled st, Some s ->
      with_lock st (fun () -> s.rev_attrs <- (name, v) :: s.rev_attrs)

let finish t sp =
  match (t, sp) with
  | Disabled, _ | _, None -> ()
  | Enabled st, Some s ->
      with_lock st (fun () ->
          if Int64.equal s.end_ns s.start_ns then s.end_ns <- Clock.now_ns ())

let visit t ~server ~comparisons ~cache_hits ~cache_misses ~ns =
  match t with
  | Disabled -> ()
  | Enabled st ->
      with_lock st (fun () ->
          let acc =
            match Hashtbl.find_opt st.costs server with
            | Some a -> a
            | None ->
                let a =
                  {
                    a_visits = 0;
                    a_comparisons = 0;
                    a_cache_hits = 0;
                    a_cache_misses = 0;
                    a_time_ns = 0L;
                  }
                in
                Hashtbl.add st.costs server a;
                a
          in
          acc.a_visits <- acc.a_visits + 1;
          acc.a_comparisons <- acc.a_comparisons + comparisons;
          acc.a_cache_hits <- acc.a_cache_hits + cache_hits;
          acc.a_cache_misses <- acc.a_cache_misses + cache_misses;
          acc.a_time_ns <- Int64.add acc.a_time_ns ns)

let per_server t =
  match t with
  | Disabled -> []
  | Enabled st ->
      let rows =
        with_lock st (fun () ->
            Hashtbl.fold
              (fun server (a : cost_acc) acc ->
                ( server,
                  {
                    visits = a.a_visits;
                    comparisons = a.a_comparisons;
                    cache_hits = a.a_cache_hits;
                    cache_misses = a.a_cache_misses;
                    time_ns = a.a_time_ns;
                  } )
                :: acc)
              st.costs [])
      in
      List.sort (fun (a, _) (b, _) -> Int.compare a b) rows

type span_record = {
  sid : int;
  parent : int option;
  name : string;
  start_ns : int64;
  end_ns : int64;
  events : (int64 * string) list;
  attrs : (string * float) list;
}

let spans t =
  match t with
  | Disabled -> []
  | Enabled st ->
      let raw = with_lock st (fun () -> List.rev st.rev_spans) in
      List.map
        (fun (s : span) ->
          {
            sid = s.sid;
            parent = s.parent;
            name = s.name;
            start_ns = s.start_ns;
            end_ns = s.end_ns;
            events = List.rev s.rev_events;
            attrs = List.rev s.rev_attrs;
          })
        raw

let dropped_spans t =
  match t with
  | Disabled -> 0
  | Enabled st -> with_lock st (fun () -> st.dropped)

let span_tree_json t =
  let all = spans t in
  let children : (int, span_record list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match s.parent with
      | None -> ()
      | Some p ->
          Hashtbl.replace children p
            (s :: Option.value (Hashtbl.find_opt children p) ~default:[]))
    all;
  let rec node (s : span_record) =
    let kids =
      List.rev (Option.value (Hashtbl.find_opt children s.sid) ~default:[])
    in
    Json.Obj
      ([
         ("name", Json.String s.name);
         ("start_ns", Json.Float (Int64.to_float s.start_ns));
         ( "duration_ns",
           Json.Float (Int64.to_float (Int64.sub s.end_ns s.start_ns)) );
       ]
      @ (match s.attrs with
        | [] -> []
        | attrs ->
            [
              ( "attrs",
                Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) attrs) );
            ])
      @ (match s.events with
        | [] -> []
        | events ->
            [
              ( "events",
                Json.List
                  (List.map
                     (fun (ts, msg) ->
                       Json.Obj
                         [
                           ("ts_ns", Json.Float (Int64.to_float ts));
                           ("msg", Json.String msg);
                         ])
                     events) );
            ])
      @
      match kids with
      | [] -> []
      | _ -> [ ("children", Json.List (List.map node kids)) ])
  in
  let roots = List.filter (fun s -> s.parent = None) all in
  Json.Obj
    [
      ("spans", Json.Int (List.length all));
      ("dropped", Json.Int (dropped_spans t));
      ("roots", Json.List (List.map node roots));
    ]

let profile_json t =
  let rows = per_server t in
  Json.List
    (List.map
       (fun (server, c) ->
         let lookups = c.cache_hits + c.cache_misses in
         Json.Obj
           [
             ("server", Json.Int server);
             ("visits", Json.Int c.visits);
             ("comparisons", Json.Int c.comparisons);
             ("cache_hits", Json.Int c.cache_hits);
             ("cache_misses", Json.Int c.cache_misses);
             ( "cache_hit_rate",
               Json.Float
                 (if lookups = 0 then 0.0
                  else float_of_int c.cache_hits /. float_of_int lookups) );
             ("time_ms", Json.Float (Int64.to_float c.time_ns /. 1e6));
           ])
       rows)
