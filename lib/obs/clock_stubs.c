/* Monotonic clock primitive for Wp_obs.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, so
   the OCaml side needs no clamping loop: the kernel already guarantees
   that consecutive reads never go backwards, from any thread.  The
   origin is unspecified (boot time on Linux) — callers must only ever
   subtract two readings. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value wp_clock_monotonic_ns(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + ts.tv_nsec);
}
