(** Monotonic wall-clock helper shared by the engines, the benchmark
    harness, the CLI and the observability layer.

    [Unix.gettimeofday] can step backwards (NTP adjustment, manual
    clock change), which used to make [Stats.wall_ns] and benchmark
    timings negative or wildly wrong.  The stdlib exposes no monotonic
    clock, so this helper clamps: it never returns a value smaller than
    one it has already returned, from any domain.  Resolution is that
    of [gettimeofday] (microseconds). *)

val now_ns : unit -> int64
(** Nanoseconds since the epoch, monotonically non-decreasing across
    all domains of the process. *)

val now : unit -> float
(** Seconds, on the same monotonic basis as {!now_ns}. *)
