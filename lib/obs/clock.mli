(** Monotonic clock shared by the engines, the benchmark harness, the
    CLI and the observability layer.

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a C stub: readings
    never step backwards (NTP adjustment, manual clock change) and need
    no user-space clamping.  The origin is unspecified (boot time on
    Linux), so values are only meaningful relative to one another —
    subtract two readings for an elapsed time, never interpret one as a
    wall-clock date.  Resolution is the kernel clock's (nanoseconds).

    This module is the only sanctioned time source in the tree: the
    Sentinel static checker's clock-discipline rule flags any other use
    of [Unix.gettimeofday] or [Sys.time]. *)

val now_ns : unit -> int64
(** Nanoseconds since an unspecified fixed origin, monotonically
    non-decreasing across all domains of the process. *)

val now : unit -> float
(** Seconds, on the same monotonic basis as {!now_ns}. *)
