(* The one place in the tree that is allowed to read a clock for
   timing: a clock_gettime(CLOCK_MONOTONIC) stub.  The kernel guarantees
   monotonicity across threads and domains, so no clamping is needed —
   and no [Unix.gettimeofday] either, which Sentinel's clock-discipline
   rule forbids everywhere. *)

external now_ns : unit -> int64 = "wp_clock_monotonic_ns"

let now () = Int64.to_float (now_ns ()) /. 1e9
