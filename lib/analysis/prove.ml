(* Prune-soundness prover.

   The engines' pruning story (paper Sections 3-4) rests on two
   semantic facts about the score table feeding them:

   - admissibility: a partial match's [max_possible] — its score plus
     every unvisited server's [exact_weight] — bounds every completion,
     which needs each binding's contribution to lie in
     [0, exact_weight]; and
   - lattice monotonicity: every relaxation edge can only lower (or
     keep) an answer's score — leaf deletion replaces a contribution
     by 0 (needs the contribution nonnegative), and edge
     generalization / subtree promotion / value relaxation move a
     binding from the exact to the relaxed level (needs
     [relaxed_weight <= exact_weight]).

   Both reduce to the weight-order invariant
   [0 <= relaxed_weight <= exact_weight] (with both weights finite).
   This module proves that invariant {e symbolically} for every
   shipped normalization, by interval analysis over the construction
   formulas in {!Wp_score.Score_table} plus two checked lemmas about
   the idf model and the relaxation operators:

   - idf is nonnegative and antitone in the satisfying-source count
     (checked exhaustively on an integer grid, including the
     [satisfying = 0 -> log (total + 1)] convention), and
   - the relaxation operators only widen relations
     ([Relation.is_subrelation r (relax r)], checked over a depth
     grid) and content relaxation only widens the value predicate —
     so a relaxed component's satisfying count is at least the exact
     one's, and its idf at most.

   Each certificate carries its obligations with a one-line argument
   (proved) or witness (refuted); [diagnostics] turns refuted
   obligations into [sentinel/prune-unsound] errors.  [table_violations]
   is the concrete cross-check on a built table — the runtime
   [WP_CHECK_INVARIANTS] hook ([Invariants.check_table]) runs it on
   every validated plan, so a certificate claimed here is re-checked
   against the actual numbers the engine is about to prune with. *)

module Relation = Wp_relax.Relation
module Relaxation = Wp_relax.Relaxation
module Score_table = Wp_score.Score_table
module D = Diagnostic

(* --- symbolic intervals --- *)

module Interval = struct
  type t = { lo : float; hi : float }

  let v lo hi = { lo; hi }

  (* Products of nonnegative intervals (the only ones the construction
     formulas need). *)
  let mul a b = { lo = a.lo *. b.lo; hi = a.hi *. b.hi }
  let nonneg a = a.lo >= 0.0
  let within a ~lo ~hi = a.lo >= lo && a.hi <= hi
end

(* --- obligations and certificates --- *)

type verdict = Proved | Refuted of string

type obligation = {
  oid : string;
  claim : string;
  argument : string;  (* why it holds, or what was checked *)
  verdict : verdict;
}

type certificate = {
  subject : string;  (* e.g. "sparse under edge-gen+leaf-del+promo" *)
  obligations : obligation list;
}

let certified c =
  List.for_all (fun o -> o.verdict = Proved) c.obligations

let proved oid claim argument = { oid; claim; argument; verdict = Proved }

let checked oid claim argument ok witness =
  { oid; claim; argument; verdict = (if ok then Proved else Refuted witness) }

(* --- lemma 1: the idf model --- *)

(* Exactly {!Wp_score.Tfidf.idf}'s arithmetic on the two counts it
   depends on. *)
let idf_model ~total ~satisfying =
  if total = 0 then 0.0
  else if satisfying = 0 then log (float_of_int (total + 1))
  else log (float_of_int total /. float_of_int satisfying)

let idf_grid = 48

let idf_nonneg_ok () =
  let ok = ref true in
  for total = 0 to idf_grid do
    for s = 0 to total do
      if idf_model ~total ~satisfying:s < -.1e-12 then ok := false
    done
  done;
  !ok

let idf_antitone_ok () =
  let ok = ref true in
  for total = 0 to idf_grid do
    for s = 0 to total do
      for s' = s to total do
        if
          idf_model ~total ~satisfying:s' >
          idf_model ~total ~satisfying:s +. 1e-12
        then ok := false
      done
    done
  done;
  !ok

(* --- lemma 2: relaxation only widens --- *)

let relation_grid =
  List.concat_map
    (fun min_depth ->
      { Relation.min_depth; max_depth = None }
      :: List.filter_map
           (fun extra ->
             Some { Relation.min_depth; max_depth = Some (min_depth + extra) })
           [ 0; 1; 2; 3 ])
    [ 1; 2; 3; 4 ]

let widening_ok (config : Relaxation.config) =
  List.for_all
    (fun r ->
      Relation.is_subrelation r (Relaxation.relax_to_root config r)
      && Relation.is_subrelation r (Relaxation.relax_internal config r))
    relation_grid

(* Content relaxation accepts by equality OR token containment, so its
   predicate contains the exact (equality) one by construction; check
   the implication on a small sample anyway. *)
let value_widening_ok () =
  let samples =
    [ "a"; "a b"; "b a"; "ab"; ""; "x y z"; "a  b" ]
  in
  List.for_all
    (fun actual ->
      List.for_all
        (fun query ->
          let exact = String.equal actual query in
          let relaxed =
            String.equal actual query
            || List.exists (String.equal query)
                 (String.split_on_char ' ' actual)
          in
          (not exact) || relaxed)
        samples)
    samples

(* --- the idf-based weight facts --- *)

(* Shared premises for Raw / Sparse / Dense: raw weights are idf
   values, [relaxed_weight] is the idf of the widened component (or
   equals [exact_weight] when the config relaxes nothing), so
   [0 <= relaxed <= exact] pointwise. *)
let raw_weight_obligations (config : Relaxation.config) =
  [
    checked "idf-nonneg" "idf(p) >= 0 for every predicate p"
      (Printf.sprintf
         "log(total/satisfying) with 0 <= satisfying <= total, and \
          log(total+1) when satisfying = 0; checked on the 0..%d grid"
         idf_grid)
      (idf_nonneg_ok ()) "idf model produced a negative value on the grid";
    checked "idf-antitone"
      "idf is antitone in the satisfying-source count"
      (Printf.sprintf
         "satisfying' >= satisfying implies idf' <= idf, including the \
          satisfying = 0 convention; checked on the 0..%d grid" idf_grid)
      (idf_antitone_ok ())
      "idf model increased with the satisfying count on the grid";
    checked "relaxation-widens"
      "every enabled relaxation edge maps a relation to a superrelation"
      "Relation.is_subrelation r (relax r) over the depth grid \
       (min_depth 1..4 x max_depth {=, +1..+3, unbounded})"
      (widening_ok config)
      "a relaxation operator produced a non-superrelation";
    checked "value-widens"
      "content relaxation only widens the value predicate"
      "relaxed acceptance is equality OR token containment, a superset \
       by construction; implication checked on sample strings"
      (value_widening_ok ())
      "exact value acceptance not contained in relaxed acceptance";
    proved "relaxed-le-exact"
      "0 <= relaxed_weight <= exact_weight for every raw entry"
      "a widened predicate is satisfied by at least the exact \
       predicate's sources (relaxation-widens, value-widens), so its \
       satisfying count is >= and its idf <= (idf-antitone); both idfs \
       are >= 0 (idf-nonneg); identical when the config relaxes nothing";
  ]

let order_conclusions (config : Relaxation.config) =
  [
    (if config.Relaxation.leaf_deletion then
       proved "deletion-monotone"
         "a leaf-deletion edge never raises an answer's score"
         "deletion replaces a contribution w by 0 and w >= 0"
     else
       proved "deletion-monotone" "no leaf-deletion edges in this config"
         "vacuous: config.leaf_deletion = false");
    proved "relax-edge-monotone"
      "edge generalization / promotion / value relaxation never raise a score"
      "each moves a binding's contribution from exact_weight to \
       relaxed_weight and relaxed_weight <= exact_weight";
    proved "max-possible-admissible"
      "score + sum of unvisited exact_weights bounds every completion"
      "every future binding contributes at most its exact_weight \
       (relaxed_weight <= exact_weight, deleted = 0 <= exact_weight)";
  ]

(* --- per-normalization certificates --- *)

let pp_subject normalization config =
  Format.asprintf "%a under %a" Score_table.pp_normalization normalization
    Relaxation.pp_config config

let interval_obligations ~exact ~ratio =
  let relaxed = Interval.mul exact ratio in
  [
    checked "weights-nonneg" "exact and relaxed weights are nonnegative"
      (Printf.sprintf "exact in [%.2f, %.2f], relaxed = exact * ratio in \
                       [%.2f, %.2f]"
         exact.Interval.lo exact.Interval.hi relaxed.Interval.lo
         relaxed.Interval.hi)
      (Interval.nonneg exact && Interval.nonneg relaxed)
      "a weight interval reaches below zero";
    checked "relaxed-le-exact" "relaxed_weight <= exact_weight pointwise"
      (Printf.sprintf
         "relaxed = exact * ratio with ratio in [%.2f, %.2f] within [0, 1] \
          and exact >= 0" ratio.Interval.lo ratio.Interval.hi)
      (Interval.within ratio ~lo:0.0 ~hi:1.0 && Interval.nonneg exact)
      "the relaxed/exact ratio interval escapes [0, 1]";
  ]

let certify_normalization ?(config = Relaxation.all)
    (normalization : Score_table.normalization) =
  let subject = pp_subject normalization config in
  let obligations =
    match normalization with
    | Score_table.Raw ->
        raw_weight_obligations config @ order_conclusions config
    | Score_table.Sparse ->
        raw_weight_obligations config
        @ [
            proved "sparse-preserves-order"
              "per-predicate normalization keeps 0 <= relaxed <= exact"
              "exact > 0: entry becomes (1, min 1 (relaxed/exact)) with \
               relaxed/exact in [0, 1]; exact = 0 forces relaxed = 0 \
               (antitone idf cannot exceed 0) and the entry becomes \
               (1, 0.5)";
          ]
        @ order_conclusions config
    | Score_table.Dense ->
        raw_weight_obligations config
        @ [
            proved "dense-preserves-order"
              "global rescaling keeps 0 <= relaxed <= exact"
              "m = max exact > 0 divides both weights (order preserved \
               by a positive scalar); m <= 0 forces every weight to 0 \
               and the entries become (1, 1)";
          ]
        @ order_conclusions config
    | Score_table.Random_sparse _ ->
        interval_obligations
          ~exact:(Interval.v 0.6 1.0)
          ~ratio:(Interval.v 0.2 0.6)
        @ order_conclusions config
    | Score_table.Random_dense _ ->
        interval_obligations
          ~exact:(Interval.v 0.45 0.55)
          ~ratio:(Interval.v 0.85 1.0)
        @ order_conclusions config
  in
  { subject; obligations }

(* --- concrete tables --- *)

let table_violations (t : Score_table.t) =
  let violations = ref [] in
  for node = Score_table.size t - 1 downto 0 do
    let e = Score_table.entry t node in
    let exact = e.Score_table.exact_weight
    and relaxed = e.Score_table.relaxed_weight in
    if not (Float.is_finite exact && Float.is_finite relaxed) then
      violations :=
        Printf.sprintf "q%d: non-finite weight (exact=%g relaxed=%g)" node
          exact relaxed
        :: !violations
    else begin
      if exact < 0.0 then
        violations :=
          Printf.sprintf
            "q%d: exact_weight %g is negative — binding the node would \
             lower the score" node exact
          :: !violations;
      if relaxed < 0.0 then
        violations :=
          Printf.sprintf
            "q%d: relaxed_weight %g is negative — a relaxed binding (or \
             deleting one) would lower the score" node relaxed
          :: !violations;
      if relaxed > exact then
        violations :=
          Printf.sprintf
            "q%d: relaxed_weight %g exceeds exact_weight %g — a relaxation \
             edge could raise the score and max_possible under-estimates \
             completions" node relaxed exact
          :: !violations
    end
  done;
  !violations

let certify_table ?(subject = "score table") (t : Score_table.t) =
  let obligations =
    match table_violations t with
    | [] ->
        [
          proved "weights-in-order"
            "0 <= relaxed_weight <= exact_weight (finite) for every entry"
            (Printf.sprintf "checked %d entries" (Score_table.size t));
        ]
    | v :: _ as all ->
        [
          checked "weights-in-order"
            "0 <= relaxed_weight <= exact_weight (finite) for every entry"
            (Printf.sprintf "checked %d entries" (Score_table.size t))
            false
            (Printf.sprintf "%s%s" v
               (match all with
               | [ _ ] -> ""
               | _ -> Printf.sprintf " (+%d more)" (List.length all - 1)));
        ]
  in
  { subject; obligations }

(* --- shipped configurations --- *)

let shipped_normalizations =
  [
    Score_table.Raw;
    Score_table.Sparse;
    Score_table.Dense;
    Score_table.Random_sparse 42;
    Score_table.Random_dense 42;
  ]

let shipped_configs =
  [ Relaxation.exact; Relaxation.all; Relaxation.with_content ]

let check_shipped () =
  List.concat_map
    (fun config ->
      List.map
        (fun n -> certify_normalization ~config n)
        shipped_normalizations)
    shipped_configs

(* --- diagnostics --- *)

let diagnostics certs =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun o ->
          match o.verdict with
          | Proved -> None
          | Refuted witness ->
              Some
                (D.errorf "sentinel/prune-unsound" "%s: %s refuted: %s"
                   c.subject o.claim witness))
        c.obligations)
    certs
