(** Static analysis of tree-pattern queries, relaxation plans and
    server predicate sequences.

    The analyzer runs a pipeline of checks before a query executes:

    - {e well-formedness} — preorder-id discipline, tag validity, value
      predicates on leaves only;
    - {e redundancy} — duplicate or subsumed sibling predicates whose
      [tf] double-counts;
    - {e plan consistency} — a server-spec array (the compiled
      conditional predicate sequences of Algorithm 1) must agree with
      the pattern and the relaxation configuration: composed exact
      relations, permitted relaxed levels, hard/optional flags, and
      relation invariants (no contradictory depth bounds);
    - {e lattice consistency} — for small queries, the relaxation
      lattice is enumerated ({!Wp_relax.Relaxation.closure_labeled})
      and every reachable composition is cross-checked against the
      spec's most relaxed admitted relation: a composition the spec
      rejects means the engine would refuse a legitimately relaxed
      match (error); an admitted relation no lattice member achieves
      means the plan is slacker than the three relaxations justify
      (warning);
    - {e document checks} (when a {!Wp_stats.Synopsis.t} is supplied) —
      tag-vocabulary membership, structural satisfiability (a predicate
      no node pair in the document can satisfy even at its most relaxed
      level), and the static score bound of {!Score_bound}.

    Severity of document-dependent findings follows the configuration:
    a node that can be deleted (leaf deletion enabled) degrades
    gracefully, so its findings are warnings; without leaf deletion an
    unmatchable node makes complete answers impossible and the finding
    is an error. *)

val well_formedness : Wp_pattern.Pattern.t -> Diagnostic.t list
val redundancy : Wp_pattern.Pattern.t -> Diagnostic.t list

val plan_consistency :
  config:Wp_relax.Relaxation.config ->
  Wp_pattern.Pattern.t ->
  Wp_relax.Server_spec.t array ->
  Diagnostic.t list
(** Structural agreement of a spec array with pattern and config; no
    lattice enumeration, O(pattern²). *)

val lattice_consistency :
  ?max_lattice:int ->
  config:Wp_relax.Relaxation.config ->
  Wp_pattern.Pattern.t ->
  Wp_relax.Server_spec.t array ->
  Diagnostic.t list
(** Cross-check against the enumerated relaxation lattice, capped at
    [max_lattice] (default 2000) labeled patterns; reports an info
    diagnostic and skips when the lattice is larger. *)

val document_checks :
  config:Wp_relax.Relaxation.config ->
  Wp_stats.Synopsis.t ->
  Wp_pattern.Pattern.t ->
  Diagnostic.t list

val quick :
  config:Wp_relax.Relaxation.config ->
  specs:Wp_relax.Server_spec.t array ->
  Wp_pattern.Pattern.t ->
  Diagnostic.t list
(** The cheap always-on subset run by the engines on every plan:
    {!well_formedness} plus {!plan_consistency}. *)

val check :
  ?synopsis:Wp_stats.Synopsis.t ->
  ?specs:Wp_relax.Server_spec.t array ->
  ?max_lattice:int ->
  config:Wp_relax.Relaxation.config ->
  Wp_pattern.Pattern.t ->
  Diagnostic.t list
(** The full pipeline, sorted by severity.  [specs] defaults to a fresh
    {!Wp_relax.Server_spec.build}; pass a compiled plan's array to vet
    it instead.  Document checks run only when [synopsis] is given. *)

exception Rejected of Diagnostic.t list
(** Raised by {!validate_exn}; carries the error-severity findings. *)

val validate_exn :
  config:Wp_relax.Relaxation.config ->
  specs:Wp_relax.Server_spec.t array ->
  Wp_pattern.Pattern.t ->
  unit
(** Run {!quick} and raise {!Rejected} if any finding is an error — the
    gate both engines apply to a plan before executing it. *)
