module Synopsis = Wp_stats.Synopsis
module Relation = Wp_relax.Relation
module Relaxation = Wp_relax.Relaxation
module Pattern = Wp_pattern.Pattern

(* idf ≤ log(count(q0)) whenever some pair satisfies the predicate; when
   no pair can, tf is 0 for every source and the contribution is 0.
   (The satisfying = 0 convention yields the larger log(count+1), but
   only in tandem with an everywhere-zero tf.)  tf for one source is at
   most the document-wide pair count, and at most the target tag's
   population. *)
let component_bound syn ~anc_tag ~target_tag relation =
  let sources = Synopsis.tag_count syn anc_tag in
  if sources = 0 then 0.0
  else
    let pairs = Synopsis.pairs_in_relation syn ~anc:anc_tag ~desc:target_tag relation in
    if pairs = 0 then 0.0
    else
      let tf_bound = min pairs (Synopsis.tag_count syn target_tag) in
      log (float_of_int sources) *. float_of_int tf_bound

let of_pattern ?config syn pat =
  let root = Pattern.root pat in
  let root_tag = Pattern.tag pat root in
  List.fold_left
    (fun acc node ->
      if node = root then acc (* unique document root: idf is 0 *)
      else
        let exact =
          match Pattern.path_edges pat root node with
          | Some (_ :: _ as edges) -> Relation.of_edges edges
          | Some [] | None -> assert false
        in
        let relation =
          match config with
          | Some c -> Relaxation.relax_to_root c exact
          | None -> exact
        in
        acc
        +. component_bound syn ~anc_tag:root_tag
             ~target_tag:(Pattern.tag pat node) relation)
    0.0 (Pattern.node_ids pat)
