type tid = int
type atomic_kind = Get | Set | Rmw
type access_kind = Read | Write

type event =
  | Spawn of { parent : tid; child : tid; name : string }
  | Exit of { tid : tid }
  | Join of { tid : tid; child : tid }
  | Acquire of { tid : tid; lock : string }
  | Release of { tid : tid; lock : string }
  | Atomic of { tid : tid; loc : string; kind : atomic_kind; value : int }
  | Access of { tid : tid; loc : string; kind : access_kind }

let pp_event ppf = function
  | Spawn { parent; child; name } ->
      Format.fprintf ppf "t%d spawns t%d (%s)" parent child name
  | Exit { tid } -> Format.fprintf ppf "t%d exits" tid
  | Join { tid; child } -> Format.fprintf ppf "t%d joins t%d" tid child
  | Acquire { tid; lock } -> Format.fprintf ppf "t%d acquires %s" tid lock
  | Release { tid; lock } -> Format.fprintf ppf "t%d releases %s" tid lock
  | Atomic { tid; loc; kind; value } ->
      Format.fprintf ppf "t%d %s %s -> %d" tid
        (match kind with Get -> "gets" | Set -> "sets" | Rmw -> "updates")
        loc value
  | Access { tid; loc; kind } ->
      Format.fprintf ppf "t%d %s %s" tid
        (match kind with Read -> "reads" | Write -> "writes")
        loc

module Vc = struct
  type t = int array

  let empty = [||]
  let get v i = if i >= 0 && i < Array.length v then v.(i) else 0

  let ensure v n =
    if Array.length v >= n then Array.copy v
    else Array.init n (fun i -> get v i)

  let tick v i =
    let v' = ensure v (i + 1) in
    v'.(i) <- v'.(i) + 1;
    v'

  let join a b =
    let n = max (Array.length a) (Array.length b) in
    Array.init n (fun i -> max (get a i) (get b i))

  let leq a b =
    let ok = ref true in
    Array.iteri (fun i x -> if x > get b i then ok := false) a;
    !ok

  let pp ppf v =
    Format.fprintf ppf "[%s]"
      (String.concat ";" (Array.to_list (Array.map string_of_int v)))
end

let thread_names events =
  List.fold_left
    (fun acc ev ->
      match ev with
      | Spawn { child; name; _ } -> (child, name) :: acc
      | Exit _ | Join _ | Acquire _ | Release _ | Atomic _ | Access _ -> acc)
    [ (0, "main") ] events
  |> List.rev

let name_of names tid =
  match List.assoc_opt tid names with
  | Some n -> Printf.sprintf "%s (t%d)" n tid
  | None -> Printf.sprintf "t%d" tid

(* --- vector-clock replay shared by the detectors --- *)

(* Per-location access history for the race check: the last write (with
   the writer's clock) plus every read since, one per thread. *)
type loc_state = {
  mutable last_write : (tid * Vc.t) option;
  mutable reads : (tid * Vc.t) list;
}

let races events =
  let names = thread_names events in
  let clocks : (tid, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let finals : (tid, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let locks : (string, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let atomics : (string, Vc.t) Hashtbl.t = Hashtbl.create 8 in
  let locs : (string, loc_state) Hashtbl.t = Hashtbl.create 8 in
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let findings = ref [] in
  let clock t =
    match Hashtbl.find_opt clocks t with
    | Some c -> c
    | None ->
        let c = Vc.tick Vc.empty t in
        Hashtbl.replace clocks t c;
        c
  in
  let set_clock t c = Hashtbl.replace clocks t c in
  let loc_state l =
    match Hashtbl.find_opt locs l with
    | Some s -> s
    | None ->
        let s = { last_write = None; reads = [] } in
        Hashtbl.add locs l s;
        s
  in
  let report loc kind_a ta kind_b tb =
    if not (Hashtbl.mem reported loc) then begin
      Hashtbl.add reported loc ();
      let verb = function Read -> "read" | Write -> "write" in
      findings :=
        Diagnostic.errorf "race/unsynchronized"
          "unsynchronized %s/%s on %s between %s and %s (no happens-before \
           edge orders them)"
          (verb kind_a) (verb kind_b) loc (name_of names ta) (name_of names tb)
        :: !findings
    end
  in
  List.iter
    (fun ev ->
      match ev with
      | Spawn { parent; child; _ } ->
          let cp = clock parent in
          set_clock child (Vc.tick (Vc.join (clock child) cp) child);
          set_clock parent (Vc.tick cp parent)
      | Exit { tid } -> Hashtbl.replace finals tid (clock tid)
      | Join { tid; child } ->
          let final =
            match Hashtbl.find_opt finals child with
            | Some c -> c
            | None -> clock child
          in
          set_clock tid (Vc.join (clock tid) final)
      | Acquire { tid; lock } -> (
          match Hashtbl.find_opt locks lock with
          | Some lc -> set_clock tid (Vc.join (clock tid) lc)
          | None -> ())
      | Release { tid; lock } ->
          Hashtbl.replace locks lock (clock tid);
          set_clock tid (Vc.tick (clock tid) tid)
      | Atomic { tid; loc; kind; _ } -> (
          let ac =
            match Hashtbl.find_opt atomics loc with
            | Some c -> c
            | None -> Vc.empty
          in
          match kind with
          | Get -> set_clock tid (Vc.join (clock tid) ac)
          | Set ->
              Hashtbl.replace atomics loc (Vc.join ac (clock tid));
              set_clock tid (Vc.tick (clock tid) tid)
          | Rmw ->
              let c = Vc.join (clock tid) ac in
              Hashtbl.replace atomics loc c;
              set_clock tid (Vc.tick c tid))
      | Access { tid; loc; kind } -> (
          let st = loc_state loc in
          let c = clock tid in
          (match st.last_write with
          | Some (tw, wc) when tw <> tid && not (Vc.leq wc c) ->
              report loc Write tw kind tid
          | Some _ | None -> ());
          match kind with
          | Read -> st.reads <- (tid, c) :: List.remove_assoc tid st.reads
          | Write ->
              List.iter
                (fun (tr, rc) ->
                  if tr <> tid && not (Vc.leq rc c) then
                    report loc Read tr Write tid)
                st.reads;
              st.last_write <- Some (tid, c);
              st.reads <- []))
    events;
  List.rev !findings

(* --- lock-order graph --- *)

module Lock_graph = struct
  (* Edge a -> b: some thread acquired b while holding a. *)
  type t = {
    edges : (string * string, unit) Hashtbl.t;
    mutable lock_names : string list;
  }

  let create () = { edges = Hashtbl.create 16; lock_names = [] }

  let note_lock g l =
    if not (List.mem l g.lock_names) then g.lock_names <- l :: g.lock_names

  let add_trace g events =
    let held : (tid, string list) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun ev ->
        match ev with
        | Acquire { tid; lock } ->
            note_lock g lock;
            let hs =
              Option.value ~default:[] (Hashtbl.find_opt held tid)
            in
            List.iter
              (fun h ->
                if not (Hashtbl.mem g.edges (h, lock)) then
                  Hashtbl.add g.edges (h, lock) ())
              hs;
            Hashtbl.replace held tid (lock :: hs)
        | Release { tid; lock } ->
            let hs =
              Option.value ~default:[] (Hashtbl.find_opt held tid)
            in
            let rec drop = function
              | [] -> []
              | h :: tl -> if String.equal h lock then tl else h :: drop tl
            in
            Hashtbl.replace held tid (drop hs)
        | Spawn _ | Exit _ | Join _ | Atomic _ | Access _ -> ())
      events

  let successors g a =
    Hashtbl.fold
      (fun (x, y) () acc -> if String.equal x a then y :: acc else acc)
      g.edges []
    |> List.sort String.compare

  (* One representative cycle through each node found on a back edge. *)
  let cycles g =
    let color : (string, [ `Gray | `Black ]) Hashtbl.t = Hashtbl.create 8 in
    let found = ref [] in
    let rec dfs path node =
      match Hashtbl.find_opt color node with
      | Some `Black -> ()
      | Some `Gray ->
          let rec cycle_from = function
            | [] -> []
            | x :: tl ->
                if String.equal x node then [ x ] else x :: cycle_from tl
          in
          found := List.rev (cycle_from path) :: !found
      | None ->
          Hashtbl.replace color node `Gray;
          List.iter (dfs (node :: path)) (successors g node);
          Hashtbl.replace color node `Black
    in
    List.iter (dfs []) (List.sort String.compare g.lock_names);
    List.rev !found

  let check ?rank g =
    let hierarchy =
      match rank with
      | None -> []
      | Some rank ->
          Hashtbl.fold
            (fun (a, b) () acc ->
              match (rank a, rank b) with
              | Some ra, Some rb when ra >= rb ->
                  Diagnostic.errorf "lock-order/hierarchy"
                    "%s (rank %d) acquired while holding %s (rank %d): lock \
                     ranks must strictly increase along nesting"
                    b rb a ra
                  :: acc
              | _, _ -> acc)
            g.edges []
    in
    let cycles =
      List.map
        (fun cycle ->
          Diagnostic.errorf "lock-order/cycle"
            "cyclic lock acquisition order %s: schedules exist that deadlock"
            (String.concat " -> " (cycle @ [ List.hd cycle ])))
        (cycles g)
    in
    Diagnostic.sort (hierarchy @ cycles)
end

let lock_order ?rank events =
  let g = Lock_graph.create () in
  Lock_graph.add_trace g events;
  Lock_graph.check ?rank g

(* --- shutdown counter checks --- *)

let shutdown ?(initial = 0) ?(completed = true) ~pending_loc events =
  let value = ref initial in
  let negative = ref None in
  List.iter
    (fun ev ->
      match ev with
      | Atomic { tid; loc; kind = Set | Rmw; value = v }
        when String.equal loc pending_loc ->
          value := v;
          if v < 0 && !negative = None then negative := Some (tid, v)
      | Atomic _ | Spawn _ | Exit _ | Join _ | Acquire _ | Release _
      | Access _ ->
          ())
    events;
  let neg =
    match !negative with
    | Some (tid, v) ->
        [
          Diagnostic.errorf "shutdown/pending-negative"
            "in-flight counter %s dropped to %d (t%d): a match was retired \
             without being registered, so shutdown can fire early"
            pending_loc v tid;
        ]
    | None -> []
  in
  let final =
    if completed && !value <> 0 then
      [
        Diagnostic.errorf "shutdown/pending-nonzero"
          "in-flight counter %s is %d after the run completed: matches were \
           registered but never retired (leaked or unprocessed)"
          pending_loc !value;
      ]
    else []
  in
  neg @ final

let analyze ?rank ?pending_loc ?(completed = true) events =
  let shutdown_diags =
    match pending_loc with
    | Some pending_loc -> shutdown ~completed ~pending_loc events
    | None -> []
  in
  Diagnostic.sort (races events @ lock_order ?rank events @ shutdown_diags)
