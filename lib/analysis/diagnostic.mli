(** Structured analyzer findings.

    Every check of the static analyzer reports its findings as
    diagnostics: a severity, a stable machine-readable code (a
    [class/detail] slug such as ["ill-formed/value-on-internal"]), the
    query node concerned (when one is), and a human-readable message.
    [Error]-severity diagnostics identify plans the engines refuse to
    run; [Warning]s flag suspicious-but-executable queries (redundant
    predicates, vocabulary misses on deletable nodes); [Info]s carry
    derived facts such as the static score bound. *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable [class/detail] slug *)
  node : Wp_pattern.Pattern.node_id option;
      (** the query node the finding anchors to, when one does *)
  message : string;
}

val make : ?node:Wp_pattern.Pattern.node_id -> severity -> string -> string -> t
(** [make sev code message]. *)

val errorf :
  ?node:Wp_pattern.Pattern.node_id -> string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val warningf :
  ?node:Wp_pattern.Pattern.node_id -> string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val infof :
  ?node:Wp_pattern.Pattern.node_id -> string ->
  ('a, Format.formatter, unit, t) format4 -> 'a

val severity_label : severity -> string
(** ["error"], ["warning"], ["info"]. *)

val compare : t -> t -> int
(** Errors first, then warnings, then infos; ties by node then code. *)

val sort : t list -> t list

val has_errors : t list -> bool
val errors : t list -> t list

val class_of : t -> string
(** The [class] part of the [class/detail] code. *)

val pp : Format.formatter -> t -> unit
(** One line: [error[code] node q2: message]. *)

val pp_list : Format.formatter -> t list -> unit
