(** Raceway — trace-level concurrency analysis for the multithreaded
    Whirlpool engine.

    The instrumented synchronization layer ({!Whirlpool.Sched}) records
    a totally ordered trace of synchronization events and shared-memory
    accesses as it executes one schedule of the engine.  This module
    analyzes such traces, independent of the engine itself:

    - {e vector-clock race detection} — replay the trace maintaining a
      vector clock per thread, lock and atomic location
      (acquire/release, spawn/join and atomic read-modify-write edges
      define happens-before); two accesses to the same plain location,
      at least one a write, with incomparable clocks are a data race;
    - {e lock-order analysis} — collect the [held -> acquired] nesting
      edges of one or many traces into a graph; a cycle means a
      potential deadlock, and an edge that decreases (or repeats) a
      declared lock rank violates the lock hierarchy;
    - {e shutdown checks} — the engine terminates when an atomic count
      of in-flight partial matches reaches zero; a count observed below
      zero, or nonzero after a completed run, means retire/enqueue
      pairing is broken (early shutdown or leaked matches).

    Findings are reported as {!Diagnostic}s with codes in the [race/],
    [lock-order/] and [shutdown/] classes. *)

type tid = int
(** Thread (fiber) identifier; the main thread is [0]. *)

type atomic_kind = Get | Set | Rmw
type access_kind = Read | Write

type event =
  | Spawn of { parent : tid; child : tid; name : string }
  | Exit of { tid : tid }
  | Join of { tid : tid; child : tid }
  | Acquire of { tid : tid; lock : string }
  | Release of { tid : tid; lock : string }
  | Atomic of { tid : tid; loc : string; kind : atomic_kind; value : int }
      (** [value] is the location's value {e after} the operation. *)
  | Access of { tid : tid; loc : string; kind : access_kind }
      (** A plain (non-atomic) shared-memory access. *)

val pp_event : Format.formatter -> event -> unit

(** Vector clocks over thread ids. *)
module Vc : sig
  type t

  val empty : t
  val get : t -> tid -> int
  val tick : t -> tid -> t
  val join : t -> t -> t

  val leq : t -> t -> bool
  (** Pointwise; [leq a b] means everything [a] has seen, [b] has. *)

  val pp : Format.formatter -> t -> unit
end

val thread_names : event list -> (tid * string) list
(** Names from the [Spawn] events, with [0 -> "main"]. *)

val races : event list -> Diagnostic.t list
(** Vector-clock data-race detection over one trace.  At most one
    finding per location ([race/unsynchronized], error severity). *)

(** Lock-nesting edges accumulated over one or many traces (a cycle may
    need two schedules to exhibit both orders). *)
module Lock_graph : sig
  type t

  val create : unit -> t

  val add_trace : t -> event list -> unit

  val check : ?rank:(string -> int option) -> t -> Diagnostic.t list
  (** [lock-order/hierarchy] for an edge acquiring a lock whose declared
      rank is not strictly above every held lock's, and
      [lock-order/cycle] for each cycle in the accumulated graph. *)
end

val lock_order : ?rank:(string -> int option) -> event list -> Diagnostic.t list
(** One-trace convenience over {!Lock_graph}. *)

val shutdown :
  ?initial:int -> ?completed:bool -> pending_loc:string -> event list ->
  Diagnostic.t list
(** Check the in-flight counter at [pending_loc]:
    [shutdown/pending-negative] if any operation leaves it below zero,
    and — only when [completed] (default [true], pass [false] for runs
    cut short by deadlock or step budget) — [shutdown/pending-nonzero]
    if its final value differs from zero.  [initial] (default 0) is the
    value before the first recorded operation. *)

val analyze :
  ?rank:(string -> int option) -> ?pending_loc:string -> ?completed:bool ->
  event list -> Diagnostic.t list
(** Full single-trace pipeline: {!races}, {!lock_order} and (when
    [pending_loc] is given) {!shutdown}, sorted by severity. *)
