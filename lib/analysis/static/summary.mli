(** Interprocedural call-graph summaries over the repo's typedtrees.

    One summary per named top-level binding (nested module paths
    included, e.g. ["Min_heap.push"]): the names it references, the
    blocking syscalls / allocators it touches directly, the locks it
    acquires, whether it consults a cooperative-stop signal, and its
    {e suspect loops} — [while] loops and self-recursions whose every
    self-call passes syntactically unchanged arguments.  A fixpoint
    saturates the transitive facts along resolved references, carrying
    a readable witness chain for "may block" and "may allocate".

    The Sentinel's interprocedural rules (lock ranks, blocking and
    allocation through calls) and its cancellation-totality check are
    phrased over these summaries; the tables of names and the lock
    hierarchy are injected so this module stays independent of the rule
    definitions.

    Scoped escapes: a [[@wp.allow "rule why"]] at the origin of a fact
    keeps it out of the summary (the justification covers callers too);
    [[@wp.bounded "why"]] marks the loops under it statically bounded.
    Bare [wp.bounded] attributes are collected in [naked_bounded] for
    the caller to report. *)

type tables = {
  blocking : string list;
  allocators : string list;
  stop_names : string list;
      (** ident / record-field last components that count as consulting
          the stop signal ([should_stop], [stopped], ...) *)
  lock_of_text : unit_name:string -> string -> string option;
  helper_lock : unit_name:string -> string -> string option;
  is_helper : string -> bool;
  rank_of : string -> int option;
}

type loop_kind = While_loop | Self_recursion of string

type loop = {
  l_line : int;
  l_kind : loop_kind;
  l_consults : bool;
  l_bounded : bool;
  l_refs : string list;
  l_allowed : string list;
}

type fn = {
  f_unit : string;
  f_path : string;
  f_source : string;
  f_line : int;
  f_hot : bool;
  f_serve_entry : bool;  (** tagged [[@@wp.serve_entry]] *)
  f_refs : string list;
  f_blocks : string list;
  f_allocs : string list;
  f_acquires : (string * int option) list;
  f_consults : bool;
  f_loops : loop list;
  mutable t_blocks : string option;  (** transitive; witness chain *)
  mutable t_allocs : string option;
  mutable t_acquires : (string * int option) list;
  mutable t_consults : bool;
}

type naked_attr = { n_source : string; n_line : int }

type db = {
  fns : (string * string, fn) Hashtbl.t;
  unit_names : (string, unit) Hashtbl.t;
  aliases : (string * string, string) Hashtbl.t;
  mutable naked_bounded : naked_attr list;
}

val build : tables -> Discover.unit_info list -> db
(** Harvest every unit and saturate the transitive facts. *)

val resolve : db -> unit_name:string -> string -> fn option
(** Resolve a referenced name from inside [unit_name] to its summary:
    bare names in the same unit, nested-module paths, top-level module
    aliases, and dune wrapped-library spellings
    ([Whirlpool.Engine.run], [Whirlpool__Server.process],
    [Whirlpool__.Server.process]). *)

val reachable_from_roots :
  db -> is_root:(fn -> bool) -> (string * string, unit) Hashtbl.t
(** Keys of every summary reachable from the root set along resolved
    references. *)

val iter_fns : db -> (fn -> unit) -> unit
