(** The Whirlpool Sentinel: typedtree-level static checks.

    Rules over the repo's own compiled units, each reported as a
    {!Wp_analysis.Diagnostic} error with code [sentinel/<rule>] and a
    [file.ml:LINE:]-prefixed message:

    - [sentinel/lock-rank] — acquisitions resolved against the
      declared hierarchy ({!Wp_serve.Pool.lock_rank}); taking a lock
      of equal or lower rank while one is held is flagged.
    - [sentinel/blocking-under-lock] — [Unix.read]/[write]/[select]/
      [sleepf]/[connect]/[accept]/[recv] inside a held section.
    - [sentinel/clock] — any reference to [Unix.gettimeofday] or
      [Sys.time]; time comes from the monotonic [Clock] modules.
    - [sentinel/hot-alloc] — functions tagged [[@@wp.hot]] must not
      reference a known allocator.
    - [sentinel/lock-leak] — a lock acquisition whose release is not
      guarded by [Fun.protect ~finally].
    - [sentinel/wire-total] — closed nullary variants with
      [_to_string]/[_of_string] pairs must round-trip every
      constructor through distinct wire strings.
    - [sentinel/cancel-total] (interprocedural only) — every suspect
      loop ([while], or a self-recursion whose self-calls never change
      an argument) reachable from [Wp_serve.Service] request handling
      (or a [[@@wp.serve_entry]]-tagged root) must consult the
      cooperative-stop signal or be statically bounded
      ([[@wp.bounded "why"]]).

    With [~interproc:true], the lock-rank, blocking-under-lock and
    hot-alloc rules are additionally re-grounded on call-graph
    summaries ({!Summary}): a call whose callee transitively blocks,
    allocates, or acquires a lower-ranked lock is flagged at the call
    site, with a witness chain in the message.  Without it the checker
    stays lexical and intra-procedural, as in its first release.

    [[@wp.allow "rule justification"]] on an enclosing expression or
    binding suppresses a rule in its scope (at a fact's origin it also
    keeps the fact out of the interprocedural summaries); a missing
    justification is itself a finding ([sentinel/allow]), as is a bare
    [[@wp.bounded]].

    Findings are ordered deterministically by (file, line, rule,
    message), so JSON output diffs are stable in CI. *)

val all_rules : string list

val check_unit :
  ?interproc:bool -> Discover.unit_info -> Wp_analysis.Diagnostic.t list
(** All findings for one unit, deterministically ordered.  With
    [~interproc:true] the unit is summarized on its own, so
    cross-call rules see intra-unit helpers (used by the fixture
    tests); whole-tree scans should use {!run}. *)

val compare_findings :
  Wp_analysis.Diagnostic.t -> Wp_analysis.Diagnostic.t -> int
(** The (file, line, rule, message) order used for all Sentinel
    output. *)

type report = {
  units : int;  (** implementation units checked *)
  diagnostics : Wp_analysis.Diagnostic.t list;
  load_errors : string list;  (** unreadable / non-implementation cmts *)
}

val run : ?dirs:string list -> ?interproc:bool -> root:string -> unit -> report
(** Discover (see {!Discover.find_cmts}), load and check every unit
    under [root].  [~interproc:true] builds whole-program summaries
    first and adds the interprocedural rules and the
    cancellation-totality check. *)
