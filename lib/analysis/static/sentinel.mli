(** The Whirlpool Sentinel: typedtree-level static checks.

    Five rules over the repo's own compiled units, each reported as a
    {!Wp_analysis.Diagnostic} error with code [sentinel/<rule>] and a
    [file.ml:LINE:]-prefixed message:

    - [sentinel/lock-rank] — acquisitions resolved against the
      declared hierarchy ({!Wp_serve.Pool.lock_rank}); taking a lock
      of equal or lower rank while one is held is flagged.
    - [sentinel/blocking-under-lock] — direct
      [Unix.read]/[write]/[select]/[sleepf] inside a held section.
    - [sentinel/clock] — any reference to [Unix.gettimeofday] or
      [Sys.time]; time comes from the monotonic [Clock] modules.
    - [sentinel/hot-alloc] — functions tagged [[@@wp.hot]] must not
      reference a known allocator.
    - [sentinel/lock-leak] — a lock acquisition whose release is not
      guarded by [Fun.protect ~finally].
    - [sentinel/wire-total] — closed nullary variants with
      [_to_string]/[_of_string] pairs must round-trip every
      constructor through distinct wire strings.

    [[@wp.allow "rule justification"]] on an enclosing expression or
    binding suppresses a rule in its scope; a missing justification is
    itself a finding ([sentinel/allow]).

    The checker is lexical and intra-procedural by design: it does not
    chase calls, so a section's footprint is what is written inside
    it.  That keeps findings cheap to confirm and the zero-findings
    state stable. *)

val all_rules : string list

val check_unit : Discover.unit_info -> Wp_analysis.Diagnostic.t list
(** All findings for one unit, sorted. *)

type report = {
  units : int;  (** implementation units checked *)
  diagnostics : Wp_analysis.Diagnostic.t list;
  load_errors : string list;  (** unreadable / non-implementation cmts *)
}

val run : ?dirs:string list -> root:string -> unit -> report
(** Discover (see {!Discover.find_cmts}), load and check every unit
    under [root]. *)
