(* Locating and loading the .cmt files the Sentinel checks.

   Dune drops one .cmt per compiled module under
   [<dir>/.<lib>.objs/byte/]; walking the build tree for them is how
   the Sentinel sees the repo's own typedtrees without re-running the
   type-checker.  Discovery is rooted at a build directory (usually
   [_build/default]) and restricted to the production source trees —
   [test/] is deliberately out so known-bad fixture modules never count
   against the clean-tree gate. *)

let default_dirs = [ "lib"; "bin"; "tools"; "examples"; "bench" ]

let is_dir path = try Sys.is_directory path with Sys_error _ -> false

let rec walk acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
      Array.fold_left
        (fun acc name ->
          let path = Filename.concat dir name in
          if is_dir path then if name = ".git" then acc else walk acc path
          else if Filename.check_suffix name ".cmt" then path :: acc
          else acc)
        acc entries

let find_cmts ?(dirs = default_dirs) root =
  let roots =
    List.filter (fun p -> is_dir p)
      (List.map (fun d -> Filename.concat root d) dirs)
  in
  List.sort String.compare (List.fold_left walk [] roots)

type unit_info = {
  modname : string;  (** e.g. ["Whirlpool__Topk_set"] *)
  source : string;  (** source path recorded in the cmt, for messages *)
  structure : Typedtree.structure;
}

let load path =
  match Cmt_format.read_cmt path with
  | exception exn ->
      Error (Printf.sprintf "%s: cannot read cmt (%s)" path
               (Printexc.to_string exn))
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation structure ->
          let source =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some s -> s
            | None -> cmt.Cmt_format.cmt_modname
          in
          Ok { modname = cmt.Cmt_format.cmt_modname; source; structure }
      | _ -> Error (path ^ ": not an implementation cmt"))
