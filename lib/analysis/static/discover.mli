(** Locating and loading the repo's own [.cmt] typedtree files. *)

val default_dirs : string list
(** The production source trees scanned by default:
    [lib bin tools examples bench] — never [test]. *)

val find_cmts : ?dirs:string list -> string -> string list
(** [find_cmts root] walks [root/<dir>] for every [dir] in [dirs]
    (default {!default_dirs}) and returns the [.cmt] files found, in a
    deterministic (sorted) order.  Directories that do not exist are
    skipped. *)

type unit_info = {
  modname : string;  (** e.g. ["Whirlpool__Topk_set"] *)
  source : string;  (** source path recorded in the cmt, for messages *)
  structure : Typedtree.structure;
}

val load : string -> (unit_info, string) result
(** Read one [.cmt].  [Error] on unreadable files or cmts that do not
    carry an implementation typedtree. *)
