(* The Whirlpool Sentinel: typedtree-level static checks over the
   repo's own compiled units.

   All rules report [Wp_analysis.Diagnostic] errors with codes
   [sentinel/<rule>] and messages prefixed [file.ml:LINE:]:

   - [lock-rank]: lock acquisitions are resolved to the declared
     hierarchy ({!Wp_serve.Pool.lock_rank}, which delegates to
     {!Whirlpool.Race.lock_rank}); taking a lock of equal or lower
     rank while one is held is flagged.
   - [blocking-under-lock]: [Unix.read]/[write]/[select]/[sleepf]/
     [connect]/[accept]/[recv] references inside a held section.
   - [clock]: any reference to [Unix.gettimeofday] or [Sys.time];
     time must come from the monotonic [Clock] modules.
   - [hot-alloc]: functions tagged [[@@wp.hot]] must not reference a
     known allocator.
   - [lock-leak]: a lock acquisition whose release is not guarded by
     [Fun.protect ~finally] — an exception in the section would leave
     the mutex held.  A function whose entire body is the acquisition
     (a lock combinator such as the closures handed to
     [Candidate_cache.create]) is exempt: the discipline applies at
     its call sites.
   - [wire-total]: a closed nullary variant with a [_to_string] /
     [_of_string] pair (or [to_string]/[of_string] for a type [t])
     must round-trip every constructor through distinct wire strings.
   - [cancel-total] (interprocedural runs only): suspect loops on a
     path reachable from [Wp_serve.Service] request handling must
     consult the cooperative-stop signal or be statically bounded.

   Intraprocedural by default: a section's footprint is what is
   written inside it.  With interprocedural summaries enabled
   ({!Summary}), the lock-rank, blocking and hot-alloc rules also
   chase calls — a callee that transitively blocks, allocates or
   acquires a lower-ranked lock is flagged at the call site with a
   witness chain.

   Findings are suppressed by [[@wp.allow "rule justification"]] on an
   enclosing expression or binding; the justification is mandatory and
   its absence is itself a finding ([sentinel/allow]). *)

open Typedtree
module D = Wp_analysis.Diagnostic

let rule_lock_rank = "lock-rank"
let rule_blocking = "blocking-under-lock"
let rule_clock = "clock"
let rule_hot_alloc = "hot-alloc"
let rule_lock_leak = "lock-leak"
let rule_wire_total = "wire-total"
let rule_cancel = "cancel-total"

let all_rules =
  [
    rule_lock_rank;
    rule_blocking;
    rule_clock;
    rule_hot_alloc;
    rule_lock_leak;
    rule_wire_total;
    rule_cancel;
  ]

(* --- rule tables --- *)

let clock_banned = [ "Unix.gettimeofday"; "Sys.time" ]

let blocking_calls =
  [
    "Unix.read";
    "Unix.write";
    "Unix.select";
    "Unix.sleepf";
    "Unix.connect";
    "Unix.accept";
    "Unix.recv";
  ]

(* Idents and record fields whose presence in a loop counts as
   consulting the cooperative-stop signal. *)
let stop_names =
  [ "should_stop"; "stopped"; "stop"; "stopping"; "check_deadline" ]

(* Direct allocators forbidden under [@@wp.hot].  A deliberate
   approximation: record/tuple construction and interprocedural
   allocation are out of scope; the list names the Stdlib entry points
   that show up in profiles. *)
let allocators =
  [
    "Array.copy";
    "Array.append";
    "Array.make";
    "List.append";
    "@";
    "List.concat";
    "List.map";
    "List.mapi";
    "String.concat";
    "String.cat";
    "^";
    "Printf.sprintf";
    "Format.sprintf";
    "Format.asprintf";
  ]

let lock_rank = Wp_serve.Pool.lock_rank

(* --- small helpers --- *)

let line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let norm_path p =
  let s = Path.name p in
  if String.starts_with ~prefix:"Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Render the receiver of a lock operation for identity resolution and
   messages: [t.mutex], [shared.topk_mutex], [cache_mutex], ... *)
let rec render (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Path.last p
  | Texp_field (b, _, lbl) -> render b ^ "." ^ lbl.Types.lbl_name
  | _ -> "?"

(* --- attributes --- *)

let attr_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Parsetree.Pstr_eval
              ( {
                  pexp_desc =
                    Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _));
                  _;
                },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

type allow = { rule : string; justified : bool; aloc : Location.t }

let allows_of (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.txt <> "wp.allow" then None
      else
        let rule, justified =
          match attr_string a with
          | None -> ("", false)
          | Some s -> (
              let s = String.trim s in
              match String.index_opt s ' ' with
              | None -> (s, false)
              | Some i ->
                  let rest = String.sub s i (String.length s - i) in
                  (String.sub s 0 i, String.trim rest <> ""))
        in
        Some { rule; justified; aloc = a.Parsetree.attr_loc })
    attrs

let has_hot (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.Parsetree.attr_name.txt = "wp.hot")
    attrs

(* --- per-unit traversal state --- *)

type ctx = {
  source : string;
  unit_name : string;
  db : Summary.db option;  (* interprocedural summaries, when enabled *)
  mutable diags : D.t list;
  mutable allowed : string list;  (* rules suppressed in current scope *)
  mutable held : (string * int option) list;  (* innermost first *)
  mutable hot : bool;
  mutable exempt : expression list;  (* lock apps that ARE function bodies *)
}

let report ctx ~loc rule msg =
  if not (List.mem rule ctx.allowed) then
    ctx.diags <-
      D.errorf ("sentinel/" ^ rule) "%s:%d: %s" ctx.source (line loc) msg
      :: ctx.diags

let with_allows ctx (attrs : Parsetree.attributes) f =
  match allows_of attrs with
  | [] -> f ()
  | allows ->
      List.iter
        (fun a ->
          if not a.justified then
            ctx.diags <-
              D.errorf "sentinel/allow"
                "%s:%d: [@wp.allow] needs a justification after the rule name"
                ctx.source (line a.aloc)
              :: ctx.diags)
        allows;
      let saved = ctx.allowed in
      ctx.allowed <- List.map (fun a -> a.rule) allows @ saved;
      Fun.protect ~finally:(fun () -> ctx.allowed <- saved) f

(* --- lock identity --- *)

(* Map the rendered receiver text of an acquisition to the runtime
   mutex name the declared hierarchy ranks.  Text heuristics first
   (they also resolve fixture code), then a per-unit table for the
   receivers whose spelling is unit-specific.  Unresolvable locks stay
   unranked: they still open a section (for the blocking and leak
   rules) but never participate in rank comparisons. *)
let lock_name ~unit_name text =
  if contains text "topk" then Some "topk.mutex"
  else if contains text "queue" then Some "queue.*.mutex"
  else if contains text "cache" then Some Whirlpool.Candidate_cache.mutex_name
  else if contains text "pool" then Some "serve.pool.mutex"
  else
    match (unit_name, text) with
    | "Wp_serve__Pool", "t.mutex" -> Some "serve.pool.mutex"
    | "Whirlpool__Engine_mt", "t.mutex" -> Some "queue.*.mutex"
    | "Wp_obs__Obs", "st.mutex" -> Some Wp_obs.Obs.mutex_name
    | "Wp_obs__Registry", "t.mutex" -> Some Wp_obs.Registry.mutex_name
    | _ -> None

(* [with_lock]-style helpers open a section around their last argument;
   the mutex they stand for is unit-specific. *)
let helper_lock ~unit_name name =
  match name with
  | "with_topk" -> Some "topk.mutex"
  | "with_state" -> None
  | "with_lock" -> (
      match unit_name with
      | "Whirlpool__Engine_mt" -> Some "queue.*.mutex"
      | "Wp_serve__Pool" -> Some "serve.pool.mutex"
      | "Wp_obs__Obs" -> Some Wp_obs.Obs.mutex_name
      | "Wp_obs__Registry" -> Some Wp_obs.Registry.mutex_name
      | _ -> None)
  | _ -> None

let is_section_helper name =
  name = "with_lock" || name = "with_state" || name = "with_topk"

(* --- shape recognizers --- *)

(* [Mutex.lock m], [S.lock t.mutex], [t.lock ()]: an application whose
   head is an ident whose last component is exactly [lock], or a field
   access on a [lock] field.  Returns the rendered receiver text. *)
let lock_target (e : expression) =
  match e.exp_desc with
  | Texp_apply (head, args) -> (
      match head.exp_desc with
      | Texp_ident (p, _, _) when Path.last p = "lock" -> (
          match args with
          | (_, Some a) :: _ -> Some (render a)
          | _ -> Some "?")
      | Texp_field (b, _, lbl) when lbl.Types.lbl_name = "lock" ->
          Some (render b ^ ".lock")
      | _ -> None)
  | _ -> None

let rec expr_contains pred (e : expression) =
  pred e
  ||
  match e.exp_desc with
  | Texp_apply (h, args) ->
      expr_contains pred h
      || List.exists
           (function _, Some a -> expr_contains pred a | _, None -> false)
           args
  | Texp_sequence (a, b) -> expr_contains pred a || expr_contains pred b
  | Texp_function { cases; _ } ->
      List.exists (fun c -> expr_contains pred c.c_rhs) cases
  | Texp_let (_, vbs, b) ->
      List.exists (fun vb -> expr_contains pred vb.vb_expr) vbs
      || expr_contains pred b
  | Texp_ifthenelse (c, t, f) ->
      expr_contains pred c || expr_contains pred t
      || (match f with Some f -> expr_contains pred f | None -> false)
  | _ -> false

let contains_unlock e =
  expr_contains
    (fun e ->
      match e.exp_desc with
      | Texp_apply (head, _) -> (
          match head.exp_desc with
          | Texp_ident (p, _, _) -> Path.last p = "unlock"
          | Texp_field (_, _, lbl) -> lbl.Types.lbl_name = "unlock"
          | _ -> false)
      | _ -> false)
    e

(* [Fun.protect ~finally:F BODY] — returns (finally, body). *)
let protect_parts (e : expression) =
  match e.exp_desc with
  | Texp_apply (head, args) -> (
      match head.exp_desc with
      | Texp_ident (p, _, _) when norm_path p = "Fun.protect" ->
          let finally =
            List.find_map
              (function
                | Asttypes.Labelled "finally", Some f -> Some f | _ -> None)
              args
          in
          let body =
            List.fold_left
              (fun acc -> function
                | Asttypes.Nolabel, Some b -> Some b | _ -> acc)
              None args
          in
          Some (finally, body)
      | _ -> None)
  | _ -> None

(* --- rules 1-4: the expression walker --- *)

let check_acquire ctx ~loc name_opt text =
  let display = match name_opt with Some n -> n | None -> text in
  (match Option.map lock_rank name_opt with
  | Some (Some r) ->
      List.iter
        (fun (held_name, held_rank) ->
          match held_rank with
          | Some hr when r <= hr ->
              report ctx ~loc rule_lock_rank
                (Printf.sprintf
                   "acquires %s (rank %d) while holding %s (rank %d); locks \
                    must be taken in increasing rank order"
                   display r held_name hr)
          | _ -> ())
        ctx.held
  | _ -> ());
  (display, Option.join (Option.map lock_rank name_opt))

let with_held ctx entry f =
  let saved = ctx.held in
  ctx.held <- entry :: saved;
  Fun.protect ~finally:(fun () -> ctx.held <- saved) f

let scan_expressions ctx (str : structure) =
  let default = Tast_iterator.default_iterator in
  let visit it (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let n = norm_path p in
        if List.mem n clock_banned then
          report ctx ~loc:e.exp_loc rule_clock
            (n ^ " is forbidden; use the monotonic Clock module")
        else begin
          if ctx.hot && List.mem n allocators then
            report ctx ~loc:e.exp_loc rule_hot_alloc
              (Printf.sprintf "%s allocates inside a [@@wp.hot] function" n);
          if ctx.held <> [] && List.mem n blocking_calls then
            report ctx ~loc:e.exp_loc rule_blocking
              (Printf.sprintf "blocking call %s while holding %s" n
                 (fst (List.hd ctx.held)));
          (* Interprocedural: the same three context rules through the
             callee's transitive summary. *)
          match ctx.db with
          | None -> ()
          | Some db when ctx.hot || ctx.held <> [] -> (
              match Summary.resolve db ~unit_name:ctx.unit_name n with
              | None -> ()
              | Some g ->
                  if ctx.hot && not (List.mem n allocators) then
                    Option.iter
                      (fun w ->
                        report ctx ~loc:e.exp_loc rule_hot_alloc
                          (Printf.sprintf
                             "call %s may allocate inside a [@@wp.hot] \
                              function (%s)"
                             n w))
                      g.Summary.t_allocs;
                  if ctx.held <> [] then begin
                    if not (List.mem n blocking_calls) then
                      Option.iter
                        (fun w ->
                          report ctx ~loc:e.exp_loc rule_blocking
                            (Printf.sprintf
                               "call %s may block while holding %s (%s)" n
                               (fst (List.hd ctx.held))
                               w))
                        g.Summary.t_blocks;
                    List.iter
                      (fun (lname, rank) ->
                        match rank with
                        | None -> ()
                        | Some r ->
                            List.iter
                              (fun (held_name, held_rank) ->
                                match held_rank with
                                | Some hr when r <= hr ->
                                    report ctx ~loc:e.exp_loc rule_lock_rank
                                      (Printf.sprintf
                                         "call %s acquires %s (rank %d) \
                                          while %s (rank %d) is held; locks \
                                          must be taken in increasing rank \
                                          order"
                                         n lname r held_name hr)
                                | _ -> ())
                              ctx.held)
                      g.Summary.t_acquires
                  end)
          | Some _ -> ()
        end
    | Texp_function { cases; _ } ->
        (* A function whose whole body is a lock (or unlock) call is a
           lock combinator, not a critical section. *)
        List.iter
          (fun c ->
            match lock_target c.c_rhs with
            | Some _ -> ctx.exempt <- c.c_rhs :: ctx.exempt
            | None -> ())
          cases;
        default.expr it e
    | Texp_sequence (e1, e2) when lock_target e1 <> None ->
        let text = Option.value (lock_target e1) ~default:"?" in
        let name = lock_name ~unit_name:ctx.unit_name text in
        let entry = check_acquire ctx ~loc:e1.exp_loc name text in
        default.expr it e1;
        (match protect_parts e2 with
        | Some (finally, body) ->
            (match finally with
            | Some f when contains_unlock f -> Option.iter (it.expr it) finally
            | _ ->
                report ctx ~loc:e1.exp_loc rule_lock_leak
                  (Printf.sprintf
                     "%s is locked but Fun.protect's ~finally does not \
                      release it"
                     (fst entry));
                Option.iter (it.expr it) finally);
            with_held ctx entry (fun () ->
                match body with Some b -> it.expr it b | None -> ())
        | None ->
            report ctx ~loc:e1.exp_loc rule_lock_leak
              (Printf.sprintf
                 "%s is locked without Fun.protect guarding its release; an \
                  exception would leave it held"
                 (fst entry));
            with_held ctx entry (fun () -> it.expr it e2))
    | Texp_apply (head, args) -> (
        let helper =
          match head.exp_desc with
          | Texp_ident (p, _, _) when is_section_helper (Path.last p) ->
              Some (Path.last p)
          | _ -> None
        in
        match helper with
        | Some h ->
            let name = helper_lock ~unit_name:ctx.unit_name h in
            let entry = check_acquire ctx ~loc:e.exp_loc name h in
            let body =
              List.fold_left
                (fun acc -> function
                  | Asttypes.Nolabel, Some b -> Some b | _ -> acc)
                None args
            in
            let is_body a =
              match body with Some b -> b == a | None -> false
            in
            default.expr it head;
            List.iter
              (function
                | _, Some a when not (is_body a) -> it.expr it a | _ -> ())
              args;
            with_held ctx entry (fun () ->
                match body with Some b -> it.expr it b | None -> ())
        | None ->
            if lock_target e <> None then begin
              let text = Option.value (lock_target e) ~default:"?" in
              let name = lock_name ~unit_name:ctx.unit_name text in
              let entry = check_acquire ctx ~loc:e.exp_loc name text in
              if not (List.memq e ctx.exempt) then
                report ctx ~loc:e.exp_loc rule_lock_leak
                  (Printf.sprintf
                     "%s is locked without Fun.protect guarding its release; \
                      an exception would leave it held"
                     (fst entry))
            end;
            default.expr it e)
    | _ -> default.expr it e
  in
  let it =
    {
      default with
      Tast_iterator.expr =
        (fun it e -> with_allows ctx e.exp_attributes (fun () -> visit it e));
      value_binding =
        (fun it vb ->
          with_allows ctx vb.vb_attributes (fun () ->
              let saved = ctx.hot in
              if has_hot vb.vb_attributes then ctx.hot <- true;
              Fun.protect
                ~finally:(fun () -> ctx.hot <- saved)
                (fun () -> default.value_binding it vb)));
    }
  in
  it.structure it str

(* --- rule 5: wire-string totality --- *)

let cases_of (e : expression) =
  match e.exp_desc with
  | Texp_function { cases; _ } -> Some cases
  | _ -> None

(* C -> "s" maps; wildcards are legal but noted (they can hide a
   constructor from the exhaustiveness check the compiler would
   otherwise give us). *)
let to_string_map cases =
  List.fold_left
    (fun acc (c : value case) ->
      match acc with
      | None -> None
      | Some (assoc, wild) -> (
          if c.c_guard <> None then None
          else
            match (c.c_lhs.pat_desc, c.c_rhs.exp_desc) with
            | (Tpat_any | Tpat_var _), _ -> Some (assoc, true)
            | ( Tpat_construct (_, cd, [], _),
                Texp_constant (Asttypes.Const_string (s, _, _)) ) ->
                Some ((cd.Types.cstr_name, s) :: assoc, wild)
            | _ -> None))
    (Some ([], false))
    cases

let rec first_constructor (e : expression) =
  match e.exp_desc with
  | Texp_construct (_, cd, args) ->
      let n = cd.Types.cstr_name in
      if n = "Some" then
        match args with [ a ] -> first_constructor a | _ -> None
      else if n = "None" then None
      else Some n
  | _ -> None

let of_string_map cases =
  List.fold_left
    (fun acc (c : value case) ->
      match acc with
      | None -> None
      | Some assoc -> (
          if c.c_guard <> None then None
          else
            match c.c_lhs.pat_desc with
            | Tpat_any | Tpat_var _ -> Some assoc
            | Tpat_constant (Asttypes.Const_string (s, _, _)) -> (
                match first_constructor c.c_rhs with
                | Some ctor -> Some ((s, ctor) :: assoc)
                | None -> Some assoc)
            | _ -> None))
    (Some []) cases

let base_of name suffix =
  if name = suffix then Some "t"
  else if String.ends_with ~suffix:("_" ^ suffix) name then
    Some (String.sub name 0 (String.length name - String.length suffix - 1))
  else None

let nullary_variant (decl : type_declaration) =
  match decl.typ_kind with
  | Ttype_variant cds
    when cds <> []
         && List.for_all
              (fun cd -> match cd.cd_args with Cstr_tuple [] -> true | _ -> false)
              cds ->
      Some (List.map (fun cd -> cd.cd_name.txt) cds)
  | _ -> None

let rec check_rule5 ctx (str : structure) =
  let variants = ref [] in
  let tos = ref [] in
  let ofs = ref [] in
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_type (_, decls) ->
          List.iter
            (fun decl ->
              match nullary_variant decl with
              | Some ctors -> variants := (decl.typ_name.txt, ctors) :: !variants
              | None -> ())
            decls
      | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match vb.vb_pat.pat_desc with
              | Tpat_var (_, name) -> (
                  let allowed =
                    List.exists
                      (fun a -> a.rule = rule_wire_total)
                      (allows_of vb.vb_attributes)
                  in
                  match base_of name.txt "to_string" with
                  | Some base -> (
                      match Option.bind (cases_of vb.vb_expr) to_string_map with
                      | Some (assoc, wild) when assoc <> [] ->
                          tos :=
                            (base, assoc, wild, vb.vb_loc, allowed) :: !tos
                      | _ -> ())
                  | None -> (
                      match base_of name.txt "of_string" with
                      | Some base -> (
                          match
                            Option.bind (cases_of vb.vb_expr) of_string_map
                          with
                          | Some assoc -> ofs := (base, assoc) :: !ofs
                          | None -> ())
                      | None -> ()))
              | _ -> ())
            vbs
      | Tstr_module mb -> check_module ctx mb.mb_expr
      | Tstr_recmodule mbs ->
          List.iter (fun mb -> check_module ctx mb.mb_expr) mbs
      | _ -> ())
    str.str_items;
  List.iter
    (fun (base, to_assoc, wild, loc, allowed) ->
      if not allowed then
        match List.assoc_opt base !ofs with
        | None -> ()
        | Some of_assoc -> (
            let ctors_mapped = List.map fst to_assoc in
            (* the variant this pair serializes: the one declaring every
               mapped constructor *)
            match
              List.find_opt
                (fun (_, ctors) ->
                  List.for_all (fun c -> List.mem c ctors) ctors_mapped)
                !variants
            with
            | None -> ()
            | Some (tname, ctors) ->
                let fname =
                  if base = "t" then "to_string" else base ^ "_to_string"
                in
                let ofname =
                  if base = "t" then "of_string" else base ^ "_of_string"
                in
                if wild then
                  List.iter
                    (fun c ->
                      if not (List.mem c ctors_mapped) then
                        report ctx ~loc rule_wire_total
                          (Printf.sprintf
                             "%s does not map constructor %s of type %s" fname
                             c tname))
                    ctors;
                List.iter
                  (fun (c, s) ->
                    (match
                       List.filter (fun (_, s') -> s' = s) to_assoc
                     with
                    | _ :: _ :: _ ->
                        report ctx ~loc rule_wire_total
                          (Printf.sprintf
                             "%s maps more than one constructor of %s to %S"
                             fname tname s)
                    | _ -> ());
                    match List.assoc_opt s of_assoc with
                    | Some c' when c' = c -> ()
                    | Some c' ->
                        report ctx ~loc rule_wire_total
                          (Printf.sprintf
                             "%s maps %S to %s, so %s does not round-trip"
                             ofname s c' c)
                    | None ->
                        report ctx ~loc rule_wire_total
                          (Printf.sprintf
                             "constructor %s of %s does not round-trip: %s \
                              returns %S but %s does not accept it"
                             c tname fname s ofname))
                  to_assoc))
    !tos

and check_module ctx (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> check_rule5 ctx s
  | Tmod_constraint (me, _, _, _) -> check_module ctx me
  | Tmod_functor (_, body) -> check_module ctx body
  | _ -> ()

(* --- deterministic finding order --- *)

(* Sentinel messages are ["path.ml:LINE: ..."]; order findings by
   (file, line, rule, message) so `wp_cli check --json` output is
   byte-stable across runs and environments.  [Diagnostic.compare]
   alone orders by severity/node/code and leaves same-code findings in
   traversal order. *)
let finding_pos (d : D.t) =
  match String.index_opt d.message ':' with
  | None -> (d.message, 0)
  | Some i -> (
      let file = String.sub d.message 0 i in
      let rest = String.sub d.message (i + 1) (String.length d.message - i - 1) in
      match String.index_opt rest ':' with
      | None -> (file, 0)
      | Some j -> (
          match int_of_string_opt (String.sub rest 0 j) with
          | Some l -> (file, l)
          | None -> (file, 0)))

let compare_findings (a : D.t) (b : D.t) =
  let fa, la = finding_pos a and fb, lb = finding_pos b in
  match String.compare fa fb with
  | 0 -> (
      match Int.compare la lb with
      | 0 -> (
          match String.compare a.D.code b.D.code with
          | 0 -> String.compare a.D.message b.D.message
          | c -> c)
      | c -> c)
  | c -> c

let sort_findings ds = List.sort compare_findings ds

(* --- the cancellation-totality rule --- *)

(* Every suspect loop reachable from Wp_serve.Service request handling
   (or from a [[@@wp.serve_entry]]-tagged root) must consult the
   cooperative-stop signal — directly, through a called summary, or
   anywhere in its enclosing function — or be statically bounded
   ([for], or [[@wp.bounded "why"]]). *)
let service_unit = "Wp_serve__Service"

let totality_findings (db : Summary.db) =
  let reachable =
    Summary.reachable_from_roots db ~is_root:(fun f ->
        f.Summary.f_serve_entry || f.Summary.f_unit = service_unit)
  in
  let diags = ref [] in
  Summary.iter_fns db (fun f ->
      if Hashtbl.mem reachable (f.Summary.f_unit, f.Summary.f_path) then
        List.iter
          (fun (l : Summary.loop) ->
            let consults_via_call =
              List.exists
                (fun r ->
                  match Summary.resolve db ~unit_name:f.Summary.f_unit r with
                  | Some g -> g.Summary.t_consults
                  | None -> false)
                l.Summary.l_refs
            in
            let ok =
              l.Summary.l_bounded || l.Summary.l_consults
              || f.Summary.f_consults || consults_via_call
              || List.mem rule_cancel l.Summary.l_allowed
            in
            if not ok then
              let what =
                match l.Summary.l_kind with
                | Summary.While_loop -> "while loop"
                | Summary.Self_recursion n ->
                    Printf.sprintf "self-recursion %s (arguments unchanged)" n
              in
              diags :=
                D.errorf ("sentinel/" ^ rule_cancel)
                  "%s:%d: %s in %s is on a serve path but neither consults \
                   should_stop nor is statically bounded; a missed deadline \
                   could hang — annotate [@wp.bounded \"why\"] if termination \
                   is structural"
                  f.Summary.f_source l.Summary.l_line what f.Summary.f_path
                :: !diags)
          f.Summary.f_loops);
  List.iter
    (fun (n : Summary.naked_attr) ->
      diags :=
        D.errorf "sentinel/allow"
          "%s:%d: [@wp.bounded] needs a justification for why the loop is \
           bounded"
          n.Summary.n_source n.Summary.n_line
        :: !diags)
    db.Summary.naked_bounded;
  !diags

(* --- entry points --- *)

let summary_tables : Summary.tables =
  {
    Summary.blocking = blocking_calls;
    allocators;
    stop_names;
    lock_of_text = (fun ~unit_name text -> lock_name ~unit_name text);
    helper_lock = (fun ~unit_name name -> helper_lock ~unit_name name);
    is_helper = is_section_helper;
    rank_of = lock_rank;
  }

let check_unit_db ?db (u : Discover.unit_info) =
  let ctx =
    {
      source = u.Discover.source;
      unit_name = u.Discover.modname;
      db;
      diags = [];
      allowed = [];
      held = [];
      hot = false;
      exempt = [];
    }
  in
  scan_expressions ctx u.Discover.structure;
  check_rule5 ctx u.Discover.structure;
  sort_findings (List.rev ctx.diags)

let check_unit ?(interproc = false) (u : Discover.unit_info) =
  if not interproc then check_unit_db u
  else
    let db = Summary.build summary_tables [ u ] in
    sort_findings (check_unit_db ~db u @ totality_findings db)

type report = {
  units : int;
  diagnostics : D.t list;
  load_errors : string list;
}

let run ?dirs ?(interproc = false) ~root () =
  let cmts = Discover.find_cmts ?dirs root in
  let units = ref [] and errors = ref [] in
  List.iter
    (fun path ->
      match Discover.load path with
      | Ok u -> units := u :: !units
      | Error e -> errors := e :: !errors)
    cmts;
  let units = List.rev !units in
  let db = if interproc then Some (Summary.build summary_tables units) else None in
  let diags = List.concat_map (fun u -> check_unit_db ?db u) units in
  let diags =
    match db with Some db -> diags @ totality_findings db | None -> diags
  in
  {
    units = List.length units;
    diagnostics = sort_findings diags;
    load_errors = List.rev !errors;
  }
