(* Interprocedural summaries over the repo's own typedtrees.

   One [fn] record per named top-level binding (module paths included:
   ["Min_heap.push"]), harvested in a single walk per unit:

   - the names it references (potential call edges, resolved lazily
     against the whole universe of loaded units),
   - the blocking syscalls / known allocators it touches directly,
   - the locks it acquires (resolved to the declared hierarchy through
     the closures the Sentinel passes in),
   - whether it consults a cooperative-stop signal ([should_stop] and
     friends), and
   - its suspect loops: [while] loops and self-recursions whose every
     self-call passes syntactically unchanged arguments (so nothing in
     the term obviously shrinks).  [for] loops are bounded by
     construction and never recorded.

   A fixpoint then saturates the transitive facts ([t_blocks],
   [t_allocs], [t_acquires], [t_consults]) along resolved references,
   carrying a human-readable witness chain for the first two.  The
   Sentinel's interprocedural rules and the cancellation-totality check
   are phrased entirely over these summaries.

   Scoped escapes mirror the Sentinel's: a [[@wp.allow "rule why"]] at
   the *origin* of a fact (the allocation, the blocking call, the
   acquisition) keeps it out of the summary — the justification is
   taken to cover the callers too — and [[@wp.bounded "why"]] marks a
   loop (or every loop under a binding) as statically bounded.  A bare
   [wp.bounded] with no justification is recorded and reported by the
   caller. *)

open Typedtree

(* --- what the harvest needs to know from the Sentinel --- *)

type tables = {
  blocking : string list;  (* names whose reference can block *)
  allocators : string list;  (* names whose reference allocates *)
  stop_names : string list;  (* ident/field last components that count
                                as consulting the stop signal *)
  lock_of_text : unit_name:string -> string -> string option;
  helper_lock : unit_name:string -> string -> string option;
  is_helper : string -> bool;
  rank_of : string -> int option;
}

(* --- summaries --- *)

type loop_kind = While_loop | Self_recursion of string

type loop = {
  l_line : int;
  l_kind : loop_kind;
  l_consults : bool;  (* consults a stop signal inside the loop *)
  l_bounded : bool;  (* [for] body, or under [@wp.bounded "..."] *)
  l_refs : string list;  (* names referenced inside the loop *)
  l_allowed : string list;  (* rules [@wp.allow]-ed at the loop *)
}

type fn = {
  f_unit : string;
  f_path : string;  (* dotted path within the unit *)
  f_source : string;
  f_line : int;
  f_hot : bool;
  f_serve_entry : bool;
  f_refs : string list;
  f_blocks : string list;
  f_allocs : string list;
  f_acquires : (string * int option) list;
  f_consults : bool;
  f_loops : loop list;
  (* transitive facts, filled by [saturate] *)
  mutable t_blocks : string option;  (* witness chain *)
  mutable t_allocs : string option;
  mutable t_acquires : (string * int option) list;
  mutable t_consults : bool;
}

type naked_attr = { n_source : string; n_line : int }

type db = {
  fns : (string * string, fn) Hashtbl.t;  (* (unit, path) -> fn *)
  unit_names : (string, unit) Hashtbl.t;
  aliases : (string * string, string) Hashtbl.t;
      (* (unit, local module name) -> target module path *)
  mutable naked_bounded : naked_attr list;
      (* [@wp.bounded] with no justification *)
}

(* --- small shared helpers (kept in sync with the Sentinel's) --- *)

let line (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

let norm_path p =
  let s = Path.name p in
  if String.starts_with ~prefix:"Stdlib." s then
    String.sub s 7 (String.length s - 7)
  else s

let attr_string (a : Parsetree.attribute) =
  match a.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Parsetree.Pstr_eval
              ( {
                  pexp_desc =
                    Parsetree.Pexp_constant (Parsetree.Pconst_string (s, _, _));
                  _;
                },
                _ );
          _;
        };
      ] ->
      Some s
  | _ -> None

let has_attr name (attrs : Parsetree.attributes) =
  List.exists
    (fun (a : Parsetree.attribute) -> a.Parsetree.attr_name.txt = name)
    attrs

(* wp.allow payloads are "rule justification"; we only need the rule
   names here (the Sentinel reports missing justifications). *)
let allow_rules (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.txt <> "wp.allow" then None
      else
        match attr_string a with
        | None -> None
        | Some s -> (
            let s = String.trim s in
            match String.index_opt s ' ' with
            | None -> Some s
            | Some i -> Some (String.sub s 0 i)))
    attrs

(* [@wp.bounded "why"]: [Some true] = justified, [Some false] = bare. *)
let bounded_attr (attrs : Parsetree.attributes) =
  List.find_map
    (fun (a : Parsetree.attribute) ->
      if a.Parsetree.attr_name.txt <> "wp.bounded" then None
      else
        match attr_string a with
        | Some s when String.trim s <> "" -> Some true
        | _ -> Some false)
    attrs

let rec render (e : expression) =
  match e.exp_desc with
  | Texp_ident (p, _, _) -> Path.last p
  | Texp_field (b, _, lbl) -> render b ^ "." ^ lbl.Types.lbl_name
  | _ -> "?"

let lock_target (e : expression) =
  match e.exp_desc with
  | Texp_apply (head, args) -> (
      match head.exp_desc with
      | Texp_ident (p, _, _) when Path.last p = "lock" -> (
          match args with
          | (_, Some a) :: _ -> Some (render a)
          | _ -> Some "?")
      | Texp_field (b, _, lbl) when lbl.Types.lbl_name = "lock" ->
          Some (render b ^ ".lock")
      | _ -> None)
  | _ -> None

(* --- harvest --- *)

(* Formal parameters of a function body, outermost first; [None] for a
   non-variable pattern (e.g. [()]). *)
let rec formals (e : expression) =
  match e.exp_desc with
  | Texp_function { cases = [ c ]; _ } ->
      let name =
        match c.c_lhs.pat_desc with
        | Tpat_var (_, n) -> Some n.Asttypes.txt
        | _ -> None
      in
      let more, body = formals c.c_rhs in
      (name :: more, body)
  | _ -> ([], e)

(* An argument that syntactically cannot differ from the formal it
   feeds: a constant, a nullary constructor, or the formal itself. *)
let unchanged_arg formal (arg : expression) =
  match arg.exp_desc with
  | Texp_constant _ -> true
  | Texp_construct (_, _, []) -> true
  | Texp_ident (p, _, _) -> (
      match formal with Some n -> Path.last p = n | None -> true)
  | _ -> false

(* Does [body] apply [name] with every argument unchanged?  Such a
   self-call makes the recursion loop-shaped: nothing in the term
   shrinks toward a base case. *)
let self_call_unchanged name params (body : expression) =
  let found = ref false in
  let default = Tast_iterator.default_iterator in
  let expr it (e : expression) =
    (match e.exp_desc with
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
      when Path.last p = name && Path.name p = name ->
        let rec check i = function
          | [] -> true
          | (Asttypes.Nolabel, Some a) :: rest ->
              unchanged_arg (List.nth_opt params i |> Option.join) a
              && check (i + 1) rest
          | (_, Some a) :: rest -> unchanged_arg None a && check i rest
          | (_, None) :: rest -> check i rest
        in
        if args <> [] && check 0 args then found := true
    | _ -> ());
    default.expr it e
  in
  let it = { default with Tast_iterator.expr } in
  it.expr it body;
  !found

type loop_acc = {
  mutable a_consults : bool;
  mutable a_refs : string list;
  a_line : int;
  a_kind : loop_kind;
  a_bounded : bool;
  a_allowed : string list;
}

type harvest_state = {
  tables : tables;
  db : db;
  unit_name : string;
  source : string;
  mutable refs : string list;
  mutable blocks : string list;
  mutable allocs : string list;
  mutable acquires : (string * int option) list;
  mutable consults : bool;
  mutable loops : loop list;
  mutable loop_stack : loop_acc list;
  mutable allowed : string list;
  mutable bounded : bool;
}

let finish_loop st acc =
  st.loops <-
    {
      l_line = acc.a_line;
      l_kind = acc.a_kind;
      l_consults = acc.a_consults;
      l_bounded = acc.a_bounded;
      l_refs = acc.a_refs;
      l_allowed = acc.a_allowed;
    }
    :: st.loops

let in_loop st acc f =
  st.loop_stack <- acc :: st.loop_stack;
  Fun.protect
    ~finally:(fun () ->
      st.loop_stack <- List.tl st.loop_stack;
      finish_loop st acc)
    f

let note_ref st name =
  st.refs <- name :: st.refs;
  List.iter (fun acc -> acc.a_refs <- name :: acc.a_refs) st.loop_stack

let note_consult st =
  st.consults <- true;
  List.iter (fun acc -> acc.a_consults <- true) st.loop_stack

let last_component name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

(* Track attribute scopes ([@wp.allow], [@wp.bounded]) around [f]. *)
let with_attrs st (attrs : Parsetree.attributes) f =
  let saved_allowed = st.allowed and saved_bounded = st.bounded in
  st.allowed <- allow_rules attrs @ st.allowed;
  (match bounded_attr attrs with
  | Some justified ->
      st.bounded <- true;
      if not justified then
        st.db.naked_bounded <-
          {
            n_source = st.source;
            n_line =
              (match attrs with
              | a :: _ -> line a.Parsetree.attr_loc
              | [] -> 0);
          }
          :: st.db.naked_bounded
  | None -> ());
  Fun.protect
    ~finally:(fun () ->
      st.allowed <- saved_allowed;
      st.bounded <- saved_bounded)
    f

let scan_body st (body : expression) =
  let default = Tast_iterator.default_iterator in
  let visit it (e : expression) =
    match e.exp_desc with
    | Texp_ident (p, _, _) ->
        let n = norm_path p in
        note_ref st n;
        if
          List.mem n st.tables.blocking
          && not (List.mem "blocking-under-lock" st.allowed)
        then st.blocks <- n :: st.blocks;
        if
          List.mem n st.tables.allocators
          && not (List.mem "hot-alloc" st.allowed)
        then st.allocs <- n :: st.allocs;
        if List.mem (last_component n) st.tables.stop_names then
          note_consult st
    | Texp_field (b, _, lbl) ->
        if List.mem lbl.Types.lbl_name st.tables.stop_names then
          note_consult st;
        default.expr it b
    | Texp_while (cond, wbody) ->
        let acc =
          {
            a_consults = false;
            a_refs = [];
            a_line = line e.exp_loc;
            a_kind = While_loop;
            a_bounded = st.bounded;
            a_allowed = st.allowed;
          }
        in
        in_loop st acc (fun () ->
            it.Tast_iterator.expr it cond;
            it.Tast_iterator.expr it wbody)
    | Texp_let (Asttypes.Recursive, vbs, cont) ->
        List.iter
          (fun vb ->
            with_attrs st vb.vb_attributes (fun () ->
                match vb.vb_pat.pat_desc with
                | Tpat_var (_, name) ->
                    let params, fbody = formals vb.vb_expr in
                    if
                      params <> []
                      && self_call_unchanged name.Asttypes.txt params fbody
                    then
                      let acc =
                        {
                          a_consults = false;
                          a_refs = [];
                          a_line = line vb.vb_loc;
                          a_kind = Self_recursion name.Asttypes.txt;
                          a_bounded = st.bounded;
                          a_allowed = st.allowed;
                        }
                      in
                      in_loop st acc (fun () ->
                          it.Tast_iterator.expr it vb.vb_expr)
                    else it.Tast_iterator.expr it vb.vb_expr
                | _ -> it.Tast_iterator.expr it vb.vb_expr))
          vbs;
        it.Tast_iterator.expr it cont
    | Texp_apply (head, _) ->
        (match head.exp_desc with
        | Texp_ident (p, _, _)
          when st.tables.is_helper (Path.last p)
               && not (List.mem "lock-rank" st.allowed) -> (
            match
              st.tables.helper_lock ~unit_name:st.unit_name (Path.last p)
            with
            | Some name ->
                st.acquires <- (name, st.tables.rank_of name) :: st.acquires
            | None -> ())
        | _ -> ());
        (match lock_target e with
        | Some text when not (List.mem "lock-rank" st.allowed) ->
            let name = st.tables.lock_of_text ~unit_name:st.unit_name text in
            let display = match name with Some n -> n | None -> text in
            let rank = Option.join (Option.map st.tables.rank_of name) in
            st.acquires <- (display, rank) :: st.acquires
        | _ -> ());
        default.expr it e
    | _ -> default.expr it e
  in
  let it =
    {
      default with
      Tast_iterator.expr =
        (fun it e -> with_attrs st e.exp_attributes (fun () -> visit it e));
    }
  in
  it.expr it body

let harvest_binding tables db ~unit_name ~source ~path vb rec_flag =
  match vb.vb_pat.pat_desc with
  | Tpat_var (_, name) ->
      let fpath = String.concat "." (path @ [ name.Asttypes.txt ]) in
      let st =
        {
          tables;
          db;
          unit_name;
          source;
          refs = [];
          blocks = [];
          allocs = [];
          acquires = [];
          consults = false;
          loops = [];
          loop_stack = [];
          allowed = [];
          bounded = false;
        }
      in
      with_attrs st vb.vb_attributes (fun () ->
          (* A top-level [let rec] whose self-calls never change an
             argument is itself a suspect loop. *)
          (match rec_flag with
          | Asttypes.Recursive ->
              let params, fbody = formals vb.vb_expr in
              if
                params <> []
                && self_call_unchanged name.Asttypes.txt params fbody
              then
                let acc =
                  {
                    a_consults = false;
                    a_refs = [];
                    a_line = line vb.vb_loc;
                    a_kind = Self_recursion name.Asttypes.txt;
                    a_bounded = st.bounded;
                    a_allowed = st.allowed;
                  }
                in
                in_loop st acc (fun () -> scan_body st vb.vb_expr)
              else scan_body st vb.vb_expr
          | Asttypes.Nonrecursive -> scan_body st vb.vb_expr);
          let fn =
            {
              f_unit = unit_name;
              f_path = fpath;
              f_source = source;
              f_line = line vb.vb_loc;
              f_hot = has_attr "wp.hot" vb.vb_attributes;
              f_serve_entry = has_attr "wp.serve_entry" vb.vb_attributes;
              f_refs = List.rev st.refs;
              f_blocks = List.rev st.blocks;
              f_allocs = List.rev st.allocs;
              f_acquires = List.rev st.acquires;
              f_consults = st.consults;
              f_loops = List.rev st.loops;
              t_blocks = None;
              t_allocs = None;
              t_acquires = [];
              t_consults = false;
            }
          in
          Hashtbl.replace db.fns (unit_name, fpath) fn)
  | _ -> ()

let rec harvest_structure tables db ~unit_name ~source ~path (str : structure)
    =
  List.iter
    (fun (item : structure_item) ->
      match item.str_desc with
      | Tstr_value (rf, vbs) ->
          List.iter
            (fun vb -> harvest_binding tables db ~unit_name ~source ~path vb rf)
            vbs
      | Tstr_module mb -> (
          match mb.mb_id with
          | Some id ->
              harvest_module tables db ~unit_name ~source
                ~path:(path @ [ Ident.name id ])
                ~name:(Ident.name id) mb.mb_expr
          | None -> ())
      | Tstr_recmodule mbs ->
          List.iter
            (fun mb ->
              match mb.mb_id with
              | Some id ->
                  harvest_module tables db ~unit_name ~source
                    ~path:(path @ [ Ident.name id ])
                    ~name:(Ident.name id) mb.mb_expr
              | None -> ())
            mbs
      | _ -> ())
    str.str_items

and harvest_module tables db ~unit_name ~source ~path ~name
    (me : module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> harvest_structure tables db ~unit_name ~source ~path s
  | Tmod_constraint (me, _, _, _) ->
      harvest_module tables db ~unit_name ~source ~path ~name me
  | Tmod_functor (_, body) ->
      harvest_module tables db ~unit_name ~source ~path ~name body
  | Tmod_ident (p, _) when path = [ name ] ->
      (* top-level [module N = Other.Path]: record the alias so
         [N.f] references resolve through it *)
      Hashtbl.replace db.aliases (unit_name, name) (Path.name p)
  | _ -> ()

(* --- resolution --- *)

let join_units acc comp =
  if acc = "" then comp
  else if String.ends_with ~suffix:"_" acc then acc ^ comp
  else acc ^ "__" ^ comp

let resolve db ~unit_name name =
  let try_key u p = Hashtbl.find_opt db.fns (u, p) in
  let parts = String.split_on_char '.' name in
  let parts =
    match parts with
    | hd :: tl -> (
        match Hashtbl.find_opt db.aliases (unit_name, hd) with
        | Some target -> String.split_on_char '.' target @ tl
        | None -> parts)
    | [] -> parts
  in
  match parts with
  | [] -> None
  | [ p ] -> try_key unit_name p
  | _ -> (
      (* a nested-module path within the same unit... *)
      match try_key unit_name (String.concat "." parts) with
      | Some f -> Some f
      | None ->
          (* ...or a (possibly alias-spelled) other unit *)
          let rec guess acc = function
            | [] | [ _ ] -> None
            | comp :: rest -> (
                let acc = join_units acc comp in
                if Hashtbl.mem db.unit_names acc then
                  match try_key acc (String.concat "." rest) with
                  | Some f -> Some f
                  | None -> guess acc rest
                else guess acc rest)
          in
          guess "" parts)

(* --- the fixpoint --- *)

let short_path fn = fn.f_path

let merge_acquires existing extra =
  List.fold_left
    (fun acc ((name, _) as a) ->
      if List.mem_assoc name acc then acc else a :: acc)
    existing extra

let saturate db =
  Hashtbl.iter
    (fun _ f ->
      (match f.f_blocks with b :: _ -> f.t_blocks <- Some b | [] -> ());
      (match f.f_allocs with a :: _ -> f.t_allocs <- Some a | [] -> ());
      f.t_acquires <- merge_acquires [] f.f_acquires;
      f.t_consults <- f.f_consults)
    db.fns;
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ f ->
        List.iter
          (fun r ->
            match resolve db ~unit_name:f.f_unit r with
            | None -> ()
            | Some g when g == f -> ()
            | Some g ->
                (match (f.t_blocks, g.t_blocks) with
                | None, Some w ->
                    f.t_blocks <- Some (short_path g ^ " -> " ^ w);
                    changed := true
                | _ -> ());
                (match (f.t_allocs, g.t_allocs) with
                | None, Some w ->
                    f.t_allocs <- Some (short_path g ^ " -> " ^ w);
                    changed := true
                | _ -> ());
                let merged = merge_acquires f.t_acquires g.t_acquires in
                if List.length merged <> List.length f.t_acquires then begin
                  f.t_acquires <- merged;
                  changed := true
                end;
                if g.t_consults && not f.t_consults then begin
                  f.t_consults <- true;
                  changed := true
                end)
          f.f_refs)
      db.fns
  done

let build tables (units : Discover.unit_info list) =
  let db =
    {
      fns = Hashtbl.create 512;
      unit_names = Hashtbl.create 64;
      aliases = Hashtbl.create 64;
      naked_bounded = [];
    }
  in
  List.iter
    (fun (u : Discover.unit_info) ->
      Hashtbl.replace db.unit_names u.Discover.modname ())
    units;
  List.iter
    (fun (u : Discover.unit_info) ->
      harvest_structure tables db ~unit_name:u.Discover.modname
        ~source:u.Discover.source ~path:[] u.Discover.structure)
    units;
  saturate db;
  db

(* --- reachability (for the cancellation-totality rule) --- *)

let reachable_from_roots db ~is_root =
  let seen = Hashtbl.create 256 in
  let queue = Queue.create () in
  Hashtbl.iter
    (fun key f -> if is_root f then Queue.add key queue)
    db.fns;
  while not (Queue.is_empty queue) do
    let key = Queue.pop queue in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Hashtbl.find_opt db.fns key with
      | None -> ()
      | Some f ->
          List.iter
            (fun r ->
              match resolve db ~unit_name:f.f_unit r with
              | Some g ->
                  let gk = (g.f_unit, g.f_path) in
                  if not (Hashtbl.mem seen gk) then Queue.add gk queue
              | None -> ())
            f.f_refs
    end
  done;
  seen

let iter_fns db f = Hashtbl.iter (fun _ fn -> f fn) db.fns
