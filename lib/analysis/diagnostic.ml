type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  node : Wp_pattern.Pattern.node_id option;
  message : string;
}

let make ?node severity code message = { severity; code; node; message }

let kmake severity ?node code fmt =
  Format.kasprintf (fun message -> make ?node severity code message) fmt

let errorf ?node code fmt = kmake Error ?node code fmt
let warningf ?node code fmt = kmake Warning ?node code fmt
let infof ?node code fmt = kmake Info ?node code fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Option.compare Int.compare a.node b.node with
      | 0 -> String.compare a.code b.code
      | c -> c)
  | c -> c

let sort ds = List.sort compare ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let errors ds = List.filter (fun d -> d.severity = Error) ds

let class_of d =
  match String.index_opt d.code '/' with
  | Some i -> String.sub d.code 0 i
  | None -> d.code

let pp ppf d =
  Format.fprintf ppf "%s[%s]%t: %s" (severity_label d.severity) d.code
    (fun ppf ->
      match d.node with
      | Some n -> Format.fprintf ppf " node q%d" n
      | None -> ())
    d.message

let pp_list ppf ds =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp ppf d)
    ds;
  Format.pp_close_box ppf ()
