module Pattern = Wp_pattern.Pattern
module Relation = Wp_relax.Relation
module Relaxation = Wp_relax.Relaxation
module Server_spec = Wp_relax.Server_spec
module Synopsis = Wp_stats.Synopsis
module D = Diagnostic

let wildcard = Wp_xml.Index.wildcard

(* --- well-formedness --- *)

(* Characters that the XPath subset cannot express and the matcher
   compares literally — a tag containing them can never have been meant. *)
let valid_tag tag =
  String.length tag > 0
  && (String.equal tag wildcard
     || String.for_all
          (fun c ->
            (not (Char.code c < 0x21)) && not (String.contains "/[]'\"=*," c))
          tag)

let well_formedness pat =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let root = Pattern.root pat in
  List.iter
    (fun i ->
      (match Pattern.parent pat i with
      | None when i <> root ->
          add (D.errorf ~node:i "ill-formed/preorder" "non-root node has no parent")
      | Some p when i = root ->
          add (D.errorf ~node:i "ill-formed/preorder" "the root has parent q%d" p)
      | Some p when p >= i ->
          add
            (D.errorf ~node:i "ill-formed/preorder"
               "parent q%d does not precede q%d: node ids must be preorder ranks"
               p i)
      | None | Some _ -> ());
      let tag = Pattern.tag pat i in
      if not (valid_tag tag) then
        add
          (D.errorf ~node:i "ill-formed/bad-tag" "invalid element tag %S" tag);
      match Pattern.value pat i with
      | Some v when not (Pattern.is_leaf pat i) ->
          add
            (D.errorf ~node:i "ill-formed/value-on-internal"
               "value predicate = %S on a non-leaf query node; content \
                predicates apply to leaves only, so this node can never match"
               v)
      | Some "" ->
          add
            (D.warningf ~node:i "ill-formed/empty-value"
               "empty value predicate matches only empty content")
      | Some _ | None -> ())
    (Pattern.node_ids pat);
  List.rev !ds

(* --- redundancy / subsumption --- *)

let edge_str = function Pattern.Pc -> "/" | Pattern.Ad -> "~"

let rec subtree_key pat i =
  let child_keys =
    List.sort String.compare
      (List.map
         (fun c -> edge_str (Pattern.edge pat c) ^ subtree_key pat c)
         (Pattern.children pat i))
  in
  Printf.sprintf "%s%s(%s)" (Pattern.tag pat i)
    (match Pattern.value pat i with None -> "" | Some v -> "=" ^ v)
    (String.concat "," child_keys)

(* [slot_subsumes ~general:g ~specific:s]: every match providing a
   witness for sibling predicate [s] also provides one for [g] (same
   document node works: servers bind pattern nodes independently, so no
   injectivity is required). *)
let rec slot_subsumes pat ~general:g ~specific:s =
  (Pattern.edge pat g = Pattern.Ad || Pattern.edge pat g = Pattern.edge pat s)
  && (String.equal (Pattern.tag pat g) (Pattern.tag pat s)
     || String.equal (Pattern.tag pat g) wildcard)
  && (match Pattern.value pat g with
     | None -> true
     | Some v -> Pattern.value pat s = Some v)
  && List.for_all
       (fun gc ->
         List.exists
           (fun sc -> slot_subsumes pat ~general:gc ~specific:sc)
           (Pattern.children pat s))
       (Pattern.children pat g)

let redundancy pat =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  List.iter
    (fun n ->
      let slots =
        List.map
          (fun c -> (c, edge_str (Pattern.edge pat c) ^ subtree_key pat c))
          (Pattern.children pat n)
      in
      let rec pairs = function
        | [] -> ()
        | (ci, ki) :: rest ->
            List.iter
              (fun (cj, kj) ->
                if String.equal ki kj then
                  add
                    (D.warningf ~node:cj "redundant/duplicate-predicate"
                       "sibling predicate duplicates q%d: its tf contribution \
                        is counted twice"
                       ci)
                else if slot_subsumes pat ~general:ci ~specific:cj then
                  add
                    (D.warningf ~node:ci "redundant/subsumed-predicate"
                       "predicate is implied by sibling q%d: it never filters \
                        answers and only rescales scores"
                       cj)
                else if slot_subsumes pat ~general:cj ~specific:ci then
                  add
                    (D.warningf ~node:cj "redundant/subsumed-predicate"
                       "predicate is implied by sibling q%d: it never filters \
                        answers and only rescales scores"
                       ci))
              rest;
            pairs rest
      in
      pairs slots)
    (Pattern.node_ids pat);
  List.rev !ds

(* --- plan consistency --- *)

let relation_valid (r : Relation.t) =
  r.min_depth >= 1
  && match r.max_depth with None -> true | Some m -> m >= r.min_depth

let check_relation ~node ~what (r : Relation.t) =
  if relation_valid r then []
  else
    [
      D.errorf ~node "unsatisfiable/contradictory-depth"
        "%s relation %a has contradictory depth bounds: no node pair can \
         satisfy it"
        what Relation.pp r;
    ]

let composed_relation pat ~anc ~desc =
  match Pattern.path_edges pat anc desc with
  | Some (_ :: _ as edges) -> Some (Relation.of_edges edges)
  | Some [] | None -> None

let plan_consistency ~config pat (specs : Server_spec.t array) =
  let n = Pattern.size pat in
  if Array.length specs <> n then
    [
      D.errorf "plan/size-mismatch" "plan carries %d server specs for a %d-node query"
        (Array.length specs) n;
    ]
  else begin
    let root = Pattern.root pat in
    let ds = ref [] in
    let add d = ds := d :: !ds in
    let addl l = List.iter add l in
    Array.iteri
      (fun i (s : Server_spec.t) ->
        if s.node <> i then
          add
            (D.errorf ~node:i "plan/node-id" "spec at index %d names node q%d" i
               s.node);
        if not (String.equal s.tag (Pattern.tag pat i)) then
          add
            (D.errorf ~node:i "plan/tag-mismatch"
               "server tag %S differs from query node tag %S" s.tag
               (Pattern.tag pat i));
        if s.value <> Pattern.value pat i then
          add
            (D.errorf ~node:i "plan/value-mismatch"
               "server value predicate differs from the query node's");
        let expect_optional = i <> root && config.Relaxation.leaf_deletion in
        if s.optional <> expect_optional then
          add
            (D.errorf ~node:i "plan/optional-flag"
               "node is %s under this configuration but the spec says %s"
               (if expect_optional then "deletable" else "mandatory")
               (if s.optional then "deletable" else "mandatory"));
        (* The structural (to-root) predicate. *)
        let c = s.to_root in
        addl (check_relation ~node:i ~what:"structural" c.exact);
        Option.iter
          (fun r -> addl (check_relation ~node:i ~what:"relaxed structural" r))
          c.relaxed;
        if not c.hard then
          add
            (D.errorf ~node:i "plan/hard-flag"
               "the structural predicate must be hard");
        let expect_exact =
          if i = root then Some (Relation.of_edge (Pattern.root_edge pat))
          else composed_relation pat ~anc:root ~desc:i
        in
        (match expect_exact with
        | None ->
            add
              (D.errorf ~node:i "plan/exact-relation"
                 "query node is unreachable from the root")
        | Some expect ->
            if not (Relation.equal c.exact expect) then
              add
                (D.errorf ~node:i "plan/exact-relation"
                   "structural predicate %a differs from the composed pattern \
                    path %a"
                   Relation.pp c.exact Relation.pp expect);
            let expect_relaxed =
              if i = root then
                if config.Relaxation.edge_generalization then
                  Relation.generalize expect
                else expect
              else Relaxation.relax_to_root config expect
            in
            let expect_relaxed =
              if Relation.equal expect_relaxed expect then None
              else Some expect_relaxed
            in
            (match (c.relaxed, expect_relaxed) with
            | None, None -> ()
            | Some a, Some b when Relation.equal a b -> ()
            | _ ->
                add
                  (D.errorf ~node:i "plan/relaxed-relation"
                     "relaxed structural level %s does not match the \
                      configuration's permitted relaxation %s"
                     (match c.relaxed with
                     | None -> "(none)"
                     | Some r -> Relation.to_string r)
                     (match expect_relaxed with
                     | None -> "(none)"
                     | Some r -> Relation.to_string r))));
        (match c.relaxed with
        | Some r when not (Relation.is_subrelation c.exact r) ->
            add
              (D.errorf ~node:i "plan/relaxed-not-weaker"
                 "relaxed level %a does not contain the exact level %a"
                 Relation.pp r Relation.pp c.exact)
        | Some _ | None -> ());
        (* The conditional predicate sequence. *)
        let expected_others =
          List.sort Int.compare
            (List.filter (fun a -> a <> root) (Pattern.ancestors pat i)
            @ Pattern.descendants pat i)
        in
        let actual_others =
          List.sort Int.compare
            (List.map
               (fun (c : Server_spec.conditional) -> c.other)
               s.conditionals)
        in
        if actual_others <> expected_others then
          add
            (D.errorf ~node:i "plan/conditional-set"
               "conditional predicate sequence covers [%s] but the pattern \
                relates this node to [%s]"
               (String.concat ";" (List.map string_of_int actual_others))
               (String.concat ";" (List.map string_of_int expected_others)));
        List.iter
          (fun (c : Server_spec.conditional) ->
            if c.other < 0 || c.other >= n then
              add
                (D.errorf ~node:i "plan/conditional-pair"
                   "conditional references node q%d outside the query" c.other)
            else begin
              let anc, desc = if c.downward then (i, c.other) else (c.other, i) in
              match composed_relation pat ~anc ~desc with
              | None ->
                  add
                    (D.errorf ~node:i "plan/conditional-pair"
                       "conditional towards q%d contradicts the pattern: the \
                        nodes are not in %s position"
                       c.other
                       (if c.downward then "ancestor-descendant"
                        else "descendant-ancestor"))
              | Some expect ->
                  addl (check_relation ~node:i ~what:"conditional" c.exact);
                  Option.iter
                    (fun r ->
                      addl (check_relation ~node:i ~what:"relaxed conditional" r))
                    c.relaxed;
                  if not (Relation.equal c.exact expect) then
                    add
                      (D.errorf ~node:i "plan/exact-relation"
                         "conditional towards q%d tests %a but the pattern \
                          path composes to %a"
                         c.other Relation.pp c.exact Relation.pp expect);
                  let expect_relaxed = Relaxation.relax_internal config expect in
                  let expect_relaxed =
                    if Relation.equal expect_relaxed expect then None
                    else Some expect_relaxed
                  in
                  (match (c.relaxed, expect_relaxed) with
                  | None, None -> ()
                  | Some a, Some b when Relation.equal a b -> ()
                  | _ ->
                      add
                        (D.errorf ~node:i "plan/relaxed-relation"
                           "conditional towards q%d: relaxed level %s does \
                            not match the permitted relaxation %s"
                           c.other
                           (match c.relaxed with
                           | None -> "(none)"
                           | Some r -> Relation.to_string r)
                           (match expect_relaxed with
                           | None -> "(none)"
                           | Some r -> Relation.to_string r)));
                  let expect_hard = not config.Relaxation.subtree_promotion in
                  if c.hard <> expect_hard then
                    add
                      (D.errorf ~node:i "plan/hard-flag"
                         "conditional towards q%d is %s but subtree promotion \
                          makes every internal predicate %s"
                         c.other
                         (if c.hard then "hard" else "soft")
                         (if expect_hard then "hard" else "soft"))
            end)
          s.conditionals)
      specs;
    List.rev !ds
  end

(* --- lattice consistency --- *)

(* Smallest interval relation containing both arguments. *)
let join (a : Relation.t) (b : Relation.t) : Relation.t =
  {
    min_depth = min a.min_depth b.min_depth;
    max_depth =
      (match (a.max_depth, b.max_depth) with
      | Some x, Some y -> Some (max x y)
      | _ -> None);
  }

let lattice_consistency ?(max_lattice = 2000) ~config pat
    (specs : Server_spec.t array) =
  let n = Pattern.size pat in
  if Array.length specs <> n || n < 2 then []
  else
    match Relaxation.closure_labeled ~limit:max_lattice config pat with
    | exception Failure _ ->
        [
          D.infof "plan/lattice-skipped"
            "relaxation lattice exceeds %d patterns; cross-check skipped"
            max_lattice;
        ]
    | lattice ->
        let ds = ref [] in
        let add d = ds := d :: !ds in
        let hull : Relation.t option array = Array.make n None in
        let reported_root = Hashtbl.create 8 in
        let reported_pair = Hashtbl.create 8 in
        List.iter
          (fun ((rp : Pattern.t), (orig : int array)) ->
            let rroot = Pattern.root rp in
            let note o rel =
              hull.(o) <-
                (match hull.(o) with
                | None -> Some rel
                | Some h -> Some (join h rel));
              let bound = Server_spec.candidate_relation specs.(o) in
              if
                (not (Relation.is_subrelation rel bound))
                && not (Hashtbl.mem reported_root o)
              then begin
                Hashtbl.add reported_root o ();
                add
                  (D.errorf ~node:o "plan/lattice-escape"
                     "relaxation %s places this node in relation %a to the \
                      root, outside the server's most relaxed structural \
                      predicate %a"
                     (Pattern.to_string rp) Relation.pp rel Relation.pp bound)
              end
            in
            note orig.(rroot) (Relation.of_edge (Pattern.root_edge rp));
            List.iter
              (fun j ->
                if j <> rroot then begin
                  (match composed_relation rp ~anc:rroot ~desc:j with
                  | Some rel -> note orig.(j) rel
                  | None -> ());
                  (* Hard conditionals must admit every lattice-legal
                     placement of the pair. *)
                  List.iter
                    (fun a ->
                      if a <> rroot then
                        match composed_relation rp ~anc:a ~desc:j with
                        | None -> ()
                        | Some rel -> (
                            let oa = orig.(a) and oj = orig.(j) in
                            match
                              List.find_opt
                                (fun (c : Server_spec.conditional) ->
                                  c.other = oa && not c.downward)
                                specs.(oj).conditionals
                            with
                            | Some c when c.hard ->
                                let bound =
                                  match c.relaxed with
                                  | Some r -> r
                                  | None -> c.exact
                                in
                                if
                                  (not (Relation.is_subrelation rel bound))
                                  && not (Hashtbl.mem reported_pair (oa, oj))
                                then begin
                                  Hashtbl.add reported_pair (oa, oj) ();
                                  add
                                    (D.errorf ~node:oj "plan/lattice-escape"
                                       "relaxation %s relates q%d to q%d by \
                                        %a, outside the hard conditional's \
                                        most relaxed level %a"
                                       (Pattern.to_string rp) oj oa Relation.pp
                                       rel Relation.pp bound)
                                end
                            | Some _ | None -> ()))
                    (Pattern.ancestors rp j)
                end)
              (Pattern.node_ids rp))
          lattice;
        Array.iteri
          (fun o h ->
            match h with
            | None -> ()
            | Some h ->
                let bound = Server_spec.candidate_relation specs.(o) in
                if
                  Relation.is_subrelation h bound
                  && not (Relation.equal h bound)
                then
                  add
                    (D.warningf ~node:o "plan/lattice-slack"
                       "most relaxed structural predicate %a admits depths no \
                        composition of the enabled relaxations reaches \
                        (lattice hull %a)"
                       Relation.pp bound Relation.pp h))
          hull;
        List.rev !ds

(* --- document-dependent checks --- *)

let document_checks ~config syn pat =
  let ds = ref [] in
  let add d = ds := d :: !ds in
  let root = Pattern.root pat in
  let root_tag = Pattern.tag pat root in
  let report ~node sev code fmt =
    Format.kasprintf (fun m -> add (D.make ~node sev code m)) fmt
  in
  (* Severity of a per-node finding: a deletable node degrades the score;
     a mandatory one makes complete answers impossible. *)
  let node_sev = if config.Relaxation.leaf_deletion then D.Warning else D.Error in
  let root_missing = Synopsis.tag_count syn root_tag = 0 in
  if root_missing then
    report ~node:root D.Error "vocabulary/unknown-tag"
      "tag %S does not occur in the document: the query has no candidate \
       answers and every component predicate's idf is zero"
      root_tag;
  List.iter
    (fun i ->
      if i <> root then begin
        let tag = Pattern.tag pat i in
        if (not (String.equal tag wildcard)) && Synopsis.tag_count syn tag = 0
        then
          report ~node:i node_sev "vocabulary/unknown-tag"
            "tag %S does not occur in the document%s" tag
            (if config.Relaxation.leaf_deletion then
               "; the node can only be deleted"
             else "; no complete match exists")
        else if not root_missing then begin
          match composed_relation pat ~anc:root ~desc:i with
          | None -> ()
          | Some exact ->
              let relaxed = Relaxation.relax_to_root config exact in
              if Synopsis.pairs_in_relation syn ~anc:root_tag ~desc:tag relaxed = 0
              then
                report ~node:i node_sev "unsatisfiable/no-pairs"
                  "no (%s, %s) node pair in the document satisfies the \
                   structural predicate even at its most relaxed level %s"
                  root_tag tag (Relation.to_string relaxed)
              else if
                Synopsis.pairs_in_relation syn ~anc:root_tag ~desc:tag exact = 0
              then
                report ~node:i D.Info "score/exact-level-unreachable"
                  "no (%s, %s) node pair satisfies the exact level %s: every \
                   binding of this node scores at the relaxed weight"
                  root_tag tag (Relation.to_string exact)
        end
      end)
    (Pattern.node_ids pat);
  add
    (D.infof "score/static-bound"
       "static score bound: no answer can exceed Σ idf·tf = %.4f"
       (Score_bound.of_pattern ~config syn pat));
  List.rev !ds

(* --- entry points --- *)

let quick ~config ~specs pat =
  well_formedness pat @ plan_consistency ~config pat specs

let check ?synopsis ?specs ?max_lattice ~config pat =
  let specs =
    match specs with Some s -> s | None -> Server_spec.build config pat
  in
  let ds =
    well_formedness pat @ redundancy pat
    @ plan_consistency ~config pat specs
    @ lattice_consistency ?max_lattice ~config pat specs
    @ match synopsis with
      | Some syn -> document_checks ~config syn pat
      | None -> []
  in
  D.sort ds

exception Rejected of Diagnostic.t list

let validate_exn ~config ~specs pat =
  let ds = quick ~config ~specs pat in
  if D.has_errors ds then raise (Rejected (D.errors ds))
