(** Prune-soundness prover for the shipped scoring configurations.

    The engines prune with {!Wp_analysis.Score_bound}'s admissible
    upper bounds and walk {!Wp_relax.Relaxation}'s lattice assuming
    every edge is score-monotone.  Both assumptions reduce to the
    weight-order invariant [0 <= relaxed_weight <= exact_weight]
    (finite) on the {!Wp_score.Score_table} feeding the engine.  This
    module proves that invariant symbolically for every shipped
    normalization under every shipped relaxation config — by interval
    analysis over the construction formulas plus checked lemmas about
    the idf model (nonnegative, antitone in the satisfying-source
    count) and the relaxation operators (they only widen predicates) —
    and emits certificates whose refuted obligations surface as
    [sentinel/prune-unsound] diagnostics.

    {!table_violations} is the concrete counterpart on a built table;
    the [WP_CHECK_INVARIANTS] runtime hook
    ({!Whirlpool.Invariants.check_table}) runs it on every validated
    plan so the symbolic certificate is cross-checked against the
    actual numbers the engine prunes with. *)

type verdict = Proved | Refuted of string

type obligation = {
  oid : string;
  claim : string;
  argument : string;
      (** why the claim holds, or what grid/interval was checked *)
  verdict : verdict;
}

type certificate = { subject : string; obligations : obligation list }

val certified : certificate -> bool
(** Every obligation proved. *)

val certify_normalization :
  ?config:Wp_relax.Relaxation.config ->
  Wp_score.Score_table.normalization ->
  certificate
(** Symbolic certificate for one normalization under one relaxation
    config (default {!Wp_relax.Relaxation.all}). *)

val table_violations : Wp_score.Score_table.t -> string list
(** Concrete violations of [0 <= relaxed_weight <= exact_weight]
    (finite) in a built table, one message per offending entry,
    ordered by node id.  Empty iff the table is prune-sound. *)

val certify_table : ?subject:string -> Wp_score.Score_table.t -> certificate
(** Certificate form of {!table_violations}. *)

val shipped_normalizations : Wp_score.Score_table.normalization list
val shipped_configs : Wp_relax.Relaxation.config list

val check_shipped : unit -> certificate list
(** Certificates for every shipped normalization under every shipped
    relaxation config (the [--prove-bounds] stage). *)

val diagnostics : certificate list -> Diagnostic.t list
(** Refuted obligations as [sentinel/prune-unsound] errors. *)
