(** Static score-bound derivation from the structural synopsis.

    The paper's Definition 4.4 scores an answer as [Σ idf·tf] over the
    query's component predicates.  Both factors are bounded by counts
    the synopsis already holds: [idf(p) ≤ log(count(q0))] as soon as one
    pair satisfies [p] (and the component contributes exactly 0 when
    none can), and [tf(p, n) ≤ min(pairs(p), count(qi))] because one
    candidate cannot witness more satisfying pairs than exist in the
    whole document.  Summing the per-component bounds yields a document-
    level ceiling on any answer's raw score — derivable before running
    anything, and the anchor for the debug-mode invariant that no
    partial match's [max_possible] ever exceeds the static bound. *)

val component_bound :
  Wp_stats.Synopsis.t ->
  anc_tag:string -> target_tag:string -> Wp_relax.Relation.t -> float
(** Upper bound on [idf·tf] of a single component predicate relating an
    [anc_tag] source to a [target_tag] node under the relation. *)

val of_pattern :
  ?config:Wp_relax.Relaxation.config ->
  Wp_stats.Synopsis.t -> Wp_pattern.Pattern.t -> float
(** Upper bound on any candidate's Definition 4.4 score for the
    pattern.  With [config], component relations are first relaxed as
    far as the configuration allows, so the bound also covers scores of
    relaxed matches.  The root component contributes 0 (its source is
    the unique document root, so its idf vanishes whenever any
    candidate exists). *)
