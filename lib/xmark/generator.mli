(** XMark-like synthetic document generator.

    Deterministic substitute for the XMark benchmark generator used in the
    paper's evaluation (Section 6.2.1).  It emits auction-site documents
    with the three structural properties the relaxation experiments rely
    on:

    - {e recursive} elements — [parlist]/[listitem] nest, enabling edge
      generalization (a [parlist] may be a descendant rather than a child
      of [description]);
    - {e optional} elements — [incategory] and [name] may be absent from
      an item, enabling leaf deletion;
    - {e shared} elements — [text] occurs under both [mail] and
      [description] (and inside [listitem]), enabling subtree promotion.

    Documents are calibrated by serialized size in bytes so the paper's
    1Mb/10Mb/50Mb sweep keeps its meaning. *)

type profile = {
  p_description_parlist : float;
      (** probability a [description] holds a [parlist] rather than plain
          [text] *)
  p_parlist_recursion : float;
      (** probability a [listitem] nests a further [parlist] *)
  max_parlist_depth : int;
  min_listitems : int;
  max_listitems : int;
  p_mailbox : float;  (** probability an item has a [mailbox] *)
  min_mails : int;
  max_mails : int;
  p_mail_text : float;  (** probability a [mail] has a [text] body *)
  p_text_bold : float;
  p_text_keyword : float;
  p_text_emph : float;
  p_incategory : float;  (** probability an item has [incategory] refs *)
  max_incategories : int;
  p_item_name : float;  (** probability an item has a [name] *)
  regions : string array;
  people_per_item : float;
      (** [person] elements generated per item, for database bulk that
          exercises idf statistics without matching the benchmark
          queries *)
}

val default_profile : profile

val rich_profile : profile
(** Content-dense items (deep parlists, full mailboxes, frequent
    keywords): the shard that dominates a merged top-k in the sharding
    benchmarks. *)

val sparse_profile : profile
(** Structure-poor items: shards whose speculative matches the
    cross-shard bound prunes. *)

val profile_of_string : string -> profile option
(** ["default"], ["rich"] or ["sparse"]. *)

val item : profile -> Rng.t -> Wp_xml.Tree.t
(** One random [item] element. *)

val generate :
  ?profile:profile -> seed:int -> target_bytes:int -> unit -> Wp_xml.Tree.t
(** A full [site] document of approximately [target_bytes] serialized
    bytes (within one item of the target). *)

val generate_doc :
  ?profile:profile -> seed:int -> target_bytes:int -> unit -> Wp_xml.Doc.t

val tree_bytes : Wp_xml.Tree.t -> int
(** Serialized size of a tree in bytes (same formula as
    {!Wp_xml.Printer.doc_serialized_size}). *)

val tag_histogram : Wp_xml.Doc.t -> (string * int) list
(** Tag occurrence counts, most frequent first — used by tests to check
    the generated structure. *)
