module Tree = Wp_xml.Tree
module Printer = Wp_xml.Printer

type profile = {
  p_description_parlist : float;
  p_parlist_recursion : float;
  max_parlist_depth : int;
  min_listitems : int;
  max_listitems : int;
  p_mailbox : float;
  min_mails : int;
  max_mails : int;
  p_mail_text : float;
  p_text_bold : float;
  p_text_keyword : float;
  p_text_emph : float;
  p_incategory : float;
  max_incategories : int;
  p_item_name : float;
  regions : string array;
  people_per_item : float;
}

let default_profile =
  {
    p_description_parlist = 0.7;
    p_parlist_recursion = 0.35;
    max_parlist_depth = 4;
    min_listitems = 1;
    max_listitems = 3;
    p_mailbox = 0.85;
    min_mails = 0;
    max_mails = 4;
    p_mail_text = 0.8;
    p_text_bold = 0.45;
    p_text_keyword = 0.4;
    p_text_emph = 0.3;
    p_incategory = 0.75;
    max_incategories = 3;
    p_item_name = 0.9;
    regions = [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |];
    people_per_item = 0.4;
  }

(* Skewed profiles for the sharding benchmarks: a corpus mixing one
   [rich_profile] shard with several [sparse_profile] shards gives the
   cross-shard bound real work to do — the rich shard dominates the
   merged top-k and its threshold prunes the sparse shards' speculative
   matches.  A uniform corpus ties every shard's k-th score (the
   structural queries' integer score lattice) and the bound buys
   nothing. *)
let rich_profile =
  {
    default_profile with
    p_description_parlist = 0.9;
    p_parlist_recursion = 0.7;
    max_parlist_depth = 4;
    min_listitems = 2;
    max_listitems = 5;
    p_mailbox = 0.95;
    min_mails = 2;
    max_mails = 5;
    p_mail_text = 0.95;
    p_text_bold = 0.8;
    p_text_keyword = 0.8;
    p_incategory = 0.95;
    max_incategories = 4;
    p_item_name = 0.95;
  }

let sparse_profile =
  {
    default_profile with
    p_description_parlist = 0.03;
    p_parlist_recursion = 0.05;
    max_parlist_depth = 2;
    p_mailbox = 0.1;
    min_mails = 1;
    max_mails = 1;
    p_mail_text = 0.3;
    p_text_bold = 0.05;
    p_text_keyword = 0.05;
    p_incategory = 0.15;
    max_incategories = 1;
    p_item_name = 0.5;
  }

let profile_of_string = function
  | "default" -> Some default_profile
  | "rich" -> Some rich_profile
  | "sparse" -> Some sparse_profile
  | _ -> None

(* A [text] element: prose plus optional bold/keyword/emph children, as in
   XMark's mixed content. *)
let text p rng =
  let markup = ref [] in
  if Rng.bool rng p.p_text_emph then
    markup := Tree.leaf "emph" (Vocabulary.sentence rng ~min_words:1 ~max_words:3) :: !markup;
  if Rng.bool rng p.p_text_keyword then
    markup := Tree.leaf "keyword" (Rng.pick rng Vocabulary.keywords) :: !markup;
  if Rng.bool rng p.p_text_bold then
    markup := Tree.leaf "bold" (Vocabulary.sentence rng ~min_words:1 ~max_words:4) :: !markup;
  Tree.el_v "text" (Vocabulary.sentence rng ~min_words:4 ~max_words:14) !markup

let rec parlist p rng depth =
  let n_items = Rng.in_range rng p.min_listitems p.max_listitems in
  let listitem _ =
    let body =
      if depth < p.max_parlist_depth && Rng.bool rng p.p_parlist_recursion then
        parlist p rng (depth + 1)
      else text p rng
    in
    Tree.el "listitem" [ body ]
  in
  Tree.el "parlist" (List.init n_items listitem)

let description p rng =
  let body =
    if Rng.bool rng p.p_description_parlist then parlist p rng 1
    else text p rng
  in
  Tree.el "description" [ body ]

let mail p rng =
  let body = if Rng.bool rng p.p_mail_text then [ text p rng ] else [] in
  Tree.el "mail"
    (Tree.leaf "from" (Vocabulary.email rng)
    :: Tree.leaf "to" (Vocabulary.email rng)
    :: Tree.leaf "date" (Vocabulary.date rng)
    :: body)

let item p rng =
  let fields = ref [] in
  let add t = fields := t :: !fields in
  if Rng.bool rng p.p_incategory then
    for _ = 1 to Rng.in_range rng 1 p.max_incategories do
      add (Tree.el "incategory" [ Tree.leaf "@category" (Rng.pick rng Vocabulary.categories) ])
    done;
  if Rng.bool rng p.p_mailbox then begin
    let n = Rng.in_range rng p.min_mails p.max_mails in
    add (Tree.el "mailbox" (List.init n (fun _ -> mail p rng)))
  end;
  add (Tree.leaf "shipping" "will ship internationally");
  add (description p rng);
  add (Tree.leaf "payment" "money order, personal check");
  if Rng.bool rng p.p_item_name then
    add (Tree.leaf "name" (Vocabulary.sentence rng ~min_words:2 ~max_words:4));
  add (Tree.leaf "quantity" (string_of_int (Rng.in_range rng 1 9)));
  add (Tree.leaf "location" (Rng.pick rng Vocabulary.cities));
  Tree.el "item" !fields

let person rng =
  Tree.el "person"
    [
      Tree.leaf "name" (Vocabulary.person_name rng);
      Tree.leaf "emailaddress" (Vocabulary.email rng);
      Tree.el "address"
        [
          Tree.leaf "city" (Rng.pick rng Vocabulary.cities);
          Tree.leaf "country" (Vocabulary.sentence rng ~min_words:1 ~max_words:1);
        ];
    ]

let category rng =
  Tree.el "category"
    [
      Tree.leaf "name" (Vocabulary.sentence rng ~min_words:1 ~max_words:3);
      Tree.el "description" [ Tree.el_v "text" (Vocabulary.sentence rng ~min_words:3 ~max_words:8) [] ];
    ]

let rec tree_bytes (t : Tree.t) =
  (* Mirrors Printer.tree_to_buffer, including '@'-children rendered as
     attributes. *)
  let is_attr (c : Tree.t) =
    String.length c.tag > 1 && c.tag.[0] = '@' && c.children = []
  in
  let attrs, elements = List.partition is_attr t.children in
  let attr_bytes =
    List.fold_left
      (fun acc (a : Tree.t) ->
        acc + String.length a.tag + 3
        + match a.value with Some v -> Printer.escaped_length v | None -> 0)
      0 attrs
  in
  let tl = String.length t.tag in
  match (t.value, elements) with
  | None, [] -> tl + 3 + attr_bytes
  | v, cs ->
      (2 * tl) + 5 + attr_bytes
      + (match v with Some s -> Printer.escaped_length s | None -> 0)
      + List.fold_left (fun acc c -> acc + tree_bytes c) 0 cs

let generate ?(profile = default_profile) ~seed ~target_bytes () =
  let rng = Rng.create seed in
  let n_regions = Array.length profile.regions in
  let region_items = Array.make n_regions [] in
  (* Fixed scaffolding: categories plus the site/regions skeleton. *)
  let categories = List.init 16 (fun _ -> category rng) in
  let people = ref [] in
  let skeleton_bytes =
    List.fold_left (fun acc c -> acc + tree_bytes c) 0 categories
    + ((2 * String.length "site") + 5)
    + ((2 * String.length "regions") + 5)
    + ((2 * String.length "categories") + 5)
    + ((2 * String.length "people") + 5)
    + Array.fold_left
        (fun acc r -> acc + (2 * String.length r) + 5)
        0 profile.regions
  in
  let bytes = ref skeleton_bytes in
  let person_budget = ref 0.0 in
  let i = ref 0 in
  while !bytes < target_bytes do
    let it = item profile rng in
    let r = !i mod n_regions in
    region_items.(r) <- it :: region_items.(r);
    bytes := !bytes + tree_bytes it;
    person_budget := !person_budget +. profile.people_per_item;
    while !person_budget >= 1.0 do
      let pe = person rng in
      people := pe :: !people;
      bytes := !bytes + tree_bytes pe;
      person_budget := !person_budget -. 1.0
    done;
    incr i
  done;
  let regions =
    Tree.el "regions"
      (Array.to_list
         (Array.mapi
            (fun r name -> Tree.el name (List.rev region_items.(r)))
            profile.regions))
  in
  Tree.el "site"
    [
      regions;
      Tree.el "categories" categories;
      Tree.el "people" (List.rev !people);
    ]

let generate_doc ?profile ~seed ~target_bytes () =
  Wp_xml.Doc.of_tree (generate ?profile ~seed ~target_bytes ())

let tag_histogram doc =
  let counts = Hashtbl.create 64 in
  for i = 0 to Wp_xml.Doc.size doc - 1 do
    let tag = Wp_xml.Doc.tag doc i in
    Hashtbl.replace counts tag (1 + Option.value (Hashtbl.find_opt counts tag) ~default:0)
  done;
  List.sort
    (fun (_, a) (_, b) -> Stdlib.compare b a)
    (Hashtbl.fold (fun tag c acc -> (tag, c) :: acc) counts [])
