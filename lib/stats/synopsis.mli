(** Structural selectivity synopsis.

    The paper's size-based routing strategy needs, per server, estimates
    of the number of candidate extensions and of how often a partial
    match finds none; it notes these "could be obtained by using work on
    selectivity estimation for XML".  This module is that substrate: a
    one-pass synopsis of a document recording, for every pair of element
    tags (a, d), how many (ancestor, descendant) node pairs exist at
    each depth difference, plus per-tag populations and coverage counts.
    From it, the expected number of [d]-tagged nodes standing in any
    depth-bounded relation below an [a]-tagged node — exactly the
    relations tree-pattern servers test — is answered in O(depth cap),
    without sampling the document.

    Depth differences are capped at {!depth_cap}; deeper pairs are
    accumulated in the final bucket, which keeps the synopsis size
    O(|tags|² · depth_cap) regardless of document size. *)

type t

val depth_cap : int
(** Histogram resolution (16): depth differences ≥ [depth_cap] share the
    last bucket. *)

val build : Wp_xml.Doc.t -> t
(** One traversal of the document; O(nodes · depth) time. *)

val tag_count : t -> string -> int
(** Number of nodes with a given tag ({!Wp_xml.Index.wildcard} counts
    every node). *)

val pair_count : t -> anc:string -> desc:string -> depth:int -> int
(** Number of (ancestor, descendant) pairs with the given tags at
    exactly the given depth difference (capped). *)

val pairs_in_relation : t -> anc:string -> desc:string -> Wp_relax.Relation.t -> int
(** Total number of (ancestor, descendant) pairs with the given tags
    whose depth difference satisfies the relation (buckets beyond
    {!depth_cap} are included conservatively).  Zero means no node pair
    in the document can satisfy a structural predicate carrying this
    relation — the satisfiability test the static analyzer performs. *)

val expected_related :
  t -> anc:string -> desc:string -> Wp_relax.Relation.t -> float
(** Expected number of [desc]-tagged nodes related to one [anc]-tagged
    node by the relation — the fan-out estimate for a server whose
    structural predicate is that relation. *)

val coverage : t -> anc:string -> desc:string -> float
(** Fraction of [anc]-tagged nodes with at least one [desc]-tagged
    proper descendant (at any depth) — an upper bound on the
    non-emptiness probability of any depth-restricted variant. *)

val p_empty : t -> anc:string -> desc:string -> Wp_relax.Relation.t -> float
(** Estimated probability that an [anc]-tagged node has {e no}
    [desc]-tagged node under the relation.  Computed from [1 - coverage]
    for unbounded relations and from a Poisson approximation of the
    expected count for depth-restricted ones, floored by the unbounded
    emptiness. *)

val distinct_tags : t -> string list
val pp : Format.formatter -> t -> unit
