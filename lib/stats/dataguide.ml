module Doc = Wp_xml.Doc
module Pattern = Wp_pattern.Pattern

(* Mutable build-time node: one per distinct label path. *)
type mnode = {
  m_tag : string;
  m_depth : int;
  mutable m_count : int;
  mutable m_min : int;
  mutable m_max : int;
  m_kids : (string, mnode) Hashtbl.t;
  mutable m_order : mnode list;  (* reverse insertion (document) order *)
}

(* Frozen guide: arrays indexed by guide-node preorder id. *)
type t = {
  tags : string array;
  depths : int array;
  counts : int array;
  min_ids : int array;
  max_ids : int array;
  kids : int array array;  (* guide children, document-discovery order *)
  height : int;
  doc_nodes : int;
}

let size t = Array.length t.tags
let height t = t.height
let doc_nodes t = t.doc_nodes
let count t g = t.counts.(g)

let mk_mnode tag depth id =
  {
    m_tag = tag;
    m_depth = depth;
    m_count = 1;
    m_min = id;
    m_max = id;
    m_kids = Hashtbl.create 4;
    m_order = [];
  }

let build doc =
  let n = Doc.size doc in
  if n = 0 then invalid_arg "Dataguide.build: empty document";
  let root = mk_mnode (Doc.tag doc 0) 0 0 in
  (* Path stack: [stack.(d)] is the guide node of the current node's
     ancestor at depth [d]. Depth is bounded by the node count. *)
  let stack = Array.make (max 1 n) root in
  let max_depth = ref 0 in
  for i = 1 to n - 1 do
    let d = Doc.depth doc i in
    if d > !max_depth then max_depth := d;
    let parent = stack.(d - 1) in
    let tag = Doc.tag doc i in
    let m =
      match Hashtbl.find_opt parent.m_kids tag with
      | Some m ->
          m.m_count <- m.m_count + 1;
          if i < m.m_min then m.m_min <- i;
          if i > m.m_max then m.m_max <- i;
          m
      | None ->
          let m = mk_mnode tag d i in
          Hashtbl.add parent.m_kids tag m;
          parent.m_order <- m :: parent.m_order;
          m
    in
    stack.(d) <- m
  done;
  (* Freeze: preorder ids, children in first-discovery order. *)
  let total = ref 0 in
  let rec count_nodes m =
    incr total;
    List.iter count_nodes m.m_order
  in
  count_nodes root;
  let ng = !total in
  let tags = Array.make ng "" in
  let depths = Array.make ng 0 in
  let counts = Array.make ng 0 in
  let min_ids = Array.make ng 0 in
  let max_ids = Array.make ng 0 in
  let kids = Array.make ng [||] in
  let next = ref 0 in
  let rec freeze m =
    let g = !next in
    incr next;
    tags.(g) <- m.m_tag;
    depths.(g) <- m.m_depth;
    counts.(g) <- m.m_count;
    min_ids.(g) <- m.m_min;
    max_ids.(g) <- m.m_max;
    (* Children in first-discovery order; ids must be assigned
       left-to-right, so map explicitly. *)
    let rec in_order = function
      | [] -> []
      | c :: tl ->
          let id = freeze c in
          id :: in_order tl
    in
    kids.(g) <- Array.of_list (in_order (List.rev m.m_order));
    g
  in
  let (_ : int) = freeze root in
  { tags; depths; counts; min_ids; max_ids; kids; height = !max_depth;
    doc_nodes = n }

(* One guide per document for the life of the process — same no-lock
   memo discipline as the plan-level synopsis cache. *)
let cache : (Doc.t, t) Hashtbl.t = Hashtbl.create 4

let of_index idx =
  let doc = Wp_xml.Index.doc idx in
  match Hashtbl.find_opt cache doc with
  | Some g -> g
  | None ->
      let g = build doc in
      Hashtbl.add cache doc g;
      g

type selection = {
  satisfiable : bool;
  depth_ok : bool array array;
  windows : (int * int) array array;
}

let wildcard = Wp_xml.Index.wildcard

(* Everything is admissible: the fallback when the pattern is too wide
   for the bitmask encoding (> 62 nodes — far beyond the paper's
   queries). *)
let select_all t pat =
  let p = Pattern.size pat in
  {
    satisfiable = true;
    depth_ok = Array.init p (fun _ -> Array.make (t.height + 1) true);
    windows = Array.init p (fun _ -> [| (0, t.doc_nodes - 1) |]);
  }

(* Merge sorted inclusive intervals, coalescing overlapping or adjacent
   ones. *)
let merge_windows intervals =
  let sorted = List.sort compare intervals in
  let rec go acc = function
    | [] -> List.rev acc
    | (lo, hi) :: rest -> (
        match acc with
        | (alo, ahi) :: tl when lo <= ahi + 1 ->
            go ((alo, max ahi hi) :: tl) rest
        | _ -> go ((lo, hi) :: acc) rest)
  in
  Array.of_list (go [] sorted)

let select t pat =
  let p = Pattern.size pat in
  let ng = size t in
  if p > 62 then select_all t pat
  else begin
    let pkids = Array.init p (fun q -> Pattern.children pat q) in
    (* Bottom-up over the guide: m.(g) has bit q set when the subtree of
       guide node g can embed the pattern subtree rooted at q with g
       binding q. child_u/sub_u are the unions of m over g's children
       and proper descendants. *)
    let m = Array.make ng 0 in
    let sub_u = Array.make ng 0 in
    let rec up g =
      let cu = ref 0 and su = ref 0 in
      Array.iter
        (fun c ->
          up c;
          cu := !cu lor m.(c);
          su := !su lor m.(c) lor sub_u.(c))
        t.kids.(g);
      sub_u.(g) <- !su;
      let mask = ref 0 in
      for q = 0 to p - 1 do
        let tag = Pattern.tag pat q in
        if String.equal tag t.tags.(g) || String.equal tag wildcard then
          let ok =
            List.for_all
              (fun c ->
                let bit = 1 lsl c in
                match Pattern.edge pat c with
                | Pattern.Pc -> !cu land bit <> 0
                | Pattern.Ad -> !su land bit <> 0)
              pkids.(q)
          in
          if ok then mask := !mask lor (1 lsl q)
      done;
      m.(g) <- !mask
    in
    up 0;
    (* Top-down selection: guide node g participates for pattern node q
       when some embedding consistent with the root edge places q at g. *)
    let selected = Array.init p (fun _ -> Array.make ng false) in
    let rec push q g =
      if not selected.(q).(g) then begin
        selected.(q).(g) <- true;
        List.iter
          (fun c ->
            let bit = 1 lsl c in
            match Pattern.edge pat c with
            | Pattern.Pc ->
                Array.iter
                  (fun g' -> if m.(g') land bit <> 0 then push c g')
                  t.kids.(g)
            | Pattern.Ad ->
                let rec desc g' =
                  Array.iter
                    (fun g'' ->
                      if m.(g'') land bit <> 0 then push c g'';
                      desc g'')
                    t.kids.(g')
                in
                desc g)
          pkids.(q)
      end
    in
    (* Seed pattern roots: the root edge relates the pattern root to the
       document root (guide node 0, depth 0) — Pc pins depth 1, Ad any
       depth >= 1, mirroring the engine's to_root test. *)
    let root_edge = Pattern.root_edge pat in
    for g = 1 to ng - 1 do
      if m.(g) land 1 <> 0 then begin
        let ok =
          match root_edge with
          | Pattern.Pc -> t.depths.(g) = 1
          | Pattern.Ad -> t.depths.(g) >= 1
        in
        if ok then push 0 g
      end
    done;
    let satisfiable = Array.exists Fun.id selected.(0) in
    let depth_ok =
      Array.init p (fun q ->
          let row = Array.make (t.height + 1) false in
          for g = 0 to ng - 1 do
            if selected.(q).(g) then row.(t.depths.(g)) <- true
          done;
          row)
    in
    let windows =
      Array.init p (fun q ->
          let acc = ref [] in
          for g = 0 to ng - 1 do
            if selected.(q).(g) then
              acc := (t.min_ids.(g), t.max_ids.(g)) :: !acc
          done;
          merge_windows !acc)
    in
    { satisfiable; depth_ok; windows }
  end

let pp ppf t =
  for g = 0 to size t - 1 do
    Format.fprintf ppf "%s%s ×%d [%d,%d]@."
      (String.make (2 * t.depths.(g)) ' ')
      t.tags.(g) t.counts.(g) t.min_ids.(g) t.max_ids.(g)
  done
