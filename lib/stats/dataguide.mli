(** Annotated strong dataguide.

    A strong dataguide is the tree of {e distinct root-to-node label
    paths} of a document: two document nodes share a guide node exactly
    when the tag sequences from the root down to them are equal.  Every
    guide node therefore carries a single depth, and the guide is never
    larger than the document (usually far smaller — xmark documents of
    hundreds of thousands of nodes have a few hundred paths).

    Each guide node is annotated with the extent of the document nodes
    on its path: their count and their minimum/maximum preorder ids.
    Because preorder ids order the per-tag streams served by
    {!Wp_xml.Index.ids}, these id windows let a twig join skip whole
    runs of a tag stream whose label paths cannot participate in a
    pattern — the stream-skipping half of the holistic join.

    Building the guide is a single O(nodes) traversal; {!of_index}
    memoizes one guide per document for the life of the process (the
    same discipline as the plan-level synopsis cache). *)

type t

val build : Wp_xml.Doc.t -> t
(** One traversal of the document. *)

val of_index : Wp_xml.Index.t -> t
(** Memoized {!build} on the index's document: repeated calls for the
    same document return the same guide (physical equality). *)

val size : t -> int
(** Number of guide nodes, i.e. distinct root-to-node label paths. *)

val height : t -> int
(** Maximum node depth in the document (root = 0). *)

val doc_nodes : t -> int
(** Size of the document the guide summarizes; the per-guide-node
    counts sum to this. *)

val count : t -> int -> int
(** Number of document nodes on guide node [g]'s path. *)

(** Result of matching a pattern against the guide: per pattern node,
    which document depths and preorder-id windows can hold a node that
    participates in a {e complete exact} embedding of the pattern. *)
type selection = {
  satisfiable : bool;
      (** False when no embedding can exist in this document at all —
          every stream may be skipped outright. *)
  depth_ok : bool array array;
      (** [depth_ok.(q).(d)] — pattern node [q] may bind a document node
          at depth [d].  Row length is [height t + 1]; all-false rows
          accompany [satisfiable = false]. *)
  windows : (int * int) array array;
      (** [windows.(q)] — disjoint, sorted, inclusive preorder-id
          intervals outside of which no candidate for [q] exists. *)
}

val select : t -> Wp_pattern.Pattern.t -> selection
(** Conservative (superset) filter: any document node bound by any
    exact embedding of the pattern is admitted by the returned depths
    and windows.  Value predicates are ignored (they only shrink the
    true candidate set).  O(guide size · pattern size). *)

val pp : Format.formatter -> t -> unit
(** One line per path: depth-indented tag, count, id window. *)
