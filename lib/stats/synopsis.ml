module Doc = Wp_xml.Doc
module Relation = Wp_relax.Relation
module String_set = Set.Make (String)

let depth_cap = 16

(* Per ordered tag pair: histogram of (ancestor, descendant) pair counts
   by depth difference (capped), plus the number of distinct ancestor
   nodes covered (having >= 1 such descendant at any depth). *)
type pair_stats = {
  by_depth : int array;  (* length depth_cap; last bucket is >= cap *)
  mutable covered_ancestors : int;
}

type t = {
  total_nodes : int;
  tag_counts : (string, int) Hashtbl.t;
  pairs : (string * string, pair_stats) Hashtbl.t;
}

let wildcard = Wp_xml.Index.wildcard
let bucket d = if d >= depth_cap then depth_cap - 1 else d

let pair_stats t key =
  match Hashtbl.find_opt t.pairs key with
  | Some ps -> ps
  | None ->
      let ps = { by_depth = Array.make depth_cap 0; covered_ancestors = 0 } in
      Hashtbl.add t.pairs key ps;
      ps

let build doc =
  let t =
    {
      total_nodes = Doc.size doc;
      tag_counts = Hashtbl.create 64;
      pairs = Hashtbl.create 256;
    }
  in
  (* Ancestor tag stack, grown on demand. *)
  let anc_tags = ref (Array.make 64 "") in
  let ensure depth =
    if depth >= Array.length !anc_tags then begin
      let bigger = Array.make (2 * Array.length !anc_tags) "" in
      Array.blit !anc_tags 0 bigger 0 (Array.length !anc_tags);
      anc_tags := bigger
    end
  in
  (* Returns the set of tags occurring in the subtree rooted at [node]
     (node included). *)
  let rec visit node depth =
    let tag = Doc.tag doc node in
    Hashtbl.replace t.tag_counts tag
      (1 + Option.value (Hashtbl.find_opt t.tag_counts tag) ~default:0);
    (* One (ancestor, this) pair per ancestor, bucketed by depth gap. *)
    for i = 0 to depth - 1 do
      let ps = pair_stats t ((!anc_tags).(i), tag) in
      let b = bucket (depth - i - 1) in
      ps.by_depth.(b) <- ps.by_depth.(b) + 1
    done;
    ensure depth;
    (!anc_tags).(depth) <- tag;
    let below =
      List.fold_left
        (fun acc c -> String_set.union acc (visit c (depth + 1)))
        String_set.empty (Doc.children doc node)
    in
    (* Coverage: this node has >= 1 descendant of each tag in [below]. *)
    String_set.iter
      (fun d ->
        let ps = pair_stats t (tag, d) in
        ps.covered_ancestors <- ps.covered_ancestors + 1)
      below;
    String_set.add tag below
  in
  ignore (visit (Doc.root doc) 0);
  t

let tag_count t tag =
  if String.equal tag wildcard then t.total_nodes
  else Option.value (Hashtbl.find_opt t.tag_counts tag) ~default:0

let pair_raw t ~anc ~desc ~depth =
  match Hashtbl.find_opt t.pairs (anc, desc) with
  | None -> 0
  | Some ps -> ps.by_depth.(bucket depth)

let all_tags t = Hashtbl.fold (fun tag _ acc -> tag :: acc) t.tag_counts []

let pair_count t ~anc ~desc ~depth =
  let depth = bucket depth in
  match (String.equal anc wildcard, String.equal desc wildcard) with
  | false, false -> pair_raw t ~anc ~desc ~depth
  | true, false ->
      List.fold_left
        (fun acc a -> acc + pair_raw t ~anc:a ~desc ~depth)
        0 (all_tags t)
  | false, true ->
      List.fold_left
        (fun acc d -> acc + pair_raw t ~anc ~desc:d ~depth)
        0 (all_tags t)
  | true, true ->
      Hashtbl.fold (fun _ ps acc -> acc + ps.by_depth.(depth)) t.pairs 0

let pairs_in_relation t ~anc ~desc (r : Relation.t) =
  (* Depths beyond the cap share the last bucket, so both bounds clamp
     to it: a relation demanding depth > cap still admits every pair
     recorded there (conservative for satisfiability tests). *)
  let lo = min r.min_depth depth_cap in
  let hi =
    match r.max_depth with Some m -> min m depth_cap | None -> depth_cap
  in
  let total = ref 0 in
  for d = lo to hi do
    total := !total + pair_count t ~anc ~desc ~depth:(d - 1)
  done;
  !total

let expected_related t ~anc ~desc r =
  let ancestors = tag_count t anc in
  if ancestors = 0 then 0.0
  else float_of_int (pairs_in_relation t ~anc ~desc r) /. float_of_int ancestors

let coverage t ~anc ~desc =
  let ancestors = tag_count t anc in
  if ancestors = 0 then 0.0
  else if String.equal desc wildcard || String.equal anc wildcard then
    (* Wildcard coverage is not tracked pairwise; approximate with the
       Poisson bound on the expected count. *)
    1.0 -. exp (-.expected_related t ~anc ~desc Relation.descendant)
  else
    let covered =
      match Hashtbl.find_opt t.pairs (anc, desc) with
      | Some ps -> ps.covered_ancestors
      | None -> 0
    in
    float_of_int covered /. float_of_int ancestors

let p_empty t ~anc ~desc r =
  let base = 1.0 -. coverage t ~anc ~desc in
  match r.Relation.max_depth with
  | None when r.Relation.min_depth = 1 -> base
  | _ ->
      (* Depth-restricted: Poisson approximation on the expected count,
         never more optimistic than the unbounded emptiness. *)
      Float.max base (exp (-.expected_related t ~anc ~desc r))

let distinct_tags t = List.sort String.compare (all_tags t)

let pp ppf t =
  Format.fprintf ppf "@[<v>synopsis: %d nodes, %d tags, %d tag pairs@,"
    t.total_nodes (Hashtbl.length t.tag_counts) (Hashtbl.length t.pairs);
  List.iter
    (fun tag -> Format.fprintf ppf "%-16s %d@," tag (tag_count t tag))
    (distinct_tags t);
  Format.fprintf ppf "@]"
