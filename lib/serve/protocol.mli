(** The service's wire vocabulary — JSON requests and replies.

    Every frame on the wire ({!Wire}) carries one JSON object.
    Requests select an operation with ["op"]; replies echo the
    request's ["id"] and carry a {!status}:

    {v
    -> {"op":"query","id":1,"query":"//item[./name]","doc":"a.xml",
        "k":10,"deadline_ms":250}
    <- {"id":1,"status":"ok","elapsed_ms":3.1,
        "answers":[{"doc":"a.xml","root":17,"dewey":"0.3.1",
                    "score":0.91,"progress":2}, ...],
        "stats":{...}}
    v}

    Omitting ["doc"] asks for the top-k merged across the whole corpus.
    [Overloaded] is the admission-control reply — the request was shed,
    not queued; [Partial] flags a top-k cut short by its deadline. *)

type query = {
  id : int;
  query : string;  (** XPath tree-pattern text *)
  doc : string option;  (** catalog name; [None] = merged corpus *)
  k : int option;  (** [None] = service default *)
  deadline_ms : float option;  (** [None] = service default *)
  algo : string option;  (** "whirlpool-s" (default) or "whirlpool-m" *)
  routing : string option;  (** as {!Whirlpool.Strategy.routing_of_string} *)
}

type request =
  | Query of query
  | Metrics of { id : int }  (** service-level metrics snapshot *)
  | Ping of { id : int }
  | Stop of { id : int }  (** graceful shutdown *)

type status = Ok | Partial | Overloaded | Error

val status_to_string : status -> string
val status_of_string : string -> status option

type answer = {
  doc : string;  (** catalog name of the document it came from *)
  root : int;
  dewey : string;
  score : float;
  progress : int;  (** servers the winning match had visited *)
}

type response = {
  id : int;
  status : status;
  error : string option;  (** set when [status = Error] *)
  answers : answer list;
  stats : Wp_json.Json.t option;  (** engine statistics, for queries *)
  metrics : Wp_json.Json.t option;  (** for [Metrics] requests *)
  elapsed_ms : float;  (** server-side handling time *)
}

val ok_response :
  ?answers:answer list ->
  ?stats:Wp_json.Json.t ->
  ?metrics:Wp_json.Json.t ->
  ?partial:bool ->
  id:int ->
  elapsed_ms:float ->
  unit ->
  response

val error_response : id:int -> ?elapsed_ms:float -> string -> response
val overloaded_response : id:int -> response

val request_to_json : request -> Wp_json.Json.t
val request_of_json : Wp_json.Json.t -> (request, string) result
val response_to_json : response -> Wp_json.Json.t
val response_of_json : Wp_json.Json.t -> (response, string) result

val parse_request : string -> (request, string) result
(** [Wp_json.Json.of_string] composed with {!request_of_json}. *)

val parse_response : string -> (response, string) result
