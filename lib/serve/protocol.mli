(** The service's wire vocabulary — JSON requests and replies.

    Every frame on the wire ({!Wire}) carries one JSON object.
    Requests select an operation with ["op"]; replies echo the
    request's ["id"] and carry a {!status}:

    {v
    -> {"op":"query","id":1,"query":"//item[./name]","doc":"a.xml",
        "k":10,"deadline_ms":250}
    <- {"id":1,"status":"ok","elapsed_ms":3.1,
        "answers":[{"doc":"a.xml","root":17,"dewey":"0.3.1",
                    "score":0.91,"progress":2}, ...],
        "stats":{...}}
    v}

    Omitting ["doc"] asks for the top-k merged across the whole corpus.
    [Overloaded] is the admission-control reply — the request was shed,
    not queued; [Partial] flags a top-k cut short by its deadline.

    Failed replies carry both a human-oriented ["error"] message and a
    machine-readable ["code"] from the closed {!error_code} vocabulary;
    clients dispatch on the code, the message is free to change. *)

type query = {
  id : int;
  query : string;  (** XPath tree-pattern text *)
  doc : string option;  (** catalog name; [None] = merged corpus *)
  k : int option;  (** [None] = service default *)
  deadline_ms : float option;  (** [None] = service default *)
  algo : string option;
      (** a {!Whirlpool.Engine.Config.algo} wire name ("whirlpool-s",
          "whirlpool-m", "lockstep", "lockstep-noprun", "twig",
          "twig-seeded"); [None] = the server's configured default.
          Unknown names are a typed [Bad_request]. *)
  routing : string option;  (** as {!Whirlpool.Strategy.routing_of_string} *)
  batch : int option;
      (** bulk-adaptivity width ({!Whirlpool.Engine.Config.t}[.batch]);
          [None] = service default *)
  use_cache : bool option;
      (** candidate-cache toggle; [None] = service default *)
  bound_push : bool option;
      (** cross-shard bound pushing toggle for scattered queries;
          [None] = on (the scatter-only baseline is [Some false]) *)
}

type metrics_format = Json_format | Prometheus

val metrics_format_to_string : metrics_format -> string
val metrics_format_of_string : string -> metrics_format option

val current_version : int
(** Highest protocol version this build speaks (2).  v1 is the
    original buffered request/reply; v2 adds {!request.Hello}
    negotiation and streamed query replies ({!stream_frame}). *)

type request =
  | Query of query
  | Metrics of { id : int; format : metrics_format }
      (** service-level metrics snapshot; [Prometheus] asks for the
          text-exposition page in [metrics_text] instead of the JSON
          object in [metrics] *)
  | Ping of { id : int }
  | Stop of { id : int }  (** graceful shutdown *)
  | Hello of { id : int; version : int }
      (** version negotiation: the client announces the highest
          protocol version it speaks; the reply's [version] carries
          [min (version, current_version)], which governs the
          connection from then on.  A connection that never says hello
          is a v1 connection and gets buffered replies. *)

type status = Ok | Partial | Overloaded | Error

val status_to_string : status -> string
val status_of_string : string -> status option

(** Stable machine-readable failure classes.  Wire strings —
    ["overloaded"], ["bad_request"], ["lint_rejected"],
    ["deadline_expired"], ["internal"] — are part of the protocol and
    never change meaning; new codes may be appended. *)
type error_code =
  | Code_overloaded  (** shed at admission; retry against less load *)
  | Bad_request  (** unparseable query, unknown document/algo/routing, bad k *)
  | Lint_rejected  (** static analysis refused the query as meaningless *)
  | Deadline_expired
      (** attached to [Partial] replies: the top-k was cut short *)
  | Internal  (** unexpected server-side failure *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

val all_error_codes : error_code list
(** Every code, for exhaustive round-trip tests. *)

type answer = {
  doc : string;  (** catalog name of the document it came from *)
  root : int;
  dewey : string;
  score : float;
  progress : int;  (** servers the winning match had visited *)
}

type response = {
  id : int;
  status : status;
  error : string option;  (** set when [status = Error] *)
  code : error_code option;
      (** set for [Error], [Overloaded] and [Partial] replies *)
  answers : answer list;
  stats : Wp_json.Json.t option;  (** engine statistics, for queries *)
  metrics : Wp_json.Json.t option;  (** for [Metrics] with [Json_format] *)
  metrics_text : string option;
      (** Prometheus text exposition, for [Metrics] with [Prometheus] *)
  elapsed_ms : float;  (** server-side handling time *)
  version : int option;
      (** negotiated protocol version, set on [Hello] replies only *)
}

val ok_response :
  ?answers:answer list ->
  ?stats:Wp_json.Json.t ->
  ?metrics:Wp_json.Json.t ->
  ?metrics_text:string ->
  ?partial:bool ->
  ?version:int ->
  id:int ->
  elapsed_ms:float ->
  unit ->
  response
(** [partial = true] sets [status = Partial] and
    [code = Some Deadline_expired]. *)

val error_response :
  id:int -> ?elapsed_ms:float -> ?code:error_code -> string -> response
(** [code] defaults to [Internal]. *)

val overloaded_response : id:int -> response

val request_to_json : request -> Wp_json.Json.t
val request_of_json : Wp_json.Json.t -> (request, string) result
val response_to_json : response -> Wp_json.Json.t
val response_of_json : Wp_json.Json.t -> (response, string) result

val parse_request : string -> (request, string) result
(** [Wp_json.Json.of_string] composed with {!request_of_json}. *)

val parse_response : string -> (response, string) result

(** A protocol-v2 streamed query reply: zero or more [Part] frames —
    one certified answer each, [seq] counting from 0 — closed by a
    terminal [Done] carrying the full {!response}.  The [Done]'s
    [answers] list is the {e complete} top-k (streamed prefix
    included), so a client that ignored the parts still ends with the
    exact buffered reply, and one that consumed them can check
    [parts @ tail = done.answers].  Non-query replies and all v1
    replies are a single [Done]. *)
type stream_frame =
  | Part of { id : int; seq : int; answer : answer }
  | Done of response

val frame_to_json : stream_frame -> Wp_json.Json.t
val frame_of_json : Wp_json.Json.t -> (stream_frame, string) result

val parse_frame : string -> (stream_frame, string) result
(** Parse one frame of a streamed reply.  An object without a ["frame"]
    member is a v1 buffered reply and parses as [Done]. *)
