(** A small bounded LRU cache.

    Backs the catalog's compiled-plan cache: at most [capacity] entries,
    the least-recently-used one evicted on overflow.  Lookups and
    insertions are O(1) (hash table plus an intrusive doubly-linked
    recency list).  Not thread-safe — callers serialize access
    ({!Catalog} holds its own mutex). *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** [capacity >= 1], else [Invalid_argument]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Counts a hit or a miss, and refreshes the entry's recency. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Recency- and counter-neutral membership probe. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or replace, evicting the least-recently-used entry when the
    cache is full.  The new entry becomes most-recent. *)

val find_or_add : ('k, 'v) t -> 'k -> compute:('k -> 'v) -> 'v
(** {!find}, or on a miss [compute], insert and return.  If [compute]
    raises, nothing is inserted. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
val evictions : ('k, 'v) t -> int

val hit_rate : ('k, 'v) t -> float
(** Hits over lookups, in [0, 1]; [0.] before the first lookup (never
    [nan]). *)

val keys : ('k, 'v) t -> 'k list
(** Most-recently-used first. *)
