module Json = Wp_json.Json

let max_frame = 16 * 1024 * 1024

(* --- framing --- *)

let rec write_all fd buf pos len =
  if len > 0 then begin
    let n = Unix.write fd buf pos len in
    write_all fd buf (pos + n) (len - n)
  end

let rec read_all fd buf pos len =
  if len = 0 then true
  else
    match Unix.read fd buf pos len with
    | 0 -> false
    | n -> read_all fd buf (pos + n) (len - n)

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then
    Result.Error (Printf.sprintf "frame too large (%d bytes)" n)
  else begin
    let buf = Bytes.create (4 + n) in
    Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
    Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
    Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
    Bytes.set buf 3 (Char.chr (n land 0xff));
    Bytes.blit_string payload 0 buf 4 n;
    match write_all fd buf 0 (4 + n) with
    | () -> Result.Ok ()
    | exception Unix.Unix_error (e, _, _) ->
        Result.Error (Unix.error_message e)
  end

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_all fd hdr 0 4 with
  | false -> Result.Error "connection closed"
  | true ->
      let b i = Char.code (Bytes.get hdr i) in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > max_frame then
        Result.Error (Printf.sprintf "frame too large (%d bytes)" n)
      else begin
        let payload = Bytes.create n in
        match read_all fd payload 0 n with
        | true -> Result.Ok (Bytes.unsafe_to_string payload)
        | false -> Result.Error "connection closed mid-frame"
        | exception Unix.Unix_error (e, _, _) ->
            Result.Error (Unix.error_message e)
      end
  | exception Unix.Unix_error (e, _, _) -> Result.Error (Unix.error_message e)

(* --- server --- *)

(* Every mutex in this module is held through [with_lock] so an
   exception raised inside a critical section cannot leak the lock
   (Sentinel's exception-safety rule checks for exactly this). *)
let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type server = {
  socket : string;
  listener : Unix.file_descr;
  service : Service.t;
  pool : Pool.Real.t;
  mutex : Mutex.t;
  mutable stopping : bool;
  mutable conns : Unix.file_descr list;
}

let request_stop server =
  let first =
    with_lock server.mutex (fun () ->
        let f = not server.stopping in
        server.stopping <- true;
        f)
  in
  if first then begin
    (* Wake the accept loop: a throwaway self-connection is the
       portable way to unblock a thread parked in [accept]. *)
    match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
    | fd ->
        (try Unix.connect fd (Unix.ADDR_UNIX server.socket)
         with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
    | exception Unix.Unix_error _ -> ()
  end

let pool_stats server = Pool.Real.stats server.pool

let track_conn server fd =
  with_lock server.mutex (fun () -> server.conns <- fd :: server.conns)

let untrack_conn server fd =
  with_lock server.mutex (fun () ->
      server.conns <- List.filter (fun c -> c != fd) server.conns)

let handle_conn server fd =
  let wm = Mutex.create () in
  let drained = Condition.create () in
  let inflight = ref 0 in
  let send resp =
    let payload = Json.to_string (Protocol.response_to_json resp) in
    let r =
      (with_lock wm (fun () -> write_frame fd payload)
      [@wp.allow
        "blocking-under-lock frame writes must be atomic per connection; \
         the per-connection write mutex exists precisely to serialize \
         them, and only this connection's jobs contend on it"])
    in
    ignore (r : (unit, string) result)
  in
  let job_done () =
    with_lock wm (fun () ->
        decr inflight;
        Condition.signal drained)
  in
  let rec loop () =
    match read_frame fd with
    | Result.Error _ -> ()
    | Result.Ok payload -> (
        match Protocol.parse_request payload with
        | Result.Error msg ->
            send (Protocol.error_response ~id:0 ("bad request: " ^ msg));
            loop ()
        | Result.Ok (Protocol.Query q as req) ->
            (* Queries go through the pool: this is where admission
               control applies.  The reader thread never runs one. *)
            with_lock wm (fun () -> incr inflight);
            let accepted =
              Pool.Real.submit server.pool (fun () ->
                  let reply =
                    match Service.handle server.service req with
                    | `Reply r | `Stop r -> r
                  in
                  send reply;
                  job_done ())
            in
            if not accepted then begin
              job_done ();
              Service.record_shed server.service;
              send (Protocol.overloaded_response ~id:q.id)
            end;
            loop ()
        | Result.Ok (Protocol.Hello { id; version = _ }) ->
            (* This tier reads with one blocking thread per connection
               and cannot interleave stream frames with its own reads,
               so it always negotiates down to v1 buffered replies.
               The event tier ({!Event}) speaks v2. *)
            send (Protocol.ok_response ~version:1 ~id ~elapsed_ms:0.0 ());
            loop ()
        | Result.Ok req -> (
            match Service.handle server.service req with
            | `Reply r ->
                send r;
                loop ()
            | `Stop r ->
                send r;
                request_stop server))
  in
  loop ();
  (* Let in-flight replies finish before the descriptor goes away. *)
  with_lock wm (fun () ->
      while !inflight > 0 do
        Condition.wait drained wm
      done);
  (try Unix.close fd with Unix.Unix_error _ -> ());
  untrack_conn server fd

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let serve ?workers ?(queue_depth = 64) ?on_ready ~socket ~service () =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no sigpipe on this platform *));
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  match
    let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try
       Unix.bind listener (Unix.ADDR_UNIX socket);
       Unix.listen listener 64
     with e ->
       (try Unix.close listener with Unix.Unix_error _ -> ());
       raise e);
    listener
  with
  | exception Unix.Unix_error (e, _, arg) ->
      Result.Error
        (Printf.sprintf "cannot listen on %s: %s%s" socket
           (Unix.error_message e)
           (if arg = "" then "" else " (" ^ arg ^ ")"))
  | listener ->
      let server =
        {
          socket;
          listener;
          service;
          pool = Pool.Real.create ~workers ~queue_depth ();
          mutex = Mutex.create ();
          stopping = false;
          conns = [];
        }
      in
      (match on_ready with None -> () | Some f -> f server);
      let handlers = ref [] in
      let stopping () = with_lock server.mutex (fun () -> server.stopping) in
      let rec accept_loop () =
        match Unix.accept server.listener with
        | fd, _ ->
            if stopping () then (
              try Unix.close fd with Unix.Unix_error _ -> ())
            else begin
              track_conn server fd;
              handlers :=
                Thread.create (fun () -> handle_conn server fd) ()
                :: !handlers;
              accept_loop ()
            end
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
        | exception Unix.Unix_error _ -> if not (stopping ()) then accept_loop ()
      in
      accept_loop ();
      (* Drain accepted work first so queued queries still get their
         replies, then unblock any reader parked on a quiet
         connection. *)
      Pool.Real.shutdown server.pool;
      let conns = with_lock server.mutex (fun () -> server.conns) in
      List.iter
        (fun fd ->
          try Unix.shutdown fd Unix.SHUTDOWN_ALL
          with Unix.Unix_error _ -> ())
        conns;
      List.iter Thread.join !handlers;
      (try Unix.close server.listener with Unix.Unix_error _ -> ());
      (try Unix.unlink socket with Unix.Unix_error _ -> ());
      Result.Ok ()
