(** The event-driven serve tier — one [Unix.select] loop multiplexing
    every connection, with the bounded worker pool ({!Pool.Real}) kept
    strictly for query execution.

    Compared with the threaded tier ({!Wire}), which parks one reader
    thread per connection in a blocking [read]:

    - N connections cost one loop thread plus the pool, not N threads;
    - the loop can interleave frames on a connection, so it negotiates
      protocol v2 and streams certified answers as [Part] frames the
      moment the engine's k-th threshold certifies them, closing with a
      [Done] frame carrying the complete reply (v1 clients still get a
      single buffered response);
    - a client that vanishes mid-stream or mid-frame is detected at the
      next loop round: its fd is closed immediately, the in-flight run
      is cancelled through the engine's [should_stop], and the
      connection slot is reclaimed once the run drains — no leaked
      socket, no stuck worker;
    - an optional HTTP/JSON gateway shares the same loop: [GET
      /healthz], [GET /metrics] (Prometheus exposition), [GET
      /metrics.json] and [POST /query] (the wire query object, [op] and
      [id] optional), one request per connection, [503] when the pool
      sheds.

    Control operations (ping, metrics, hello, stop) are answered inline
    by the loop thread, so a saturated pool never makes the service
    unobservable.  Workers never touch sockets: replies and stream
    frames are appended to a per-connection outbox under its mutex and
    a self-pipe write wakes the select, which flushes writable sockets
    outside any lock. *)

type server

val serve :
  ?workers:int ->
  ?queue_depth:int ->
  ?http:int ->
  ?on_ready:(server -> unit) ->
  socket:string ->
  service:Service.t ->
  unit ->
  (unit, string) result
(** Bind [socket] (an existing socket file is replaced) and run the
    event loop until a [Stop] request or {!request_stop}; blocks the
    calling thread for the server's lifetime.  [on_ready] runs once the
    listeners are up, before the loop starts.  [http] additionally
    binds the HTTP/JSON gateway on [127.0.0.1:http] ([0] picks an
    ephemeral port — read it back with {!http_port}).  [workers]
    (default [Domain.recommended_domain_count - 1]) and [queue_depth]
    (default 64) size the pool.  [Error] when a listener cannot be
    bound. *)

val request_stop : server -> unit
(** Begin a graceful shutdown from any thread (idempotent): stop
    accepting, shed new queries, drain in-flight runs and outboxes,
    then close every fd and remove the socket file. *)

val conn_count : server -> int
(** Number of connection slots currently held, including vanished
    clients whose in-flight runs have not yet drained.  Exposed so the
    fd-hygiene tests can assert reclamation. *)

val http_port : server -> int option
(** The bound HTTP port, once listening ([None] without [?http]). *)

val pool_stats : server -> Pool.stats
