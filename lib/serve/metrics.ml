type t = {
  mutex : Mutex.t;
  started_ns : int64;
  mutable ok : int;
  mutable partial : int;
  mutable errors : int;
  mutable shed : int;
  ring : float array;  (* latency samples, ms *)
  mutable ring_len : int;  (* samples stored, <= window *)
  mutable ring_pos : int;  (* next write position *)
  ttfa_ring : float array;  (* time-to-first-answer samples, ms *)
  mutable ttfa_len : int;
  mutable ttfa_pos : int;
  mutable latency_hist : Wp_obs.Registry.histogram option;
      (* set by [register]; observed on every completed request *)
}

let window = 8192

let create () =
  {
    mutex = Mutex.create ();
    started_ns = Whirlpool.Clock.now_ns ();
    ok = 0;
    partial = 0;
    errors = 0;
    shed = 0;
    ring = Array.make window 0.0;
    ring_len = 0;
    ring_pos = 0;
    ttfa_ring = Array.make window 0.0;
    ttfa_len = 0;
    ttfa_pos = 0;
    latency_hist = None;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~status ~latency_ms =
  let hist =
    with_lock t (fun () ->
        (match status with
        | `Ok -> t.ok <- t.ok + 1
        | `Partial -> t.partial <- t.partial + 1
        | `Error -> t.errors <- t.errors + 1);
        t.ring.(t.ring_pos) <- latency_ms;
        t.ring_pos <- (t.ring_pos + 1) mod window;
        if t.ring_len < window then t.ring_len <- t.ring_len + 1;
        t.latency_hist)
  in
  (* Observe outside our mutex: the registry lock is leaf-only and the
     two must never nest in a fixed order anyway. *)
  match hist with
  | None -> ()
  | Some h -> Wp_obs.Registry.observe h latency_ms

let record_shed t = with_lock t (fun () -> t.shed <- t.shed + 1)

let record_ttfa t ~ms =
  with_lock t (fun () ->
      t.ttfa_ring.(t.ttfa_pos) <- ms;
      t.ttfa_pos <- (t.ttfa_pos + 1) mod window;
      if t.ttfa_len < window then t.ttfa_len <- t.ttfa_len + 1)

(* Nearest-rank percentile: the ceil(q*n)-th smallest sample. *)
let percentile samples q =
  match samples with
  | [] -> 0.0
  | _ ->
      let arr = Array.of_list samples in
      Array.sort Float.compare arr;
      let n = Array.length arr in
      let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
      arr.(max 0 (min (n - 1) (rank - 1)))

let snapshot t ~extra =
  let open Wp_json.Json in
  let ok, partial, errors, shed, samples, ttfa =
    with_lock t (fun () ->
        ( t.ok,
          t.partial,
          t.errors,
          t.shed,
          Array.to_list (Array.sub t.ring 0 t.ring_len),
          Array.to_list (Array.sub t.ttfa_ring 0 t.ttfa_len) ))
  in
  let requests = ok + partial + errors in
  let uptime_s =
    Int64.to_float (Int64.sub (Whirlpool.Clock.now_ns ()) t.started_ns) /. 1e9
  in
  let qps = if uptime_s > 0.0 then float_of_int requests /. uptime_s else 0.0 in
  let mean =
    match samples with
    | [] -> 0.0
    | _ ->
        List.fold_left ( +. ) 0.0 samples
        /. float_of_int (List.length samples)
  in
  let max_ms = List.fold_left Float.max 0.0 samples in
  Obj
    ([
       ("uptime_s", Float uptime_s);
       ("requests", Int requests);
       ("ok", Int ok);
       ("partial", Int partial);
       ("errors", Int errors);
       ("shed", Int shed);
       ("qps", Float qps);
       ( "latency_ms",
         Obj
           [
             ("samples", Int (List.length samples));
             ("p50", Float (percentile samples 0.50));
             ("p95", Float (percentile samples 0.95));
             ("p99", Float (percentile samples 0.99));
             ("max", Float max_ms);
             ("mean", Float mean);
           ] );
       ( "ttfa_ms",
         Obj
           [
             ("samples", Int (List.length ttfa));
             ("p50", Float (percentile ttfa 0.50));
             ("p95", Float (percentile ttfa 0.95));
             ("p99", Float (percentile ttfa 0.99));
             ("max", Float (List.fold_left Float.max 0.0 ttfa));
           ] );
     ]
    @ extra)

(* Registry integration: counters and uptime are pull-style (read under
   our mutex at snapshot time), latencies additionally feed a push-style
   histogram so the Prometheus page carries real distribution buckets,
   not just the JSON snapshot's ring percentiles. *)
let register t reg =
  let module R = Wp_obs.Registry in
  let pull name help read =
    R.pull_counter reg ~help name (fun () ->
        float_of_int (with_lock t (fun () -> read ())))
  in
  R.pull_counter reg ~help:"completed requests by status"
    ~labels:[ ("status", "ok") ] "wp_serve_requests_total" (fun () ->
      float_of_int (with_lock t (fun () -> t.ok)));
  R.pull_counter reg ~help:"completed requests by status"
    ~labels:[ ("status", "partial") ] "wp_serve_requests_total" (fun () ->
      float_of_int (with_lock t (fun () -> t.partial)));
  R.pull_counter reg ~help:"completed requests by status"
    ~labels:[ ("status", "error") ] "wp_serve_requests_total" (fun () ->
      float_of_int (with_lock t (fun () -> t.errors)));
  pull "wp_serve_shed_total" "requests refused at admission" (fun () ->
      t.shed);
  R.pull_gauge reg ~help:"seconds since service start"
    "wp_serve_uptime_seconds" (fun () ->
      Int64.to_float (Int64.sub (Whirlpool.Clock.now_ns ()) t.started_ns)
      /. 1e9);
  List.iter
    (fun (q, v) ->
      R.pull_gauge reg
        ~help:"request latency percentile over the recent sample window"
        ~labels:[ ("quantile", q) ] "wp_serve_latency_ms" (fun () ->
          let samples =
            with_lock t (fun () ->
                Array.to_list (Array.sub t.ring 0 t.ring_len))
          in
          percentile samples v))
    [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ];
  List.iter
    (fun (q, v) ->
      R.pull_gauge reg
        ~help:
          "time to first certified answer percentile over the recent \
           sample window"
        ~labels:[ ("quantile", q) ] "wp_serve_ttfa_ms" (fun () ->
          let samples =
            with_lock t (fun () ->
                Array.to_list (Array.sub t.ttfa_ring 0 t.ttfa_len))
          in
          percentile samples v))
    [ ("0.5", 0.50); ("0.95", 0.95); ("0.99", 0.99) ];
  let hist =
    R.histogram reg ~help:"request latency distribution, milliseconds"
      "wp_serve_latency_milliseconds"
  in
  with_lock t (fun () -> t.latency_hist <- Some hist)
