(** Request handling — catalog + engines + metrics, transport-agnostic.

    One {!t} serves one corpus.  {!handle_query} is what the worker
    pool runs per request: resolve the document(s), fetch the compiled
    plan from the catalog cache, run the engine under the request's
    deadline, and merge per-document top-k lists when the query spans
    the corpus.  Deadline semantics: the engine's [should_stop] hook
    fires once the request's deadline passes, the run stops at the next
    iteration boundary and the reply carries the current top-k flagged
    [Partial] — a served query never hangs, it degrades.  A request
    whose hook never fires returns answers entry-identical to a direct
    {!Whirlpool.Engine.run} on the same (document, plan, k). *)

type t

val create :
  ?default_k:int ->
  ?default_deadline_ms:float ->
  ?max_k:int ->
  catalog:Catalog.t ->
  unit ->
  t
(** [default_k] (10) and [default_deadline_ms] (none — no deadline)
    apply when a query omits the fields; [max_k] (1000) caps any
    requested [k]. *)

val catalog : t -> Catalog.t
val metrics : t -> Metrics.t

val record_shed : t -> unit
(** Called by the transport when admission control sheds a request. *)

val handle_query : t -> Protocol.query -> Protocol.response
(** Run one query end to end; accounts latency and status in
    {!metrics}.  Never raises: engine and catalog failures become
    [Error]-status replies. *)

val metrics_json : t -> Wp_json.Json.t
(** Service-level snapshot: request counters and latency percentiles
    ({!Metrics.snapshot}) plus corpus size, plan-cache and
    candidate-cache hit rates. *)

val handle :
  t -> Protocol.request -> [ `Reply of Protocol.response | `Stop of Protocol.response ]
(** Dispatch any request.  [`Stop] tells the transport to reply and
    then begin a graceful shutdown. *)
