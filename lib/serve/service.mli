(** Request handling — catalog + engines + metrics, transport-agnostic.

    One {!t} serves one corpus.  {!handle_query} is what the worker
    pool runs per request: resolve the document(s), fetch the compiled
    plan from the catalog cache, run the engine under the request's
    {!Whirlpool.Engine.Config.t} (service defaults overridden by the
    request's [routing], [batch] and [use_cache] knobs, plus the
    deadline hook), and merge per-document top-k lists when the query
    spans the corpus.  Deadline semantics: the engine's [should_stop]
    hook fires once the request's deadline passes, the run stops at the
    next iteration boundary and the reply carries the current top-k
    flagged [Partial] with code [deadline_expired] — a served query
    never hangs, it degrades.  A request whose hook never fires returns
    answers entry-identical to a direct {!Whirlpool.Engine.run} on the
    same (document, plan, k).

    Failures are classified into the closed {!Protocol.error_code}
    vocabulary: resolution failures are [bad_request], static-analysis
    refusals [lint_rejected], unexpected exceptions [internal].

    Every service owns a {!Wp_obs.Registry.t} into which its request
    metrics ({!Metrics.register}) and cumulative engine counters
    ({!Whirlpool.Stats.register}) publish; {!prometheus} renders it as
    a text-exposition page.  When [slow_query_ms] is set, each request
    runs under a fresh observability context and requests at or above
    the threshold deposit their full span tree and per-server cost
    profile in a bounded slow-query log ({!slow_queries}). *)

type t

val create :
  ?default_k:int ->
  ?default_deadline_ms:float ->
  ?max_k:int ->
  ?engine_config:Whirlpool.Engine.Config.t ->
  ?slow_query_ms:float ->
  catalog:Catalog.t ->
  unit ->
  t
(** [default_k] (10) and [default_deadline_ms] (none — no deadline)
    apply when a query omits the fields; [max_k] (1000) caps any
    requested [k].  [engine_config] (default
    {!Whirlpool.Engine.Config.default}) seeds every request's engine
    configuration.  [slow_query_ms] (default: off) arms the slow-query
    log. *)

val catalog : t -> Catalog.t
val metrics : t -> Metrics.t

val registry : t -> Wp_obs.Registry.t
(** The service's metrics registry — the single snapshot path behind
    {!prometheus}. *)

val record_shed : t -> unit
(** Called by the transport when admission control sheds a request. *)

val handle_query : t -> Protocol.query -> Protocol.response
(** Run one query end to end; accounts latency and status in
    {!metrics}.  Never raises: engine and catalog failures become
    [Error]-status replies carrying an {!Protocol.error_code}. *)

val handle_query_stream :
  t ->
  ?cancelled:(unit -> bool) ->
  ?on_part:(Protocol.answer -> unit) ->
  Protocol.query ->
  Protocol.response * int
(** As {!handle_query}, plus streaming: when [on_part] is given and the
    query resolves to a single document, each answer is passed to it
    the instant the engine certifies it as final (see
    [Engine.Config.on_certified]); merged and scattered queries never
    stream — their per-document answers are not final until the merge.
    Returns the buffered response (its [answers] {e include} the
    streamed prefix, in the same order) and the number of answers
    streamed.  The first streamed answer records the request's
    time-to-first-answer in {!metrics}.

    [cancelled] (default: never) is or-ed into the engine's
    [should_stop] hook: the transport sets it when the client vanishes
    mid-request, cancelling the in-flight run at the next iteration
    boundary so a dead connection never holds a worker to
    completion. *)

val metrics_json : t -> Wp_json.Json.t
(** Service-level snapshot: request counters and latency percentiles
    ({!Metrics.snapshot}) plus corpus size, plan-cache and
    candidate-cache hit rates and the slow-query count. *)

val prometheus : t -> string
(** The registry as a Prometheus text-exposition page (format 0.0.4):
    request counters, latency percentiles and histogram, engine
    counters, corpus and plan-cache figures. *)

val slow_queries : t -> Wp_json.Json.t
(** The slow-query log, newest first (empty unless [slow_query_ms] was
    set): per entry the query text, elapsed milliseconds, the request's
    span tree and its per-server cost profile. *)

val handle :
  t -> Protocol.request -> [ `Reply of Protocol.response | `Stop of Protocol.response ]
(** Dispatch any request.  [`Stop] tells the transport to reply and
    then begin a graceful shutdown. *)
