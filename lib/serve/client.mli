(** The first-class wire client — connect, request, iterate a streamed
    reply, close — shared by [wp_cli query --connect], [wp_cli ctl] and
    {!Loadgen}, replacing their hand-rolled frame loops.

    A client speaks the {!Wire} framing over a Unix-domain socket.
    {!connect} negotiates the protocol version with a [Hello] exchange
    (v2 by default); against the threaded tier — which always answers
    [Hello] with version 1 — or a pre-[Hello] server the connection
    transparently degrades to buffered v1 replies, so callers never
    branch on the version themselves.

    Errors are typed: {!error.Connect_failed} before the socket is up,
    {!error.Io} for transport failures (including the server vanishing
    mid-reply), {!error.Protocol_violation} for frames that do not
    parse.  Clients are not thread-safe; use one per thread. *)

type error =
  | Connect_failed of string
  | Io of string
  | Protocol_violation of string

val error_to_string : error -> string

type t

val connect : ?version:int -> string -> (t, error) result
(** Connect to a server socket path.  [version] (default
    {!Protocol.current_version}) is the highest protocol version to
    offer; [1] skips the [Hello] exchange entirely and forces buffered
    replies.  Raises [Invalid_argument] on [version < 1]. *)

val version : t -> int
(** The negotiated protocol version (1 until proven otherwise). *)

val call : t -> Protocol.request -> (Protocol.response, error) result
(** Send one request and block for its complete reply.  On a v2
    connection any streamed [Part] frames are drained and discarded —
    the terminal [Done] always carries the full answer list, so the
    result is identical to a v1 buffered call. *)

val stream :
  t ->
  on_part:(Protocol.answer -> unit) ->
  Protocol.request ->
  (Protocol.response, error) result
(** As {!call}, but hand each certified answer to [on_part] the moment
    its [Part] frame arrives.  The returned [Done] response's [answers]
    include the streamed prefix in the same order.  On a v1 connection
    [on_part] never fires. *)

val close : t -> unit
