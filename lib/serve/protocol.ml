module Json = Wp_json.Json

type query = {
  id : int;
  query : string;
  doc : string option;
  k : int option;
  deadline_ms : float option;
  algo : string option;
  routing : string option;
  batch : int option;
  use_cache : bool option;
  bound_push : bool option;
}

type metrics_format = Json_format | Prometheus

let metrics_format_to_string = function
  | Json_format -> "json"
  | Prometheus -> "prometheus"

let metrics_format_of_string = function
  | "json" -> Some Json_format
  | "prometheus" -> Some Prometheus
  | _ -> None

(* Highest protocol version this build speaks.  v1 is the original
   buffered request/reply; v2 adds [Hello] negotiation and streamed
   query replies (a sequence of [Part] frames closed by a [Done]). *)
let current_version = 2

type request =
  | Query of query
  | Metrics of { id : int; format : metrics_format }
  | Ping of { id : int }
  | Stop of { id : int }
  | Hello of { id : int; version : int }

type status = Ok | Partial | Overloaded | Error

let status_to_string = function
  | Ok -> "ok"
  | Partial -> "partial"
  | Overloaded -> "overloaded"
  | Error -> "error"

let status_of_string = function
  | "ok" -> Some Ok
  | "partial" -> Some Partial
  | "overloaded" -> Some Overloaded
  | "error" -> Some Error
  | _ -> None

(* Machine-readable failure classes — a closed variant with stable wire
   strings, so clients dispatch on [code] instead of parsing the
   human-oriented [error] message (which remains free to change). *)
type error_code =
  | Code_overloaded
  | Bad_request
  | Lint_rejected
  | Deadline_expired
  | Internal

let error_code_to_string = function
  | Code_overloaded -> "overloaded"
  | Bad_request -> "bad_request"
  | Lint_rejected -> "lint_rejected"
  | Deadline_expired -> "deadline_expired"
  | Internal -> "internal"

let error_code_of_string = function
  | "overloaded" -> Some Code_overloaded
  | "bad_request" -> Some Bad_request
  | "lint_rejected" -> Some Lint_rejected
  | "deadline_expired" -> Some Deadline_expired
  | "internal" -> Some Internal
  | _ -> None

let all_error_codes =
  [ Code_overloaded; Bad_request; Lint_rejected; Deadline_expired; Internal ]

type answer = {
  doc : string;
  root : int;
  dewey : string;
  score : float;
  progress : int;
}

type response = {
  id : int;
  status : status;
  error : string option;
  code : error_code option;
  answers : answer list;
  stats : Json.t option;
  metrics : Json.t option;
  metrics_text : string option;
  elapsed_ms : float;
  version : int option;
}

let ok_response ?(answers = []) ?stats ?metrics ?metrics_text ?(partial = false)
    ?version ~id ~elapsed_ms () =
  {
    id;
    status = (if partial then Partial else Ok);
    error = None;
    code = (if partial then Some Deadline_expired else None);
    answers;
    stats;
    metrics;
    metrics_text;
    elapsed_ms;
    version;
  }

let error_response ~id ?(elapsed_ms = 0.0) ?(code = Internal) msg =
  {
    id;
    status = Error;
    error = Some msg;
    code = Some code;
    answers = [];
    stats = None;
    metrics = None;
    metrics_text = None;
    elapsed_ms;
    version = None;
  }

let overloaded_response ~id =
  {
    id;
    status = Overloaded;
    error = None;
    code = Some Code_overloaded;
    answers = [];
    stats = None;
    metrics = None;
    metrics_text = None;
    elapsed_ms = 0.0;
    version = None;
  }

(* --- field accessors with typed errors --- *)

let field_int name json =
  match Json.member name json with
  | Some (Json.Int i) -> Result.Ok i
  | Some _ -> Result.Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Result.Error (Printf.sprintf "missing field %S" name)

let field_string name json =
  match Json.member name json with
  | Some (Json.String s) -> Result.Ok s
  | Some _ -> Result.Error (Printf.sprintf "field %S must be a string" name)
  | None -> Result.Error (Printf.sprintf "missing field %S" name)

let opt_string name json =
  match Json.member name json with
  | Some (Json.String s) -> Result.Ok (Some s)
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be a string or null" name)

let opt_int name json =
  match Json.member name json with
  | Some (Json.Int i) -> Result.Ok (Some i)
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be an integer or null" name)

let opt_bool name json =
  match Json.member name json with
  | Some (Json.Bool b) -> Result.Ok (Some b)
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be a boolean or null" name)

let opt_float name json =
  match Json.member name json with
  | Some (Json.Float f) -> Result.Ok (Some f)
  | Some (Json.Int i) -> Result.Ok (Some (float_of_int i))
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be a number or null" name)

let ( let* ) = Result.bind

(* --- requests --- *)

let request_to_json req =
  let open Json in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  match req with
  | Query q ->
      Obj
        ([ ("op", String "query"); ("id", Int q.id); ("query", String q.query) ]
        @ opt "doc" q.doc (fun s -> String s)
        @ opt "k" q.k (fun k -> Int k)
        @ opt "deadline_ms" q.deadline_ms (fun d -> Float d)
        @ opt "algo" q.algo (fun s -> String s)
        @ opt "routing" q.routing (fun s -> String s)
        @ opt "batch" q.batch (fun b -> Int b)
        @ opt "use_cache" q.use_cache (fun b -> Bool b)
        @ opt "bound_push" q.bound_push (fun b -> Bool b))
  | Metrics { id; format } ->
      Obj
        ([ ("op", String "metrics"); ("id", Int id) ]
        @
        match format with
        | Json_format -> []
        | f -> [ ("format", String (metrics_format_to_string f)) ])
  | Ping { id } -> Obj [ ("op", String "ping"); ("id", Int id) ]
  | Stop { id } -> Obj [ ("op", String "stop"); ("id", Int id) ]
  | Hello { id; version } ->
      Obj [ ("op", String "hello"); ("id", Int id); ("version", Int version) ]

let request_of_json json =
  let* op = field_string "op" json in
  let* id = field_int "id" json in
  match op with
  | "query" ->
      let* query = field_string "query" json in
      let* doc = opt_string "doc" json in
      let* k = opt_int "k" json in
      let* deadline_ms = opt_float "deadline_ms" json in
      let* algo = opt_string "algo" json in
      let* routing = opt_string "routing" json in
      let* batch = opt_int "batch" json in
      let* use_cache = opt_bool "use_cache" json in
      let* bound_push = opt_bool "bound_push" json in
      Result.Ok
        (Query
           {
             id;
             query;
             doc;
             k;
             deadline_ms;
             algo;
             routing;
             batch;
             use_cache;
             bound_push;
           })
  | "metrics" ->
      let* fmt = opt_string "format" json in
      let* format =
        match fmt with
        | None -> Result.Ok Json_format
        | Some s -> (
            match metrics_format_of_string s with
            | Some f -> Result.Ok f
            | None ->
                Result.Error
                  (Printf.sprintf
                     "unknown metrics format %S (known: json, prometheus)" s))
      in
      Result.Ok (Metrics { id; format })
  | "ping" -> Result.Ok (Ping { id })
  | "stop" -> Result.Ok (Stop { id })
  | "hello" ->
      let* version = field_int "version" json in
      if version < 1 then Result.Error "field \"version\" must be >= 1"
      else Result.Ok (Hello { id; version })
  | other -> Result.Error (Printf.sprintf "unknown op %S" other)

(* --- responses --- *)

let answer_to_json (a : answer) =
  let open Json in
  Obj
    [
      ("doc", String a.doc);
      ("root", Int a.root);
      ("dewey", String a.dewey);
      ("score", Float a.score);
      ("progress", Int a.progress);
    ]

let answer_of_json json =
  let* doc = field_string "doc" json in
  let* root = field_int "root" json in
  let* dewey = field_string "dewey" json in
  let* score =
    match Json.member "score" json with
    | Some (Json.Float f) -> Result.Ok f
    | Some (Json.Int i) -> Result.Ok (float_of_int i)
    | _ -> Result.Error "field \"score\" must be a number"
  in
  let* progress = field_int "progress" json in
  Result.Ok { doc; root; dewey; score; progress }

let response_to_json r =
  let open Json in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  Obj
    ([
       ("id", Int r.id);
       ("status", String (status_to_string r.status));
       ("elapsed_ms", Float r.elapsed_ms);
     ]
    @ opt "error" r.error (fun s -> String s)
    @ opt "code" r.code (fun c -> String (error_code_to_string c))
    @ (match r.answers with
      | [] -> []
      | answers -> [ ("answers", List (List.map answer_to_json answers)) ])
    @ opt "stats" r.stats Fun.id
    @ opt "metrics" r.metrics Fun.id
    @ opt "metrics_text" r.metrics_text (fun s -> String s)
    @ opt "version" r.version (fun v -> Int v))

let response_of_json json =
  let* id = field_int "id" json in
  let* status_s = field_string "status" json in
  let* status =
    match status_of_string status_s with
    | Some s -> Result.Ok s
    | None -> Result.Error (Printf.sprintf "unknown status %S" status_s)
  in
  let* elapsed_ms =
    let* v = opt_float "elapsed_ms" json in
    Result.Ok (Option.value v ~default:0.0)
  in
  let* error = opt_string "error" json in
  let* code =
    let* c = opt_string "code" json in
    match c with
    | None -> Result.Ok None
    | Some s -> (
        match error_code_of_string s with
        | Some c -> Result.Ok (Some c)
        | None -> Result.Error (Printf.sprintf "unknown error code %S" s))
  in
  let* answers =
    match Json.member "answers" json with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = answer_of_json item in
            Result.Ok (a :: acc))
          (Result.Ok []) items
        |> Result.map List.rev
    | Some _ -> Result.Error "field \"answers\" must be a list"
    | None -> Result.Ok []
  in
  let stats = Json.member "stats" json in
  let metrics = Json.member "metrics" json in
  let* metrics_text = opt_string "metrics_text" json in
  let* version = opt_int "version" json in
  Result.Ok
    { id; status; error; code; answers; stats; metrics; metrics_text;
      elapsed_ms; version }

let parse_request s =
  let* json = Json.of_string s in
  request_of_json json

let parse_response s =
  let* json = Json.of_string s in
  response_of_json json

(* --- protocol-v2 streamed replies --- *)

type stream_frame =
  | Part of { id : int; seq : int; answer : answer }
  | Done of response

let frame_to_json = function
  | Part { id; seq; answer } ->
      Json.Obj
        [
          ("id", Json.Int id);
          ("frame", Json.String "part");
          ("seq", Json.Int seq);
          ("answer", answer_to_json answer);
        ]
  | Done r -> (
      match response_to_json r with
      | Json.Obj fields ->
          Json.Obj (fields @ [ ("frame", Json.String "done") ])
      | other -> other)

let frame_of_json json =
  match Json.member "frame" json with
  | Some (Json.String "part") ->
      let* id = field_int "id" json in
      let* seq = field_int "seq" json in
      let* answer =
        match Json.member "answer" json with
        | Some a -> answer_of_json a
        | None -> Result.Error "missing field \"answer\""
      in
      Result.Ok (Part { id; seq; answer })
  | Some (Json.String "done") | None ->
      (* A frame-less object is a v1 buffered reply: the whole response
         arrives as one terminal frame. *)
      let* r = response_of_json json in
      Result.Ok (Done r)
  | Some (Json.String other) ->
      Result.Error (Printf.sprintf "unknown frame kind %S" other)
  | Some _ -> Result.Error "field \"frame\" must be a string"

let parse_frame s =
  let* json = Json.of_string s in
  frame_of_json json
