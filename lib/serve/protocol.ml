module Json = Wp_json.Json

type query = {
  id : int;
  query : string;
  doc : string option;
  k : int option;
  deadline_ms : float option;
  algo : string option;
  routing : string option;
}

type request =
  | Query of query
  | Metrics of { id : int }
  | Ping of { id : int }
  | Stop of { id : int }

type status = Ok | Partial | Overloaded | Error

let status_to_string = function
  | Ok -> "ok"
  | Partial -> "partial"
  | Overloaded -> "overloaded"
  | Error -> "error"

let status_of_string = function
  | "ok" -> Some Ok
  | "partial" -> Some Partial
  | "overloaded" -> Some Overloaded
  | "error" -> Some Error
  | _ -> None

type answer = {
  doc : string;
  root : int;
  dewey : string;
  score : float;
  progress : int;
}

type response = {
  id : int;
  status : status;
  error : string option;
  answers : answer list;
  stats : Json.t option;
  metrics : Json.t option;
  elapsed_ms : float;
}

let ok_response ?(answers = []) ?stats ?metrics ?(partial = false) ~id
    ~elapsed_ms () =
  {
    id;
    status = (if partial then Partial else Ok);
    error = None;
    answers;
    stats;
    metrics;
    elapsed_ms;
  }

let error_response ~id ?(elapsed_ms = 0.0) msg =
  {
    id;
    status = Error;
    error = Some msg;
    answers = [];
    stats = None;
    metrics = None;
    elapsed_ms;
  }

let overloaded_response ~id =
  {
    id;
    status = Overloaded;
    error = None;
    answers = [];
    stats = None;
    metrics = None;
    elapsed_ms = 0.0;
  }

(* --- field accessors with typed errors --- *)

let field_int name json =
  match Json.member name json with
  | Some (Json.Int i) -> Result.Ok i
  | Some _ -> Result.Error (Printf.sprintf "field %S must be an integer" name)
  | None -> Result.Error (Printf.sprintf "missing field %S" name)

let field_string name json =
  match Json.member name json with
  | Some (Json.String s) -> Result.Ok s
  | Some _ -> Result.Error (Printf.sprintf "field %S must be a string" name)
  | None -> Result.Error (Printf.sprintf "missing field %S" name)

let opt_string name json =
  match Json.member name json with
  | Some (Json.String s) -> Result.Ok (Some s)
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be a string or null" name)

let opt_int name json =
  match Json.member name json with
  | Some (Json.Int i) -> Result.Ok (Some i)
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be an integer or null" name)

let opt_float name json =
  match Json.member name json with
  | Some (Json.Float f) -> Result.Ok (Some f)
  | Some (Json.Int i) -> Result.Ok (Some (float_of_int i))
  | Some Json.Null | None -> Result.Ok None
  | Some _ ->
      Result.Error (Printf.sprintf "field %S must be a number or null" name)

let ( let* ) = Result.bind

(* --- requests --- *)

let request_to_json req =
  let open Json in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  match req with
  | Query q ->
      Obj
        ([ ("op", String "query"); ("id", Int q.id); ("query", String q.query) ]
        @ opt "doc" q.doc (fun s -> String s)
        @ opt "k" q.k (fun k -> Int k)
        @ opt "deadline_ms" q.deadline_ms (fun d -> Float d)
        @ opt "algo" q.algo (fun s -> String s)
        @ opt "routing" q.routing (fun s -> String s))
  | Metrics { id } -> Obj [ ("op", String "metrics"); ("id", Int id) ]
  | Ping { id } -> Obj [ ("op", String "ping"); ("id", Int id) ]
  | Stop { id } -> Obj [ ("op", String "stop"); ("id", Int id) ]

let request_of_json json =
  let* op = field_string "op" json in
  let* id = field_int "id" json in
  match op with
  | "query" ->
      let* query = field_string "query" json in
      let* doc = opt_string "doc" json in
      let* k = opt_int "k" json in
      let* deadline_ms = opt_float "deadline_ms" json in
      let* algo = opt_string "algo" json in
      let* routing = opt_string "routing" json in
      Result.Ok (Query { id; query; doc; k; deadline_ms; algo; routing })
  | "metrics" -> Result.Ok (Metrics { id })
  | "ping" -> Result.Ok (Ping { id })
  | "stop" -> Result.Ok (Stop { id })
  | other -> Result.Error (Printf.sprintf "unknown op %S" other)

(* --- responses --- *)

let answer_to_json (a : answer) =
  let open Json in
  Obj
    [
      ("doc", String a.doc);
      ("root", Int a.root);
      ("dewey", String a.dewey);
      ("score", Float a.score);
      ("progress", Int a.progress);
    ]

let answer_of_json json =
  let* doc = field_string "doc" json in
  let* root = field_int "root" json in
  let* dewey = field_string "dewey" json in
  let* score =
    match Json.member "score" json with
    | Some (Json.Float f) -> Result.Ok f
    | Some (Json.Int i) -> Result.Ok (float_of_int i)
    | _ -> Result.Error "field \"score\" must be a number"
  in
  let* progress = field_int "progress" json in
  Result.Ok { doc; root; dewey; score; progress }

let response_to_json r =
  let open Json in
  let opt name v f = match v with None -> [] | Some x -> [ (name, f x) ] in
  Obj
    ([
       ("id", Int r.id);
       ("status", String (status_to_string r.status));
       ("elapsed_ms", Float r.elapsed_ms);
     ]
    @ opt "error" r.error (fun s -> String s)
    @ (match r.answers with
      | [] -> []
      | answers -> [ ("answers", List (List.map answer_to_json answers)) ])
    @ opt "stats" r.stats Fun.id
    @ opt "metrics" r.metrics Fun.id)

let response_of_json json =
  let* id = field_int "id" json in
  let* status_s = field_string "status" json in
  let* status =
    match status_of_string status_s with
    | Some s -> Result.Ok s
    | None -> Result.Error (Printf.sprintf "unknown status %S" status_s)
  in
  let* elapsed_ms =
    let* v = opt_float "elapsed_ms" json in
    Result.Ok (Option.value v ~default:0.0)
  in
  let* error = opt_string "error" json in
  let* answers =
    match Json.member "answers" json with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* a = answer_of_json item in
            Result.Ok (a :: acc))
          (Result.Ok []) items
        |> Result.map List.rev
    | Some _ -> Result.Error "field \"answers\" must be a list"
    | None -> Result.Ok []
  in
  let stats = Json.member "stats" json in
  let metrics = Json.member "metrics" json in
  Result.Ok { id; status; error; answers; stats; metrics; elapsed_ms }

let parse_request s =
  let* json = Json.of_string s in
  request_of_json json

let parse_response s =
  let* json = Json.of_string s in
  response_of_json json
