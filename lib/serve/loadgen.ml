module Json = Wp_json.Json

type point = {
  clients : int;
  requests : int;
  ok : int;
  partial : int;
  overloaded : int;
  errors : int;
  duration_s : float;
  throughput : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

type worker_acc = {
  mutable ok : int;
  mutable partial : int;
  mutable overloaded : int;
  mutable errors : int;
  mutable latencies : float list;  (* ms, client-side *)
}

let now_ns = Whirlpool.Clock.now_ns

let client_loop client queries ~algo ~bound_push ~t_end acc =
  let nq = Array.length queries in
  let i = ref 0 in
  let id = ref 0 in
  let continue = ref true in
  while !continue && Int64.compare (now_ns ()) t_end < 0 do
    let query = queries.(!i mod nq) in
    incr i;
    incr id;
    let req =
      Protocol.Query
        {
          id = !id;
          query;
          doc = None;
          k = None;
          deadline_ms = None;
          algo;
          routing = None;
          batch = None;
          use_cache = None;
          bound_push;
        }
    in
    let t0 = now_ns () in
    (match Client.call client req with
    | Result.Ok r -> (
        let ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
        acc.latencies <- ms :: acc.latencies;
        match r.status with
        | Protocol.Ok -> acc.ok <- acc.ok + 1
        | Protocol.Partial -> acc.partial <- acc.partial + 1
        | Protocol.Overloaded -> acc.overloaded <- acc.overloaded + 1
        | Protocol.Error -> acc.errors <- acc.errors + 1)
    | Result.Error _ ->
        (* Transport failure: count it and stop this client — the
           connection is gone. *)
        acc.errors <- acc.errors + 1;
        continue := false)
  done

(* Latency points pin protocol v1 by default: a buffered reply is the
   unit both tiers implement identically, so tier comparisons measure
   the serve architecture, not the framing. *)
let run ?algo ?bound_push ?(version = 1) ~socket ~queries ~clients
    ~duration_s () =
  if queries = [] then Result.Error "no queries to issue"
  else if clients < 1 then Result.Error "need at least one client"
  else begin
    let queries = Array.of_list queries in
    let conns = ref [] in
    let connect_err = ref None in
    for _ = 1 to clients do
      match Client.connect ~version socket with
      | Result.Ok c -> conns := c :: !conns
      | Result.Error e ->
          if !connect_err = None then
            connect_err := Some (Client.error_to_string e)
    done;
    match (!conns, !connect_err) with
    | [], Some e ->
        Result.Error (Printf.sprintf "no client could connect: %s" e)
    | [], None -> Result.Error "no client could connect"
    | conns, _ ->
        let t0 = now_ns () in
        let t_end = Int64.add t0 (Int64.of_float (duration_s *. 1e9)) in
        let accs =
          List.map
            (fun _ ->
              { ok = 0; partial = 0; overloaded = 0; errors = 0; latencies = [] })
            conns
        in
        let threads =
          List.map2
            (fun client acc ->
              Thread.create
                (fun () -> client_loop client queries ~algo ~bound_push ~t_end acc)
                ())
            conns accs
        in
        List.iter Thread.join threads;
        let elapsed_s = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
        List.iter Client.close conns;
        let ok = List.fold_left (fun a c -> a + c.ok) 0 accs in
        let partial = List.fold_left (fun a c -> a + c.partial) 0 accs in
        let overloaded = List.fold_left (fun a c -> a + c.overloaded) 0 accs in
        let errors = List.fold_left (fun a c -> a + c.errors) 0 accs in
        let latencies = List.concat_map (fun c -> c.latencies) accs in
        let requests = ok + partial + overloaded + errors in
        let throughput =
          if elapsed_s > 0.0 then float_of_int requests /. elapsed_s else 0.0
        in
        Result.Ok
          {
            clients;
            requests;
            ok;
            partial;
            overloaded;
            errors;
            duration_s = elapsed_s;
            throughput;
            p50_ms = Metrics.percentile latencies 0.50;
            p95_ms = Metrics.percentile latencies 0.95;
            p99_ms = Metrics.percentile latencies 0.99;
            max_ms = List.fold_left Float.max 0.0 latencies;
          }
  end

let point_to_json p =
  let open Json in
  Obj
    [
      ("clients", Int p.clients);
      ("requests", Int p.requests);
      ("ok", Int p.ok);
      ("partial", Int p.partial);
      ("overloaded", Int p.overloaded);
      ("errors", Int p.errors);
      ("duration_s", Float p.duration_s);
      ("throughput_rps", Float p.throughput);
      ("p50_ms", Float p.p50_ms);
      ("p95_ms", Float p.p95_ms);
      ("p99_ms", Float p.p99_ms);
      ("max_ms", Float p.max_ms);
    ]

let ( let* ) = Result.bind
let client_err r = Result.map_error Client.error_to_string r

let fetch_metrics ~socket =
  let* client = client_err (Client.connect ~version:1 socket) in
  let reply =
    client_err
      (Client.call client
         (Protocol.Metrics { id = 0; format = Protocol.Json_format }))
  in
  Client.close client;
  let* r = reply in
  match r.metrics with
  | Some m -> Result.Ok m
  | None -> Result.Error "metrics reply carried no metrics object"

(* One streamed query over protocol v2, timing the first [Part] frame
   against the terminal [Done] — the client-side view of the
   time-to-first-answer metric the server records. *)
let ttfa_probe ?algo ?k ?doc ~socket ~query () =
  let* client = client_err (Client.connect socket) in
  if Client.version client < 2 then begin
    Client.close client;
    Result.Error "server negotiated v1: no streaming on this tier"
  end
  else begin
    let req =
      Protocol.Query
        {
          id = 1;
          query;
          doc;
          k;
          deadline_ms = None;
          algo;
          routing = None;
          batch = None;
          use_cache = Some false;
          bound_push = None;
        }
    in
    let t0 = now_ns () in
    let first_ms = ref None in
    let parts = ref 0 in
    let on_part (_ : Protocol.answer) =
      incr parts;
      if !first_ms = None then
        first_ms :=
          Some (Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6)
    in
    let reply = client_err (Client.stream client ~on_part req) in
    let total_ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
    Client.close client;
    let* r = reply in
    let open Json in
    Result.Ok
      (Obj
         [
           ("query", String query);
           ("streamed", Int !parts);
           ("answers", Int (List.length r.Protocol.answers));
           ( "ttfa_ms",
             match !first_ms with Some ms -> Float ms | None -> Null );
           ("total_ms", Float total_ms);
           ( "ttfa_before_done",
             Bool
               (match !first_ms with
               | Some ms -> ms < total_ms
               | None -> false) );
         ])
  end

let report ?algo ~socket ~queries ~client_counts ~duration_s () =
  let* points =
    List.fold_left
      (fun acc clients ->
        let* acc = acc in
        let* p = run ?algo ~socket ~queries ~clients ~duration_s () in
        Result.Ok (p :: acc))
      (Result.Ok []) client_counts
  in
  let points = List.rev points in
  let* server_metrics = fetch_metrics ~socket in
  let open Json in
  Result.Ok
    (Obj
       [
         ("benchmark", String "whirlpool-serve-loadgen");
         ("queries", List (List.map (fun q -> String q) queries));
         ("duration_s_per_point", Float duration_s);
         ("points", List (List.map point_to_json points));
         ("server_metrics", server_metrics);
       ])
