(** A bounded worker pool with admission control.

    The serving layer's scheduler: [workers] threads drain a FIFO job
    queue of at most [queue_depth] waiting jobs.  {!submit} never
    blocks — when the queue is full (or the pool is shutting down) the
    job is {e shed} and [submit] returns [false], so under overload the
    service degrades by refusing work with a typed [Overloaded] reply
    instead of queueing unboundedly (and unboundedly inflating tail
    latency).

    Like {!Whirlpool.Engine_mt}, the pool is a functor over
    {!Whirlpool.Sync.S}: {!Real} runs on OCaml 5 domains, while the
    Raceway tests instantiate it with the deterministic instrumented
    scheduler ({!Whirlpool.Sched}) to explore seeded interleavings of
    submit / drain / shutdown and check the traces for data races,
    lock-hierarchy violations and lost shutdowns. *)

type stats = {
  submitted : int;  (** accepted jobs *)
  shed : int;  (** refused at admission (queue full or stopping) *)
  executed : int;  (** jobs that ran to completion *)
  failed : int;  (** jobs whose closure raised (exception swallowed) *)
}

val mutex_name : string
(** Lock name of the pool's queue mutex (["serve.pool.mutex"]). *)

val state_loc : string
(** Shared-location name for the queue + stop-flag state
    (["serve.pool.state"]). *)

val lock_rank : string -> int option
(** The serving layer's declared lock hierarchy: extends
    {!Whirlpool.Race.lock_rank} (engine queue and cache mutexes rank 0,
    top-k rank 1) with [serve.pool.mutex] at rank 2 — pool code must
    never hold its mutex while entering the engine, and a worker
    acquiring an engine lock under the pool mutex is flagged. *)

module Make (S : Whirlpool.Sync.S) : sig
  type t

  val create : workers:int -> queue_depth:int -> unit -> t
  (** Spawn [workers] (>= 1) threads over a queue admitting at most
      [queue_depth] (>= 1) waiting jobs. *)

  val submit : t -> (unit -> unit) -> bool
  (** Enqueue a job; [false] when it was shed.  Never blocks. *)

  val shutdown : t -> unit
  (** Refuse new submissions, let the workers drain every already
      accepted job, and join them.  Idempotent; afterwards
      [stats.submitted = stats.executed + stats.failed]. *)

  val stats : t -> stats
  (** A consistent snapshot (taken under the pool mutex). *)
end

module Real : sig
  type t

  val create : workers:int -> queue_depth:int -> unit -> t
  val submit : t -> (unit -> unit) -> bool
  val shutdown : t -> unit
  val stats : t -> stats
end
(** {!Make} over {!Whirlpool.Sync.Real} — domains and stdlib
    primitives. *)
