module Json = Wp_json.Json

type t = {
  catalog : Catalog.t;
  metrics : Metrics.t;
  default_k : int;
  default_deadline_ms : float option;
  max_k : int;
  (* candidate-cache totals aggregated across every served request *)
  cache_mutex : Mutex.t;
  mutable engine_cache_hits : int;
  mutable engine_cache_misses : int;
}

let create ?(default_k = 10) ?default_deadline_ms ?(max_k = 1000) ~catalog () =
  {
    catalog;
    metrics = Metrics.create ();
    default_k;
    default_deadline_ms;
    max_k;
    cache_mutex = Mutex.create ();
    engine_cache_hits = 0;
    engine_cache_misses = 0;
  }

let catalog t = t.catalog
let metrics t = t.metrics
let record_shed t = Metrics.record_shed t.metrics

let now_ns = Whirlpool.Clock.now_ns

let elapsed_ms_since t0 =
  Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6

let stats_to_json (s : Whirlpool.Stats.t) =
  let open Json in
  Obj
    [
      ("server_ops", Int s.server_ops);
      ("comparisons", Int s.comparisons);
      ("matches_created", Int s.matches_created);
      ("matches_pruned", Int s.matches_pruned);
      ("matches_died", Int s.matches_died);
      ("routing_decisions", Int s.routing_decisions);
      ("completed", Int s.completed);
      ("cache_hits", Int s.cache_hits);
      ("cache_misses", Int s.cache_misses);
      ("cache_hit_rate", Float (Whirlpool.Stats.cache_hit_rate s));
      ("wall_seconds", Float (Whirlpool.Stats.wall_seconds s));
    ]

let ( let* ) = Result.bind

let resolve_docs t (q : Protocol.query) =
  match q.doc with
  | Some name -> (
      match Catalog.find t.catalog name with
      | Some d -> Result.Ok [ d ]
      | None -> Result.Error (Printf.sprintf "unknown document: %s" name))
  | None -> (
      match Catalog.docs t.catalog with
      | [] -> Result.Error "the corpus is empty"
      | ds -> Result.Ok ds)

let resolve_k t (q : Protocol.query) =
  let k = Option.value q.k ~default:t.default_k in
  if k < 1 then Result.Error (Printf.sprintf "k must be >= 1 (got %d)" k)
  else Result.Ok (min k t.max_k)

let resolve_algo (q : Protocol.query) =
  match Option.value q.algo ~default:"whirlpool-s" with
  | "whirlpool-s" | "ws" -> Result.Ok `S
  | "whirlpool-m" | "wm" -> Result.Ok `M
  | other ->
      Result.Error
        (Printf.sprintf
           "unknown algo %S (serveable: whirlpool-s, whirlpool-m)" other)

let resolve_routing (q : Protocol.query) =
  match q.routing with
  | None -> Result.Ok None
  | Some s -> (
      match Whirlpool.Strategy.routing_of_string s with
      | Some r -> Result.Ok (Some r)
      | None -> Result.Error (Printf.sprintf "unknown routing %S" s))

(* The per-request deadline, as the engines' cooperative-cancellation
   hook: checked at iteration boundaries, so expiry yields the current
   top-k flagged partial instead of an unbounded run. *)
let deadline_hook t (q : Protocol.query) ~t0 =
  match
    match q.deadline_ms with
    | Some ms -> Some ms
    | None -> t.default_deadline_ms
  with
  | None -> Whirlpool.Engine.never_stop
  | Some ms ->
      let deadline = Int64.add t0 (Int64.of_float (ms *. 1e6)) in
      fun () -> Int64.compare (now_ns ()) deadline >= 0

let note_engine_cache t (stats : Whirlpool.Stats.t) =
  Mutex.lock t.cache_mutex;
  t.engine_cache_hits <- t.engine_cache_hits + stats.cache_hits;
  t.engine_cache_misses <- t.engine_cache_misses + stats.cache_misses;
  Mutex.unlock t.cache_mutex

let run_query t (q : Protocol.query) ~t0 =
  let* docs = resolve_docs t q in
  let* k = resolve_k t q in
  let* algo = resolve_algo q in
  let* routing = resolve_routing q in
  let should_stop = deadline_hook t q ~t0 in
  let stats = Whirlpool.Stats.create () in
  let partial = ref false in
  let* tagged =
    List.fold_left
      (fun acc (doc : Catalog.doc) ->
        let* acc = acc in
        (* Between documents of a merged query the deadline also
           applies: skip the remaining documents once it has passed. *)
        if should_stop () then begin
          partial := true;
          Result.Ok acc
        end
        else
          let* plan = Catalog.plan_for t.catalog doc q.query in
          let result =
            match algo with
            | `S -> Whirlpool.Engine.run ?routing ~should_stop plan ~k
            | `M -> Whirlpool.Engine_mt.run ?routing ~should_stop plan ~k
          in
          if result.partial then partial := true;
          Whirlpool.Stats.add stats result.stats;
          note_engine_cache t result.stats;
          Result.Ok
            (List.rev_append
               (List.map (fun e -> (doc, e)) result.answers)
               acc))
      (Result.Ok []) docs
  in
  (* Merge across documents: best scores first, ties by document name
     then root id for a deterministic order. *)
  let merged =
    List.sort
      (fun ((d1 : Catalog.doc), (e1 : Whirlpool.Topk_set.entry))
           (d2, (e2 : Whirlpool.Topk_set.entry)) ->
        match Float.compare e2.score e1.score with
        | 0 -> (
            match String.compare d1.name d2.name with
            | 0 -> Int.compare e1.root e2.root
            | c -> c)
        | c -> c)
      tagged
  in
  let top = List.filteri (fun i _ -> i < k) merged in
  let answers =
    List.map
      (fun ((doc : Catalog.doc), (e : Whirlpool.Topk_set.entry)) ->
        let d = Wp_xml.Index.doc doc.index in
        {
          Protocol.doc = doc.name;
          root = e.root;
          dewey = Wp_xml.Dewey.to_string (Wp_xml.Doc.dewey d e.root);
          score = e.score;
          progress = e.progress;
        })
      top
  in
  Result.Ok (answers, stats, !partial)

let handle_query t (q : Protocol.query) =
  let t0 = now_ns () in
  let outcome =
    match run_query t q ~t0 with
    | r -> r
    | exception exn ->
        Result.Error
          (Printf.sprintf "internal error: %s" (Printexc.to_string exn))
  in
  let elapsed_ms = elapsed_ms_since t0 in
  match outcome with
  | Result.Ok (answers, stats, partial) ->
      Metrics.record t.metrics
        ~status:(if partial then `Partial else `Ok)
        ~latency_ms:elapsed_ms;
      Protocol.ok_response ~answers ~stats:(stats_to_json stats) ~partial
        ~id:q.id ~elapsed_ms ()
  | Result.Error msg ->
      Metrics.record t.metrics ~status:`Error ~latency_ms:elapsed_ms;
      Protocol.error_response ~id:q.id ~elapsed_ms msg

let metrics_json t =
  let open Json in
  let docs = Catalog.docs t.catalog in
  let nodes = List.fold_left (fun a (d : Catalog.doc) -> a + d.nodes) 0 docs in
  let pc = Catalog.plan_cache_stats t.catalog in
  let ech, ecm =
    Mutex.lock t.cache_mutex;
    let v = (t.engine_cache_hits, t.engine_cache_misses) in
    Mutex.unlock t.cache_mutex;
    v
  in
  let cache_rate hits misses =
    let total = hits + misses in
    if total = 0 then 0.0 else float_of_int hits /. float_of_int total
  in
  Metrics.snapshot t.metrics
    ~extra:
      [
        ( "corpus",
          Obj [ ("documents", Int (List.length docs)); ("nodes", Int nodes) ]
        );
        ( "plan_cache",
          Obj
            [
              ("size", Int pc.size);
              ("capacity", Int pc.capacity);
              ("hits", Int pc.hits);
              ("misses", Int pc.misses);
              ("evictions", Int pc.evictions);
              ("hit_rate", Float pc.hit_rate);
            ] );
        ( "engine_cache",
          Obj
            [
              ("hits", Int ech);
              ("misses", Int ecm);
              ("hit_rate", Float (cache_rate ech ecm));
            ] );
      ]

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Query q -> `Reply (handle_query t q)
  | Protocol.Metrics { id } ->
      `Reply
        (Protocol.ok_response ~metrics:(metrics_json t) ~id ~elapsed_ms:0.0 ())
  | Protocol.Ping { id } ->
      `Reply (Protocol.ok_response ~id ~elapsed_ms:0.0 ())
  | Protocol.Stop { id } ->
      `Stop (Protocol.ok_response ~id ~elapsed_ms:0.0 ())
