module Json = Wp_json.Json
module Obs = Wp_obs.Obs
module Registry = Wp_obs.Registry

type slow_query = {
  query : string;
  doc : string option;
  elapsed_ms : float;
  spans : Json.t;
  profile : Json.t;
}

let slow_log_cap = 32

type t = {
  catalog : Catalog.t;
  metrics : Metrics.t;
  registry : Registry.t;
  default_k : int;
  default_deadline_ms : float option;
  max_k : int;
  base_config : Whirlpool.Engine.Config.t;
  slow_query_ms : float option;
  slow_counter : Registry.counter;
  state_mutex : Mutex.t;
  (* engine totals aggregated across every served request, and the
     bounded slow-query log (newest first) — both under [state_mutex] *)
  totals : Whirlpool.Stats.t;
  mutable slow_log : slow_query list;
}

let create ?(default_k = 10) ?default_deadline_ms ?(max_k = 1000)
    ?(engine_config = Whirlpool.Engine.Config.default) ?slow_query_ms ~catalog
    () =
  let registry = Registry.create () in
  let metrics = Metrics.create () in
  let totals = Whirlpool.Stats.create () in
  Metrics.register metrics registry;
  Whirlpool.Stats.register totals registry;
  let slow_counter =
    Registry.counter registry
      ~help:"requests slower than the slow-query threshold"
      "wp_serve_slow_queries_total"
  in
  Registry.pull_gauge registry ~help:"documents in the corpus"
    "wp_corpus_documents" (fun () ->
      float_of_int (List.length (Catalog.docs catalog)));
  Registry.pull_gauge registry ~help:"catalog shards"
    "wp_corpus_shards" (fun () -> float_of_int (Catalog.shards catalog));
  Registry.pull_gauge registry
    ~help:"candidate-cache hit rate across served requests"
    "wp_engine_cache_hit_rate" (fun () ->
      let h = float_of_int totals.cache_hits
      and m = float_of_int totals.cache_misses in
      if h +. m = 0.0 then 0.0 else h /. (h +. m));
  Registry.pull_counter registry ~help:"compiled-plan cache hits"
    "wp_plan_cache_hits_total" (fun () ->
      float_of_int (Catalog.plan_cache_stats catalog).hits);
  Registry.pull_counter registry ~help:"compiled-plan cache misses"
    "wp_plan_cache_misses_total" (fun () ->
      float_of_int (Catalog.plan_cache_stats catalog).misses);
  {
    catalog;
    metrics;
    registry;
    default_k;
    default_deadline_ms;
    max_k;
    base_config = engine_config;
    slow_query_ms;
    slow_counter;
    state_mutex = Mutex.create ();
    totals;
    slow_log = [];
  }

let catalog t = t.catalog
let metrics t = t.metrics
let registry t = t.registry
let record_shed t = Metrics.record_shed t.metrics

let now_ns = Whirlpool.Clock.now_ns

let elapsed_ms_since t0 =
  Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6

(* [state_mutex] is always held through [with_state] so an exception
   inside a critical section cannot leak the lock (Sentinel's
   exception-safety rule checks for exactly this). *)
let with_state t f =
  Mutex.lock t.state_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.state_mutex) f

let ( let* ) = Result.bind

let bad msg = Result.Error (Protocol.Bad_request, msg)

let resolve_docs t (q : Protocol.query) =
  match q.doc with
  | Some name -> (
      match Catalog.find t.catalog name with
      | Some d -> Result.Ok [ d ]
      | None -> bad (Printf.sprintf "unknown document: %s" name))
  | None -> (
      match Catalog.docs t.catalog with
      | [] -> bad "the corpus is empty"
      | ds -> Result.Ok ds)

let resolve_k t (q : Protocol.query) =
  let k = Option.value q.k ~default:t.default_k in
  if k < 1 then bad (Printf.sprintf "k must be >= 1 (got %d)" k)
  else Result.Ok (min k t.max_k)

let resolve_algo t (q : Protocol.query) =
  match q.algo with
  | None -> Result.Ok t.base_config.Whirlpool.Engine.Config.algo
  | Some s -> (
      match Whirlpool.Engine.Config.algo_of_string s with
      | Some a -> Result.Ok a
      | None ->
          bad
            (Printf.sprintf "unknown algo %S (serveable: %s)" s
               (String.concat ", "
                  (List.map Whirlpool.Engine.Config.algo_to_string
                     Whirlpool.Engine.Config.all_algos))))

let resolve_routing (q : Protocol.query) =
  match q.routing with
  | None -> Result.Ok None
  | Some s -> (
      match Whirlpool.Strategy.routing_of_string s with
      | Some r -> Result.Ok (Some r)
      | None -> bad (Printf.sprintf "unknown routing %S" s))

let resolve_batch (q : Protocol.query) =
  match q.batch with
  | Some b when b < 1 -> bad (Printf.sprintf "batch must be >= 1 (got %d)" b)
  | other -> Result.Ok other

(* The per-request deadline, as the engines' cooperative-cancellation
   hook: checked at iteration boundaries, so expiry yields the current
   top-k flagged partial instead of an unbounded run. *)
let deadline_hook t (q : Protocol.query) ~t0 =
  match
    match q.deadline_ms with
    | Some ms -> Some ms
    | None -> t.default_deadline_ms
  with
  | None -> Whirlpool.Engine.never_stop
  | Some ms ->
      let deadline = Int64.add t0 (Int64.of_float (ms *. 1e6)) in
      fun () -> Int64.compare (now_ns ()) deadline >= 0

let note_totals t (stats : Whirlpool.Stats.t) =
  with_state t (fun () -> Whirlpool.Stats.add t.totals stats)

(* The per-request engine configuration: service defaults overridden by
   the request's knobs, plus the deadline hook and (when the slow-query
   log is armed) a fresh observability context. *)
let request_config t (q : Protocol.query) ~routing ~batch ~should_stop ~obs =
  let open Whirlpool.Engine.Config in
  let c = t.base_config in
  let c = match routing with None -> c | Some r -> with_routing r c in
  let c = match batch with None -> c | Some b -> with_batch b c in
  let c =
    match q.Protocol.use_cache with
    | None -> c
    | Some u -> with_use_cache u c
  in
  c |> with_should_stop should_stop |> with_obs obs

(* One engine run over one document: resolve the memoized plan — which
   travels with its persistent candidate cache, wired into the engine
   so memoized candidate derivations survive across requests — and
   run. *)
let run_doc t ~config ~algo ~k (doc : Catalog.doc) (q : Protocol.query) =
  let* cached =
    Result.map_error
      (function
        | Catalog.Bad_query m -> (Protocol.Bad_request, m)
        | Catalog.Rejected m -> (Protocol.Lint_rejected, m))
      (Catalog.plan_for t.catalog doc q.query)
  in
  let config =
    Whirlpool.Engine.Config.(
      config |> with_cache (Some cached.Catalog.cache) |> with_algo algo)
  in
  (* The twig backends read the catalog's per-document guide (built
     lazily on first twig query, shared thereafter); the adaptive
     engines never force it. *)
  let result =
    match algo with
    | Whirlpool.Engine.Config.Twig | Whirlpool.Engine.Config.Twig_seeded ->
        Wp_twig.Backend.run ~config
          ~guide:(Lazy.force doc.Catalog.dataguide)
          cached.Catalog.plan ~k
    | _ -> Wp_twig.Backend.run ~config cached.Catalog.plan ~k
  in
  note_totals t result.stats;
  Result.Ok result

(* Sequentially run a list of documents (one shard's slice, or the
   whole corpus when unsharded), folding answers tagged with their
   document.  [gather] is [None] on the unsharded path; on a shard
   thread it wires the cross-shard bound into every run and feeds each
   run's answer scores back. *)
let run_docs t ~config ~algo ~k ~should_stop ~gather docs
    (q : Protocol.query) =
  let config =
    match gather with
    | None -> config
    | Some g ->
        let open Whirlpool.Engine.Config in
        config
        |> with_prune_bound (Gather.bound_reader g)
        |> with_publish_threshold (fun th -> Gather.publish g th)
  in
  let stats = Whirlpool.Stats.create () in
  let partial = ref false in
  let* tagged =
    List.fold_left
      (fun acc (doc : Catalog.doc) ->
        let* acc = acc in
        (* Between documents of a merged query the deadline also
           applies: skip the remaining documents once it has passed. *)
        if should_stop () then begin
          partial := true;
          Result.Ok acc
        end
        else
          let* result = run_doc t ~config ~algo ~k doc q in
          if result.Whirlpool.Engine.partial then partial := true;
          Whirlpool.Stats.add stats result.stats;
          (match gather with
          | Some g ->
              Gather.note_scores g
                (List.map
                   (fun (e : Whirlpool.Topk_set.entry) -> e.score)
                   result.answers)
          | None -> ());
          Result.Ok
            (List.rev_append
               (List.map (fun e -> (doc, e)) result.answers)
               acc))
      (Result.Ok []) docs
  in
  Result.Ok (tagged, stats, !partial)

(* Scatter–gather: one thread per non-empty shard, each running its
   documents sequentially; the gather merges their answers and — when
   bound pushing is on — republishes the merged k-th score so a shard
   still running prunes against what the others already found.  Slots
   are written by exactly one thread each and read only after the
   joins; the shared bound lives behind the gather's own mutex. *)
let scatter_gather t ~config ~algo ~k ~should_stop ~push groups
    (q : Protocol.query) =
  let gather = Gather.create ~push ~k () in
  let n = List.length groups in
  let slots = Array.make n (Result.Ok ([], Whirlpool.Stats.create (), false)) in
  let run_group i docs =
    slots.(i) <-
      (match
         run_docs t ~config ~algo ~k ~should_stop ~gather:(Some gather) docs q
       with
      | r -> r
      | exception exn ->
          Result.Error
            ( Protocol.Internal,
              Printf.sprintf "internal error: %s" (Printexc.to_string exn) ))
  in
  let threads =
    List.mapi (fun i docs -> Thread.create (fun () -> run_group i docs) ())
      groups
  in
  List.iter Thread.join threads;
  let stats = Whirlpool.Stats.create () in
  let partial = ref false in
  let* tagged =
    Array.fold_left
      (fun acc slot ->
        let* acc = acc in
        let* group_tagged, group_stats, group_partial = slot in
        Whirlpool.Stats.add stats group_stats;
        if group_partial then partial := true;
        Result.Ok (List.rev_append group_tagged acc))
      (Result.Ok []) slots
  in
  Result.Ok (tagged, stats, !partial)

(* Group the resolved documents by shard, in shard order; a stable
   partition so the merged answer order stays deterministic. *)
let shard_groups docs =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (d : Catalog.doc) ->
      Hashtbl.replace tbl d.shard (d :: Option.value (Hashtbl.find_opt tbl d.shard) ~default:[]))
    docs;
  Hashtbl.fold (fun shard ds acc -> (shard, List.rev ds) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd

let run_query t (q : Protocol.query) ~t0 ~obs ~cancelled ~on_entry =
  let* docs = resolve_docs t q in
  let* k = resolve_k t q in
  let* algo = resolve_algo t q in
  let* routing = resolve_routing q in
  let* batch = resolve_batch q in
  let deadline = deadline_hook t q ~t0 in
  (* The run must also stop when the client is gone: a vanished
     connection cancels its in-flight query at the next iteration
     boundary instead of burning a worker to completion. *)
  let should_stop =
    match cancelled with
    | None -> deadline
    | Some gone -> fun () -> deadline () || gone ()
  in
  let config = request_config t q ~routing ~batch ~should_stop ~obs in
  (* Streaming is sound only when one document answers the query: a
     merged or scattered top-k can displace one document's certified
     entry with another's, so those stay buffered. *)
  let config =
    match (on_entry, docs) with
    | Some emit, [ (doc : Catalog.doc) ] ->
        Whirlpool.Engine.Config.with_on_certified (emit doc) config
    | _ -> config
  in
  let groups = shard_groups docs in
  let* tagged, stats, partial =
    match groups with
    | [] | [ _ ] ->
        run_docs t ~config ~algo ~k ~should_stop ~gather:None docs q
    | _ :: _ :: _ ->
        let push = Option.value q.bound_push ~default:true in
        scatter_gather t ~config ~algo ~k ~should_stop ~push groups q
  in
  let partial = ref partial in
  (* Merge across documents: best scores first, ties by document name
     then root id for a deterministic order. *)
  let merged =
    List.sort
      (fun ((d1 : Catalog.doc), (e1 : Whirlpool.Topk_set.entry))
           (d2, (e2 : Whirlpool.Topk_set.entry)) ->
        match Float.compare e2.score e1.score with
        | 0 -> (
            match String.compare d1.name d2.name with
            | 0 -> Int.compare e1.root e2.root
            | c -> c)
        | c -> c)
      tagged
  in
  let top = List.filteri (fun i _ -> i < k) merged in
  let answers =
    List.map
      (fun ((doc : Catalog.doc), (e : Whirlpool.Topk_set.entry)) ->
        let d = Wp_xml.Index.doc doc.index in
        {
          Protocol.doc = doc.name;
          root = e.root;
          dewey = Wp_xml.Dewey.to_string (Wp_xml.Doc.dewey d e.root);
          score = e.score;
          progress = e.progress;
        })
      top
  in
  Result.Ok (answers, stats, !partial)

let note_slow t (q : Protocol.query) ~elapsed_ms ~obs =
  match t.slow_query_ms with
  | Some threshold when elapsed_ms >= threshold ->
      Registry.incr t.slow_counter;
      let entry =
        {
          query = q.query;
          doc = q.doc;
          elapsed_ms;
          spans = Obs.span_tree_json obs;
          profile = Obs.profile_json obs;
        }
      in
      with_state t (fun () ->
          t.slow_log <-
            entry :: List.filteri (fun i _ -> i < slow_log_cap - 1) t.slow_log)
  | Some _ | None -> ()

let entry_answer (doc : Catalog.doc) (e : Whirlpool.Topk_set.entry) =
  let d = Wp_xml.Index.doc doc.Catalog.index in
  {
    Protocol.doc = doc.Catalog.name;
    root = e.root;
    dewey = Wp_xml.Dewey.to_string (Wp_xml.Doc.dewey d e.root);
    score = e.score;
    progress = e.progress;
  }

let handle_query_stream t ?cancelled ?on_part (q : Protocol.query) =
  let t0 = now_ns () in
  (* A context per request: the slow-query log wants the full span tree
     of exactly the offending request, so sampling is 1 and the cap
     bounds memory per request instead. *)
  let obs =
    match t.slow_query_ms with
    | Some _ -> Obs.create ()
    | None -> Obs.disabled
  in
  let streamed = ref 0 in
  let on_entry =
    match on_part with
    | None -> None
    | Some emit ->
        Some
          (fun doc e ->
            if !streamed = 0 then
              Metrics.record_ttfa t.metrics ~ms:(elapsed_ms_since t0);
            incr streamed;
            emit (entry_answer doc e))
  in
  let outcome =
    match run_query t q ~t0 ~obs ~cancelled ~on_entry with
    | r -> r
    | exception exn ->
        Result.Error
          ( Protocol.Internal,
            Printf.sprintf "internal error: %s" (Printexc.to_string exn) )
  in
  let elapsed_ms = elapsed_ms_since t0 in
  note_slow t q ~elapsed_ms ~obs;
  let response =
    match outcome with
    | Result.Ok (answers, stats, partial) ->
        Metrics.record t.metrics
          ~status:(if partial then `Partial else `Ok)
          ~latency_ms:elapsed_ms;
        Protocol.ok_response ~answers
          ~stats:(Whirlpool.Stats.to_json stats)
          ~partial ~id:q.id ~elapsed_ms ()
    | Result.Error (code, msg) ->
        Metrics.record t.metrics ~status:`Error ~latency_ms:elapsed_ms;
        Protocol.error_response ~id:q.id ~elapsed_ms ~code msg
  in
  (response, !streamed)

let handle_query t (q : Protocol.query) = fst (handle_query_stream t q)

let slow_queries t =
  let entries = with_state t (fun () -> t.slow_log) in
  Json.List
    (List.map
       (fun e ->
         Json.Obj
           ([ ("query", Json.String e.query) ]
           @ (match e.doc with
             | None -> []
             | Some d -> [ ("doc", Json.String d) ])
           @ [
               ("elapsed_ms", Json.Float e.elapsed_ms);
               ("profile", e.profile);
               ("spans", e.spans);
             ]))
       entries)

let metrics_json t =
  let open Json in
  let docs = Catalog.docs t.catalog in
  let nodes = List.fold_left (fun a (d : Catalog.doc) -> a + d.nodes) 0 docs in
  let pc = Catalog.plan_cache_stats t.catalog in
  let ech, ecm, slow =
    with_state t (fun () ->
        (t.totals.cache_hits, t.totals.cache_misses, List.length t.slow_log))
  in
  let cache_rate hits misses =
    let total = hits + misses in
    if total = 0 then 0.0 else float_of_int hits /. float_of_int total
  in
  Metrics.snapshot t.metrics
    ~extra:
      [
        ( "corpus",
          Obj
            [
              ("documents", Int (List.length docs));
              ("nodes", Int nodes);
              ("shards", Int (Catalog.shards t.catalog));
            ] );
        ( "plan_cache",
          Obj
            [
              ("size", Int pc.size);
              ("capacity", Int pc.capacity);
              ("hits", Int pc.hits);
              ("misses", Int pc.misses);
              ("evictions", Int pc.evictions);
              ("hit_rate", Float pc.hit_rate);
            ] );
        ( "engine_cache",
          Obj
            [
              ("hits", Int ech);
              ("misses", Int ecm);
              ("hit_rate", Float (cache_rate ech ecm));
            ] );
        ("slow_queries", Int slow);
      ]

let prometheus t = Registry.to_prometheus (Registry.snapshot t.registry)

let handle t (req : Protocol.request) =
  match req with
  | Protocol.Query q -> `Reply (handle_query t q)
  | Protocol.Metrics { id; format = Protocol.Json_format } ->
      `Reply
        (Protocol.ok_response ~metrics:(metrics_json t) ~id ~elapsed_ms:0.0 ())
  | Protocol.Metrics { id; format = Protocol.Prometheus } ->
      `Reply
        (Protocol.ok_response ~metrics_text:(prometheus t) ~id ~elapsed_ms:0.0
           ())
  | Protocol.Ping { id } ->
      `Reply (Protocol.ok_response ~id ~elapsed_ms:0.0 ())
  | Protocol.Hello { id; version } ->
      (* Transport-agnostic negotiation: meet at the highest version
         both sides speak.  A transport that cannot stream (the
         threaded tier) intercepts Hello itself and caps at 1. *)
      `Reply
        (Protocol.ok_response
           ~version:(min version Protocol.current_version)
           ~id ~elapsed_ms:0.0 ())
  | Protocol.Stop { id } ->
      `Stop (Protocol.ok_response ~id ~elapsed_ms:0.0 ())
