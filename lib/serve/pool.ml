type stats = { submitted : int; shed : int; executed : int; failed : int }

let mutex_name = "serve.pool.mutex"
let state_loc = "serve.pool.state"

(* Serving-layer extension of the engine's declared lock hierarchy: the
   pool mutex ranks above everything the engine takes, because pool code
   never holds it while running a job (and hence while the engine locks
   its queues or the top-k set). *)
let lock_rank name =
  if String.equal name mutex_name then Some 2
  else Whirlpool.Race.lock_rank name

module Make (S : Whirlpool.Sync.S) = struct
  type t = {
    queue_depth : int;
    jobs : (unit -> unit) Queue.t;
    mutex : S.mutex;
    work : S.condition;  (* signalled on submit and on shutdown *)
    drained : S.condition;  (* signalled when the winner finished joining *)
    mutable stopping : bool;
    mutable joined : bool;
    mutable submitted : int;
    mutable shed : int;
    mutable executed : int;
    mutable failed : int;
    mutable workers : S.handle list;
  }

  let with_lock t f =
    S.lock t.mutex;
    Fun.protect ~finally:(fun () -> S.unlock t.mutex) f

  (* Workers drain the queue; on shutdown they finish every accepted
     job before exiting (drain-then-join), so an accepted request is
     never silently dropped. *)
  let worker_loop t =
    let rec loop () =
      let job =
        with_lock t (fun () ->
            let rec next () =
              S.note_write state_loc;
              match Queue.take_opt t.jobs with
              | Some job -> Some job
              | None ->
                  if t.stopping then None
                  else begin
                    S.wait t.work t.mutex;
                    next ()
                  end
            in
            next ())
      in
      match job with
      | None -> ()
      | Some job ->
          let ok =
            match job () with () -> true | exception _ -> false
          in
          with_lock t (fun () ->
              S.note_write state_loc;
              if ok then t.executed <- t.executed + 1
              else t.failed <- t.failed + 1);
          loop ()
    in
    loop ()

  let create ~workers ~queue_depth () =
    if workers < 1 then invalid_arg "Pool.create: workers >= 1";
    if queue_depth < 1 then invalid_arg "Pool.create: queue_depth >= 1";
    let t =
      {
        queue_depth;
        jobs = Queue.create ();
        mutex = S.mutex mutex_name;
        work = S.condition "serve.pool.work";
        drained = S.condition "serve.pool.drained";
        stopping = false;
        joined = false;
        submitted = 0;
        shed = 0;
        executed = 0;
        failed = 0;
        workers = [];
      }
    in
    t.workers <-
      List.init workers (fun i ->
          S.spawn (Printf.sprintf "serve.worker.%d" i) (fun () ->
              worker_loop t));
    t

  let submit t job =
    with_lock t (fun () ->
        S.note_write state_loc;
        if t.stopping || Queue.length t.jobs >= t.queue_depth then begin
          t.shed <- t.shed + 1;
          false
        end
        else begin
          Queue.push job t.jobs;
          t.submitted <- t.submitted + 1;
          S.signal t.work;
          true
        end)

  let shutdown t =
    let winner =
      with_lock t (fun () ->
          S.note_write state_loc;
          if t.stopping then false
          else begin
            t.stopping <- true;
            S.broadcast t.work;
            true
          end)
    in
    if winner then begin
      List.iter S.join t.workers;
      with_lock t (fun () ->
          S.note_write state_loc;
          t.joined <- true;
          S.broadcast t.drained)
    end
    else
      with_lock t (fun () ->
          let rec wait () =
            S.note_write state_loc;
            if not t.joined then begin
              S.wait t.drained t.mutex;
              wait ()
            end
          in
          wait ())

  let stats t =
    with_lock t (fun () ->
        S.note_read state_loc;
        {
          submitted = t.submitted;
          shed = t.shed;
          executed = t.executed;
          failed = t.failed;
        })
end

module Real = Make (Whirlpool.Sync.Real)
