(** Service-level metrics: request counters, latency percentiles, shed
    count.

    One instance per service, updated concurrently by worker domains
    and connection threads under an internal mutex.  Latencies are kept
    in a bounded ring of the most recent {!window} samples, so the
    percentile snapshot reflects recent behaviour and memory stays
    constant under sustained load.  Every derived figure (qps, rates,
    percentiles) is guarded against empty denominators — a snapshot of
    a fresh instance contains only finite numbers, never [nan]/[inf]. *)

type t

val window : int
(** Ring capacity for latency samples (8192). *)

val create : unit -> t

val record :
  t -> status:[ `Ok | `Partial | `Error ] -> latency_ms:float -> unit
(** Account one completed request. *)

val record_shed : t -> unit
(** Account one request refused at admission. *)

val record_ttfa : t -> ms:float -> unit
(** Account a streamed query's time to first certified answer —
    recorded once per query, at the moment its first [Part] frame is
    handed to the connection.  Kept in its own ring; a query that
    streams nothing records nothing. *)

val percentile : float list -> float -> float
(** [percentile samples q] with [q] in [0, 1] — nearest-rank percentile
    of the samples; [0.] on an empty list.  Exposed for the snapshot
    tests. *)

val snapshot : t -> extra:(string * Wp_json.Json.t) list -> Wp_json.Json.t
(** JSON object: uptime, request counters by status, shed count, qps,
    p50/p95/p99/max/mean latency (milliseconds) over the sample
    window, and the time-to-first-answer percentiles ([ttfa_ms]),
    followed by the [extra] fields (cache and pool figures the service
    contributes). *)

val register : t -> Wp_obs.Registry.t -> unit
(** Publish this instance through a metrics registry:
    [wp_serve_requests_total{status=...}], [wp_serve_shed_total], the
    latency percentiles and the [wp_serve_ttfa_ms{quantile=...}]
    time-to-first-answer percentiles are pull-style (read at snapshot
    time), and
    a [wp_serve_latency_milliseconds] histogram starts receiving every
    subsequent {!record}'s latency.  The JSON {!snapshot} is unchanged;
    both read the same underlying state. *)
