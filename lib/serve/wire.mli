(** Transport — length-prefixed JSON frames over Unix-domain sockets.

    Every frame is a 4-byte big-endian payload length followed by that
    many bytes of UTF-8 JSON ({!Protocol}).  The server accepts
    connections on a socket path, reads frames on one lightweight
    thread per connection, and runs queries on the shared worker pool
    ({!Pool.Real}) — cheap control operations (ping, metrics, stop)
    are answered inline by the connection thread, so a saturated pool
    never makes the service unobservable.  When the pool sheds a query
    the connection thread replies [Overloaded] immediately.

    A [Stop] request (or {!request_stop}) triggers a graceful
    shutdown: stop accepting, drain every already accepted job, answer
    it, then close connections and remove the socket file.

    This tier cannot interleave stream frames with its blocking
    per-connection reads, so it answers [Hello] with version 1 — every
    reply stays buffered.  The event-driven tier ({!Event}) serves the
    same protocol at v2 with streaming; this one is kept as the
    baseline the serve benchmarks compare against.  Client-side
    helpers live in {!Client}. *)

val max_frame : int
(** Frame payload cap (16 MiB); longer frames are a protocol error. *)

val write_frame : Unix.file_descr -> string -> (unit, string) result
val read_frame : Unix.file_descr -> (string, string) result
(** Exposed for tests; [Error] on EOF, short reads or oversized
    frames. *)

(** {1 Server} *)

type server

val serve :
  ?workers:int ->
  ?queue_depth:int ->
  ?on_ready:(server -> unit) ->
  socket:string ->
  service:Service.t ->
  unit ->
  (unit, string) result
(** Bind [socket] (an existing socket file is replaced), then accept
    and serve until a [Stop] request or {!request_stop}.  Blocks the
    calling thread for the server's lifetime; [on_ready] runs once the
    socket is listening (install signal handlers, spawn load there).
    [workers] (default [Domain.recommended_domain_count]) and
    [queue_depth] (default 64) size the pool.  [Error] when the socket
    cannot be bound. *)

val request_stop : server -> unit
(** Begin a graceful shutdown from any thread (idempotent). *)

val pool_stats : server -> Pool.stats
