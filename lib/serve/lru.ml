(* Hash table + intrusive doubly-linked recency list; [head] is the
   most-recently-used end, [tail] the eviction end. *)

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable prev : ('k, 'v) node option;  (* toward head *)
  mutable next : ('k, 'v) node option;  (* toward tail *)
}

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity >= 1";
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let hit_rate t =
  let total = t.hits + t.misses in
  if total = 0 then 0.0 else float_of_int t.hits /. float_of_int total

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      touch t node;
      Some node.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t key = Hashtbl.mem t.table key

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
      unlink t node;
      Hashtbl.remove t.table node.key;
      t.evictions <- t.evictions + 1

let add t key value =
  match Hashtbl.find_opt t.table key with
  | Some node ->
      node.value <- value;
      touch t node
  | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key; value; prev = None; next = None } in
      Hashtbl.replace t.table key node;
      push_front t node

let find_or_add t key ~compute =
  match find t key with
  | Some v -> v
  | None ->
      let v = compute key in
      add t key v;
      v

let keys t =
  let rec go acc = function
    | None -> List.rev acc
    | Some node -> go (node.key :: acc) node.next
  in
  go [] t.head
