type source = Xml | Snapshot | Mapped

type doc = {
  name : string;
  path : string;
  index : Wp_xml.Index.t;
  nodes : int;
  source : source;
  shard : int;
  dataguide : Wp_stats.Dataguide.t Lazy.t;
}

(* A compiled plan travels with its own candidate cache: cache entries
   are keyed (server, root) and their contents depend on the plan's
   specs and score table, so the cache is sound exactly at plan
   granularity — (query, document), which also pins it to one shard.
   The cache carries a real mutex of its own (rank 0, leaf-only, the
   same discipline as an engine-private cache) because concurrent
   requests for the same warm plan share it. *)
type cached_plan = {
  plan : Whirlpool.Plan.t;
  cache : Whirlpool.Candidate_cache.t;
}

type t = {
  mutex : Mutex.t;
  shards : int;
  docs : (string, doc) Hashtbl.t;
  mutable order : string list;  (* newest first *)
  plans : (string * string, cached_plan) Lru.t;  (* (query, doc name) *)
  config : Wp_relax.Relaxation.config;
}

type cache_stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;
}

let create ?(shards = 1) ?(plan_cache = 128) ?(config = Wp_relax.Relaxation.all)
    () =
  if shards < 1 then invalid_arg "Catalog.create: shards >= 1";
  {
    mutex = Mutex.create ();
    shards;
    docs = Hashtbl.create 16;
    order = [];
    plans = Lru.create ~capacity:plan_cache;
    config;
  }

let shards t = t.shards

(* Stable shard assignment by document name: the same corpus loads into
   the same shards in any order, and a reload lands where it was. *)
let shard_of t name = Hashtbl.hash name mod t.shards

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Documents load from XML, from a binary snapshot (.wpdoc) or from a
   compacted on-disk index (.wpidx, memory-mapped), detected by
   content — the sniffing the CLI's one-shot loader used to inline. *)
let read_index path =
  match open_in_bin path with
  | exception Sys_error m -> Error m
  | ic ->
      let probe_len =
        max
          (String.length Wp_xml.Doc_io.magic)
          (String.length Wp_storage.Index_file.magic)
      in
      let probe =
        try really_input_string ic probe_len with End_of_file -> ""
      in
      close_in_noerr ic;
      if String.starts_with ~prefix:Wp_storage.Index_file.magic probe then
        match Wp_storage.Index_file.open_index path with
        | Ok h -> Ok (Wp_storage.Index_file.index h, Mapped)
        | Error e -> Error (Wp_storage.Index_file.error_message e)
      else if String.starts_with ~prefix:Wp_xml.Doc_io.magic probe then
        match Wp_xml.Doc_io.load path with
        | d -> Ok (Wp_xml.Index.build d, Snapshot)
        | exception Failure m -> Error (Printf.sprintf "%s: %s" path m)
      else
        match Wp_xml.Doc.of_tree (Wp_xml.Parser.parse_file path) with
        | d -> Ok (Wp_xml.Index.build d, Xml)
        | exception Wp_xml.Parser.Error { position; message } ->
            Error
              (Printf.sprintf "%s: parse error at byte %d: %s" path position
                 message)
        | exception Sys_error m -> Error m

let load_file t ?name path =
  let name = match name with Some n -> n | None -> Filename.basename path in
  match read_index path with
  | Error _ as e -> e
  | Ok (index, source) ->
      let doc =
        { name; path; index; nodes = Wp_xml.Doc.size (Wp_xml.Index.doc index);
          source; shard = shard_of t name;
          dataguide = lazy (Wp_stats.Dataguide.of_index index) }
      in
      with_lock t (fun () ->
          if not (Hashtbl.mem t.docs name) then t.order <- name :: t.order;
          Hashtbl.replace t.docs name doc);
      Ok doc

let corpus_file f =
  Filename.check_suffix f ".xml"
  || Filename.check_suffix f ".wpdoc"
  || Filename.check_suffix f ".wpidx"

let load_dir t dir =
  match Sys.readdir dir with
  | exception Sys_error m -> Error m
  | entries ->
      let files =
        Array.to_list entries |> List.filter corpus_file |> List.sort compare
      in
      if files = [] then
        Error (Printf.sprintf "%s: no .xml, .wpdoc or .wpidx files" dir)
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | f :: rest -> (
              match load_file t (Filename.concat dir f) with
              | Ok doc -> go (doc :: acc) rest
              | Error _ as e -> e)
        in
        go [] files

let docs t =
  with_lock t (fun () ->
      List.rev_map (fun name -> Hashtbl.find t.docs name) t.order)

let docs_in_shard t shard =
  List.filter (fun d -> d.shard = shard) (docs t)

let find t name = with_lock t (fun () -> Hashtbl.find_opt t.docs name)

type plan_error =
  | Bad_query of string
  | Rejected of string

let plan_error_message = function Bad_query m | Rejected m -> m

let plan_for t doc query =
  with_lock t (fun () ->
      match Lru.find t.plans (query, doc.name) with
      | Some cached -> Ok cached
      | None -> (
          match Wp_pattern.Xpath_parser.parse_opt query with
          | None ->
              Error (Bad_query (Printf.sprintf "cannot parse query: %s" query))
          | Some pattern -> (
              match
                Whirlpool.Plan.compile doc.index t.config pattern
              with
              | plan ->
                  (* The engines re-lint at entry; reject here so a bad
                     plan never occupies a cache slot. *)
                  (match Whirlpool.Engine.validate_plan plan with
                  | () ->
                      let m = Mutex.create () in
                      let cache =
                        Whirlpool.Candidate_cache.create
                          ~lock:(fun () -> Mutex.lock m)
                          ~unlock:(fun () -> Mutex.unlock m)
                          ()
                      in
                      let cached = { plan; cache } in
                      Lru.add t.plans (query, doc.name) cached;
                      Ok cached
                  | exception Wp_analysis.Lint.Rejected diags ->
                      Error
                        (Rejected
                           (Format.asprintf "query rejected by lint:@ %a"
                              Wp_analysis.Diagnostic.pp_list diags)))
              | exception Invalid_argument m ->
                  Error
                    (Bad_query (Printf.sprintf "cannot compile query: %s" m)))))

let plan_cache_stats t =
  with_lock t (fun () ->
      {
        size = Lru.length t.plans;
        capacity = Lru.capacity t.plans;
        hits = Lru.hits t.plans;
        misses = Lru.misses t.plans;
        evictions = Lru.evictions t.plans;
        hit_rate = Lru.hit_rate t.plans;
      })
