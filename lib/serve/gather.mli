(** Scatter–gather bound sharing for sharded top-k serving.

    One [Gather.t] lives for the duration of one scattered query.  Each
    shard thread runs the engine over its documents with two hooks
    wired here: [publish_threshold] feeds the shard's own top-k
    threshold in, and [prune_bound] reads the tightest floor any shard
    has established — so a partial match anywhere in the corpus whose
    maximum possible score cannot strictly beat the merged k-th score
    is pruned without being processed, the paper's adaptive pruning
    lifted across shards.

    Soundness: a shard's threshold means "k candidate answers of the
    merged query score at least this", so the merged k-th score can
    only be higher — pruning with strict [<] against the maximum of
    all published floors never removes a merged-top-k answer (ties
    survive), leaving sharded answers identical to unsharded.  The
    bound is monotone non-decreasing, which is what makes the relaxed
    (throttled, stale-tolerant) reads of {!Make.bound_reader} safe.

    Functorized over {!Whirlpool.Sync.S} like the engine and the pool,
    so Raceway schedules can drive shard interleavings
    deterministically; the toplevel [include] instantiates
    {!Whirlpool.Sync.Real} for production. *)

val mutex_name : string
(** ["serve.gather.mutex"] — the gather's mutex in race findings. *)

val state_loc : string
(** ["serve.gather.state"] — the guarded bound/top-scores state. *)

val lock_rank : string -> int option
(** {!Pool.lock_rank} extended with the gather mutex at leaf rank 0
    (it is never held while acquiring any other lock). *)

module Make (S : Whirlpool.Sync.S) : sig
  type t

  val create : ?push:bool -> k:int -> unit -> t
  (** A gather for one query with merge arity [k].  [push] (default
      true) false disables bound sharing: {!publish} and {!note_scores}
      become no-ops and {!bound_reader} never prunes — the
      scatter-only baseline the benches compare against.
      @raise Invalid_argument if [k < 1]. *)

  val publish : t -> float -> unit
  (** Tighten the merged floor with a shard's top-k threshold (engine
      [publish_threshold] hook).  Monotone: a value below the current
      floor is a no-op. *)

  val note_scores : t -> float list -> unit
  (** Fold a completed run's answer scores into the merged best-k; once
      [k] scores are known the merged k-th becomes the floor. *)

  val bound_reader : t -> unit -> float
  (** A fresh bound-reading closure for one shard thread (engine
      [prune_bound] hook): caches the last value, refreshing under the
      mutex every 64th call — stale reads under-prune, never
      over-prune. *)

  val bound : t -> float
  (** The current floor, read under the mutex. *)

  val publishes : t -> int
  (** How many times the floor tightened — observability for tests and
      metrics. *)
end

include module type of Make (Whirlpool.Sync.Real)
