module Json = Wp_json.Json

type error =
  | Connect_failed of string
  | Io of string
  | Protocol_violation of string

let error_to_string = function
  | Connect_failed m -> "cannot connect: " ^ m
  | Io m -> "i/o error: " ^ m
  | Protocol_violation m -> "protocol violation: " ^ m

type t = { fd : Unix.file_descr; mutable version : int }

let version t = t.version

let ( let* ) = Result.bind

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t req =
  let payload = Json.to_string (Protocol.request_to_json req) in
  Result.map_error (fun m -> Io m) (Wire.write_frame t.fd payload)

let read_reply t =
  let* raw = Result.map_error (fun m -> Io m) (Wire.read_frame t.fd) in
  Result.map_error (fun m -> Protocol_violation m) (Protocol.parse_frame raw)

(* One request, one streamed reply: [Part] frames go to [on_part] as
   they arrive; the terminal [Done] response is returned.  On a v1
   connection the server sends a single [Done], so [on_part] simply
   never fires — the same code path serves both versions. *)
let stream t ~on_part req =
  let* () = send t req in
  let rec drain () =
    let* frame = read_reply t in
    match frame with
    | Protocol.Part { answer; _ } ->
        on_part answer;
        drain ()
    | Protocol.Done r -> Result.Ok r
  in
  drain ()
[@@wp.bounded
  "one recursive step per received frame; the server closes every \
   streamed reply with a terminal Done, and a dropped connection \
   surfaces as an Io error from read_frame"]

(* Buffered call: the [Done] frame always carries the complete answer
   list (streamed prefix included), so discarding the parts loses
   nothing. *)
let call t req = stream t ~on_part:(fun (_ : Protocol.answer) -> ()) req

let connect ?(version = Protocol.current_version) path =
  if version < 1 then invalid_arg "Client.connect: version >= 1";
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) ->
      Result.Error (Connect_failed (Unix.error_message e))
  | fd -> (
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Result.Error
            (Connect_failed
               (Printf.sprintf "%s: %s" path (Unix.error_message e)))
      | () ->
          let t = { fd; version = 1 } in
          if version = 1 then Result.Ok t
          else begin
            (* Negotiate: the server answers with the highest version
               both sides speak; a v1-only server (or one predating
               Hello) leaves the connection at 1. *)
            match call t (Protocol.Hello { id = 0; version }) with
            | Result.Ok reply ->
                t.version <- (match reply.Protocol.version with
                  | Some v when v >= 1 -> min v version
                  | Some _ | None -> 1);
                Result.Ok t
            | Result.Error e ->
                close t;
                Result.Error e
          end)
