(** The corpus catalog — documents loaded once, plans compiled once.

    A long-lived query service amortizes the two expensive per-query
    steps of the one-shot CLI: parsing/indexing the document, and
    compiling the (query, document) plan with its sampled routing
    estimates.  The catalog keeps every document's {!Wp_xml.Index}
    warm for the life of the process and memoizes compiled plans in a
    bounded {!Lru} cache keyed by (query text, document name).

    All operations are thread-safe: worker domains resolve documents
    and plans concurrently under the catalog's internal mutex
    (compilation is serialized, which keeps a thundering herd on a cold
    plan from compiling it once per worker). *)

type doc = {
  name : string;  (** corpus-unique name clients address (file basename) *)
  path : string;
  index : Wp_xml.Index.t;
  nodes : int;
  snapshot : bool;  (** loaded from a [.wpdoc] binary snapshot *)
}

type t

val create :
  ?plan_cache:int ->
  ?config:Wp_relax.Relaxation.config ->
  unit ->
  t
(** [plan_cache] (default 128) bounds the compiled-plan LRU; [config]
    (default all relaxations) applies to every compiled plan. *)

val read_index : string -> (Wp_xml.Index.t * bool, string) result
(** Load and index a document from an XML file or a binary snapshot
    (detected by content); the flag is true for a snapshot.  The
    catalog-independent loader the CLI also uses; [Error] carries a
    printable message. *)

val load_file : t -> ?name:string -> string -> (doc, string) result
(** Load one document into the corpus.  [name] defaults to the file's
    basename; reloading an existing name replaces the document. *)

val load_dir : t -> string -> (doc list, string) result
(** Load every [*.xml] and [*.wpdoc] file of a directory, in name
    order.  [Error] on an unreadable directory or if any file fails to
    load; on success the list of loaded documents. *)

val docs : t -> doc list
(** Loaded documents, in load order. *)

val find : t -> string -> doc option

(** Why a query has no plan: [Bad_query] for parse/compile failures
    (the client's request is malformed), [Rejected] when the static
    analyzer refused a well-formed query
    ({!Wp_analysis.Lint.Rejected}) — the service maps them to the
    [bad_request] / [lint_rejected] wire codes respectively. *)
type plan_error =
  | Bad_query of string
  | Rejected of string

val plan_error_message : plan_error -> string

val plan_for : t -> doc -> string -> (Whirlpool.Plan.t, plan_error) result
(** Compiled plan for a query string against a document, served from
    the plan cache when warm; rejected plans are not cached. *)

type cache_stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;  (** in [0, 1]; [0.] before the first lookup *)
}

val plan_cache_stats : t -> cache_stats
