(** The corpus catalog — documents loaded once, plans compiled once.

    A long-lived query service amortizes the expensive per-query steps
    of the one-shot CLI: parsing/indexing the document (or O(1)
    memory-mapping a compacted [.wpidx] index), and compiling the
    (query, document) plan with its sampled routing estimates.  The
    catalog keeps every document's {!Wp_xml.Index} warm for the life of
    the process and memoizes compiled plans — each with a persistent
    {!Whirlpool.Candidate_cache} shared by every request that reuses
    the plan — in a bounded {!Lru} cache keyed by (query text, document
    name).

    Documents are statically partitioned into [shards] shards by a hash
    of their name; {!Wp_serve.Service} runs a query as a scatter over
    the non-empty shards and a gather that merges their top-k answers
    (pushing the merged k-th score back to still-running shards as a
    prune bound).

    All operations are thread-safe: worker domains resolve documents
    and plans concurrently under the catalog's internal mutex
    (compilation is serialized, which keeps a thundering herd on a cold
    plan from compiling it once per worker). *)

(** How a document entered the corpus: parsed from XML, restored from a
    [.wpdoc] binary snapshot, or memory-mapped from a compacted
    [.wpidx] on-disk index ({!Wp_storage.Index_file}). *)
type source = Xml | Snapshot | Mapped

type doc = {
  name : string;  (** corpus-unique name clients address (file basename) *)
  path : string;
  index : Wp_xml.Index.t;
  nodes : int;
  source : source;
  shard : int;  (** [Hashtbl.hash name mod shards] — stable across loads *)
  dataguide : Wp_stats.Dataguide.t Lazy.t;
      (** the document's annotated strong dataguide, built on first
          force (a twig-backend query) and cached next to the warm
          index for the life of the catalog entry *)
}

type t

val create :
  ?shards:int ->
  ?plan_cache:int ->
  ?config:Wp_relax.Relaxation.config ->
  unit ->
  t
(** [shards] (default 1) partitions the corpus for scatter–gather
    serving; [plan_cache] (default 128) bounds the compiled-plan LRU;
    [config] (default all relaxations) applies to every compiled plan.
    @raise Invalid_argument if [shards < 1]. *)

val shards : t -> int

val shard_of : t -> string -> int
(** The shard a document of the given name belongs (or would belong)
    to. *)

val read_index : string -> (Wp_xml.Index.t * source, string) result
(** Load and index a document from an XML file, a binary snapshot or a
    [.wpidx] on-disk index (detected by content).  The
    catalog-independent loader the CLI also uses; [Error] carries a
    printable message. *)

val load_file : t -> ?name:string -> string -> (doc, string) result
(** Load one document into the corpus.  [name] defaults to the file's
    basename; reloading an existing name replaces the document. *)

val load_dir : t -> string -> (doc list, string) result
(** Load every [*.xml], [*.wpdoc] and [*.wpidx] file of a directory, in
    name order.  [Error] on an unreadable directory or if any file
    fails to load; on success the list of loaded documents. *)

val docs : t -> doc list
(** Loaded documents, in load order. *)

val docs_in_shard : t -> int -> doc list
(** The documents of one shard, in load order. *)

val find : t -> string -> doc option

(** Why a query has no plan: [Bad_query] for parse/compile failures
    (the client's request is malformed), [Rejected] when the static
    analyzer refused a well-formed query
    ({!Wp_analysis.Lint.Rejected}) — the service maps them to the
    [bad_request] / [lint_rejected] wire codes respectively. *)
type plan_error =
  | Bad_query of string
  | Rejected of string

val plan_error_message : plan_error -> string

(** A memoized plan and the candidate cache that persists with it
    across requests.  Cache entries are (server, root)-keyed and
    plan-dependent, so plan granularity — (query, document) — is
    exactly the scope at which sharing them is sound; the cache
    synchronizes itself (own leaf-rank mutex) for concurrent requests
    on the same warm plan. *)
type cached_plan = {
  plan : Whirlpool.Plan.t;
  cache : Whirlpool.Candidate_cache.t;
}

val plan_for : t -> doc -> string -> (cached_plan, plan_error) result
(** Compiled plan (and its persistent candidate cache) for a query
    string against a document, served from the plan cache when warm;
    rejected plans are not cached. *)

type cache_stats = {
  size : int;
  capacity : int;
  hits : int;
  misses : int;
  evictions : int;
  hit_rate : float;  (** in [0, 1]; [0.] before the first lookup *)
}

val plan_cache_stats : t -> cache_stats
