(* The event-driven serve tier.

   One loop thread multiplexes every connection with [Unix.select]:
   non-blocking reads feed per-connection buffers, complete frames are
   parsed and dispatched, and replies drain from per-connection
   outboxes when the socket is writable.  The bounded worker pool is
   kept strictly for query execution — the loop thread answers control
   operations (ping, metrics, hello, stop) inline, so a saturated pool
   never makes the service unobservable, and it never blocks on any
   one connection, so N connections cost one thread instead of N.

   Workers communicate with the loop only through outboxes (a
   mutex-guarded byte buffer per connection) plus a self-pipe write
   that wakes the select; they never touch a socket.  That makes
   streaming safe from any domain: the engines' [on_certified] hook —
   which the multi-threaded engine fires from its router domain —
   simply appends a [Part] frame and wakes the loop.

   Fd hygiene on abnormal disconnect: every connection fd stays in the
   read set even while its query runs, so a client that vanishes
   mid-stream surfaces as EOF immediately; the loop closes the fd,
   flips the connection's [cancelled] flag — or-ed into the engine's
   [should_stop], cancelling the run at its next iteration boundary —
   and holds the connection slot until the in-flight count drains, so
   no socket and no slot ever leaks to a dead client.

   Lock discipline matches the rest of the tier: every mutex is held
   through [with_lock] (exception-safe), critical sections only touch
   buffers and counters — all socket I/O happens outside any lock. *)

module Json = Wp_json.Json

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

type conn_kind = Wire_conn | Http_conn

type conn = {
  fd : Unix.file_descr;
  kind : conn_kind;
  rbuf : Buffer.t;  (* loop thread only *)
  omutex : Mutex.t;  (* guards outbox, inflight, close_after_flush *)
  outbox : Buffer.t;  (* bytes awaiting a writable socket *)
  cancelled : bool Atomic.t;  (* read by should_stop on worker domains *)
  mutable inflight : int;  (* queries submitted, replies not yet queued *)
  mutable close_after_flush : bool;  (* HTTP: one reply, then close *)
  mutable version : int;  (* negotiated protocol version; loop thread *)
  mutable gone : bool;  (* loop thread: fd closed, slot held until drain *)
  mutable http_dispatched : bool;  (* loop thread *)
}

type server = {
  socket : string;
  listener : Unix.file_descr;
  http_listener : Unix.file_descr option;
  service : Service.t;
  pool : Pool.Real.t;
  wake_r : Unix.file_descr;  (* self-pipe: workers wake the select *)
  wake_w : Unix.file_descr;
  mutex : Mutex.t;  (* guards stopping + conns *)
  mutable stopping : bool;
  mutable conns : conn list;
}

let pool_stats server = Pool.Real.stats server.pool
let conn_count server = with_lock server.mutex (fun () -> List.length server.conns)

let http_port server =
  match server.http_listener with
  | None -> None
  | Some fd -> (
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> Some port
      | Unix.ADDR_UNIX _ -> None)

(* Wake the loop from any thread.  The pipe is non-blocking: a full
   pipe means a wake-up is already pending, which is all we need. *)
let wake server =
  let b = Bytes.make 1 '!' in
  match Unix.write server.wake_w b 0 1 with
  | _ -> ()
  | exception Unix.Unix_error _ -> ()

let request_stop server =
  with_lock server.mutex (fun () -> server.stopping <- true);
  wake server

(* --- enqueueing output --- *)

let frame_string payload =
  let n = String.length payload in
  let buf = Bytes.create (4 + n) in
  Bytes.set buf 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (n land 0xff));
  Bytes.blit_string payload 0 buf 4 n;
  Bytes.unsafe_to_string buf

(* Append one wire frame to the connection's outbox.  Callable from any
   thread; the caller wakes the loop when not already on it. *)
let enqueue_json conn json =
  let payload = Json.to_string json in
  if String.length payload <= Wire.max_frame then
    let framed = frame_string payload in
    with_lock conn.omutex (fun () -> Buffer.add_string conn.outbox framed)

let send_response conn resp =
  enqueue_json conn (Protocol.response_to_json resp)

(* --- disconnect / reclaim --- *)

let disconnect conn =
  if not conn.gone then begin
    conn.gone <- true;
    Atomic.set conn.cancelled true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

(* --- wire dispatch (loop thread) --- *)

let submit_query server conn (q : Protocol.query) =
  let version = conn.version in
  with_lock conn.omutex (fun () -> conn.inflight <- conn.inflight + 1);
  let on_part =
    if version >= 2 then begin
      let seq = ref 0 in
      Some
        (fun answer ->
          let frame = Protocol.Part { id = q.id; seq = !seq; answer } in
          incr seq;
          enqueue_json conn (Protocol.frame_to_json frame);
          wake server)
    end
    else None
  in
  let job () =
    let cancelled () = Atomic.get conn.cancelled in
    let resp, _streamed =
      Service.handle_query_stream server.service ~cancelled ?on_part q
    in
    enqueue_json conn
      (if version >= 2 then Protocol.frame_to_json (Protocol.Done resp)
       else Protocol.response_to_json resp);
    with_lock conn.omutex (fun () -> conn.inflight <- conn.inflight - 1);
    wake server
  in
  if not (Pool.Real.submit server.pool job) then begin
    with_lock conn.omutex (fun () -> conn.inflight <- conn.inflight - 1);
    Service.record_shed server.service;
    send_response conn (Protocol.overloaded_response ~id:q.id)
  end

let dispatch_wire server conn payload =
  match Protocol.parse_request payload with
  | Result.Error msg ->
      send_response conn (Protocol.error_response ~id:0 ("bad request: " ^ msg))
  | Result.Ok (Protocol.Hello { id; version }) ->
      conn.version <- min version Protocol.current_version;
      send_response conn
        (Protocol.ok_response ~version:conn.version ~id ~elapsed_ms:0.0 ())
  | Result.Ok (Protocol.Query q) ->
      if with_lock server.mutex (fun () -> server.stopping) then begin
        Service.record_shed server.service;
        send_response conn (Protocol.overloaded_response ~id:q.id)
      end
      else submit_query server conn q
  | Result.Ok req -> (
      match Service.handle server.service req with
      | `Reply r -> send_response conn r
      | `Stop r ->
          send_response conn r;
          with_lock server.mutex (fun () -> server.stopping <- true))

(* --- HTTP gateway (same loop) --- *)

let http_response_text ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

let http_reply conn ~status ~content_type body =
  let text = http_response_text ~status ~content_type body in
  with_lock conn.omutex (fun () ->
      Buffer.add_string conn.outbox text;
      conn.close_after_flush <- true)

let http_reply_json conn ~status json =
  http_reply conn ~status ~content_type:"application/json"
    (Json.to_string json)

let http_status_of (resp : Protocol.response) =
  match resp.Protocol.status with
  | Protocol.Ok | Protocol.Partial -> "200 OK"
  | Protocol.Overloaded -> "503 Service Unavailable"
  | Protocol.Error -> (
      match resp.Protocol.code with
      | Some Protocol.Bad_request | Some Protocol.Lint_rejected ->
          "400 Bad Request"
      | Some _ | None -> "500 Internal Server Error")

let http_submit_query server conn (q : Protocol.query) =
  with_lock conn.omutex (fun () -> conn.inflight <- conn.inflight + 1);
  let job () =
    let cancelled () = Atomic.get conn.cancelled in
    let resp, _streamed =
      Service.handle_query_stream server.service ~cancelled q
    in
    let body = Json.to_string (Protocol.response_to_json resp) in
    let text =
      http_response_text ~status:(http_status_of resp)
        ~content_type:"application/json" body
    in
    with_lock conn.omutex (fun () ->
        Buffer.add_string conn.outbox text;
        conn.close_after_flush <- true;
        conn.inflight <- conn.inflight - 1);
    wake server
  in
  if not (Pool.Real.submit server.pool job) then begin
    with_lock conn.omutex (fun () -> conn.inflight <- conn.inflight - 1);
    Service.record_shed server.service;
    http_reply_json conn ~status:"503 Service Unavailable"
      (Protocol.response_to_json (Protocol.overloaded_response ~id:0))
  end

let http_error conn ~status msg =
  http_reply_json conn ~status
    (Json.Obj [ ("error", Json.String msg) ])

(* The /query body is the wire query object without the envelope: [op]
   defaults to "query" and [id] to 0, so
   [curl -d '{"query":"//a[./b]"}' :port/query] just works, while a
   full wire request body is accepted unchanged. *)
let http_query_request body =
  match Json.of_string body with
  | Result.Error msg -> Result.Error ("body is not JSON: " ^ msg)
  | Result.Ok (Json.Obj fields) ->
      let add name v fs =
        if List.mem_assoc name fs then fs else (name, v) :: fs
      in
      let fields =
        fields
        |> add "op" (Json.String "query")
        |> add "id" (Json.Int 0)
      in
      Protocol.request_of_json (Json.Obj fields)
  | Result.Ok _ -> Result.Error "body must be a JSON object"

let http_route server conn ~meth ~path ~body =
  match (meth, path) with
  | "GET", "/healthz" ->
      http_reply conn ~status:"200 OK" ~content_type:"text/plain" "ok\n"
  | "GET", "/metrics" ->
      http_reply conn ~status:"200 OK"
        ~content_type:"text/plain; version=0.0.4"
        (Service.prometheus server.service)
  | "GET", "/metrics.json" ->
      http_reply_json conn ~status:"200 OK"
        (Service.metrics_json server.service)
  | "POST", "/query" -> (
      match http_query_request body with
      | Result.Error msg -> http_error conn ~status:"400 Bad Request" msg
      | Result.Ok (Protocol.Query q) ->
          if with_lock server.mutex (fun () -> server.stopping) then begin
            Service.record_shed server.service;
            http_reply_json conn ~status:"503 Service Unavailable"
              (Protocol.response_to_json
                 (Protocol.overloaded_response ~id:q.id))
          end
          else http_submit_query server conn q
      | Result.Ok _ ->
          http_error conn ~status:"400 Bad Request"
            "only op \"query\" is served over HTTP")
  | _ ->
      http_error conn ~status:"404 Not Found"
        (Printf.sprintf "no route %s %s" meth path)

let find_crlfcrlf s =
  let n = String.length s in
  let rec scan i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else scan (i + 1)
  in
  scan 0
[@@wp.bounded "scan advances one byte per step over a finite string"]

let content_length headers =
  List.fold_left
    (fun acc line ->
      match String.index_opt line ':' with
      | Some i
        when String.lowercase_ascii (String.sub line 0 i) = "content-length"
        -> (
          match
            int_of_string_opt
              (String.trim
                 (String.sub line (i + 1) (String.length line - i - 1)))
          with
          | Some n when n >= 0 -> n
          | _ -> acc)
      | _ -> acc)
    0 headers

let http_max_head = 64 * 1024

let http_process server conn =
  if not conn.http_dispatched then begin
    let s = Buffer.contents conn.rbuf in
    match find_crlfcrlf s with
    | None ->
        if String.length s > http_max_head then begin
          conn.http_dispatched <- true;
          http_error conn ~status:"431 Request Header Fields Too Large"
            "headers too large"
        end
    | Some hdr_end -> (
        let head = String.sub s 0 hdr_end in
        match String.split_on_char '\r' head |> List.concat_map (fun part ->
                  String.split_on_char '\n' part)
              |> List.filter (fun l -> l <> "")
        with
        | [] ->
            conn.http_dispatched <- true;
            http_error conn ~status:"400 Bad Request" "empty request"
        | request_line :: headers -> (
            let body_start = hdr_end + 4 in
            let clen = content_length headers in
            if String.length s >= body_start + clen then begin
              conn.http_dispatched <- true;
              let body = String.sub s body_start clen in
              match String.split_on_char ' ' request_line with
              | meth :: path :: _ -> http_route server conn ~meth ~path ~body
              | _ ->
                  http_error conn ~status:"400 Bad Request"
                    "malformed request line"
            end))
  end

(* --- reading (loop thread) --- *)

let read_chunk = Bytes.create 65536

(* Drain every complete frame out of the connection's read buffer. *)
let process_wire server conn =
  let rec frames () =
    let len = Buffer.length conn.rbuf in
    if len >= 4 then begin
      let b i = Char.code (Buffer.nth conn.rbuf i) in
      let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if n > Wire.max_frame then disconnect conn
      else if len >= 4 + n then begin
        let payload = Buffer.sub conn.rbuf 4 n in
        let rest = Buffer.sub conn.rbuf (4 + n) (len - 4 - n) in
        Buffer.clear conn.rbuf;
        Buffer.add_string conn.rbuf rest;
        dispatch_wire server conn payload;
        frames ()
      end
    end
  in
  frames ()
[@@wp.bounded
  "each iteration removes one complete frame (>= 4 bytes) from the read \
   buffer, which only the loop thread refills between select rounds"]

let read_conn server conn =
  match Unix.read conn.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> disconnect conn
  | n ->
      Buffer.add_subbytes conn.rbuf read_chunk 0 n;
      (match conn.kind with
      | Wire_conn -> process_wire server conn
      | Http_conn -> http_process server conn)
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    ->
      ()
  | exception Unix.Unix_error _ -> disconnect conn

(* --- writing (loop thread) --- *)

let flush_conn conn =
  let data =
    with_lock conn.omutex (fun () ->
        let s = Buffer.contents conn.outbox in
        Buffer.clear conn.outbox;
        s)
  in
  let requeue rest =
    (* Unwritten bytes go back in front of anything a worker enqueued
       while the socket was busy, preserving frame order. *)
    with_lock conn.omutex (fun () ->
        let tail = Buffer.contents conn.outbox in
        Buffer.clear conn.outbox;
        Buffer.add_string conn.outbox rest;
        Buffer.add_string conn.outbox tail)
  in
  if String.length data > 0 then begin
    match Unix.write_substring conn.fd data 0 (String.length data) with
    | n -> if n < String.length data then
          requeue (String.sub data n (String.length data - n))
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        requeue data
    | exception Unix.Unix_error _ -> disconnect conn
  end

(* --- accepting (loop thread) --- *)

let accept_conns server lfd kind =
  let rec accept_one () =
    match Unix.accept lfd with
    | fd, _ ->
        if with_lock server.mutex (fun () -> server.stopping) then (
          try Unix.close fd with Unix.Unix_error _ -> ())
        else begin
          Unix.set_nonblock fd;
          let conn =
            {
              fd;
              kind;
              rbuf = Buffer.create 512;
              omutex = Mutex.create ();
              outbox = Buffer.create 512;
              cancelled = Atomic.make false;
              inflight = 0;
              close_after_flush = false;
              version = 1;
              gone = false;
              http_dispatched = false;
            }
          in
          with_lock server.mutex (fun () ->
              server.conns <- conn :: server.conns)
        end;
        accept_one ()
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error _ -> ()
  in
  accept_one ()
[@@wp.bounded
  "each step accepts one queued connection; returns at EWOULDBLOCK once \
   the kernel backlog is drained"]

let drain_wake server =
  let buf = Bytes.create 64 in
  let rec drain () =
    match Unix.read server.wake_r buf 0 (Bytes.length buf) with
    | n when n = Bytes.length buf -> drain ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  drain ()
[@@wp.bounded
  "each step consumes 64 pending wake bytes from a bounded-capacity \
   non-blocking pipe; a short or failed read ends the drain"]

(* Drop connections whose slot can be reclaimed: vanished clients once
   their in-flight queries have drained, and one-shot HTTP connections
   once their reply is flushed. *)
let reap server conns =
  let removable conn =
    let inflight, empty, close_f =
      with_lock conn.omutex (fun () ->
          (conn.inflight, Buffer.length conn.outbox = 0, conn.close_after_flush))
    in
    if conn.gone then inflight = 0
    else if close_f && empty && inflight = 0 then begin
      disconnect conn;
      true
    end
    else false
  in
  let dead = List.filter removable conns in
  if dead <> [] then
    with_lock server.mutex (fun () ->
        server.conns <-
          List.filter (fun c -> not (List.memq c dead)) server.conns)

let default_workers () = max 1 (Domain.recommended_domain_count () - 1)

let listen_unix socket =
  (try Unix.unlink socket with Unix.Unix_error _ -> ());
  let listener = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.bind listener (Unix.ADDR_UNIX socket);
    Unix.listen listener 64;
    Unix.set_nonblock listener;
    listener
  with e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    raise e

let listen_http port =
  let listener = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    Unix.setsockopt listener Unix.SO_REUSEADDR true;
    Unix.bind listener (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listener 64;
    Unix.set_nonblock listener;
    listener
  with e ->
    (try Unix.close listener with Unix.Unix_error _ -> ());
    raise e

let serve ?workers ?(queue_depth = 64) ?http ?on_ready ~socket ~service () =
  let workers =
    match workers with Some w -> max 1 w | None -> default_workers ()
  in
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> () (* no sigpipe on this platform *));
  match listen_unix socket with
  | exception Unix.Unix_error (e, _, arg) ->
      Result.Error
        (Printf.sprintf "cannot listen on %s: %s%s" socket
           (Unix.error_message e)
           (if arg = "" then "" else " (" ^ arg ^ ")"))
  | listener -> (
      match Option.map listen_http http with
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close listener with Unix.Unix_error _ -> ());
          (try Unix.unlink socket with Unix.Unix_error _ -> ());
          Result.Error
            (Printf.sprintf "cannot listen on http port: %s"
               (Unix.error_message e))
      | http_listener ->
          let wake_r, wake_w = Unix.pipe () in
          Unix.set_nonblock wake_r;
          Unix.set_nonblock wake_w;
          let server =
            {
              socket;
              listener;
              http_listener;
              service;
              pool = Pool.Real.create ~workers ~queue_depth ();
              wake_r;
              wake_w;
              mutex = Mutex.create ();
              stopping = false;
              conns = [];
            }
          in
          (match on_ready with None -> () | Some f -> f server);
          (* [grace] bounds the post-stop flush: once stopping with no
             queries in flight, unflushed outboxes (a stop reply to a
             client that never reads) get a bounded number of rounds
             before the loop exits anyway. *)
          let rec loop grace =
            let stopping =
              with_lock server.mutex (fun () -> server.stopping)
            in
            let conns = with_lock server.mutex (fun () -> server.conns) in
            let live = List.filter (fun c -> not c.gone) conns in
            let busy c =
              with_lock c.omutex (fun () ->
                  c.inflight > 0 || Buffer.length c.outbox > 0)
            in
            if stopping && not (List.exists busy conns) then ()
            else if stopping && grace = 0 then ()
            else begin
              let pending c =
                with_lock c.omutex (fun () -> Buffer.length c.outbox > 0)
              in
              let rfds =
                (server.wake_r :: server.listener
                 ::
                 (match server.http_listener with
                 | Some l -> [ l ]
                 | None -> []))
                @ List.map (fun c -> c.fd) live
              in
              let wfds =
                List.filter_map
                  (fun c -> if pending c then Some c.fd else None)
                  live
              in
              match Unix.select rfds wfds [] 0.2 with
              | exception Unix.Unix_error (Unix.EINTR, _, _) ->
                  loop grace
              | readable, writable, _ ->
                  if List.mem server.wake_r readable then drain_wake server;
                  if List.mem server.listener readable then
                    accept_conns server server.listener Wire_conn;
                  (match server.http_listener with
                  | Some l when List.mem l readable ->
                      accept_conns server l Http_conn
                  | Some _ | None -> ());
                  List.iter
                    (fun c ->
                      if (not c.gone) && List.mem c.fd writable then
                        flush_conn c)
                    live;
                  List.iter
                    (fun c ->
                      if (not c.gone) && List.mem c.fd readable then
                        read_conn server c)
                    live;
                  reap server conns;
                  let stopping =
                    with_lock server.mutex (fun () -> server.stopping)
                  in
                  let inflight c = with_lock c.omutex (fun () -> c.inflight) in
                  let idle =
                    stopping
                    && List.for_all (fun c -> inflight c = 0) conns
                  in
                  loop (if idle then grace - 1 else grace)
            end
          in
          loop 50;
          Pool.Real.shutdown server.pool;
          let conns = with_lock server.mutex (fun () -> server.conns) in
          List.iter disconnect conns;
          with_lock server.mutex (fun () -> server.conns <- []);
          (try Unix.close server.listener with Unix.Unix_error _ -> ());
          (match server.http_listener with
          | Some l -> ( try Unix.close l with Unix.Unix_error _ -> ())
          | None -> ());
          (try Unix.close server.wake_r with Unix.Unix_error _ -> ());
          (try Unix.close server.wake_w with Unix.Unix_error _ -> ());
          (try Unix.unlink socket with Unix.Unix_error _ -> ());
          Result.Ok ())
