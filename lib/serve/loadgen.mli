(** Closed-loop load generator for the service.

    [clients] threads each hold one connection and issue queries
    back-to-back (round-robin over the query list) for [duration_s]
    seconds, then the per-status counts and client-side latency
    samples are merged into one {!point}.  {!sweep} runs one point
    against an already-listening server and returns the JSON report
    the CLI writes to [BENCH_serve.json]. *)

type point = {
  clients : int;
  requests : int;  (** replies received, shed included *)
  ok : int;
  partial : int;
  overloaded : int;
  errors : int;  (** error-status replies and transport failures *)
  duration_s : float;
  throughput : float;  (** replies per second *)
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  max_ms : float;
}

val run :
  ?algo:string ->
  ?bound_push:bool ->
  ?version:int ->
  socket:string ->
  queries:string list ->
  clients:int ->
  duration_s:float ->
  unit ->
  (point, string) result
(** [Error] when no client can connect or [queries] is empty.
    [algo] is the backend wire name forwarded on every request
    (omitted when [None], leaving the server's default).
    [bound_push] is forwarded on every request (omitted when [None]):
    [Some false] turns cross-shard bound pushing off server-side, the
    scatter-only baseline for the sharding benchmarks.
    [version] (default [1]) pins the protocol version offered on every
    connection: latency points default to buffered v1 replies so tier
    comparisons measure the serve architecture, not the framing. *)

val ttfa_probe :
  ?algo:string ->
  ?k:int ->
  ?doc:string ->
  socket:string ->
  query:string ->
  unit ->
  (Wp_json.Json.t, string) result
(** Issue one streamed query over protocol v2 and report the
    client-side time-to-first-answer: [ttfa_ms] (first [Part] frame,
    [null] when nothing streamed), [total_ms] (terminal [Done]),
    [streamed] and [answers] counts, and [ttfa_before_done].  Only
    single-document queries stream, so pass [doc] on a multi-document
    corpus.  [Error] when the server negotiates the connection down to
    v1 (the threaded tier), since nothing can stream there. *)

val point_to_json : point -> Wp_json.Json.t

val report :
  ?algo:string ->
  socket:string ->
  queries:string list ->
  client_counts:int list ->
  duration_s:float ->
  unit ->
  (Wp_json.Json.t, string) result
(** Run one {!point} per entry of [client_counts] sequentially and
    wrap them with the sweep parameters, plus the server's own metrics
    snapshot fetched after the last point. *)
