let mutex_name = "serve.gather.mutex"
let state_loc = "serve.gather.state"

(* Serving-layer extension of the declared lock hierarchy, alongside
   the pool's: the gather mutex is leaf-only — taken (briefly) to read
   or advance the merged bound and never while any other lock is held;
   the engines invoke [publish] outside their top-k lock, and shard
   threads never call into the gather from inside an engine lock. *)
let lock_rank name =
  if String.equal name mutex_name then Some 0 else Pool.lock_rank name

module Make (S : Whirlpool.Sync.S) = struct
  type t = {
    k : int;
    push : bool;
    mutex : S.mutex;
    (* All three fields below are guarded by [mutex] ([state_loc]). *)
    mutable bound : float;  (* max score floor published so far *)
    mutable top_scores : float list;  (* merged best-k so far, descending *)
    mutable n_scores : int;
    mutable publishes : int;  (* times [bound] tightened *)
  }

  let create ?(push = true) ~k () =
    if k < 1 then invalid_arg "Gather.create: k >= 1";
    {
      k;
      push;
      mutex = S.mutex mutex_name;
      bound = Float.neg_infinity;
      top_scores = [];
      n_scores = 0;
      publishes = 0;
    }

  let with_lock t f =
    S.lock t.mutex;
    Fun.protect ~finally:(fun () -> S.unlock t.mutex) f

  let tighten_locked t th =
    if th > t.bound then begin
      t.bound <- th;
      t.publishes <- t.publishes + 1
    end

  (* The engines' [publish_threshold] hook: a shard's own top-k
     threshold is a floor on the merged k-th score (its k answers are
     candidates of the merged query), so the maximum over every
     published threshold is itself a valid floor. *)
  let publish t th =
    if t.push then
      with_lock t (fun () ->
          S.note_write state_loc;
          tighten_locked t th)

  (* Fold a completed run's answer scores into the merged best-k; once
     k scores are known, the merged k-th is a floor that is never
     weaker than any single shard's threshold. *)
  let note_scores t scores =
    if t.push && scores <> [] then
      with_lock t (fun () ->
          S.note_write state_loc;
          let merged =
            List.merge
              (fun a b -> Float.compare b a)
              (List.sort (fun a b -> Float.compare b a) scores)
              t.top_scores
          in
          let rec take n = function
            | x :: rest when n > 0 -> x :: take (n - 1) rest
            | _ -> []
          in
          t.top_scores <- take t.k merged;
          t.n_scores <- min t.k (t.n_scores + List.length scores);
          if t.n_scores >= t.k then
            match List.nth_opt t.top_scores (t.k - 1) with
            | Some kth -> tighten_locked t kth
            | None -> ())

  (* A per-shard-thread bound reader for the engines' [prune_bound]
     hook.  The bound is monotone, so a stale read only under-prunes:
     the closure caches the last value and takes the mutex every 64th
     call, keeping the hot prune path off the lock.  Each shard thread
     gets its own closure — the counter is thread-local state. *)
  let bound_reader t =
    if not t.push then Whirlpool.Engine.Config.default.prune_bound
    else begin
      let last = ref Float.neg_infinity in
      let tick = ref 0 in
      fun () ->
        (if !tick land 63 = 0 then
           let b =
             with_lock t (fun () ->
                 S.note_read state_loc;
                 t.bound)
           in
           if b > !last then last := b);
        incr tick;
        !last
    end

  let bound t =
    with_lock t (fun () ->
        S.note_read state_loc;
        t.bound)

  let publishes t =
    with_lock t (fun () ->
        S.note_read state_loc;
        t.publishes)
end

include Make (Whirlpool.Sync.Real)
