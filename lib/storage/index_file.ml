module Doc = Wp_xml.Doc
module Index = Wp_xml.Index

let magic = "WPIDX"
let version = 1

(* Every on-disk integer is little-endian.  Counts and in-section
   offsets are u32 slots capped at [max_u32] (2^31 - 1), so a value read
   back through [Int32.to_int] is the value written — no sign games; the
   header's own fields are u64 slots.  Each section starts 8-byte
   aligned so the [Int32] bigarray views mapped over them are aligned
   element views. *)
let max_u32 = 0x7FFF_FFFF

(* Section order is fixed; the header stores an (offset, length in
   bytes) pair per section. *)
let s_tag_table = 0
let s_tag_extents = 1
let s_postings = 2
let s_tag_ids = 3
let s_parents = 4
let s_subtree_ends = 5
let s_depths = 6
let s_ranks = 7
let s_val_pos = 8
let s_val_len = 9
let s_value_bytes = 10
let s_term_offsets = 11
let s_term_bytes = 12
let s_term_extents = 13
let s_content_postings = 14
let n_sections = 15

let section_name = function
  | 0 -> "tag_table"
  | 1 -> "tag_extents"
  | 2 -> "postings"
  | 3 -> "tag_ids"
  | 4 -> "parents"
  | 5 -> "subtree_ends"
  | 6 -> "depths"
  | 7 -> "ranks"
  | 8 -> "val_pos"
  | 9 -> "val_len"
  | 10 -> "value_bytes"
  | 11 -> "term_offsets"
  | 12 -> "term_bytes"
  | 13 -> "term_extents"
  | _ -> "content_postings"

(* magic+version block, 8 u64 count fields, then the section table.
   Bytes 6-7 of the magic block carry the section count as a u16 (0 is
   read as the legacy 15): a future version can append sections — e.g.
   a persisted dataguide — and old readers skip the entries they do not
   know while new readers still open old files. *)
let header_size_of sections = 8 + (8 * 8) + (sections * 16)
let header_size = header_size_of n_sections
let align8 v = (v + 7) land lnot 7

type error =
  | Not_index_file of { path : string }
  | Version_skew of { path : string; found : int; expected : int }
  | Truncated of { path : string; detail : string }
  | Corrupt of { path : string; detail : string }

let error_message = function
  | Not_index_file { path } -> Printf.sprintf "%s: not a .wpidx index file" path
  | Version_skew { path; found; expected } ->
      Printf.sprintf "%s: index format version %d (this build reads %d)" path
        found expected
  | Truncated { path; detail } -> Printf.sprintf "%s: truncated: %s" path detail
  | Corrupt { path; detail } -> Printf.sprintf "%s: corrupt: %s" path detail

exception Invalid of error

(* FNV-1a over the header bytes (checksum field zeroed), so a damaged
   header is rejected as corruption rather than interpreted. *)
let fnv64 bytes =
  let h = ref 0xcbf29ce484222325L in
  Bytes.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) 0x100000001b3L)
    bytes;
  !h

type info = {
  nodes : int;
  tags : int;
  terms : int;
  value_bytes : int;
  content_postings : int;
  file_bytes : int;
}

(* ------------------------------------------------------------------ *)
(* Writer: the [wp_cli index build] compactor.                         *)
(* ------------------------------------------------------------------ *)

let check_u32 what v =
  if v < 0 || v > max_u32 then
    invalid_arg
      (Printf.sprintf "Index_file: %s (%d) exceeds the supported range" what v)

let u32s arr =
  let b = Buffer.create (4 * Array.length arr) in
  Array.iter
    (fun v ->
      check_u32 "field" v;
      Buffer.add_int32_le b (Int32.of_int v))
    arr;
  Buffer.contents b

let string_table strs =
  let b = Buffer.create 256 in
  List.iter
    (fun s ->
      check_u32 "string length" (String.length s);
      Buffer.add_int32_le b (Int32.of_int (String.length s));
      Buffer.add_string b s)
    strs;
  Buffer.contents b

(* The index terms of one value, mirroring
   [Relaxation.contains_token]'s tokenization: the space-delimited
   tokens (for relaxed content matches) plus the full string (for exact
   ones), deduplicated. *)
let terms_of_value v =
  List.filter
    (fun s -> s <> "")
    (List.sort_uniq String.compare (v :: String.split_on_char ' ' v))

let write path doc =
  let n = Doc.size doc in
  check_u32 "node count" n;
  let tags = Doc.distinct_tags doc in
  let tag_count = List.length tags in
  let tag_id = Hashtbl.create (max 16 (tag_count * 2)) in
  List.iteri (fun i t -> Hashtbl.add tag_id t i) tags;
  (* Per-tag postings, document order within each tag. *)
  let buckets = Array.make tag_count [] in
  let tag_ids = Array.make n 0 in
  for i = n - 1 downto 0 do
    let id = Hashtbl.find tag_id (Doc.tag doc i) in
    tag_ids.(i) <- id;
    buckets.(id) <- i :: buckets.(id)
  done;
  let tag_extents = Array.make (2 * tag_count) 0 in
  let postings = Array.make n 0 in
  let pos = ref 0 in
  Array.iteri
    (fun id bucket ->
      tag_extents.(2 * id) <- !pos;
      List.iter
        (fun node ->
          postings.(!pos) <- node;
          incr pos)
        bucket;
      tag_extents.((2 * id) + 1) <- !pos - tag_extents.(2 * id))
    buckets;
  (* Structure columns. *)
  let parents = Array.make n 0 in
  let subtree_ends = Array.make n 0 in
  let depths = Array.make n 0 in
  let ranks = Array.make n 0 in
  let next_rank = Array.make n 0 in
  for i = 0 to n - 1 do
    let p = Option.value (Doc.parent doc i) ~default:(-1) in
    parents.(i) <- p + 1;
    subtree_ends.(i) <- Doc.subtree_end doc i;
    depths.(i) <- Doc.depth doc i;
    if p >= 0 then begin
      next_rank.(p) <- next_rank.(p) + 1;
      ranks.(i) <- next_rank.(p)
    end
  done;
  (* Values and content postings. *)
  let value_buf = Buffer.create 4096 in
  let val_pos = Array.make n 0 in
  let val_len = Array.make n 0 in
  let term_tbl : (string, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  for i = 0 to n - 1 do
    match Doc.value doc i with
    | None -> ()
    | Some v ->
        check_u32 "value offset" (Buffer.length value_buf + 1);
        val_pos.(i) <- Buffer.length value_buf + 1;
        val_len.(i) <- String.length v;
        Buffer.add_string value_buf v;
        List.iter
          (fun tok ->
            match Hashtbl.find_opt term_tbl tok with
            | Some l -> l := i :: !l
            | None -> Hashtbl.add term_tbl tok (ref [ i ]))
          (terms_of_value v)
  done;
  let terms =
    List.sort String.compare
      (Hashtbl.fold (fun t _ acc -> t :: acc) term_tbl [])
  in
  let term_count = List.length terms in
  check_u32 "term count" term_count;
  let term_bytes = Buffer.create 4096 in
  let term_offsets = Array.make (term_count + 1) 0 in
  let term_extents = Array.make (2 * term_count) 0 in
  let content = Buffer.create 4096 in
  let content_len = ref 0 in
  List.iteri
    (fun j term ->
      term_offsets.(j) <- Buffer.length term_bytes;
      Buffer.add_string term_bytes term;
      let nodes = List.rev !(Hashtbl.find term_tbl term) in
      term_extents.(2 * j) <- !content_len;
      List.iter
        (fun node ->
          Buffer.add_int32_le content (Int32.of_int node);
          incr content_len)
        nodes;
      term_extents.((2 * j) + 1) <- !content_len - term_extents.(2 * j))
    terms;
  term_offsets.(term_count) <- Buffer.length term_bytes;
  check_u32 "term bytes" (Buffer.length term_bytes);
  check_u32 "content postings" !content_len;
  (* Layout: 8-aligned sections after the fixed header. *)
  let sections = Array.make n_sections "" in
  sections.(s_tag_table) <- string_table tags;
  sections.(s_tag_extents) <- u32s tag_extents;
  sections.(s_postings) <- u32s postings;
  sections.(s_tag_ids) <- u32s tag_ids;
  sections.(s_parents) <- u32s parents;
  sections.(s_subtree_ends) <- u32s subtree_ends;
  sections.(s_depths) <- u32s depths;
  sections.(s_ranks) <- u32s ranks;
  sections.(s_val_pos) <- u32s val_pos;
  sections.(s_val_len) <- u32s val_len;
  sections.(s_value_bytes) <- Buffer.contents value_buf;
  sections.(s_term_offsets) <- u32s term_offsets;
  sections.(s_term_bytes) <- Buffer.contents term_bytes;
  sections.(s_term_extents) <- u32s term_extents;
  sections.(s_content_postings) <- Buffer.contents content;
  let offsets = Array.make n_sections 0 in
  let cursor = ref header_size in
  Array.iteri
    (fun i s ->
      let off = align8 !cursor in
      offsets.(i) <- off;
      cursor := off + String.length s)
    sections;
  let file_size = !cursor in
  let header = Bytes.make header_size '\000' in
  Bytes.blit_string magic 0 header 0 (String.length magic);
  Bytes.set header 5 (Char.chr version);
  Bytes.set_uint16_le header 6 n_sections;
  let set_u64 slot v = Bytes.set_int64_le header (8 + (8 * slot)) (Int64.of_int v) in
  set_u64 0 n;
  set_u64 1 tag_count;
  set_u64 2 n (* postings length *);
  set_u64 3 (Buffer.length value_buf);
  set_u64 4 term_count;
  set_u64 5 !content_len;
  set_u64 6 file_size;
  Array.iteri
    (fun i s ->
      Bytes.set_int64_le header (72 + (16 * i)) (Int64.of_int offsets.(i));
      Bytes.set_int64_le header
        (72 + (16 * i) + 8)
        (Int64.of_int (String.length s)))
    sections;
  (* Checksum last, over the header with its own slot still zero. *)
  Bytes.set_int64_le header (8 + (8 * 7)) (fnv64 header);
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_bytes oc header;
      let written = ref header_size in
      Array.iteri
        (fun i s ->
          for _ = !written to offsets.(i) - 1 do
            output_char oc '\000'
          done;
          written := offsets.(i) + String.length s;
          output_string oc s)
        sections);
  file_size

(* ------------------------------------------------------------------ *)
(* Reader: validate, then map.                                         *)
(* ------------------------------------------------------------------ *)

type char_view =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  path : string;
  info : info;
  index : Index.t;
  term_offsets : Index.int32_view;
  term_bytes : char_view;
  term_extents : Index.int32_view;
  content : Index.int32_view;
}

let index t = t.index
let info t = t.info
let path t = t.path

type header = {
  h_nodes : int;
  h_tags : int;
  h_value_bytes : int;
  h_terms : int;
  h_content : int;
  h_file_size : int;
  h_offsets : int array;  (* per section *)
  h_lengths : int array;
}

(* Parse and cross-check the header: magic, version, checksum, declared
   file size, and every section's (offset, length) against the actual
   file — all before a single byte is mapped or any count-sized
   allocation happens.  [sections] is the section-table size announced
   by the prelude; entries beyond the [n_sections] this build knows are
   range-checked and skipped (forward compatibility). *)
let parse_header path ~actual_size ~sections bytes =
  let fail detail = raise (Invalid (Corrupt { path; detail })) in
  if not (String.equal (Bytes.sub_string bytes 0 5) magic) then
    raise (Invalid (Not_index_file { path }));
  let v = Char.code (Bytes.get bytes 5) in
  if v <> version then
    raise (Invalid (Version_skew { path; found = v; expected = version }));
  let header_size = header_size_of sections in
  let stored_sum = Bytes.get_int64_le bytes (8 + (8 * 7)) in
  Bytes.set_int64_le bytes (8 + (8 * 7)) 0L;
  if not (Int64.equal (fnv64 bytes) stored_sum) then fail "header checksum mismatch";
  let u64 slot =
    let v = Bytes.get_int64_le bytes (8 + (8 * slot)) in
    if Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0
    then fail "header field out of range";
    Int64.to_int v
  in
  let h_nodes = u64 0 in
  let h_tags = u64 1 in
  let h_postings = u64 2 in
  let h_value_bytes = u64 3 in
  let h_terms = u64 4 in
  let h_content = u64 5 in
  let h_file_size = u64 6 in
  if h_nodes < 1 then fail "empty document";
  if h_nodes > max_u32 || h_tags > h_nodes || h_postings <> h_nodes then
    fail "implausible node counts";
  if h_file_size > actual_size then
    raise
      (Invalid
         (Truncated
            {
              path;
              detail =
                Printf.sprintf "header declares %d bytes, file has %d"
                  h_file_size actual_size;
            }));
  if h_file_size < actual_size then fail "trailing bytes after declared size";
  let h_offsets = Array.make n_sections 0 in
  let h_lengths = Array.make n_sections 0 in
  for i = 0 to sections - 1 do
    let off = Bytes.get_int64_le bytes (72 + (16 * i)) in
    let len = Bytes.get_int64_le bytes (72 + (16 * i) + 8) in
    let out_of_range v =
      Int64.compare v 0L < 0 || Int64.compare v (Int64.of_int max_int) > 0
    in
    if out_of_range off || out_of_range len then
      fail (Printf.sprintf "section %s out of range" (section_name i));
    let off = Int64.to_int off and len = Int64.to_int len in
    if i < n_sections then begin
      if
        off < header_size || off land 7 <> 0 || off > h_file_size
        || len > h_file_size - off
      then fail (Printf.sprintf "section %s out of range" (section_name i));
      h_offsets.(i) <- off;
      h_lengths.(i) <- len
    end
    (* Entries this build does not know about are tolerated as long as
       they point inside the file: a newer writer appended data we can
       simply not map. *)
    else if off > h_file_size || len > h_file_size - off then
      fail (Printf.sprintf "unknown section %d out of range" i)
  done;
  (* Fixed-width sections must be exactly as large as the counts say. *)
  let expect i bytes_wanted =
    if h_lengths.(i) <> bytes_wanted then
      fail (Printf.sprintf "section %s length mismatch" (section_name i))
  in
  expect s_tag_extents (8 * h_tags);
  expect s_postings (4 * h_nodes);
  expect s_tag_ids (4 * h_nodes);
  expect s_parents (4 * h_nodes);
  expect s_subtree_ends (4 * h_nodes);
  expect s_depths (4 * h_nodes);
  expect s_ranks (4 * h_nodes);
  expect s_val_pos (4 * h_nodes);
  expect s_val_len (4 * h_nodes);
  expect s_value_bytes h_value_bytes;
  expect s_term_offsets (4 * (h_terms + 1));
  expect s_term_extents (8 * h_terms);
  expect s_content_postings (4 * h_content);
  { h_nodes; h_tags; h_value_bytes; h_terms; h_content; h_file_size;
    h_offsets; h_lengths }

(* Eagerly decode the (small) tag table and tag extents with ordinary
   reads, validating string lengths and extent ranges Doc_io-style:
   never trust a length field further than the bytes actually present. *)
let read_tag_table path ic (h : header) =
  let fail detail = raise (Invalid (Corrupt { path; detail })) in
  seek_in ic h.h_offsets.(s_tag_table);
  let left = ref h.h_lengths.(s_tag_table) in
  let tags =
    List.init h.h_tags (fun _ ->
        if !left < 4 then fail "tag table exceeds its section";
        let b = Bytes.create 4 in
        really_input ic b 0 4;
        let len = Int32.to_int (Bytes.get_int32_le b 0) in
        if len < 0 || len > !left - 4 then
          fail "tag length exceeds tag table";
        left := !left - 4 - len;
        really_input_string ic len)
  in
  seek_in ic h.h_offsets.(s_tag_extents);
  let eb = Bytes.create (8 * h.h_tags) in
  really_input ic eb 0 (8 * h.h_tags);
  let total = ref 0 in
  let tag_arr = Array.of_list tags in
  let extents =
    List.init h.h_tags (fun i ->
        let off = Int32.to_int (Bytes.get_int32_le eb (8 * i)) in
        let len = Int32.to_int (Bytes.get_int32_le eb ((8 * i) + 4)) in
        if off < 0 || len < 0 || off > h.h_nodes || len > h.h_nodes - off then
          fail "tag extent out of range";
        total := !total + len;
        (tag_arr.(i), off, len))
  in
  if !total <> h.h_nodes then fail "tag extents do not cover the postings";
  (tags, extents)

let map_i32 fd ~off ~elems : Index.int32_view =
  if elems = 0 then Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int off) Bigarray.int32
         Bigarray.c_layout false [| elems |])

let map_char fd ~off ~bytes : char_view =
  if bytes = 0 then Bigarray.Array1.create Bigarray.char Bigarray.c_layout 0
  else
    Bigarray.array1_of_genarray
      (Unix.map_file fd ~pos:(Int64.of_int off) Bigarray.char
         Bigarray.c_layout false [| bytes |])

let i32 (view : Index.int32_view) i = Int32.to_int (Bigarray.Array1.get view i)

let chunk (view : char_view) ~pos ~len =
  let b = Bytes.create len in
  for j = 0 to len - 1 do
    Bytes.unsafe_set b j (Bigarray.Array1.get view (pos + j))
  done;
  Bytes.unsafe_to_string b

let open_index path =
  try
    let ic =
      try open_in_bin path
      with Sys_error m -> raise (Invalid (Truncated { path; detail = m }))
    in
    let header, tags, extents =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let actual_size = in_channel_length ic in
          if actual_size < 8 then
            raise
              (Invalid
                 (Truncated { path; detail = "file shorter than the header" }));
          (* Prelude first: the section count at bytes 6-7 sizes the
             header (0 = the legacy fixed table; fewer sections than
             this build requires cannot be a valid file). *)
          let pre = Bytes.create 8 in
          really_input ic pre 0 8;
          if not (String.equal (Bytes.sub_string pre 0 5) magic) then
            raise (Invalid (Not_index_file { path }));
          let sections =
            match Bytes.get_uint16_le pre 6 with 0 -> n_sections | c -> c
          in
          if sections < n_sections then
            raise
              (Invalid
                 (Corrupt { path; detail = "section table too small" }));
          let header_size = header_size_of sections in
          if actual_size < header_size then
            raise
              (Invalid
                 (Truncated { path; detail = "file shorter than the header" }));
          seek_in ic 0;
          let hb = Bytes.create header_size in
          really_input ic hb 0 header_size;
          let header = parse_header path ~actual_size ~sections hb in
          let tags, extents = read_tag_table path ic header in
          (header, tags, extents))
    in
    let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
    let view =
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          let n = header.h_nodes in
          let sec_i32 s elems = map_i32 fd ~off:header.h_offsets.(s) ~elems in
          let postings = sec_i32 s_postings n in
          let tag_ids = sec_i32 s_tag_ids n in
          let parents = sec_i32 s_parents n in
          let subtree_ends = sec_i32 s_subtree_ends n in
          let depths = sec_i32 s_depths n in
          let ranks = sec_i32 s_ranks n in
          let val_pos = sec_i32 s_val_pos n in
          let val_len = sec_i32 s_val_len n in
          let value_bytes =
            map_char fd ~off:header.h_offsets.(s_value_bytes)
              ~bytes:header.h_value_bytes
          in
          let term_offsets = sec_i32 s_term_offsets (header.h_terms + 1) in
          let term_bytes =
            map_char fd ~off:header.h_offsets.(s_term_bytes)
              ~bytes:header.h_lengths.(s_term_bytes)
          in
          let term_extents = sec_i32 s_term_extents (2 * header.h_terms) in
          let content = sec_i32 s_content_postings header.h_content in
          let tag_arr = Array.of_list tags in
          let doc =
            Doc.of_ext ~size:n
              ~tag:(fun i -> tag_arr.(i32 tag_ids i))
              ~value:(fun i ->
                let p = i32 val_pos i in
                if p = 0 then None
                else Some (chunk value_bytes ~pos:(p - 1) ~len:(i32 val_len i)))
              ~parent:(fun i -> i32 parents i - 1)
              ~subtree_end:(fun i -> i32 subtree_ends i)
              ~depth:(fun i -> i32 depths i)
              ~rank:(fun i -> i32 ranks i)
              ~distinct_tags:tags
          in
          let index = Index.of_mapped ~doc ~postings ~extents in
          {
            path;
            info =
              {
                nodes = n;
                tags = header.h_tags;
                terms = header.h_terms;
                value_bytes = header.h_value_bytes;
                content_postings = header.h_content;
                file_bytes = header.h_file_size;
              };
            index;
            term_offsets;
            term_bytes;
            term_extents;
            content;
          })
    in
    Ok view
  with
  | Invalid e -> Error e
  | End_of_file ->
      Error (Truncated { path; detail = "unexpected end of file" })
  | Unix.Unix_error (e, _, _) ->
      Error (Truncated { path; detail = Unix.error_message e })
  | Sys_error m -> Error (Truncated { path; detail = m })

(* Binary search over the sorted mapped term table; the handful of
   probe decodings beat materializing the whole dictionary at open. *)
let lookup_term t term =
  let term_at j =
    let off = i32 t.term_offsets j in
    chunk t.term_bytes ~pos:off ~len:(i32 t.term_offsets (j + 1) - off)
  in
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = (lo + hi) / 2 in
      let c = String.compare (term_at mid) term in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  match go 0 t.info.terms with
  | None -> [||]
  | Some j ->
      let off = i32 t.term_extents (2 * j) in
      let len = i32 t.term_extents ((2 * j) + 1) in
      Array.init len (fun i -> i32 t.content (off + i))

let term_count t = t.info.terms
