(** The versioned binary on-disk index format ([.wpidx]).

    A [.wpidx] file is the compacted, query-ready form of one document:
    the tag dictionary with per-tag posting extents, the preorder
    structure columns (parent, subtree extent, depth, child rank), the
    node values with a content-term dictionary and postings, all behind
    a checksummed fixed header.  [wp_cli index build] writes it;
    {!open_index} validates the header and section table and then
    memory-maps the columns with [Unix.map_file], so opening a
    multi-hundred-megabyte shard is O(1) — pages fault in on demand as
    queries touch them.

    The mapped view is presented as an ordinary {!Wp_xml.Index.t} (over
    a {!Wp_xml.Doc.of_ext} document), so plans, servers and caches run
    unchanged over either backend, with identical answers and identical
    visit/comparison counters — the differential property the test
    suite pins.

    {2 Layout}

    All integers are little-endian; data u32 slots are capped at
    [2^31 - 1].  The header holds the magic ["WPIDX"], a format
    version byte, a u16 section count (0 is read as the baseline 15,
    for files written before the count existed), eight u64 fields
    (node/tag/term counts, byte sizes, declared file size, FNV-1a
    header checksum over the whole variable-size header) and an
    (offset, length) pair for each section, every section starting
    8-byte aligned — 312 bytes at the baseline count.  Readers
    validate the 15 sections they know and skip any trailing entries a
    newer writer appended (e.g. a persisted dataguide), so the format
    can grow without breaking old files; a count below 15 is rejected.
    Corruption — bad magic, version skew, checksum mismatch,
    truncation, out-of-range or misaligned section extents, tag
    extents that do not tile the postings — is rejected with a typed
    {!error} before anything is mapped or any count-sized allocation
    happens, in the style of {!Wp_xml.Doc_io}. *)

val magic : string
(** First bytes of every [.wpidx] file (["WPIDX"]), for sniffing. *)

val version : int

type error =
  | Not_index_file of { path : string }
  | Version_skew of { path : string; found : int; expected : int }
  | Truncated of { path : string; detail : string }
  | Corrupt of { path : string; detail : string }

val error_message : error -> string

type info = {
  nodes : int;
  tags : int;
  terms : int;  (** distinct content terms *)
  value_bytes : int;
  content_postings : int;
  file_bytes : int;
}

val write : string -> Wp_xml.Doc.t -> int
(** [write path doc] compacts [doc] into a [.wpidx] file at [path] and
    returns the file size in bytes.
    @raise Invalid_argument if the document exceeds a u32 field
    (more than [2^31 - 1] nodes or value bytes);
    @raise Sys_error on I/O failure. *)

type t
(** An open, memory-mapped index. *)

val open_index : string -> (t, error) result
(** Validate and map [path].  The file descriptor is closed before
    returning (the mappings keep the pages alive); nothing beyond the
    header, tag table and tag extents is read eagerly. *)

val index : t -> Wp_xml.Index.t
(** The mapped view as a regular index — every engine runs on it
    unchanged. *)

val info : t -> info
val path : t -> string

val lookup_term : t -> string -> int array
(** Nodes whose value contains the given content term (a full value
    string or one of its space-delimited tokens, matching
    [Relaxation.contains_token]), in document order; empty for unknown
    terms.  Binary search over the sorted mapped term dictionary. *)

val term_count : t -> int
