(** Relaxation configuration and single-step relaxations on patterns.

    The three relaxations of the paper (after Amer-Yahia, Cho &
    Srivastava):

    - {e edge generalization} — replace a [Pc] edge by [Ad];
    - {e leaf deletion} — make a leaf node optional (delete it from the
      pattern);
    - {e subtree promotion} — re-attach a node's subtree to its
      grand-parent with an [Ad] edge.

    Every composition preserves exact matches of the original query. *)

type config = {
  edge_generalization : bool;
  leaf_deletion : bool;
  subtree_promotion : bool;
  value_relaxation : bool;
      (** FleXPath-style content relaxation (the paper's framework
          reference [3] relaxes content conditions as well as
          structure): a value predicate [= 'v'] is satisfied {e exactly}
          by equal content and {e approximately} by content containing
          [v] as a token; with this off (the paper's evaluation
          setting), values are hard filters. *)
}

val all : config
(** The paper's evaluation setting: the three structural relaxations
    enabled, values exact. *)

val with_content : config
(** {!all} plus {!field-value_relaxation}. *)

val exact : config
(** No relaxation: plain exact tree-pattern matching. *)

type content_level = Content_exact | Content_relaxed | Content_reject

val content_level : config -> query:string -> actual:string option -> content_level
(** How a node's content satisfies a value predicate under the
    configuration: equal content is exact; under value relaxation,
    content containing the query as a whitespace-delimited token is
    relaxed; anything else rejects the candidate. *)

val pp_config : Format.formatter -> config -> unit

val relax_to_root : config -> Relation.t -> Relation.t
(** Most relaxed relation implied by [config] for a path whose composed
    relation is the argument: edge generalization drops the depth upper
    bound, subtree promotion collapses the lower bound to 1. *)

val relax_internal : config -> Relation.t -> Relation.t
(** Most relaxed relation between two pattern nodes when the lower one
    cannot escape the upper one's subtree (promotion moves whole
    subtrees, so only edge generalization applies downward). *)

(** Single-step relaxed patterns, for the rewriting-based reference
    semantics used in tests (the engine itself never enumerates
    queries — it encodes relaxations in server predicates). *)

val edge_generalizations : Wp_pattern.Pattern.t -> Wp_pattern.Pattern.t list
(** One pattern per [Pc] edge (including the root edge) turned into
    [Ad]. *)

val leaf_deletions : Wp_pattern.Pattern.t -> Wp_pattern.Pattern.t list
(** One pattern per non-root leaf removed. *)

val subtree_promotions : Wp_pattern.Pattern.t -> Wp_pattern.Pattern.t list
(** One pattern per node (with a grand-parent) whose subtree is
    re-attached to the grand-parent under [Ad]. *)

val steps : config -> Wp_pattern.Pattern.t -> Wp_pattern.Pattern.t list
(** All single-step relaxations permitted by [config]. *)

val canonical_key : Wp_pattern.Pattern.t -> string
(** A string that identifies a pattern up to sibling order, used to
    deduplicate the closure. *)

val closure : ?limit:int -> config -> Wp_pattern.Pattern.t -> Wp_pattern.Pattern.t list
(** All distinct patterns reachable by composing permitted relaxations
    (including the original), up to [limit] patterns (default 10_000).
    Exponential — test-sized patterns only.
    @raise Failure if the closure exceeds [limit]. *)

val closure_with_steps :
  ?limit:int -> config -> Wp_pattern.Pattern.t ->
  (Wp_pattern.Pattern.t * int) list
(** Like {!closure}, also reporting the minimal number of single-step
    relaxations needed to reach each pattern (0 for the original) — the
    "relaxation distance" used to grade answer relevance. *)

val closure_labeled :
  ?limit:int -> config -> Wp_pattern.Pattern.t ->
  (Wp_pattern.Pattern.t * Wp_pattern.Pattern.node_id array) list
(** Lattice enumeration with node provenance: each reachable pattern
    comes with an array mapping its node ids to the originating node ids
    of the input pattern (leaf deletion renumbers survivors, so the
    mapping is not the identity).  Unlike {!closure}, deduplication
    distinguishes same-shaped patterns with different provenance — the
    lattice the static analyzer checks server predicates against.
    @raise Failure if the closure exceeds [limit]. *)
