module Pattern = Wp_pattern.Pattern

type config = {
  edge_generalization : bool;
  leaf_deletion : bool;
  subtree_promotion : bool;
  value_relaxation : bool;
}

let all =
  {
    edge_generalization = true;
    leaf_deletion = true;
    subtree_promotion = true;
    value_relaxation = false;
  }

let with_content = { all with value_relaxation = true }

let exact =
  {
    edge_generalization = false;
    leaf_deletion = false;
    subtree_promotion = false;
    value_relaxation = false;
  }

type content_level = Content_exact | Content_relaxed | Content_reject

(* Is [query] one of the whitespace-delimited tokens of [actual]? *)
let contains_token actual query =
  List.exists (String.equal query)
    (String.split_on_char ' ' actual)

let content_level config ~query ~actual =
  match actual with
  | None -> Content_reject
  | Some actual ->
      if String.equal actual query then Content_exact
      else if config.value_relaxation && contains_token actual query then
        Content_relaxed
      else Content_reject

let pp_config ppf c =
  let flags =
    List.filter_map
      (fun (b, s) -> if b then Some s else None)
      [
        (c.edge_generalization, "edge-gen");
        (c.leaf_deletion, "leaf-del");
        (c.subtree_promotion, "promo");
        (c.value_relaxation, "content");
      ]
  in
  match flags with
  | [] -> Format.pp_print_string ppf "exact"
  | fs -> Format.pp_print_string ppf (String.concat "+" fs)

let relax_to_root config r =
  let r = if config.edge_generalization then Relation.generalize r else r in
  if config.subtree_promotion then Relation.promote r else r

let relax_internal config r =
  if config.edge_generalization then Relation.generalize r else r

(* --- Rewriting-based single steps, on the inductive spec form. --- *)

(* All variants of [spec] obtained by applying [at_child] to exactly one
   child slot somewhere in the tree.  [at_child] maps one (edge, child)
   slot to the list of replacement slot contents ([] meaning "drop the
   slot", one element per variant). *)
let rec slot_variants ~at_child (spec : Pattern.spec) : Pattern.spec list =
  let rec in_children before after =
    match after with
    | [] -> []
    | ((edge, child) as slot) :: rest ->
        let here =
          List.map
            (fun replacement ->
              { spec with Pattern.children = List.rev_append before (replacement @ rest) })
            (at_child spec slot)
        in
        let deeper =
          List.map
            (fun child' ->
              { spec with Pattern.children = List.rev_append before ((edge, child') :: rest) })
            (slot_variants ~at_child child)
        in
        here @ deeper @ in_children (slot :: before) rest
  in
  in_children [] spec.Pattern.children

let edge_generalizations pat =
  let spec = Pattern.to_spec pat in
  let root_variant =
    if Pattern.root_edge pat = Pattern.Pc then
      [ Pattern.of_spec ~root_edge:Ad spec ]
    else []
  in
  let inner =
    slot_variants spec ~at_child:(fun _parent (edge, child) ->
        match edge with
        | Pattern.Pc -> [ [ (Pattern.Ad, child) ] ]
        | Pattern.Ad -> [])
  in
  root_variant
  @ List.map (Pattern.of_spec ~root_edge:(Pattern.root_edge pat)) inner

let leaf_deletions pat =
  let spec = Pattern.to_spec pat in
  let inner =
    slot_variants spec ~at_child:(fun _parent (_edge, child) ->
        if child.Pattern.children = [] then [ [] ] else [])
  in
  List.map (Pattern.of_spec ~root_edge:(Pattern.root_edge pat)) inner

let subtree_promotions pat =
  let spec = Pattern.to_spec pat in
  (* Promote a grand-child of some node to that node: remove it from the
     child and re-attach it under the node with an Ad edge. *)
  let inner =
    slot_variants spec ~at_child:(fun _parent (edge, child) ->
        List.mapi
          (fun i (_ge, gchild) ->
            let remaining = List.filteri (fun j _ -> j <> i) child.Pattern.children in
            [ (edge, { child with Pattern.children = remaining });
              (Pattern.Ad, gchild) ])
          child.Pattern.children)
  in
  List.map (Pattern.of_spec ~root_edge:(Pattern.root_edge pat)) inner

let steps config pat =
  (if config.edge_generalization then edge_generalizations pat else [])
  @ (if config.leaf_deletion then leaf_deletions pat else [])
  @ if config.subtree_promotion then subtree_promotions pat else []

(* Canonical key: children sorted recursively, so patterns equal up to
   sibling order collide. *)
let canonical_key pat =
  let rec key (s : Pattern.spec) =
    let child_keys =
      List.sort String.compare
        (List.map
           (fun (e, c) ->
             (match e with Pattern.Pc -> "/" | Pattern.Ad -> "~") ^ key c)
           s.Pattern.children)
    in
    Printf.sprintf "%s%s(%s)" s.Pattern.tag
      (match s.Pattern.value with None -> "" | Some v -> "=" ^ v)
      (String.concat "," child_keys)
  in
  (match Pattern.root_edge pat with Pattern.Pc -> "/" | Pattern.Ad -> "~")
  ^ key (Pattern.to_spec pat)

(* Breadth-first closure, so the recorded step count is minimal. *)
let closure_with_steps ?(limit = 10_000) config pat =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let queue = Queue.create () in
  let push depth p =
    let k = canonical_key p in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      if Hashtbl.length seen > limit then
        failwith "Relaxation.closure: limit exceeded";
      out := (p, depth) :: !out;
      Queue.push (p, depth) queue
    end
  in
  push 0 pat;
  while not (Queue.is_empty queue) do
    let p, depth = Queue.pop queue in
    List.iter (push (depth + 1)) (steps config p)
  done;
  List.rev !out

let closure ?limit config pat =
  List.map fst (closure_with_steps ?limit config pat)

(* --- Labeled lattice enumeration. ---

   The static analyzer cross-checks server predicate sequences against
   the relaxation lattice, which requires knowing, for every node of a
   relaxed pattern, which node of the {e original} pattern it came from
   (leaf deletion renumbers the survivors).  The plain closure above
   loses that provenance, so the steps are re-run here on a spec form
   carrying original node ids. *)

type lspec = {
  l_orig : int;
  l_tag : string;
  l_value : string option;
  l_children : (Pattern.edge * lspec) list;
}

let lspec_of_pattern pat =
  let rec go i =
    {
      l_orig = i;
      l_tag = Pattern.tag pat i;
      l_value = Pattern.value pat i;
      l_children =
        List.map (fun c -> (Pattern.edge pat c, go c)) (Pattern.children pat i);
    }
  in
  go (Pattern.root pat)

(* [slot_variants] for the labeled form. *)
let rec l_slot_variants ~at_child (s : lspec) : lspec list =
  let rec in_children before after =
    match after with
    | [] -> []
    | ((edge, child) as slot) :: rest ->
        let here =
          List.map
            (fun replacement ->
              { s with l_children = List.rev_append before (replacement @ rest) })
            (at_child s slot)
        in
        let deeper =
          List.map
            (fun child' ->
              { s with l_children = List.rev_append before ((edge, child') :: rest) })
            (l_slot_variants ~at_child child)
        in
        here @ deeper @ in_children (slot :: before) rest
  in
  in_children [] s.l_children

(* A labeled pattern is a root edge plus a labeled tree. *)
let l_edge_generalizations (root_edge, s) =
  let root_variant =
    if root_edge = Pattern.Pc then [ (Pattern.Ad, s) ] else []
  in
  let inner =
    l_slot_variants s ~at_child:(fun _parent (edge, child) ->
        match edge with
        | Pattern.Pc -> [ [ (Pattern.Ad, child) ] ]
        | Pattern.Ad -> [])
  in
  root_variant @ List.map (fun s' -> (root_edge, s')) inner

let l_leaf_deletions (root_edge, s) =
  List.map
    (fun s' -> (root_edge, s'))
    (l_slot_variants s ~at_child:(fun _parent (_edge, child) ->
         if child.l_children = [] then [ [] ] else []))

let l_subtree_promotions (root_edge, s) =
  List.map
    (fun s' -> (root_edge, s'))
    (l_slot_variants s ~at_child:(fun _parent (edge, child) ->
         List.mapi
           (fun i (_ge, gchild) ->
             let remaining =
               List.filteri (fun j _ -> j <> i) child.l_children
             in
             [ (edge, { child with l_children = remaining });
               (Pattern.Ad, gchild) ])
           child.l_children))

let l_steps config lp =
  (if config.edge_generalization then l_edge_generalizations lp else [])
  @ (if config.leaf_deletion then l_leaf_deletions lp else [])
  @ if config.subtree_promotion then l_subtree_promotions lp else []

(* Dedup key including provenance: two same-shaped patterns whose nodes
   originate from different query nodes are distinct lattice points. *)
let l_key (root_edge, s) =
  let rec key s =
    let child_keys =
      List.sort String.compare
        (List.map
           (fun (e, c) ->
             (match e with Pattern.Pc -> "/" | Pattern.Ad -> "~") ^ key c)
           s.l_children)
    in
    Printf.sprintf "%d(%s)" s.l_orig (String.concat "," child_keys)
  in
  (match root_edge with Pattern.Pc -> "/" | Pattern.Ad -> "~") ^ key s

(* Freeze a labeled pattern, returning the provenance array aligned with
   [Pattern.of_spec]'s preorder numbering. *)
let pattern_of_lspec root_edge s =
  let rec conv s =
    let converted = List.map (fun (e, c) -> (e, conv c)) s.l_children in
    let spec =
      {
        Pattern.tag = s.l_tag;
        value = s.l_value;
        children = List.map (fun (e, (sp, _)) -> (e, sp)) converted;
      }
    in
    let origs =
      s.l_orig :: List.concat_map (fun (_, (_, os)) -> os) converted
    in
    (spec, origs)
  in
  let spec, origs = conv s in
  (Pattern.of_spec ~root_edge spec, Array.of_list origs)

let closure_labeled ?(limit = 10_000) config pat =
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let queue = Queue.create () in
  let push lp =
    let k = l_key lp in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      if Hashtbl.length seen > limit then
        failwith "Relaxation.closure_labeled: limit exceeded";
      out := lp :: !out;
      Queue.push lp queue
    end
  in
  push (Pattern.root_edge pat, lspec_of_pattern pat);
  while not (Queue.is_empty queue) do
    let lp = Queue.pop queue in
    List.iter push (l_steps config lp)
  done;
  List.rev_map (fun (re, s) -> pattern_of_lspec re s) !out |> List.rev
