exception Error of { position : int; message : string }

type state = { src : string; mutable pos : int }

let fail st message = raise (Error { position = st.pos; message })
let eof st = st.pos >= String.length st.src
let peek st = if eof st then None else Some st.src.[st.pos]
let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  (while (not (eof st)) && is_space st.src.[st.pos] do
     advance st
   done)
  [@wp.bounded "the cursor strictly advances toward the end of the input"]

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '@'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = ':'

(* Parses '/' or '//' and returns the corresponding edge. *)
let parse_axis st =
  match peek st with
  | Some '/' ->
      advance st;
      if peek st = Some '/' then begin advance st; Pattern.Ad end
      else Pattern.Pc
  | Some c -> fail st (Printf.sprintf "expected '/' or '//', found %C" c)
  | None -> fail st "expected '/' or '//', found end of input"

let parse_name st =
  skip_spaces st;
  match peek st with
  | Some '*' ->
      (* The wildcard step matches any element tag. *)
      advance st;
      "*"
  | _ ->
      let start = st.pos in
      (match peek st with
      | Some c when is_name_start c -> advance st
      | Some c -> fail st (Printf.sprintf "expected an element name, found %C" c)
      | None -> fail st "expected an element name, found end of input");
      (while (not (eof st)) && is_name_char st.src.[st.pos] do
         advance st
       done)
      [@wp.bounded "the cursor strictly advances toward the end of the input"];
      String.sub st.src start (st.pos - start)

let parse_string_literal st =
  skip_spaces st;
  let quote =
    match peek st with
    | Some (('\'' | '"') as q) -> advance st; q
    | Some c -> fail st (Printf.sprintf "expected a quoted string, found %C" c)
    | None -> fail st "expected a quoted string, found end of input"
  in
  let start = st.pos in
  let rec find p =
    if p >= String.length st.src then fail st "unterminated string literal"
    else if st.src.[p] = quote then p
    else find (p + 1)
  in
  let stop = find start in
  st.pos <- stop + 1;
  String.sub st.src start (stop - start)

(* Looks ahead (past spaces) for the keyword "and". *)
let at_and st =
  let p = ref st.pos in
  (while !p < String.length st.src && is_space st.src.[!p] do incr p done)
  [@wp.bounded "the lookahead cursor strictly advances toward the end of \
                the input"];
  !p + 3 <= String.length st.src
  && String.sub st.src !p 3 = "and"
  && (!p + 3 = String.length st.src || not (is_name_char st.src.[!p + 3]))

let rec parse_step st : Pattern.spec =
  let tag = parse_name st in
  skip_spaces st;
  let preds =
    if peek st = Some '[' then begin
      advance st;
      let rec more acc =
        let p = parse_pred st in
        skip_spaces st;
        if at_and st then begin
          skip_spaces st;
          st.pos <- st.pos + 3;
          more (p :: acc)
        end
        else begin
          (match peek st with
          | Some ']' -> advance st
          | Some c -> fail st (Printf.sprintf "expected ']' or 'and', found %C" c)
          | None -> fail st "unterminated predicate list");
          List.rev (p :: acc)
        end
      in
      more []
    end
    else []
  in
  skip_spaces st;
  let value =
    if peek st = Some '=' then begin
      advance st;
      Some (parse_string_literal st)
    end
    else None
  in
  { Pattern.tag; value; children = preds }

(* pred ::= '.' (axis step)+ ; returns the outermost (edge, spec). *)
and parse_pred st : Pattern.edge * Pattern.spec =
  skip_spaces st;
  (match peek st with
  | Some '.' -> advance st
  | Some c -> fail st (Printf.sprintf "expected '.', found %C" c)
  | None -> fail st "expected '.', found end of input");
  let first_edge = parse_axis st in
  let first = parse_step st in
  (* Continue the chain: attach each subsequent step as the single child
     of the deepest node parsed so far. *)
  let rec continue (spec : Pattern.spec) =
    skip_spaces st;
    match peek st with
    | Some '/' ->
        if spec.value <> None then
          fail st "a value comparison must end its path";
        let edge = parse_axis st in
        let next = parse_step st in
        let next = continue next in
        { spec with children = spec.children @ [ (edge, next) ] }
    | _ -> spec
  in
  (first_edge, continue first)

let parse src =
  let st = { src; pos = 0 } in
  skip_spaces st;
  let root_edge = parse_axis st in
  let root = parse_step st in
  skip_spaces st;
  if not (eof st) then fail st "trailing input after the query";
  Pattern.of_spec ~root_edge root

let parse_opt src = match parse src with p -> Some p | exception Error _ -> None
