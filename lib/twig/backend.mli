(** Backend dispatch over the {!Whirlpool.Engine.Config.algo} axis.

    The single entry point the CLI and the serve tier call: picks the
    engine named by [config.algo] and runs it with the rest of the
    config.  [Twig_seeded] composes the two exact/adaptive engines —
    the twig join runs first and its exact-match scores seed the
    adaptive engine's prune floor (see {!run_seeded}). *)

type seeded = {
  twig : Whirlpool.Engine.result;  (** the prefilter pass *)
  floor : float;
      (** the score floor derived from it: the k-th twig match's score
          when the twig join found at least [k] exact matches,
          [neg_infinity] otherwise (no seeding) *)
  main : Whirlpool.Engine.result;
      (** the adaptive Whirlpool pass, run with [prune_bound] raised to
          [floor] — its counters isolate what seeding saved *)
}

val run_seeded :
  ?config:Whirlpool.Engine.Config.t ->
  ?guide:Wp_stats.Dataguide.t ->
  Whirlpool.Plan.t ->
  k:int ->
  seeded
(** The [Twig_seeded] composition with the two phases kept apart.
    When the twig join finds [>= k] exact matches, [floor] (each exact
    match's score, [Score_table.max_total]) is published through
    [config.publish_threshold] — reaching the other shards' bounds via
    the scatter–gather {!Wp_serve.Gather} — and folded into
    [config.prune_bound] for the main pass.  Pruning uses a strict [<]
    against [max_possible], so a floor equal to an achievable score
    never excludes an exact answer: the final scores are identical to
    an unseeded run's, with no-worse visit/comparison counters. *)

val combine : seeded -> Whirlpool.Engine.result
(** Collapse a seeded run into one result: the main pass's answers,
    counters summed across both phases, wall times added. *)

val run :
  ?config:Whirlpool.Engine.Config.t ->
  ?guide:Wp_stats.Dataguide.t ->
  Whirlpool.Plan.t ->
  k:int ->
  Whirlpool.Engine.result
(** Dispatch on [config.algo]:
    - [Whirlpool] → {!Whirlpool.Engine.run}
    - [Whirlpool_mt] → {!Whirlpool.Engine_mt.run}
    - [Lockstep] / [Lockstep_noprun] → {!Whirlpool.Lockstep.run} under
      [config.queue_policy], with and without pruning
    - [Twig] → {!Twig_join.run}
    - [Twig_seeded] → [combine (run_seeded ...)]

    [guide] (used by the twig backends only) defaults to the memoized
    per-document guide. *)
