module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Pattern = Wp_pattern.Pattern
module Dataguide = Wp_stats.Dataguide
module Score_table = Wp_score.Score_table
module Engine = Whirlpool.Engine
module Stats = Whirlpool.Stats
module Topk_set = Whirlpool.Topk_set
module Partial_match = Whirlpool.Partial_match
module Plan = Whirlpool.Plan
module Clock = Whirlpool.Clock

(* First index with xs.(i) >= target in a preorder-sorted array. *)
let lower_bound (xs : int array) target =
  let lo = ref 0 and hi = ref (Array.length xs) in
  (while !lo < !hi do
     let mid = (!lo + !hi) / 2 in
     if xs.(mid) < target then lo := mid + 1 else hi := mid
   done)
  [@wp.bounded "bisection halves the [lo, hi) interval every pass"];
  !lo

(* The per-pattern-node input stream: the tag's preorder-sorted id list,
   clipped to the dataguide windows (runs outside any window are skipped
   without being examined) and filtered by admissible depth, root-edge
   depth and exact content value.  Output stays preorder-sorted. *)
let build_stream ~(stats : Stats.t) ~doc ~idx ~pat ~(sel : Dataguide.selection)
    q =
  let wins = sel.windows.(q) in
  if Array.length wins = 0 then [||]
  else begin
    let ids = Index.ids idx (Pattern.tag pat q) in
    let n = Array.length ids in
    let dok = sel.depth_ok.(q) in
    let value = Pattern.value pat q in
    let is_root = q = 0 in
    let root_edge = Pattern.root_edge pat in
    let out = Array.make (max 1 n) 0 in
    let n_out = ref 0 in
    Array.iter
      (fun (lo, hi) ->
        let i = ref (lower_bound ids lo) in
        (while !i < n && ids.(!i) <= hi do
          let x = ids.(!i) in
          incr i;
          stats.server_ops <- stats.server_ops + 1;
          stats.comparisons <- stats.comparisons + 1;
          let d = Doc.depth doc x in
          let ok = d < Array.length dok && dok.(d) in
          (* The root edge is a pure depth constraint against the
             document root (depth 0) — enforce it here even when the
             selection fell back to admit-everything. *)
          let ok =
            ok
            && (not is_root
               ||
               match root_edge with Pattern.Pc -> d = 1 | Pattern.Ad -> d >= 1)
          in
          let ok =
            ok
            &&
            match value with
            | None -> true
            | Some v -> (
                stats.comparisons <- stats.comparisons + 1;
                match Doc.value doc x with
                | Some actual -> String.equal actual v
                | None -> false)
          in
          if ok then begin
            out.(!n_out) <- x;
            incr n_out
          end
        done)
        [@wp.bounded "[!i] strictly advances toward the end of the postings"])
      wins;
    Array.sub out 0 !n_out
  end

(* Stack sweep over two preorder-sorted streams: set [flag.(i)] when
   [xs.(i)] has a proper descendant among [ys].  [stack] holds indices
   into [xs] forming a chain of nested open subtrees (the linked-stack
   encoding); when a [y] arrives, every entry still on the stack
   contains it, so we mark top-down until the first already-marked
   entry — everything below was marked by an earlier [y].  Both scratch
   arrays are caller-owned with length >= |xs|. *)
let mark_has_descendant ~(stats : Stats.t) doc (xs : int array)
    (ys : int array) (flag : bool array) (stack : int array) =
  let nx = Array.length xs and ny = Array.length ys in
  let top = ref 0 in
  let i = ref 0 in
  (for j = 0 to ny - 1 do
    let y = ys.(j) in
    (* Open every x that starts before y, closing finished subtrees. *)
    while !i < nx && xs.(!i) < y do
      let x = xs.(!i) in
      stats.comparisons <- stats.comparisons + 1;
      while !top > 0 && Doc.subtree_end doc xs.(stack.(!top - 1)) <= x do
        decr top
      done;
      stack.(!top) <- !i;
      incr top;
      incr i
    done;
    (* Close subtrees that end at or before y. *)
    while !top > 0 && Doc.subtree_end doc xs.(stack.(!top - 1)) <= y do
      decr top
    done;
    stats.comparisons <- stats.comparisons + 1;
    (* Every remaining open x properly contains y. *)
    let s = ref (!top - 1) in
    let continue = ref true in
    while !s >= 0 && !continue do
      let idx = stack.(!s) in
      if flag.(idx) then continue := false
      else begin
        flag.(idx) <- true;
        decr s
      end
    done
  done)
  [@wp.bounded
    "every inner pass strictly advances [!i], shrinks the stack, or \
     descends [!s] toward an already-marked entry"]
[@@wp.hot]

(* Merge two sorted arrays: set [flag.(i)] when [xs.(i)] appears in
   [ps]. *)
let merge_mark ~(stats : Stats.t) (xs : int array) (ps : int array)
    (flag : bool array) =
  let nx = Array.length xs and np = Array.length ps in
  let i = ref 0 and j = ref 0 in
  (while !i < nx && !j < np do
    stats.comparisons <- stats.comparisons + 1;
    let x = xs.(!i) and pv = ps.(!j) in
    if x = pv then begin
      flag.(!i) <- true;
      incr i;
      incr j
    end
    else if x < pv then incr i
    else incr j
  done)
  [@wp.bounded "[!i + !j] strictly increases every pass"]
[@@wp.hot]

(* Sorted, deduplicated parents of a preorder-sorted node array. *)
let parent_set doc (ys : int array) =
  let n = Array.length ys in
  let ps = Array.make (max 1 n) (-1) in
  let m = ref 0 in
  Array.iter
    (fun y ->
      match Doc.parent doc y with
      | Some p ->
          ps.(!m) <- p;
          incr m
      | None -> ())
    ys;
  let ps = Array.sub ps 0 !m in
  Array.sort compare ps;
  let out = ref 0 in
  Array.iteri
    (fun i p ->
      if i = 0 || p <> ps.(i - 1) then begin
        ps.(!out) <- p;
        incr out
      end)
    ps;
  Array.sub ps 0 !out

(* Bottom-up match-set evaluation: msets.(q) is the preorder-sorted set
   of document nodes heading a complete exact embedding of the pattern
   subtree rooted at q (the root's set additionally honors the root
   edge, folded into its stream).  Children are evaluated before
   parents — pattern ids are preorder ranks, so a reverse-id sweep
   suffices.  Returns [None] when [should_stop] fired. *)
let eval ~(stats : Stats.t) ~should_stop ~guide (plan : Plan.t) =
  let doc = Index.doc plan.index in
  let pat = plan.pattern in
  let p = Pattern.size pat in
  let sel = Dataguide.select guide pat in
  let msets = Array.make p [||] in
  if not sel.satisfiable then Some msets
  else begin
    let stopped = ref false in
    (try
       for q = p - 1 downto 0 do
         if should_stop () then begin
           stopped := true;
           raise Exit
         end;
         let xs = build_stream ~stats ~doc ~idx:plan.index ~pat ~sel q in
         let res =
           match Pattern.children pat q with
           | [] -> xs
           | kids ->
               let nx = Array.length xs in
               let ok_count = Array.make (max 1 nx) 0 in
               let flag = Array.make (max 1 nx) false in
               let scratch = Array.make (max 1 nx) 0 in
               List.iter
                 (fun c ->
                   Array.fill flag 0 nx false;
                   (match Pattern.edge pat c with
                   | Pattern.Ad ->
                       mark_has_descendant ~stats doc xs msets.(c) flag scratch
                   | Pattern.Pc ->
                       merge_mark ~stats xs (parent_set doc msets.(c)) flag);
                   for i = 0 to nx - 1 do
                     if flag.(i) then ok_count.(i) <- ok_count.(i) + 1
                   done)
                 kids;
               let nkids = List.length kids in
               let n_keep = ref 0 in
               for i = 0 to nx - 1 do
                 if ok_count.(i) = nkids then begin
                   xs.(!n_keep) <- xs.(i);
                   incr n_keep
                 end
               done;
               Array.sub xs 0 !n_keep
         in
         msets.(q) <- res;
         stats.matches_created <- stats.matches_created + Array.length res
       done
     with Exit -> ());
    if !stopped then None else Some msets
  end

(* One witness embedding under a matched root, found greedily: for each
   child edge take the first match-set node inside the parent's subtree
   that satisfies the axis.  Membership in the match sets guarantees
   one exists. *)
let witness ~(stats : Stats.t) doc pat (msets : int array array) root =
  let p = Pattern.size pat in
  let b = Array.make p Partial_match.unbound in
  let rec bind q x =
    b.(q) <- x;
    List.iter
      (fun c ->
        let ys = msets.(c) in
        let ny = Array.length ys in
        let stop = Doc.subtree_end doc x in
        let i = ref (lower_bound ys (x + 1)) in
        let found = ref (-1) in
        (match Pattern.edge pat c with
        | Pattern.Ad ->
            stats.comparisons <- stats.comparisons + 1;
            if !i < ny && ys.(!i) < stop then found := ys.(!i)
        | Pattern.Pc ->
            while !found < 0 && !i < ny && ys.(!i) < stop do
              stats.comparisons <- stats.comparisons + 1;
              (match Doc.parent doc ys.(!i) with
              | Some px when px = x -> found := ys.(!i)
              | _ -> ());
              incr i
            done);
        if !found < 0 then
          invalid_arg "Twig_join: missing witness (internal invariant)";
        bind c !found)
      (Pattern.children pat q)
  in
  bind 0 root;
  b

let match_count ?guide (plan : Plan.t) =
  let guide =
    match guide with Some g -> g | None -> Dataguide.of_index plan.index
  in
  let stats = Stats.create () in
  match eval ~stats ~should_stop:Engine.never_stop ~guide plan with
  | Some msets -> Array.length msets.(0)
  | None -> 0

let run ?(config = Engine.Config.default) ?guide (plan : Plan.t) ~k =
  if k < 1 then invalid_arg "Twig_join.run: k must be >= 1";
  Engine.validate_plan plan;
  let stats = Stats.create () in
  let t0 = Clock.now_ns () in
  let guide =
    match guide with Some g -> g | None -> Dataguide.of_index plan.index
  in
  let doc = Index.doc plan.index in
  let pat = plan.pattern in
  match
    eval ~stats ~should_stop:config.Engine.Config.should_stop ~guide plan
  with
  | None ->
      stats.wall_ns <- Int64.sub (Clock.now_ns ()) t0;
      { Engine.answers = []; stats; partial = true }
  | Some msets ->
      let roots = msets.(0) in
      stats.completed <- Array.length roots;
      let score = Score_table.max_total plan.scores in
      let n_ans = min k (Array.length roots) in
      let answers =
        List.init n_ans (fun i ->
            let root = roots.(i) in
            {
              Topk_set.root;
              score;
              match_id = i + 1;
              bindings = witness ~stats doc pat msets root;
              progress = Pattern.size pat;
            })
      in
      stats.wall_ns <- Int64.sub (Clock.now_ns ()) t0;
      { Engine.answers; stats; partial = false }
