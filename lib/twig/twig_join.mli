(** Holistic twig join over the annotated strong dataguide.

    The exact-matching competitor engine: a TwigStack-style holistic
    join that streams each pattern node's preorder-sorted tag list
    through linked stacks, instead of growing partial matches server by
    server.  Before any stream is read, the pattern is matched against
    the document's {!Wp_stats.Dataguide}; streams whose label paths
    cannot take part in a complete embedding are skipped wholesale, and
    the surviving streams are clipped to the guide's preorder-id
    windows.

    The join is {e exact only}: relaxations in the plan are ignored, so
    its answers equal Whirlpool's exact-only answers (every complete
    exact match scores {!Wp_score.Score_table.max_total}).  Matched
    roots are reported in document order with full witness bindings,
    and the run fills the same {!Whirlpool.Stats.t} counters as the
    other engines: [server_ops] counts stream elements examined,
    [comparisons] counts predicate tests, [matches_created] counts
    match-set entries, [completed] counts matched roots (even beyond
    [k]). *)

val match_count : ?guide:Wp_stats.Dataguide.t -> Whirlpool.Plan.t -> int
(** Number of document nodes heading a complete exact embedding —
    [completed] of a full run, without building witnesses. *)

val run :
  ?config:Whirlpool.Engine.Config.t ->
  ?guide:Wp_stats.Dataguide.t ->
  Whirlpool.Plan.t ->
  k:int ->
  Whirlpool.Engine.result
(** Evaluate the plan's pattern exactly and return the first [k]
    matched roots in document order, each carrying score
    [Score_table.max_total plan.scores].  [guide] defaults to the
    process-wide memoized guide of the plan's document
    ({!Wp_stats.Dataguide.of_index}); the serve tier passes the
    catalog's per-document guide.  Honors [config.should_stop] between
    per-pattern-node passes: a stopped run returns [partial = true]
    with no answers.
    @raise Invalid_argument when [k < 1]. *)
