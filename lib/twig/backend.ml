module Engine = Whirlpool.Engine
module Config = Whirlpool.Engine.Config
module Stats = Whirlpool.Stats

type seeded = {
  twig : Engine.result;
  floor : float;
  main : Engine.result;
}

let run_seeded ?(config = Config.default) ?guide plan ~k =
  let twig = Twig_join.run ~config ?guide plan ~k in
  let floor =
    match List.nth_opt twig.Engine.answers (k - 1) with
    | Some e -> e.Whirlpool.Topk_set.score
    | None -> Float.neg_infinity
  in
  let config =
    if floor = Float.neg_infinity then config
    else begin
      (* Let the other shards of a scatter–gather run prune against the
         twig floor too. *)
      config.Config.publish_threshold floor;
      let base = config.Config.prune_bound in
      Config.with_prune_bound (fun () -> Float.max (base ()) floor) config
    end
  in
  let main = Engine.run ~config plan ~k in
  { twig; floor; main }

let combine { twig; floor = _; main } =
  let stats = Stats.create () in
  Stats.add stats twig.Engine.stats;
  Stats.add stats main.Engine.stats;
  (* The phases ran back to back: their wall times add (Stats.add takes
     the max, which is right for parallel shards, wrong here). *)
  stats.Stats.wall_ns <-
    Int64.add twig.Engine.stats.Stats.wall_ns main.Engine.stats.Stats.wall_ns;
  {
    Engine.answers = main.Engine.answers;
    stats;
    partial = twig.Engine.partial || main.Engine.partial;
  }

let run ?(config = Config.default) ?guide plan ~k =
  match config.Config.algo with
  | Config.Whirlpool -> Engine.run ~config plan ~k
  | Config.Whirlpool_mt -> Whirlpool.Engine_mt.run ~config plan ~k
  | Config.Lockstep ->
      Whirlpool.Lockstep.run ~queue_policy:config.Config.queue_policy
        ~prune:true plan ~k
  | Config.Lockstep_noprun ->
      Whirlpool.Lockstep.run ~queue_policy:config.Config.queue_policy
        ~prune:false plan ~k
  | Config.Twig -> Twig_join.run ~config ?guide plan ~k
  | Config.Twig_seeded -> combine (run_seeded ~config ?guide plan ~k)
