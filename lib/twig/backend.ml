module Engine = Whirlpool.Engine
module Config = Whirlpool.Engine.Config
module Stats = Whirlpool.Stats

type seeded = {
  twig : Engine.result;
  floor : float;
  main : Engine.result;
}

(* Buffering backends (the twig join and both lockstep variants)
   certify nothing mid-run; when the caller asked for streaming, every
   answer of a drained run is final at return, so emit them all then.
   Partial runs emit nothing — their answers carry no certificate. *)
let emit_all ~(config : Config.t) (result : Engine.result) =
  if
    (not (config.Config.on_certified == Engine.no_certify))
    && not result.Engine.partial
  then List.iter config.Config.on_certified result.Engine.answers;
  result

let run_seeded ?(config = Config.default) ?guide plan ~k =
  (* The twig phase's answers are only a seed — the adaptive phase
     re-derives (and may displace) them — so strip the streaming hook
     for that phase; the main phase streams normally and its answers
     are the combined result's answers. *)
  let twig =
    Twig_join.run
      ~config:(Config.with_on_certified Engine.no_certify config)
      ?guide plan ~k
  in
  let floor =
    match List.nth_opt twig.Engine.answers (k - 1) with
    | Some e -> e.Whirlpool.Topk_set.score
    | None -> Float.neg_infinity
  in
  let config =
    if floor = Float.neg_infinity then config
    else begin
      (* Let the other shards of a scatter–gather run prune against the
         twig floor too. *)
      config.Config.publish_threshold floor;
      let base = config.Config.prune_bound in
      Config.with_prune_bound (fun () -> Float.max (base ()) floor) config
    end
  in
  let main = Engine.run ~config plan ~k in
  { twig; floor; main }

let combine { twig; floor = _; main } =
  let stats = Stats.create () in
  Stats.add stats twig.Engine.stats;
  Stats.add stats main.Engine.stats;
  (* The phases ran back to back: their wall times add (Stats.add takes
     the max, which is right for parallel shards, wrong here). *)
  stats.Stats.wall_ns <-
    Int64.add twig.Engine.stats.Stats.wall_ns main.Engine.stats.Stats.wall_ns;
  {
    Engine.answers = main.Engine.answers;
    stats;
    partial = twig.Engine.partial || main.Engine.partial;
  }

let run ?(config = Config.default) ?guide plan ~k =
  match config.Config.algo with
  | Config.Whirlpool -> Engine.run ~config plan ~k
  | Config.Whirlpool_mt -> Whirlpool.Engine_mt.run ~config plan ~k
  | Config.Lockstep ->
      emit_all ~config
        (Whirlpool.Lockstep.run ~queue_policy:config.Config.queue_policy
           ~prune:true plan ~k)
  | Config.Lockstep_noprun ->
      emit_all ~config
        (Whirlpool.Lockstep.run ~queue_policy:config.Config.queue_policy
           ~prune:false plan ~k)
  | Config.Twig -> emit_all ~config (Twig_join.run ~config ?guide plan ~k)
  | Config.Twig_seeded -> combine (run_seeded ~config ?guide plan ~k)
