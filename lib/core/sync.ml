module type S = sig
  type mutex
  type condition
  type atomic_int
  type handle

  val mutex : string -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit

  val condition : string -> condition
  val wait : condition -> mutex -> unit
  val signal : condition -> unit
  val broadcast : condition -> unit

  val atomic : string -> int -> atomic_int
  val get : atomic_int -> int
  val set : atomic_int -> int -> unit
  val fetch_and_add : atomic_int -> int -> int
  val incr : atomic_int -> unit

  val spawn : string -> (unit -> unit) -> handle
  val join : handle -> unit

  val note_read : string -> unit
  val note_write : string -> unit
end

module Real : S = struct
  type mutex = Mutex.t
  type condition = Condition.t
  type atomic_int = int Atomic.t
  type handle = unit Domain.t

  let mutex _name = Mutex.create ()
  let lock = Mutex.lock
  let unlock = Mutex.unlock

  let condition _name = Condition.create ()
  let wait = Condition.wait
  let signal = Condition.signal
  let broadcast = Condition.broadcast

  let atomic _name v = Atomic.make v
  let get = Atomic.get
  let set = Atomic.set
  let fetch_and_add = Atomic.fetch_and_add
  let incr = Atomic.incr

  let spawn _name f = Domain.spawn f
  let join = Domain.join

  let note_read _loc = ()
  let note_write _loc = ()
end
