(** Whirlpool-M — the multi-threaded adaptive engine.

    Mirrors the paper's architecture (Figure 4): one thread per server,
    each with its own priority queue of partial matches, plus a router
    thread with the router queue; the number of threads is therefore the
    query size + 2 counting the coordinating main thread.  Threads are
    OCaml 5 domains, so available cores give true parallelism.  The
    top-k set is shared under a mutex; termination is detected by an
    atomic count of in-flight partial matches.

    Because server and router threads interleave nondeterministically,
    pruning decisions — and hence the operation counts — can differ from
    run to run and from Whirlpool-S; the paper observes exactly this
    effect (Section 6.3.5: the threshold grows at a different pace,
    changing the adaptive routing choices).

    The engine is a functor over {!Sync.S}: {!run} instantiates it with
    real domains, while {!Race} instantiates it with the deterministic
    instrumented scheduler ({!Sched}) for lock-order analysis, race
    detection and schedule exploration.  DESIGN.md ("Concurrency
    model") documents the lock hierarchy, the happens-before edges and
    the shutdown protocol the analyzer checks. *)

(** Injectable concurrency defects, exercised by the race-detection
    tests and by [wp_cli race --inject] to demonstrate the analyzers.
    Never enabled by the plain {!run}. *)
module Fault : sig
  type t =
    | Drop_topk_lock  (** access the shared top-k set without its mutex *)
    | Retire_early
        (** retire a consumed match before its surviving extensions are
            registered in the in-flight count *)
    | Skip_pending_incr
        (** enqueue extensions without incrementing the in-flight count *)

  val to_string : t -> string
  val of_string : string -> t option
  val all : t list
  val pp : Format.formatter -> t -> unit
end

val topk_loc : string
(** Shared-location name under which instrumented runs report top-k-set
    accesses. *)

val pending_loc : string
(** Atomic-location name of the in-flight counter, for
    {!Wp_analysis.Concurrency.shutdown}. *)

module Make (S : Sync.S) : sig
  val run :
    ?faults:Fault.t list ->
    ?config:Engine.Config.t ->
    Plan.t ->
    k:int ->
    Engine.result
  (** As the top-level {!run}; [faults] (default none) injects the
      given defects for detector validation. *)
end

val run : ?config:Engine.Config.t -> Plan.t -> k:int -> Engine.result
(** Run under [config] (default {!Engine.Config.default}).

    [config.threads_per_server] (default 1) implements the paper's
    future-work extension of Section 7 ("increasing the number of
    threads per server for maximal parallelism"): each server's queue
    is drained by that many domains, so a single hot server no longer
    serializes the system.

    [config.should_stop] (default: never) is the cooperative-cancellation
    hook of {!Engine.run}: router and server threads test it once per
    popped match; the first thread that observes it raises the global
    stop flag, every queue drains without further processing, and the
    result carries the current top-k with [partial = true].

    [config.trace] receives the same event vocabulary as the
    single-threaded engine.  Events from all domains are serialized
    through one internal mutex and stamped at receipt when collected
    with {!Trace.timed_collector}, so two multi-threaded runs can be
    ordered and diffed even though per-domain emission order is
    nondeterministic.

    [config.obs], when enabled, collects a root span with a child span
    per server visit plus the exact per-server cost profile; as in the
    single-threaded engine it never affects counters or answers.

    [config.batch] and [config.use_cache] do not apply: the
    multi-threaded engine always shares one candidate cache and routes
    match-at-a-time.

    [config.on_certified] streams certified answers exactly as in
    {!Engine.run}; alive-set bookkeeping rides the existing top-k
    critical sections, and only the router thread invokes the callback
    (outside any lock), so emissions arrive in final answer order. *)
