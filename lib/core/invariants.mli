(** Debug-mode runtime invariant checks.

    The engines' pruning is sound only while, for every partial match,
    the score grows and [max_possible] shrinks monotonically along
    extensions, [score <= max_possible] always, [max_possible] never
    exceeds the plan's static score bound, and the top-k set's k-th
    score (the pruning threshold) never decreases within an insertion.
    These hold by construction — unless a corrupted score table, spec
    array or queue discipline breaks them, in which case the engine
    silently returns wrong top-k answers.

    With the environment variable [WP_CHECK_INVARIANTS] set (to
    anything but ["0"] or the empty string), both engines assert the
    invariants on every extension and raise {!Violation} on the first
    breach.  The checks are skipped entirely — a single cached boolean
    test — when the variable is unset. *)

exception Violation of string

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Programmatic override of the environment variable (tests). *)

val check_root : Plan.t -> Partial_match.t -> unit
(** A fresh root match: [score <= max_possible <= static bound]. *)

val check_extension : Plan.t -> parent:Partial_match.t -> Partial_match.t -> unit
(** An extension produced by a server from [parent]: score monotonically
    non-decreasing, [max_possible] monotonically non-increasing, and the
    root-match bounds. *)

val check_table : Wp_score.Score_table.t -> unit
(** The score table about to drive pruning: every entry satisfies
    [0 <= relaxed_weight <= exact_weight] (finite) — the premise of
    the static prune-soundness certificate
    ({!Wp_analysis.Prove.table_violations} is the checker). Run by
    {!Engine.validate_plan} when checks are enabled. *)

val check_threshold : before:float -> after:float -> unit
(** The top-k threshold observed around an insertion: non-decreasing
    (retraction of a died match may lower it and is not checked). *)
