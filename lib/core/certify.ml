(* Streaming certification — the machinery behind
   [Engine.Config.on_certified].

   The paper's top-k invariant makes an answer final the moment no
   alive partial match can still beat it.  Operationally: let [ub] be
   the maximum [max_possible] over every alive partial match; a top-k
   entry whose score is strictly above [ub] can never be displaced,
   evicted, re-scored or re-ordered, because

   - any future entry descends from an alive match, so its score is
     bounded by that match's [max_possible] <= ub < the entry's score;
   - extensions inherit [max_possible] no greater than their parent's,
     and parents are only removed after their extensions are
     registered, so [ub] is non-increasing across certification points
     and an emitted prefix stays emitted;
   - an entry whose own match is still alive (partial admission) has
     score <= that match's [max_possible] <= ub, so the strict [>]
     keeps it un-streamed until the match completes, dies or is
     pruned.

   The alive set is a lazy max-heap of (max_possible, id) plus a table
   of live ids: [remove] just drops the id, and [alive_bound] pops
   stale heap tops on demand — the same lazy-deletion idiom as
   {!Topk_set}'s threshold heap. *)

type t = {
  alive : int Pqueue.t;  (* priority = max_possible, payload = match id *)
  alive_ids : (int, unit) Hashtbl.t;
  emit : Topk_set.entry -> unit;
  mutable streamed : int;  (* entries already handed to [emit] *)
}

let create ~emit =
  {
    alive = Pqueue.create ();
    alive_ids = Hashtbl.create 64;
    emit;
    streamed = 0;
  }

let streamed t = t.streamed

let add t (pm : Partial_match.t) =
  Hashtbl.replace t.alive_ids pm.id ();
  Pqueue.push t.alive pm.max_possible pm.id

let remove t id = Hashtbl.remove t.alive_ids id

let rec alive_bound t =
  match Pqueue.peek t.alive with
  | None -> Float.neg_infinity
  | Some id when Hashtbl.mem t.alive_ids id -> (
      match Pqueue.peek_priority t.alive with
      | Some p -> p
      | None -> Float.neg_infinity)
  | Some _ ->
      ignore (Pqueue.pop t.alive : int option);
      alive_bound t
[@@wp.bounded
  "each recursive step pops one stale heap item; the heap size strictly \
   decreases"]

(* The entries newly certified since the last call, in final answer
   order (the emitted stream is always a stable prefix of
   [Topk_set.entries]).  Bumps [streamed]; the caller invokes [emit] —
   outside any engine lock in the multi-threaded engine. *)
let newly_certified t topk =
  let ub = alive_bound t in
  let rec take i acc = function
    | (e : Topk_set.entry) :: rest when e.score > ub ->
        take (i + 1) (if i >= t.streamed then e :: acc else acc) rest
    | _ :: _ | [] -> List.rev acc
  in
  let fresh = take 0 [] (Topk_set.entries topk) in
  t.streamed <- t.streamed + List.length fresh;
  fresh
[@@wp.bounded "take is structural recursion over the entries list"]

let emit t entry = t.emit entry

let flush t topk = List.iter t.emit (newly_certified t topk)

(* End of a run that drained naturally: nothing is alive, so every
   remaining entry is final.  (Not called on partial runs — answers a
   deadline cut short stay in the buffered reply.) *)
let flush_all t topk =
  let rec skip i = function
    | (e : Topk_set.entry) :: rest ->
        if i >= t.streamed then begin
          t.streamed <- t.streamed + 1;
          t.emit e
        end;
        skip (i + 1) rest
    | [] -> ()
  in
  skip 0 (Topk_set.entries topk)
[@@wp.bounded "skip is structural recursion over the entries list"]
