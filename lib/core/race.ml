module D = Wp_analysis.Diagnostic
module C = Wp_analysis.Concurrency

type report = { schedules : int; steps : int; diagnostics : D.t list }

let lock_rank name =
  if String.starts_with ~prefix:"queue." name then Some 0
  else if String.equal name Candidate_cache.mutex_name then Some 0
    (* leaf-only: never held together with a queue mutex *)
  else if
    (* leaf-only observability locks: span/profile recording and
       registry snapshots never take another lock while held (they are
       real mutexes, invisible to Sched, ranked here so the declared
       hierarchy stays complete) *)
    String.equal name Wp_obs.Obs.mutex_name
    || String.equal name Wp_obs.Registry.mutex_name
  then Some 0
  else if String.equal name "topk.mutex" then Some 1
  else None

let sorted_scores (answers : Topk_set.entry list) =
  List.sort (fun a b -> Float.compare b a)
    (List.map (fun (e : Topk_set.entry) -> e.score) answers)

let scores_equal xs ys =
  List.length xs = List.length ys
  && List.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) xs ys

let check ?(schedules = 200) ?(seed = 0) ?(threads_per_server = 1)
    ?(routing = Strategy.Min_alive)
    ?(queue_policy = Strategy.Max_final_score) ?(faults = [])
    ?(max_steps = 1_000_000) (plan : Plan.t) ~k =
  let config =
    Engine.Config.(
      default |> with_routing routing |> with_queue_policy queue_policy
      |> with_threads_per_server threads_per_server)
  in
  let oracle = Engine.run ~config plan ~k in
  let expected = sorted_scores oracle.Engine.answers in
  let graph = C.Lock_graph.create () in
  (* Dedup across schedules: the same finding recurs in most of them;
     report it once, naming the first schedule that exhibited it. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let diags = ref [] in
  let add sched_idx (d : D.t) =
    (* schedule/shutdown messages embed run-specific counts; collapse
       them per code so 200 schedules report each defect once. *)
    let key =
      match D.class_of d with
      | "schedule" | "shutdown" -> d.code
      | _ -> d.code ^ "|" ^ d.message
    in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      diags :=
        { d with message = Printf.sprintf "%s [schedule %d]" d.message sched_idx }
        :: !diags
    end
  in
  let steps_total = ref 0 in
  for i = 0 to schedules - 1 do
    let r =
      Sched.run ~max_steps
        ~choose:(Sched.random ~seed:(seed + i))
        (fun sync ->
          let module S = (val sync : Sync.S) in
          let module E = Engine_mt.Make (S) in
          E.run ~faults ~config plan ~k)
    in
    steps_total := !steps_total + r.Sched.steps;
    C.Lock_graph.add_trace graph r.Sched.trace;
    List.iter (add i) (C.races r.Sched.trace);
    let completed = (not r.Sched.budget_exceeded) && r.Sched.blocked = [] in
    List.iter (add i)
      (C.shutdown ~completed ~pending_loc:Engine_mt.pending_loc r.Sched.trace);
    if r.Sched.budget_exceeded then
      add i
        (D.errorf "schedule/step-budget"
           "schedule exceeded the %d-step budget with %d thread(s) still \
            alive (%s): livelock or runaway work"
           max_steps
           (List.length r.Sched.blocked)
           (String.concat ", " r.Sched.blocked))
    else if r.Sched.blocked <> [] then
      add i
        (D.errorf "schedule/deadlock"
           "threads blocked with no runnable peer: %s"
           (String.concat ", " r.Sched.blocked))
    else begin
      match r.Sched.value with
      | Ok (res : Engine.result) ->
          let got = sorted_scores res.Engine.answers in
          if not (scores_equal expected got) then
            add i
              (D.errorf "schedule/answer-mismatch"
                 "explored schedule returned %d answer(s) with scores [%s], \
                  oracle Engine.run has %d with [%s]"
                 (List.length got)
                 (String.concat ";" (List.map (Printf.sprintf "%.4f") got))
                 (List.length expected)
                 (String.concat ";"
                    (List.map (Printf.sprintf "%.4f") expected)))
      | Error (Invariants.Violation m) ->
          add i (D.errorf "schedule/invariant" "runtime invariant violated: %s" m)
      | Error e ->
          add i
            (D.errorf "schedule/exception" "engine raised under schedule: %s"
               (Printexc.to_string e))
    end
  done;
  let graph_diags = C.Lock_graph.check ~rank:lock_rank graph in
  {
    schedules;
    steps = !steps_total;
    diagnostics = D.sort (graph_diags @ List.rev !diags);
  }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d schedule(s), %d step(s): " r.schedules r.steps;
  if r.diagnostics = [] then Format.fprintf ppf "no findings@]"
  else begin
    Format.fprintf ppf "%d finding(s)@," (List.length r.diagnostics);
    Format.fprintf ppf "%a@]" D.pp_list r.diagnostics
  end
