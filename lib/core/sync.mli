(** Synchronization primitives behind a signature.

    {!Engine_mt} is written against this interface rather than against
    [Mutex]/[Condition]/[Atomic]/[Domain] directly, so the same engine
    code runs in two worlds:

    - {!Real} — the production implementation: OCaml 5 domains and the
      stdlib primitives, with the instrumentation hooks compiled to
      no-ops;
    - the instrumented implementation of {!Sched} — cooperative fibers
      under a deterministic virtual-time scheduler that records every
      operation as a {!Wp_analysis.Concurrency.event} for lock-order
      and data-race analysis, and explores many interleavings
      reproducibly.

    Every primitive is created with a name; names are the vocabulary of
    the analyzer's findings and of the declared lock hierarchy
    ([queue.* < topk.mutex]). *)

module type S = sig
  type mutex
  type condition
  type atomic_int
  type handle

  val mutex : string -> mutex
  val lock : mutex -> unit
  val unlock : mutex -> unit

  val condition : string -> condition

  val wait : condition -> mutex -> unit
  (** Atomically release the mutex and sleep until signalled; the mutex
      is re-acquired before returning. *)

  val signal : condition -> unit
  val broadcast : condition -> unit

  val atomic : string -> int -> atomic_int
  val get : atomic_int -> int
  val set : atomic_int -> int -> unit

  val fetch_and_add : atomic_int -> int -> int
  (** Returns the previous value. *)

  val incr : atomic_int -> unit

  val spawn : string -> (unit -> unit) -> handle

  val join : handle -> unit
  (** Re-raises the thread's exception, if it terminated with one. *)

  val note_read : string -> unit
  (** Record a plain (non-atomic) read of the named shared location —
      a no-op in {!Real}, a race-detection sample when instrumented. *)

  val note_write : string -> unit
  (** Likewise for a plain write. *)
end

module Real : S
(** Domains and stdlib primitives; instrumentation hooks are no-ops. *)
