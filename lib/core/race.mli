(** Raceway — schedule exploration and concurrency checking for
    Whirlpool-M.

    Runs the multithreaded engine, instantiated with the deterministic
    instrumented scheduler ({!Sched}), over many schedules of the same
    plan, and checks every schedule three ways:

    - the explored schedule's top-k answers must be score-equivalent to
      the single-threaded {!Engine.run} oracle
      ([schedule/answer-mismatch]), and the run must neither deadlock
      ([schedule/deadlock]) nor exhaust the step budget
      ([schedule/step-budget]) nor raise ([schedule/exception]);
    - the recorded trace passes vector-clock race detection and the
      shutdown-counter checks of {!Wp_analysis.Concurrency};
    - lock-nesting edges accumulate over {e all} schedules into one
      lock-order graph, checked for cycles and for violations of the
      engine's declared hierarchy ({!lock_rank}).

    A clean engine yields an empty diagnostics list; the
    {!Engine_mt.Fault} injections each produce findings (that is how
    the detectors themselves are tested). *)

type report = {
  schedules : int;  (** schedules explored *)
  steps : int;  (** total scheduling steps across all schedules *)
  diagnostics : Wp_analysis.Diagnostic.t list;
      (** deduplicated findings, sorted by severity; each message names
          the first schedule that exhibited it *)
}

val lock_rank : string -> int option
(** The engine's declared lock hierarchy: queue mutexes ([queue.*])
    rank 0, the top-k mutex ([topk.mutex]) rank 1 — a thread holding
    the top-k mutex must not touch a queue.  Unknown names are
    unranked. *)

val check :
  ?schedules:int ->
  ?seed:int ->
  ?threads_per_server:int ->
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  ?faults:Engine_mt.Fault.t list ->
  ?max_steps:int ->
  Plan.t ->
  k:int ->
  report
(** Explore [schedules] (default 200) seeded-random schedules
    ([seed] default 0 numbers them) of [Engine_mt.run] on the plan.
    [threads_per_server] (default 1), [routing] and [queue_policy] are
    passed to the engine; [faults] (default none) injects defects;
    [max_steps] (default 1_000_000) bounds each schedule. *)

val pp_report : Format.formatter -> report -> unit
