(* A blocking priority queue: pop waits until an element arrives or the
   shared stop flag is raised. *)
module Shared_queue = struct
  type 'a t = {
    queue : 'a Pqueue.t;
    mutex : Mutex.t;
    cond : Condition.t;
    mutable seq : int;
  }

  let create () =
    { queue = Pqueue.create (); mutex = Mutex.create (); cond = Condition.create (); seq = 0 }

  let push t ~tie ~priority_of x =
    Mutex.lock t.mutex;
    t.seq <- t.seq + 1;
    Pqueue.push t.queue ~tie (priority_of ~seq:t.seq x) x;
    Condition.signal t.cond;
    Mutex.unlock t.mutex

  let pop t ~stopped =
    Mutex.lock t.mutex;
    let rec wait () =
      match Pqueue.pop t.queue with
      | Some x ->
          Mutex.unlock t.mutex;
          Some x
      | None ->
          if stopped () then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.cond t.mutex;
            wait ()
          end
    in
    wait ()

  let wake_all t =
    Mutex.lock t.mutex;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
end

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

type shared = {
  plan : Plan.t;
  routing : Strategy.routing;
  queue_policy : Strategy.queue_policy;
  topk : Topk_set.t;
  topk_mutex : Mutex.t;
  router_queue : Partial_match.t Shared_queue.t;
  server_queues : Partial_match.t Shared_queue.t array;  (* index 0 unused *)
  pending : int Atomic.t;  (* partial matches alive in queues or in flight *)
  stop : bool Atomic.t;
  next_id : int Atomic.t;
}

let stopped shared () = Atomic.get shared.stop

let finish shared =
  Atomic.set shared.stop true;
  Shared_queue.wake_all shared.router_queue;
  Array.iter Shared_queue.wake_all shared.server_queues

(* Decrement the in-flight count; the thread that reaches zero shuts the
   system down. *)
let retire shared =
  if Atomic.fetch_and_add shared.pending (-1) = 1 then finish shared

let router_priority shared ~seq pm =
  Strategy.priority shared.queue_policy shared.plan ~seq ~server:None pm

let server_priority shared server ~seq pm =
  Strategy.priority shared.queue_policy shared.plan ~seq ~server:(Some server) pm

let with_topk shared f =
  Mutex.lock shared.topk_mutex;
  let r = f shared.topk in
  Mutex.unlock shared.topk_mutex;
  r

let router_loop shared (stats : Stats.t) =
  let rec loop () =
    match Shared_queue.pop shared.router_queue ~stopped:(stopped shared) with
    | None -> ()
    | Some pm ->
        let pruned, threshold =
          with_topk shared (fun topk ->
              (Topk_set.should_prune topk pm, Topk_set.threshold topk))
        in
        if pruned then begin
          stats.matches_pruned <- stats.matches_pruned + 1;
          retire shared
        end
        else begin
          let server = Strategy.choose_next shared.routing shared.plan ~threshold pm in
          stats.routing_decisions <- stats.routing_decisions + 1;
          Shared_queue.push shared.server_queues.(server) ~tie:pm.Partial_match.score
            ~priority_of:(server_priority shared server) pm
        end;
        loop ()
  in
  loop ()

let server_loop shared server (stats : Stats.t) =
  let next_id () = Atomic.fetch_and_add shared.next_id 1 in
  let rec loop () =
    match Shared_queue.pop shared.server_queues.(server) ~stopped:(stopped shared) with
    | None -> ()
    | Some pm ->
        let pruned = with_topk shared (fun topk -> Topk_set.should_prune topk pm) in
        if pruned then stats.matches_pruned <- stats.matches_pruned + 1
        else begin
          let { Server.extensions; died } =
            Server.process shared.plan stats ~next_id pm ~server
          in
          if Invariants.enabled () then
            List.iter
              (Invariants.check_extension shared.plan ~parent:pm)
              extensions;
          if died then with_topk shared (fun topk -> Topk_set.retract topk pm);
          let alive =
            List.filter_map
              (fun ext ->
                let complete =
                  Partial_match.is_complete ext ~full_mask:shared.plan.full_mask
                in
                let keep =
                  with_topk shared (fun topk ->
                      Topk_set.consider topk ~complete ext;
                      (not complete) && not (Topk_set.should_prune topk ext))
                in
                if complete then begin
                  stats.completed <- stats.completed + 1;
                  None
                end
                else if keep then Some ext
                else begin
                  stats.matches_pruned <- stats.matches_pruned + 1;
                  None
                end)
              extensions
          in
          (* Register the new in-flight matches before retiring the
             consumed one, so the count never dips to zero early. *)
          List.iter
            (fun ext ->
              Atomic.incr shared.pending;
              Shared_queue.push shared.router_queue ~tie:ext.Partial_match.score
                ~priority_of:(router_priority shared) ext)
            alive
        end;
        retire shared;
        loop ()
  in
  loop ()

let run ?(routing = Strategy.Min_alive)
    ?(queue_policy = Strategy.Max_final_score) ?(threads_per_server = 1)
    (plan : Plan.t) ~k =
  if threads_per_server < 1 then
    invalid_arg "Engine_mt.run: threads_per_server >= 1";
  Engine.validate_plan plan;
  let t0 = now_ns () in
  let main_stats = Stats.create () in
  let shared =
    {
      plan;
      routing;
      queue_policy;
      topk = Topk_set.create ~k ~admit_partial:(Plan.admits_partial_answers plan);
      topk_mutex = Mutex.create ();
      router_queue = Shared_queue.create ();
      server_queues = Array.init plan.n_servers (fun _ -> Shared_queue.create ());
      pending = Atomic.make 0;
      stop = Atomic.make false;
      next_id = Atomic.make 1;
    }
  in
  let next_id () = Atomic.fetch_and_add shared.next_id 1 in
  let initial = Server.initial_matches plan main_stats ~next_id in
  let single_node = plan.n_servers = 1 in
  let to_route =
    List.filter_map
      (fun pm ->
        Topk_set.consider shared.topk ~complete:single_node pm;
        if single_node then begin
          main_stats.completed <- main_stats.completed + 1;
          None
        end
        else if Topk_set.should_prune shared.topk pm then begin
          main_stats.matches_pruned <- main_stats.matches_pruned + 1;
          None
        end
        else Some pm)
      initial
  in
  if to_route = [] then Atomic.set shared.stop true
  else begin
    Atomic.set shared.pending (List.length to_route);
    List.iter
      (fun pm ->
        Shared_queue.push shared.router_queue ~tie:pm.Partial_match.score
          ~priority_of:(router_priority shared) pm)
      to_route
  end;
  let router_stats = Stats.create () in
  let server_stats =
    Array.init (plan.n_servers * threads_per_server) (fun _ -> Stats.create ())
  in
  let router_domain =
    Domain.spawn (fun () -> router_loop shared router_stats)
  in
  (* One or more worker domains per server, all draining that server's
     queue. *)
  let server_domains =
    List.concat_map
      (fun i ->
        let s = i + 1 in
        List.init threads_per_server (fun t ->
            let stats = server_stats.(((s - 1) * threads_per_server) + t) in
            Domain.spawn (fun () -> server_loop shared s stats)))
      (List.init (plan.n_servers - 1) Fun.id)
  in
  Domain.join router_domain;
  List.iter Domain.join server_domains;
  let stats = Stats.create () in
  Stats.add stats main_stats;
  Stats.add stats router_stats;
  Array.iter (Stats.add stats) server_stats;
  stats.wall_ns <- Int64.sub (now_ns ()) t0;
  { Engine.answers = Topk_set.entries shared.topk; stats }
