(* Whirlpool-M, written against the Sync signature so the identical
   engine code runs on real domains (Sync.Real) and under the
   deterministic instrumented scheduler (Sched) for race detection and
   schedule exploration.

   Lock hierarchy (checked by Race): cache.mutex and the queue mutexes
   (rank 0) below topk.mutex (rank 1); in fact no thread ever holds two
   locks at once — the candidate-cache mutex in particular is leaf-only,
   taken and released inside Candidate_cache.find with no other lock
   held.  The trace wrapper and the observability context use real
   [Mutex.t] values (never S.mutex): they are leaf-only, taken with no
   S-operation inside the critical section, so they cannot participate
   in a Sched-visible deadlock and stay invisible to schedule
   exploration.
   Shutdown protocol: [pending] counts partial matches alive in queues
   or in flight; workers increment it for every surviving extension
   *before* retiring the consumed match, so the count reaches zero
   exactly when no work remains; the thread that decrements it to zero
   raises the stop flag and broadcasts all queues awake. *)

module Obs = Wp_obs.Obs

module Fault = struct
  type t = Drop_topk_lock | Retire_early | Skip_pending_incr

  let to_string = function
    | Drop_topk_lock -> "drop-topk-lock"
    | Retire_early -> "retire-early"
    | Skip_pending_incr -> "skip-pending-incr"

  let of_string = function
    | "drop-topk-lock" -> Some Drop_topk_lock
    | "retire-early" -> Some Retire_early
    | "skip-pending-incr" -> Some Skip_pending_incr
    | _ -> None

  let all = [ Drop_topk_lock; Retire_early; Skip_pending_incr ]
  let pp ppf f = Format.pp_print_string ppf (to_string f)
end

(* Shared-location names reported by the instrumented build; the topk
   set is one logical location because every engine access goes through
   with_topk. *)
let topk_loc = "topk.set"
let pending_loc = "pending"

module Make (S : Sync.S) = struct
  (* A blocking priority queue: pop waits until an element arrives or
     the shared stop flag is raised. *)
  module Shared_queue = struct
    type 'a t = {
      queue : 'a Pqueue.t;
      mutex : S.mutex;
      cond : S.condition;
      mutable seq : int;
      state_loc : string;  (* race-detection name for seq + heap *)
    }

    let create name =
      {
        queue = Pqueue.create ();
        mutex = S.mutex (name ^ ".mutex");
        cond = S.condition (name ^ ".cond");
        seq = 0;
        state_loc = name ^ ".state";
      }

    (* Exception-safe critical section: a raising callback (or a Pqueue
       bug) must not leave the mutex held and deadlock the other
       domains. *)
    let with_lock t f =
      S.lock t.mutex;
      Fun.protect ~finally:(fun () -> S.unlock t.mutex) f

    let push t ~tie ~priority_of x =
      with_lock t (fun () ->
          t.seq <- t.seq + 1;
          S.note_write t.state_loc;
          Pqueue.push t.queue ~tie (priority_of ~seq:t.seq x) x;
          S.signal t.cond)

    let pop t ~stopped =
      with_lock t (fun () ->
          let rec wait () =
            S.note_write t.state_loc;
            match Pqueue.pop t.queue with
            | Some x -> Some x
            | None ->
                if stopped () then None
                else begin
                  S.wait t.cond t.mutex;
                  wait ()
                end
          in
          wait ())

    let wake_all t = with_lock t (fun () -> S.broadcast t.cond)
  end

  type shared = {
    plan : Plan.t;
    routing : Strategy.routing;
    queue_policy : Strategy.queue_policy;
    cache : Candidate_cache.t;  (* shared, guarded by its own S.mutex *)
    topk : Topk_set.t;
    topk_mutex : S.mutex;
    router_queue : Partial_match.t Shared_queue.t;
    server_queues : Partial_match.t Shared_queue.t array;  (* index 0 unused *)
    pending : S.atomic_int;  (* partial matches alive in queues or in flight *)
    stop : S.atomic_int;
    partial : S.atomic_int;  (* set when should_stop cut the run short *)
    should_stop : unit -> bool;
    prune_bound : unit -> float;  (* external score floor; read outside locks *)
    publish_threshold : float -> unit;  (* invoked outside the topk lock *)
    mutable published : float;  (* last published threshold; topk_mutex *)
    cert : Certify.t option;
        (* streaming certification; the alive-set operations and
           [newly_certified] run under topk_mutex, but only the router
           thread emits (outside the lock), so the streamed order is
           total and a blocking callback never stalls a worker holding
           a lock *)
    next_id : S.atomic_int;
    trace : Trace.t;  (* already serialized; see [run] *)
    tracing : bool;  (* false iff [trace] is the no-op tracer *)
    obs : Obs.t;
    obs_on : bool;
    qspan : Obs.span option;  (* the run's root span, parent of visits *)
    drop_topk_lock : bool;
    retire_early : bool;
    skip_pending_incr : bool;
  }

  let stopped shared () = S.get shared.stop <> 0

  let finish shared =
    S.set shared.stop 1;
    Shared_queue.wake_all shared.router_queue;
    Array.iter Shared_queue.wake_all shared.server_queues

  (* Decrement the in-flight count; the thread that reaches zero shuts
     the system down. *)
  let retire shared =
    if S.fetch_and_add shared.pending (-1) = 1 then finish shared

  (* Cooperative cancellation (deadline expiry): the first thread that
     observes the hook firing marks the result partial and raises the
     global stop flag; every queue then drains without processing, so
     no thread can hang on a request whose deadline has passed. *)
  let check_deadline shared =
    shared.should_stop ()
    && begin
         S.set shared.partial 1;
         finish shared;
         true
       end

  let router_priority shared ~seq pm =
    Strategy.priority shared.queue_policy shared.plan ~seq ~server:None pm

  let server_priority shared server ~seq pm =
    Strategy.priority shared.queue_policy shared.plan ~seq ~server:(Some server)
      pm

  let with_topk shared f =
    if shared.drop_topk_lock then begin
      S.note_write topk_loc;
      f shared.topk
    end
    else begin
      S.lock shared.topk_mutex;
      Fun.protect
        ~finally:(fun () -> S.unlock shared.topk_mutex)
        (fun () ->
          S.note_write topk_loc;
          f shared.topk)
    end

  let router_loop shared (stats : Stats.t) =
    let rec loop () =
      match Shared_queue.pop shared.router_queue ~stopped:(stopped shared) with
      | None -> ()
      | Some _ when check_deadline shared -> loop ()
      | Some pm ->
          S.note_write "stats.router";
          if shared.tracing then
            shared.trace
              (Trace.Popped
                 {
                   id = pm.Partial_match.id;
                   score = pm.score;
                   max_possible = pm.max_possible;
                 });
          (* External bound read before (outside) the topk lock: the
             bound is monotone, so a stale read only under-prunes. *)
          let xb = shared.prune_bound () in
          let pruned, threshold, certified =
            with_topk shared (fun topk ->
                let pruned =
                  Topk_set.should_prune topk pm
                  || pm.Partial_match.max_possible < xb
                in
                let certified =
                  match shared.cert with
                  | Some c ->
                      if pruned then Certify.remove c pm.Partial_match.id;
                      Certify.newly_certified c topk
                  | None -> []
                in
                (pruned, Topk_set.threshold topk, certified))
          in
          (* Stream outside the lock: the callback may block on a
             socket.  Only this thread emits, so order is total. *)
          (match shared.cert with
          | Some c -> List.iter (Certify.emit c) certified
          | None -> ());
          if pruned then begin
            if shared.tracing then
              shared.trace (Trace.Pruned { id = pm.Partial_match.id });
            stats.matches_pruned <- stats.matches_pruned + 1;
            retire shared
          end
          else begin
            let server =
              Strategy.choose_next shared.routing shared.plan ~threshold pm
            in
            stats.routing_decisions <- stats.routing_decisions + 1;
            if shared.tracing then
              shared.trace
                (Trace.Routed { id = pm.Partial_match.id; server });
            Shared_queue.push shared.server_queues.(server)
              ~tie:pm.Partial_match.score
              ~priority_of:(server_priority shared server) pm
          end;
          loop ()
    in
    loop ()

  let server_loop shared server ~stats_loc (stats : Stats.t) =
    let next_id () = S.fetch_and_add shared.next_id 1 in
    let rec loop () =
      match
        Shared_queue.pop shared.server_queues.(server)
          ~stopped:(stopped shared)
      with
      | None -> ()
      | Some _ when check_deadline shared -> loop ()
      | Some pm ->
          S.note_write stats_loc;
          let xb = shared.prune_bound () in
          let pruned =
            with_topk shared (fun topk ->
                let pruned =
                  pm.Partial_match.max_possible < xb
                  || Topk_set.should_prune topk pm
                in
                (match shared.cert with
                | Some c when pruned -> Certify.remove c pm.Partial_match.id
                | Some _ | None -> ());
                pruned)
          in
          if pruned then begin
            if shared.tracing then
              shared.trace (Trace.Pruned { id = pm.Partial_match.id });
            stats.matches_pruned <- stats.matches_pruned + 1;
            retire shared
          end
          else begin
            let vspan =
              if shared.obs_on then
                Obs.child shared.obs ~parent:shared.qspan "visit"
              else None
            in
            let v0 = if shared.obs_on then Clock.now_ns () else 0L in
            let c0 = stats.comparisons
            and h0 = stats.cache_hits
            and m0 = stats.cache_misses in
            let { Server.extensions; died } =
              Server.process ~cache:shared.cache shared.plan stats ~next_id pm
                ~server
            in
            if shared.obs_on then begin
              Obs.visit shared.obs ~server
                ~comparisons:(stats.comparisons - c0)
                ~cache_hits:(stats.cache_hits - h0)
                ~cache_misses:(stats.cache_misses - m0)
                ~ns:(Int64.sub (Clock.now_ns ()) v0);
              Obs.attr shared.obs vspan "server" (float_of_int server);
              Obs.finish shared.obs vspan
            end;
            if Invariants.enabled () then
              List.iter
                (Invariants.check_extension shared.plan ~parent:pm)
                extensions;
            if died then begin
              if shared.tracing then
                shared.trace (Trace.Died { id = pm.Partial_match.id; server });
              with_topk shared (fun topk -> Topk_set.retract topk pm)
            end;
            let alive =
              List.filter_map
                (fun ext ->
                  let complete =
                    Partial_match.is_complete ext
                      ~full_mask:shared.plan.full_mask
                  in
                  if shared.tracing then
                    shared.trace
                      (Trace.Extended
                         {
                           parent = pm.Partial_match.id;
                           id = ext.Partial_match.id;
                           server;
                           bound = Partial_match.bound ext server <> None;
                         });
                  let keep, to_publish =
                    with_topk shared (fun topk ->
                        Topk_set.consider topk ~complete ext;
                        (* The external-bound filter sits inside the
                           lock so a surviving extension enters the
                           certification alive set atomically with the
                           keep decision ([xb] itself was read outside;
                           a stale value only under-prunes). *)
                        let keep =
                          (not complete)
                          && (not (Topk_set.should_prune topk ext))
                          && not (ext.Partial_match.max_possible < xb)
                        in
                        (match shared.cert with
                        | Some c when keep -> Certify.add c ext
                        | Some _ | None -> ());
                        let th = Topk_set.threshold topk in
                        let pub =
                          if th > shared.published then begin
                            shared.published <- th;
                            Some th
                          end
                          else None
                        in
                        (keep, pub))
                  in
                  (* Publish after releasing the topk lock: the gather
                     side takes its own lock and must stay below rank 1
                     territory held here. *)
                  (match to_publish with
                  | Some th -> shared.publish_threshold th
                  | None -> ());
                  if complete then begin
                    if shared.tracing then
                      shared.trace
                        (Trace.Completed
                           { id = ext.Partial_match.id; score = ext.score });
                    stats.completed <- stats.completed + 1;
                    None
                  end
                  else if keep then Some ext
                  else begin
                    if shared.tracing then
                      shared.trace (Trace.Pruned { id = ext.Partial_match.id });
                    stats.matches_pruned <- stats.matches_pruned + 1;
                    None
                  end)
                extensions
            in
            (* The consumed match leaves the certification alive set
               only after its surviving extensions entered it (above,
               under the consider lock) — the same
               register-before-retire discipline as [pending], so the
               certification bar never dips below a score that a
               descendant could still reach. *)
            (match shared.cert with
            | Some c ->
                with_topk shared (fun _ ->
                    Certify.remove c pm.Partial_match.id)
            | None -> ());
            (* Register the new in-flight matches before retiring the
               consumed one, so the count never dips to zero early.
               (The Retire_early / Skip_pending_incr faults break
               exactly this protocol, for detector validation.) *)
            if shared.retire_early then retire shared;
            List.iter
              (fun ext ->
                if not shared.skip_pending_incr then S.incr shared.pending;
                Shared_queue.push shared.router_queue
                  ~tie:ext.Partial_match.score
                  ~priority_of:(router_priority shared) ext)
              alive;
            if not shared.retire_early then retire shared
          end;
          loop ()
    in
    loop ()

  let run ?(faults = []) ?(config = Engine.Config.default) (plan : Plan.t) ~k =
    let {
      Engine.Config.routing;
      queue_policy;
      threads_per_server;
      should_stop;
      obs;
      prune_bound;
      publish_threshold;
      _;
    } =
      config
    in
    if threads_per_server < 1 then
      invalid_arg "Engine_mt.run: threads_per_server >= 1";
    Engine.validate_plan plan;
    let t0 = Clock.now_ns () in
    let obs_on = Obs.enabled obs in
    let qspan = if obs_on then Obs.root obs "query" else None in
    Obs.attr obs qspan "k" (float_of_int k);
    Obs.attr obs qspan "servers" (float_of_int plan.n_servers);
    (* Serialize the user tracer once here: every domain shares it, and
       a tracer built on a plain ref (Trace.collector predates the
       mutex) must still see a consistent stream.  Events also land on
       the run's root span.  The no-op tracer stays the no-op tracer —
       nothing is paid when tracing is off. *)
    let trace =
      if config.trace == Trace.ignore_tracer && not obs_on then
        Trace.ignore_tracer
      else begin
        let m = Mutex.create () in
        let inner = config.Engine.Config.trace in
        fun e ->
          Mutex.lock m;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock m)
            (fun () ->
              inner e;
              Obs.event obs qspan (fun () ->
                  Format.asprintf "%a" Trace.pp_event e))
      end
    in
    let tracing = not (trace == Trace.ignore_tracer) in
    let cert =
      if config.Engine.Config.on_certified == Engine.no_certify then None
      else Some (Certify.create ~emit:config.Engine.Config.on_certified)
    in
    let main_stats = Stats.create () in
    let cache_mutex = S.mutex Candidate_cache.mutex_name in
    let shared =
      {
        plan;
        routing;
        queue_policy;
        cache =
          (* An externally supplied cache (the serve tier's persistent
             per-shard cache) brings its own lock hooks; otherwise the
             run creates a private one under this sync layer's mutex. *)
          (match config.Engine.Config.cache with
          | Some cache -> cache
          | None ->
              Candidate_cache.create
                ~lock:(fun () -> S.lock cache_mutex)
                ~unlock:(fun () -> S.unlock cache_mutex)
                ~note:(fun () -> S.note_write Candidate_cache.state_loc)
                ());
        topk =
          Topk_set.create ~k ~admit_partial:(Plan.admits_partial_answers plan);
        topk_mutex = S.mutex "topk.mutex";
        router_queue = Shared_queue.create "queue.router";
        server_queues =
          Array.init plan.n_servers (fun i ->
              Shared_queue.create (Printf.sprintf "queue.server.%d" i));
        pending = S.atomic pending_loc 0;
        stop = S.atomic "stop" 0;
        partial = S.atomic "partial" 0;
        should_stop;
        prune_bound;
        publish_threshold;
        published = Float.neg_infinity;
        cert;
        next_id = S.atomic "next_id" 1;
        trace;
        tracing;
        obs;
        obs_on;
        qspan;
        drop_topk_lock = List.mem Fault.Drop_topk_lock faults;
        retire_early = List.mem Fault.Retire_early faults;
        skip_pending_incr = List.mem Fault.Skip_pending_incr faults;
      }
    in
    let next_id () = S.fetch_and_add shared.next_id 1 in
    let initial = Server.initial_matches plan main_stats ~next_id in
    let single_node = plan.n_servers = 1 in
    (* Pre-spawn: single-threaded, so the topk set and [published] are
       touched without the mutex here. *)
    let xb0 = prune_bound () in
    let to_route =
      List.filter_map
        (fun pm ->
          S.note_write topk_loc;
          Topk_set.consider shared.topk ~complete:single_node pm;
          if single_node then begin
            main_stats.completed <- main_stats.completed + 1;
            None
          end
          else if
            Topk_set.should_prune shared.topk pm
            || pm.Partial_match.max_possible < xb0
          then begin
            main_stats.matches_pruned <- main_stats.matches_pruned + 1;
            None
          end
          else begin
            (match cert with Some c -> Certify.add c pm | None -> ());
            Some pm
          end)
        initial
    in
    let th0 = Topk_set.threshold shared.topk in
    if th0 > shared.published then begin
      shared.published <- th0;
      publish_threshold th0
    end;
    if to_route = [] then S.set shared.stop 1
    else begin
      S.set shared.pending (List.length to_route);
      List.iter
        (fun pm ->
          Shared_queue.push shared.router_queue ~tie:pm.Partial_match.score
            ~priority_of:(router_priority shared) pm)
        to_route
    end;
    let router_stats = Stats.create () in
    let server_stats =
      Array.init
        (plan.n_servers * threads_per_server)
        (fun _ -> Stats.create ())
    in
    let router_handle =
      S.spawn "router" (fun () -> router_loop shared router_stats)
    in
    (* One or more worker domains per server, all draining that server's
       queue. *)
    let server_handles =
      List.concat_map
        (fun i ->
          let s = i + 1 in
          List.init threads_per_server (fun t ->
              let stats = server_stats.(((s - 1) * threads_per_server) + t) in
              S.spawn
                (Printf.sprintf "server.%d.%d" s t)
                (fun () ->
                  server_loop shared s
                    ~stats_loc:(Printf.sprintf "stats.server.%d.%d" s t)
                    stats)))
        (List.init (plan.n_servers - 1) Fun.id)
    in
    S.join router_handle;
    List.iter S.join server_handles;
    (* Post-join: single-threaded again.  A drained run has an empty
       alive set, so every remaining entry is final; a partial run
       stops emitting (already-streamed answers stay valid). *)
    (match cert with
    | Some c when S.get shared.partial = 0 -> Certify.flush_all c shared.topk
    | Some _ | None -> ());
    let stats = Stats.create () in
    Stats.add stats main_stats;
    Stats.add stats router_stats;
    Array.iter (Stats.add stats) server_stats;
    stats.wall_ns <- Int64.sub (Clock.now_ns ()) t0;
    S.note_read topk_loc;
    let answers = Topk_set.entries shared.topk in
    if obs_on then begin
      Obs.attr obs qspan "answers" (float_of_int (List.length answers));
      Obs.attr obs qspan "server_ops" (float_of_int stats.server_ops);
      if S.get shared.partial <> 0 then Obs.attr obs qspan "partial" 1.0;
      Obs.finish obs qspan
    end;
    { Engine.answers; stats; partial = S.get shared.partial <> 0 }
end

module Default = Make (Sync.Real)

let run ?config plan ~k = Default.run ?config plan ~k
