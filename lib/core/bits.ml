(* One shared popcount for the engine's visited-mask bookkeeping,
   byte-table based: eight table lookups per word instead of one loop
   iteration per bit. *)

let table =
  Array.init 256 (fun i ->
      let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
      go i 0)

let popcount mask =
  let rec go m acc =
    if m = 0 then acc else go (m lsr 8) (acc + table.(m land 0xff))
  in
  if mask < 0 then invalid_arg "Bits.popcount: negative mask" else go mask 0
