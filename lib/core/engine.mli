(** Whirlpool-S — the single-threaded adaptive engine.

    As in the paper (Section 6.1.2), the single-threaded variant needs no
    per-server queues: a partial match is processed by a server as soon
    as it is routed there, so matches wait only in the router queue,
    ordered by maximum possible final score by default.  Each iteration
    pops the best match, re-checks it against the top-k threshold (which
    may have risen since it was queued), asks the routing strategy for
    its next server, processes it there, and feeds surviving incomplete
    extensions back to the router. *)

type result = {
  answers : Topk_set.entry list;  (** the top-k, best first *)
  stats : Stats.t;
  partial : bool;
      (** true when the run was cut short by [should_stop] (deadline
          expiry, cooperative cancellation): the answers are the best
          top-k known at the stopping point, not necessarily the final
          one — graceful degradation in the spirit of the paper's
          approximate answers *)
}

val never_stop : unit -> bool
(** The default [should_stop] hook: always false.  Shared so the other
    engines can default their hooks without allocating a closure per
    run. *)

val no_certify : Topk_set.entry -> unit
(** The default [on_certified] hook: a shared no-op.  The engines gate
    all certification bookkeeping on physical inequality with this
    value (the [Trace.ignore_tracer] idiom), so a run without a hook
    pays nothing. *)

(** Every engine knob in one record — the single seam through which the
    CLI, the benches and {!Wp_serve} configure a run, replacing the
    optional-argument signatures that used to drift between
    [Engine.run], [Engine.run_above] and [Engine_mt.run].

    [default] reproduces the historical defaults bit-for-bit; the
    [with_*] setters build variations without naming the other fields,
    so adding a knob never touches a call site:

    {[
      let config =
        Engine.Config.(
          default |> with_routing Strategy.Max_score |> with_batch 16)
      in
      Engine.run ~config plan ~k:10
    ]} *)
module Config : sig
  (** Backend selector — the engine family a run should use.  The
      whirlpool engines ignore it (calling {!Engine.run} always runs
      Whirlpool-S); dispatch over the full axis lives in
      [Wp_twig.Backend.run], which the CLI and the serve tier go
      through.  [Twig] is the exact-only holistic twig join;
      [Twig_seeded] runs the twig join first and folds its exact-match
      scores into the prune floor before adaptive matching starts. *)
  type algo =
    | Whirlpool
    | Whirlpool_mt
    | Lockstep
    | Lockstep_noprun
    | Twig
    | Twig_seeded

  val all_algos : algo list
  (** Every constructor, in declaration order. *)

  val algo_to_string : algo -> string
  (** Canonical wire name ("whirlpool-s", "whirlpool-m", "lockstep",
      "lockstep-noprun", "twig", "twig-seeded"); distinct per
      constructor and accepted back by {!algo_of_string}. *)

  val algo_of_string : string -> algo option
  (** Inverse of {!algo_to_string}, also accepting the historical
      aliases "ws", "wm" and "noprun". *)

  type t = {
    algo : algo;  (** default [Whirlpool] *)
    routing : Strategy.routing;  (** default [Min_alive] *)
    queue_policy : Strategy.queue_policy;  (** default [Max_final_score] *)
    batch : int;
        (** bulk-adaptivity width, default 1 (paper Section 6.3.3) *)
    use_cache : bool;
        (** per-(server, root) candidate memoization, default true *)
    threads_per_server : int;
        (** Whirlpool-M only, default 1 (paper Section 7); ignored by
            the single-threaded engine *)
    should_stop : unit -> bool;
        (** cooperative-cancellation hook, default {!never_stop} *)
    trace : Trace.t;  (** default {!Trace.ignore_tracer} *)
    obs : Wp_obs.Obs.t;
        (** observability context (spans + per-server cost profile),
            default {!Wp_obs.Obs.disabled}; a disabled context leaves
            the run's counters and answers bit-identical *)
    cache : Candidate_cache.t option;
        (** an external candidate cache to use instead of a fresh
            run-local one, default [None].  The serve tier passes its
            per-(shard, document) cache here so memoized candidate
            derivations persist across requests; honored only when
            [use_cache] is true.  The caller owns synchronization (the
            cache's [lock]/[unlock] hooks) when the same cache is
            shared across threads. *)
    prune_bound : unit -> float;
        (** an external score floor read at every prune decision,
            default a constant [neg_infinity] (never prunes).  Scatter–
            gather serving publishes the merged top-k's k-th score
            here: a partial match whose [max_possible] is {e strictly}
            below the floor can never enter the merged answer, so
            pruning against it with [<] leaves sharded answers
            identical to unsharded.  Must be cheap and monotone
            non-decreasing; a stale read is always sound. *)
    publish_threshold : float -> unit;
        (** called (outside any engine lock) whenever this run's own
            top-k threshold tightens, with the new threshold; default a
            no-op.  The scatter–gather layer feeds it back into the
            other shards' [prune_bound]. *)
    on_certified : Topk_set.entry -> unit;
        (** called (outside any engine lock) the moment an answer is
            {e certified} — no alive partial match's maximum possible
            score can still beat it, so the entry is final and will
            appear, unchanged and in this exact order, as the next
            element of the run's answer list.  Default {!no_certify}
            (no bookkeeping is paid).  The serve tier streams these to
            protocol-v2 clients mid-run.  Emissions form a stable
            prefix of [result.answers]; a run cut short by
            [should_stop] stops emitting but never retracts.  Ignored
            by {!run_above} (threshold mode has no top-k set). *)
  }

  val default : t

  val with_algo : algo -> t -> t
  val with_routing : Strategy.routing -> t -> t
  val with_queue_policy : Strategy.queue_policy -> t -> t
  val with_batch : int -> t -> t
  val with_use_cache : bool -> t -> t
  val with_threads_per_server : int -> t -> t
  val with_should_stop : (unit -> bool) -> t -> t
  val with_trace : Trace.t -> t -> t
  val with_obs : Wp_obs.Obs.t -> t -> t
  val with_cache : Candidate_cache.t option -> t -> t
  val with_prune_bound : (unit -> float) -> t -> t
  val with_publish_threshold : (float -> unit) -> t -> t
  val with_on_certified : (Topk_set.entry -> unit) -> t -> t
end

val validate_plan : Plan.t -> unit
(** Static gate run at every engine entry point: raises
    {!Wp_analysis.Lint.Rejected} when the quick lint pass (structural
    well-formedness plus plan consistency — no lattice enumeration)
    reports an error-severity diagnostic for the plan. *)

val run : ?config:Config.t -> Plan.t -> k:int -> result
(** Run the adaptive top-k engine under [config] (default
    {!Config.default}).

    [config.should_stop] is checked at every iteration boundary (once
    per popped match, before it is processed).  When it returns true
    the engine stops routing, drops the remaining queue and returns the
    current top-k with [partial = true].  A hook that never fires
    leaves the run — and its answers — bit-identical to one without the
    hook.  {!Wp_serve} uses it to enforce per-request deadlines.

    [config.batch] implements the paper's bulk-adaptivity extension
    (Section 6.3.3: route tuples "in bulk, by grouping tuples based on
    similarity"): one routing decision is reused for up to [batch]
    consecutive queue heads that have visited the same set of servers,
    amortizing the decision overhead when server operations are cheap.

    [config.use_cache] memoizes per-(server, root) candidate derivation
    through a run-local {!Candidate_cache}; disabling it recomputes
    candidates on every server operation — the reference behaviour
    [bench/report] measures the cache against.

    [config.obs], when enabled, collects a span tree (a root span for
    the run, a child per iteration batch, a grandchild per server
    visit, trace events attached to the enclosing span) and an exact
    per-server cost profile; the run's counters and answers are never
    affected. *)

val run_above : ?config:Config.t -> Plan.t -> threshold:float -> result
(** Threshold variant (the mode of the paper's predecessor system,
    Amer-Yahia et al. EDBT 2002): return {e every} answer whose score
    strictly exceeds [threshold], best first, pruning partial matches
    whose maximum possible final score cannot beat it.  The cardinality
    of the answer set is data-dependent rather than fixed at [k].
    Honors [config]'s routing, queue policy, cache and stop hook;
    [batch], [trace] and [obs] do not apply to this mode.
    [config.on_certified] is ignored here.

    The pre-redesign [run_args]/[run_above_args] wrappers, deprecated
    since the Observe release, are gone; {!Config.t} is the only
    configuration surface. *)

val pp_result : Format.formatter -> result -> unit
