(** Whirlpool-S — the single-threaded adaptive engine.

    As in the paper (Section 6.1.2), the single-threaded variant needs no
    per-server queues: a partial match is processed by a server as soon
    as it is routed there, so matches wait only in the router queue,
    ordered by maximum possible final score by default.  Each iteration
    pops the best match, re-checks it against the top-k threshold (which
    may have risen since it was queued), asks the routing strategy for
    its next server, processes it there, and feeds surviving incomplete
    extensions back to the router. *)

type result = {
  answers : Topk_set.entry list;  (** the top-k, best first *)
  stats : Stats.t;
  partial : bool;
      (** true when the run was cut short by [should_stop] (deadline
          expiry, cooperative cancellation): the answers are the best
          top-k known at the stopping point, not necessarily the final
          one — graceful degradation in the spirit of the paper's
          approximate answers *)
}

val never_stop : unit -> bool
(** The default [should_stop] hook: always false.  Shared so the other
    engines can default their hooks without allocating a closure per
    run. *)

val validate_plan : Plan.t -> unit
(** Static gate run at every engine entry point: raises
    {!Wp_analysis.Lint.Rejected} when the quick lint pass (structural
    well-formedness plus plan consistency — no lattice enumeration)
    reports an error-severity diagnostic for the plan. *)

val run :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  ?batch:int ->
  ?trace:Trace.t ->
  ?use_cache:bool ->
  ?should_stop:(unit -> bool) ->
  Plan.t ->
  k:int ->
  result
(** [routing] defaults to [Min_alive], [queue_policy] to
    [Max_final_score].

    [should_stop] (default: never) is a cooperative-cancellation hook
    checked at every iteration boundary (once per popped match, before
    it is processed).  When it returns true the engine stops routing,
    drops the remaining queue and returns the current top-k with
    [partial = true].  A hook that never fires leaves the run — and its
    answers — bit-identical to one without the hook.  {!Wp_serve} uses
    it to enforce per-request deadlines.

    [batch] (default 1) implements the paper's bulk-adaptivity extension
    (Section 6.3.3: route tuples "in bulk, by grouping tuples based on
    similarity"): one routing decision is reused for up to [batch]
    consecutive queue heads that have visited the same set of servers,
    amortizing the decision overhead when server operations are cheap.

    [use_cache] (default true) memoizes per-(server, root) candidate
    derivation through a run-local {!Candidate_cache}; disabling it
    recomputes candidates on every server operation — the reference
    behaviour [bench/report] measures the cache against. *)

val run_above :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  ?should_stop:(unit -> bool) ->
  Plan.t ->
  threshold:float ->
  result
(** Threshold variant (the mode of the paper's predecessor system,
    Amer-Yahia et al. EDBT 2002): return {e every} answer whose score
    strictly exceeds [threshold], best first, pruning partial matches
    whose maximum possible final score cannot beat it.  The cardinality
    of the answer set is data-dependent rather than fixed at [k]. *)

val pp_result : Format.formatter -> result -> unit
