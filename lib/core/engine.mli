(** Whirlpool-S — the single-threaded adaptive engine.

    As in the paper (Section 6.1.2), the single-threaded variant needs no
    per-server queues: a partial match is processed by a server as soon
    as it is routed there, so matches wait only in the router queue,
    ordered by maximum possible final score by default.  Each iteration
    pops the best match, re-checks it against the top-k threshold (which
    may have risen since it was queued), asks the routing strategy for
    its next server, processes it there, and feeds surviving incomplete
    extensions back to the router. *)

type result = {
  answers : Topk_set.entry list;  (** the top-k, best first *)
  stats : Stats.t;
}

val validate_plan : Plan.t -> unit
(** Static gate run at every engine entry point: raises
    {!Wp_analysis.Lint.Rejected} when the quick lint pass (structural
    well-formedness plus plan consistency — no lattice enumeration)
    reports an error-severity diagnostic for the plan. *)

val run :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  ?batch:int ->
  ?trace:Trace.t ->
  ?use_cache:bool ->
  Plan.t ->
  k:int ->
  result
(** [routing] defaults to [Min_alive], [queue_policy] to
    [Max_final_score].

    [batch] (default 1) implements the paper's bulk-adaptivity extension
    (Section 6.3.3: route tuples "in bulk, by grouping tuples based on
    similarity"): one routing decision is reused for up to [batch]
    consecutive queue heads that have visited the same set of servers,
    amortizing the decision overhead when server operations are cheap.

    [use_cache] (default true) memoizes per-(server, root) candidate
    derivation through a run-local {!Candidate_cache}; disabling it
    recomputes candidates on every server operation — the reference
    behaviour [bench/report] measures the cache against. *)

val run_above :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  Plan.t ->
  threshold:float ->
  result
(** Threshold variant (the mode of the paper's predecessor system,
    Amer-Yahia et al. EDBT 2002): return {e every} answer whose score
    strictly exceeds [threshold], best first, pruning partial matches
    whose maximum possible final score cannot beat it.  The cardinality
    of the answer set is data-dependent rather than fixed at [k]. *)

val pp_result : Format.formatter -> result -> unit
