type event =
  | Popped of { id : int; score : float; max_possible : float }
  | Routed of { id : int; server : int }
  | Extended of { parent : int; id : int; server : int; bound : bool }
  | Pruned of { id : int }
  | Died of { id : int; server : int }
  | Completed of { id : int; score : float }

type t = event -> unit

let ignore_tracer (_ : event) = ()

type timed = { ts_ns : int64; seq : int; event : event }

(* Both collectors are mutex-guarded: Whirlpool-M hands the same tracer
   to every domain, and a plain [ref] would lose events under
   contention.  The single-threaded engine pays one uncontended
   lock/unlock per event, which tracing runs can afford. *)
let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let collector () =
  let m = Mutex.create () in
  let events = ref [] in
  let trace e = with_lock m (fun () -> events := e :: !events) in
  (trace, fun () -> List.rev (with_lock m (fun () -> !events)))

let compare_timed a b =
  match Int64.compare a.ts_ns b.ts_ns with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let timed_collector () =
  let m = Mutex.create () in
  let events = ref [] in
  let n = ref 0 in
  let trace event =
    (* Stamp and sequence under the same lock, so (ts_ns, seq) is a
       total order consistent with arrival. *)
    with_lock m (fun () ->
        incr n;
        events := { ts_ns = Clock.now_ns (); seq = !n; event } :: !events)
  in
  (trace, fun () -> List.sort compare_timed (with_lock m (fun () -> !events)))

let src = Logs.Src.create "whirlpool" ~doc:"Whirlpool engine tracing"

module Log = (val Logs.src_log src : Logs.LOG)

let event_id = function
  | Popped { id; _ }
  | Routed { id; _ }
  | Extended { id; _ }
  | Pruned { id }
  | Died { id; _ }
  | Completed { id; _ } ->
      id

let pp_event ppf = function
  | Popped { id; score; max_possible } ->
      Format.fprintf ppf "pop #%d score=%.4f max=%.4f" id score max_possible
  | Routed { id; server } -> Format.fprintf ppf "route #%d -> q%d" id server
  | Extended { parent; id; server; bound } ->
      Format.fprintf ppf "extend #%d -> #%d at q%d (%s)" parent id server
        (if bound then "bound" else "deleted")
  | Pruned { id } -> Format.fprintf ppf "prune #%d" id
  | Died { id; server } -> Format.fprintf ppf "die #%d at q%d" id server
  | Completed { id; score } ->
      Format.fprintf ppf "complete #%d score=%.4f" id score

let logs () = fun e -> Log.debug (fun m -> m "%a" pp_event e)
