(* The monotonic clock lives in wp_obs (the observability layer needs
   it below the engine in the dependency order); re-exported here so
   engine code and downstream users keep saying [Whirlpool.Clock]. *)
include Wp_obs.Clock
