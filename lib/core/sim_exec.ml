type costs = { op_cost : float; route_cost : float }

type result = {
  makespan : float;
  engine : Engine.result;
  busy_time : float;
}

let priced (engine : Engine.result) ~costs =
  let ops = float_of_int engine.stats.server_ops in
  let decisions = float_of_int engine.stats.routing_decisions in
  let makespan = (ops *. costs.op_cost) +. (decisions *. costs.route_cost) in
  { makespan; engine; busy_time = makespan }

let simulate_s ?config ~costs plan ~k =
  priced (Engine.run ?config plan ~k) ~costs

let simulate_lockstep ?order ?prune ~costs plan ~k =
  (* LockStep routing is positional: we charge its stage bookkeeping at
     the same per-decision price the caller chose. *)
  priced (Lockstep.run ?order ?prune plan ~k) ~costs

(* --- Event-driven Whirlpool-M simulation. --- *)

module Event_heap = struct
  type 'a t = (float * int * 'a) Pqueue.t
  (* Pqueue is a max-queue; negate times for earliest-first. *)

  let create () : 'a t = Pqueue.create ()
  let push (h : 'a t) time seq x = Pqueue.push h (-.time) (time, seq, x)
  let pop (h : 'a t) = Pqueue.pop h
end

type thread_state = {
  queue : Partial_match.t Pqueue.t;
  mutable busy : bool;
  mutable current : Partial_match.t option;
  mutable in_ready : bool;
}

let simulate_m ?(routing = Strategy.Min_alive)
    ?(queue_policy = Strategy.Max_final_score) ~costs ~processors
    (plan : Plan.t) ~k =
  if processors < 1 then invalid_arg "Sim_exec.simulate_m: processors >= 1";
  let stats = Stats.create () in
  let topk = Topk_set.create ~k ~admit_partial:(Plan.admits_partial_answers plan) in
  let next_id =
    let n = ref 0 in
    fun () -> incr n; !n
  in
  let n_threads = plan.n_servers in
  (* Thread 0 is the router; threads 1 .. n-1 are the servers with the
     same ids as their pattern nodes. *)
  let threads =
    Array.init n_threads (fun _ ->
        { queue = Pqueue.create (); busy = false; current = None; in_ready = false })
  in
  let ready = Queue.create () in
  let free_cpus = ref (min processors n_threads) in
  let events : int Event_heap.t = Event_heap.create () in
  let event_seq = ref 0 in
  let seq = ref 0 in
  let makespan = ref 0.0 in
  let busy_time = ref 0.0 in
  let cost_of thread = if thread = 0 then costs.route_cost else costs.op_cost in
  let mark_ready t =
    let th = threads.(t) in
    if (not th.busy) && (not th.in_ready) && not (Pqueue.is_empty th.queue) then begin
      th.in_ready <- true;
      Queue.push t ready
    end
  in
  let enqueue_router pm =
    incr seq;
    Pqueue.push threads.(0).queue ~tie:pm.Partial_match.score
      (Strategy.priority queue_policy plan ~seq:!seq ~server:None pm)
      pm;
    mark_ready 0
  in
  let enqueue_server s pm =
    incr seq;
    Pqueue.push threads.(s).queue ~tie:pm.Partial_match.score
      (Strategy.priority queue_policy plan ~seq:!seq ~server:(Some s) pm)
      pm;
    mark_ready s
  in
  (* Pop the next match a thread should actually work on: consulting the
     top-k set is part of picking work up, so matches pruned here cost no
     simulated time — exactly as the real servers check the set before
     processing. *)
  let rec pop_alive th =
    match Pqueue.pop th.queue with
    | None -> None
    | Some pm ->
        if Topk_set.should_prune topk pm then begin
          stats.matches_pruned <- stats.matches_pruned + 1;
          pop_alive th
        end
        else Some pm
  in
  let dispatch now =
    while !free_cpus > 0 && not (Queue.is_empty ready) do
      let t = Queue.pop ready in
      let th = threads.(t) in
      th.in_ready <- false;
      match pop_alive th with
      | None -> ()
      | Some pm ->
          th.busy <- true;
          th.current <- Some pm;
          decr free_cpus;
          busy_time := !busy_time +. cost_of t;
          incr event_seq;
          Event_heap.push events (now +. cost_of t) !event_seq t
    done
  in
  let handle_router pm =
    let server =
      Strategy.choose_next routing plan ~threshold:(Topk_set.threshold topk) pm
    in
    stats.routing_decisions <- stats.routing_decisions + 1;
    enqueue_server server pm
  in
  let handle_server s pm =
    let { Server.extensions; died } =
      Server.process plan stats ~next_id pm ~server:s
    in
    if died then Topk_set.retract topk pm;
    List.iter
      (fun ext ->
        let complete = Partial_match.is_complete ext ~full_mask:plan.full_mask in
        Topk_set.consider topk ~complete ext;
        if complete then stats.completed <- stats.completed + 1
        else if Topk_set.should_prune topk ext then
          stats.matches_pruned <- stats.matches_pruned + 1
        else enqueue_router ext)
      extensions
  in
  (* Seed with the root server's output; the root evaluation itself is
     charged as one op of lead time. *)
  let single_node = plan.n_servers = 1 in
  List.iter
    (fun pm ->
      Topk_set.consider topk ~complete:single_node pm;
      if single_node then stats.completed <- stats.completed + 1
      else if Topk_set.should_prune topk pm then
        stats.matches_pruned <- stats.matches_pruned + 1
      else enqueue_router pm)
    (Server.initial_matches plan stats ~next_id);
  makespan := costs.op_cost;
  dispatch !makespan;
  let rec loop () =
    match Event_heap.pop events with
    | None -> ()
    | Some (time, _, t) ->
        makespan := time;
        let th = threads.(t) in
        let pm = Option.get th.current in
        th.current <- None;
        th.busy <- false;
        incr free_cpus;
        if t = 0 then handle_router pm else handle_server t pm;
        mark_ready t;
        dispatch time;
        loop ()
  in
  loop ();
  stats.wall_ns <- 0L;
  {
    makespan = !makespan;
    engine = { Engine.answers = Topk_set.entries topk; stats; partial = false };
    busy_time = !busy_time;
  }
