module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Server_spec = Wp_relax.Server_spec
module Score_table = Wp_score.Score_table
module Pattern = Wp_pattern.Pattern

module Relaxation = Wp_relax.Relaxation

type outcome = { extensions : Partial_match.t list; died : bool }

let content_level config doc value n =
  match value with
  | None -> Relaxation.Content_exact
  | Some query ->
      Relaxation.content_level config ~query ~actual:(Doc.value doc n)

let initial_matches (plan : Plan.t) (stats : Stats.t) ~next_id =
  let entry = Score_table.entry plan.scores 0 in
  let spec = plan.specs.(0) in
  let doc = Index.doc plan.index in
  let max_rest =
    List.fold_left
      (fun acc s -> acc +. Plan.max_weight plan s)
      0.0
      (List.init (plan.n_servers - 1) (fun i -> i + 1))
  in
  stats.server_ops <- stats.server_ops + 1;
  let doc_root_depth = Doc.depth doc (Doc.root doc) in
  let matches =
    List.map
      (fun root ->
        stats.comparisons <- stats.comparisons + 1;
        let exact =
          Relation.test_depths spec.to_root.exact ~anc_depth:doc_root_depth
            ~desc_depth:(Doc.depth doc root)
          && content_level plan.config doc spec.value root
             = Relaxation.Content_exact
        in
        let weight =
          if exact then entry.exact_weight else entry.relaxed_weight
        in
        Partial_match.create_root ~plan_servers:plan.n_servers
          ~id:(next_id ()) ~root ~weight ~max_rest)
      (Plan.root_candidates plan)
  in
  stats.matches_created <- stats.matches_created + List.length matches;
  matches

(* A conditional predicate holds when its exact relation holds, or its
   relaxed relation (if any) does. *)
let conditional_holds doc (c : Server_spec.conditional) ~anc ~desc =
  Relation.test doc c.exact ~anc ~desc
  ||
  match c.relaxed with
  | Some r -> Relation.test doc r ~anc ~desc
  | None -> false

(* Check the conditional predicate sequence of [spec] for candidate [n]
   against the nodes bound by [pm]; returns false when a hard conditional
   fails. *)
let hard_conditionals_ok doc (spec : Server_spec.t) (pm : Partial_match.t) n =
  List.for_all
    (fun (c : Server_spec.conditional) ->
      (not c.hard)
      ||
      match Partial_match.bound pm c.other with
      | None -> true
      | Some other ->
          if c.downward then conditional_holds doc c ~anc:n ~desc:other
          else conditional_holds doc c ~anc:other ~desc:n)
    spec.conditionals

(* With promotion disabled, an unbound node may not have bound pattern
   descendants (a subtree cannot outlive its deleted root). *)
let deletion_ok (plan : Plan.t) (pm : Partial_match.t) ~server =
  plan.config.subtree_promotion
  || List.for_all
       (fun d -> Partial_match.bound pm d = None)
       (Pattern.descendants plan.pattern server)

(* ... and symmetrically, a node cannot bind below an already-deleted
   pattern ancestor. *)
let under_deleted_ancestor (plan : Plan.t) (pm : Partial_match.t) ~server =
  (not plan.config.subtree_promotion)
  && List.exists
       (fun a ->
         a <> Pattern.root plan.pattern
         && Partial_match.visited pm a
         && Partial_match.bound pm a = None)
       (Pattern.ancestors plan.pattern server)

(* Without promotion, bindings are not independent: a binding accepted
   now can invalidate a sibling's or descendant's options later, so the
   deletion branch must be explored as a genuine alternative whenever
   the node participates in hard conditionals.  With promotion enabled
   the branch is dominated (a binding can never hurt) and is skipped. *)
let needs_deletion_branch (plan : Plan.t) (spec : Server_spec.t) =
  spec.optional
  && (not plan.config.subtree_promotion)
  && spec.conditionals <> []

let process ?cache (plan : Plan.t) (stats : Stats.t) ~next_id
    (pm : Partial_match.t) ~server =
  if server = 0 then invalid_arg "Server.process: the root server runs first";
  if Partial_match.visited pm server then
    invalid_arg "Server.process: server already visited";
  let spec = plan.specs.(server) in
  let doc = Index.doc plan.index in
  let server_max = (Score_table.entry plan.scores server).exact_weight in
  stats.server_ops <- stats.server_ops + 1;
  (* The (server, root)-only work — index slice, structural relation,
     content level, exactness, weight — comes from the candidate cache
     (or is computed in place when running uncached); only the
     match-dependent conditional checks below run per partial match. *)
  let candidates =
    if under_deleted_ancestor plan pm ~server then [||]
    else
      let root = Partial_match.root_binding pm in
      match cache with
      | Some c ->
          (Candidate_cache.find c plan stats ~server ~root
          [@wp.allow
            "hot-alloc the cache allocates only on a (server, root) miss; \
             steady state is hit-only"])
      | None ->
          let entries, examined =
            (Candidate_cache.compute plan ~server ~root
            [@wp.allow
              "hot-alloc uncached mode recomputes the entry array per \
               visit by design; it exists to measure exactly that cost"])
          in
          stats.comparisons <- stats.comparisons + examined;
          entries
  in
  let survivors = ref [] in
  Array.iter
    (fun (e : Candidate_cache.entry) ->
      if hard_conditionals_ok doc spec pm e.node then survivors := e :: !survivors)
    candidates;
  (* Extensions copy the parent's bindings array: one allocation per
     partial match created is the engine's unit of work, not an
     accident — [extend_last] transfers instead of copying where the
     parent is consumed. *)
  let unbound_extension ~last =
    ((if last then Partial_match.extend_last else Partial_match.extend)
       pm ~id:(next_id ()) ~server ~binding:None ~weight:0.0 ~server_max
    [@wp.allow "hot-alloc extensions allocate one bindings array each"])
  in
  match !survivors with
  | [] ->
      if spec.optional && deletion_ok plan pm ~server then begin
        stats.matches_created <- stats.matches_created + 1;
        { extensions = [ unbound_extension ~last:true ]; died = false }
      end
      else begin
        stats.matches_died <- stats.matches_died + 1;
        { extensions = []; died = true }
      end
  | rev_survivors ->
      let deletion_branch =
        needs_deletion_branch plan spec && deletion_ok plan pm ~server
      in
      let extensions =
        match (rev_survivors, deletion_branch) with
        | [ e ], false ->
            (* Sole extension: transfer the parent's bindings array
               instead of copying it — the parent is consumed here. *)
            [
              Partial_match.extend_last pm ~id:(next_id ()) ~server
                ~binding:(Some e.node) ~weight:e.weight ~server_max;
            ]
        | _ ->
            (* Bound extensions in document order, deletion branch last
               (ids follow creation order): cons everything onto an
               accumulator and reverse once — no O(n) append. *)
            let rev_exts =
              List.fold_left
                (fun acc (e : Candidate_cache.entry) ->
                  (Partial_match.extend pm ~id:(next_id ()) ~server
                     ~binding:(Some e.node) ~weight:e.weight ~server_max
                  [@wp.allow
                    "hot-alloc extensions allocate one bindings array each"])
                  :: acc)
                [] (List.rev rev_survivors)
            in
            List.rev
              (if deletion_branch then unbound_extension ~last:false :: rev_exts
               else rev_exts)
      in
      stats.matches_created <- stats.matches_created + List.length extensions;
      { extensions; died = false }
[@@wp.hot]
