(** Per-(server, root) candidate memoization — the engines' hot-path
    cache.

    Everything {!Server.process} derives per candidate node except the
    conditional-predicate checks depends only on the pair
    [(server, root binding)]: the index slice below the root, the
    structural-relation test against the root's depth, the content
    level, the exactness flag and the score weight.  Many partial
    matches share a root binding (one per surviving extension chain), so
    the engines memoize that work here: one flat [entry array] per
    (server, root), computed on first use and replayed on every later
    visit, leaving only the match-dependent conditional checks in the
    inner loop.

    A cache instance lives for one engine run over one plan — there is
    no invalidation, because plans and documents are immutable within a
    run.  {!Engine} uses an unsynchronized instance; {!Engine_mt} guards
    one shared instance with a [Sync] mutex ([mutex_name]), acquired
    leaf-only (never while holding another lock), which the Raceway pass
    checks. *)

type entry = {
  node : int;  (** candidate document node *)
  exact : bool;  (** satisfies the exact (unrelaxed) root predicate *)
  weight : float;  (** score contribution at its exactness level *)
}

type t

val mutex_name : string
(** Lock name instrumented runs use for the cache mutex
    (["cache.mutex"]), declared in the engine's lock hierarchy. *)

val state_loc : string
(** Shared-location name under which instrumented runs report table
    accesses (["cache.state"]). *)

val create :
  ?lock:(unit -> unit) ->
  ?unlock:(unit -> unit) ->
  ?note:(unit -> unit) ->
  unit ->
  t
(** A fresh cache.  The default callbacks are no-ops (single-threaded
    use); {!Engine_mt} passes the [Sync] mutex operations plus a
    [note_write] sample so the instrumented scheduler sees every table
    access inside the critical section. *)

val cardinality : t -> int
(** Number of (server, root) pairs currently cached. *)

val compute : Plan.t -> server:int -> root:int -> entry array * int
(** Uncached computation of the candidate entries for a (server, root)
    pair, in document order, plus the number of index candidates
    examined — the oracle the cached path must agree with, also used
    directly by {!Server.process} when no cache is supplied. *)

val find : t -> Plan.t -> Stats.t -> server:int -> root:int -> entry array
(** Memoized {!compute}: returns the cached entry array for
    [(server, root)], computing and storing it on first use.  Updates
    [stats.cache_hits]/[cache_misses], and charges [stats.comparisons]
    with the examined slice length on a miss — a hit re-examines no
    candidate and charges nothing. *)
