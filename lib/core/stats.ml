type t = {
  mutable server_ops : int;
  mutable comparisons : int;
  mutable matches_created : int;
  mutable matches_pruned : int;
  mutable matches_died : int;
  mutable routing_decisions : int;
  mutable completed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wall_ns : int64;
}

let create () =
  {
    server_ops = 0;
    comparisons = 0;
    matches_created = 0;
    matches_pruned = 0;
    matches_died = 0;
    routing_decisions = 0;
    completed = 0;
    cache_hits = 0;
    cache_misses = 0;
    wall_ns = 0L;
  }

let reset t =
  t.server_ops <- 0;
  t.comparisons <- 0;
  t.matches_created <- 0;
  t.matches_pruned <- 0;
  t.matches_died <- 0;
  t.routing_decisions <- 0;
  t.completed <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.wall_ns <- 0L

let add acc x =
  acc.server_ops <- acc.server_ops + x.server_ops;
  acc.comparisons <- acc.comparisons + x.comparisons;
  acc.matches_created <- acc.matches_created + x.matches_created;
  acc.matches_pruned <- acc.matches_pruned + x.matches_pruned;
  acc.matches_died <- acc.matches_died + x.matches_died;
  acc.routing_decisions <- acc.routing_decisions + x.routing_decisions;
  acc.completed <- acc.completed + x.completed;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  if Int64.compare x.wall_ns acc.wall_ns > 0 then acc.wall_ns <- x.wall_ns

let wall_seconds t = Int64.to_float t.wall_ns /. 1e9

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "ops=%d cmp=%d created=%d pruned=%d died=%d routed=%d completed=%d \
     cache=%d/%d wall=%.4fs"
    t.server_ops t.comparisons t.matches_created t.matches_pruned
    t.matches_died t.routing_decisions t.completed t.cache_hits
    (t.cache_hits + t.cache_misses)
    (wall_seconds t)

let to_json t =
  let open Wp_json.Json in
  Obj
    [
      ("server_ops", Int t.server_ops);
      ("comparisons", Int t.comparisons);
      ("matches_created", Int t.matches_created);
      ("matches_pruned", Int t.matches_pruned);
      ("matches_died", Int t.matches_died);
      ("routing_decisions", Int t.routing_decisions);
      ("completed", Int t.completed);
      ("cache_hits", Int t.cache_hits);
      ("cache_misses", Int t.cache_misses);
      ("cache_hit_rate", Float (cache_hit_rate t));
      ("wall_seconds", Float (wall_seconds t));
    ]

(* Pull-style registration: the registry reads the accumulator at
   snapshot time, so the engine hot path never touches the registry.
   Reading a mutable int field without the owner's lock is sound in
   OCaml (single-word loads never tear); a snapshot racing an update
   may be one increment stale, which Prometheus scraping tolerates. *)
let register ?(prefix = "wp_engine_") t reg =
  let c name help read =
    Wp_obs.Registry.pull_counter reg ~help (prefix ^ name) (fun () ->
        float_of_int (read ()))
  in
  c "server_ops_total" "partial matches processed by servers" (fun () ->
      t.server_ops);
  c "comparisons_total" "candidate nodes examined" (fun () -> t.comparisons);
  c "matches_created_total" "partial matches spawned" (fun () ->
      t.matches_created);
  c "matches_pruned_total" "matches dropped by top-k score pruning"
    (fun () -> t.matches_pruned);
  c "matches_died_total" "matches dropped for invalidity" (fun () ->
      t.matches_died);
  c "routing_decisions_total" "adaptive/static router choices" (fun () ->
      t.routing_decisions);
  c "completed_total" "matches that visited every server" (fun () ->
      t.completed);
  c "cache_hits_total" "candidate-cache hits" (fun () -> t.cache_hits);
  c "cache_misses_total" "candidate-cache misses" (fun () -> t.cache_misses)
