type t = {
  mutable server_ops : int;
  mutable comparisons : int;
  mutable matches_created : int;
  mutable matches_pruned : int;
  mutable matches_died : int;
  mutable routing_decisions : int;
  mutable completed : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable wall_ns : int64;
}

let create () =
  {
    server_ops = 0;
    comparisons = 0;
    matches_created = 0;
    matches_pruned = 0;
    matches_died = 0;
    routing_decisions = 0;
    completed = 0;
    cache_hits = 0;
    cache_misses = 0;
    wall_ns = 0L;
  }

let reset t =
  t.server_ops <- 0;
  t.comparisons <- 0;
  t.matches_created <- 0;
  t.matches_pruned <- 0;
  t.matches_died <- 0;
  t.routing_decisions <- 0;
  t.completed <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.wall_ns <- 0L

let add acc x =
  acc.server_ops <- acc.server_ops + x.server_ops;
  acc.comparisons <- acc.comparisons + x.comparisons;
  acc.matches_created <- acc.matches_created + x.matches_created;
  acc.matches_pruned <- acc.matches_pruned + x.matches_pruned;
  acc.matches_died <- acc.matches_died + x.matches_died;
  acc.routing_decisions <- acc.routing_decisions + x.routing_decisions;
  acc.completed <- acc.completed + x.completed;
  acc.cache_hits <- acc.cache_hits + x.cache_hits;
  acc.cache_misses <- acc.cache_misses + x.cache_misses;
  if Int64.compare x.wall_ns acc.wall_ns > 0 then acc.wall_ns <- x.wall_ns

let wall_seconds t = Int64.to_float t.wall_ns /. 1e9

let cache_hit_rate t =
  let total = t.cache_hits + t.cache_misses in
  if total = 0 then 0.0 else float_of_int t.cache_hits /. float_of_int total

let pp ppf t =
  Format.fprintf ppf
    "ops=%d cmp=%d created=%d pruned=%d died=%d routed=%d completed=%d \
     cache=%d/%d wall=%.4fs"
    t.server_ops t.comparisons t.matches_created t.matches_pruned
    t.matches_died t.routing_decisions t.completed t.cache_hits
    (t.cache_hits + t.cache_misses)
    (wall_seconds t)
