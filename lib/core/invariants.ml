exception Violation of string

(* Read eagerly at module init: [enabled] is consulted concurrently from
   worker domains, where forcing a lazy would race. *)
let from_env =
  match Sys.getenv_opt "WP_CHECK_INVARIANTS" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let override = ref None
let enabled () = match !override with Some b -> b | None -> from_env
let set_enabled b = override := Some b

(* Scores are sums of idf logs accumulated in different orders by the
   two engines; allow for rounding. *)
(* The exact comparison comes first: the tolerance arithmetic turns into
   NaN when [b] is infinite (e.g. the -inf threshold of an unfilled
   top-k set). *)
let le a b = a <= b || a <= b +. 1e-9 +. (1e-12 *. Float.abs b)

let fail fmt = Format.kasprintf (fun m -> raise (Violation m)) fmt

let check_bounds plan (pm : Partial_match.t) =
  let bound = Wp_score.Score_table.max_total (plan : Plan.t).scores in
  if not (le pm.score pm.max_possible) then
    fail "match %d: score %.6f exceeds its max_possible %.6f" pm.id pm.score
      pm.max_possible;
  if not (le pm.max_possible bound) then
    fail "match %d: max_possible %.6f exceeds the static score bound %.6f"
      pm.id pm.max_possible bound

let check_root plan pm = check_bounds plan pm

let check_extension plan ~parent (ext : Partial_match.t) =
  let p : Partial_match.t = parent in
  if not (le p.score ext.score) then
    fail "match %d -> %d: score decreased %.6f -> %.6f along an extension"
      p.id ext.id p.score ext.score;
  if not (le ext.max_possible p.max_possible) then
    fail "match %d -> %d: max_possible increased %.6f -> %.6f along an \
          extension (pruning is unsound)"
      p.id ext.id p.max_possible ext.max_possible;
  check_bounds plan ext

(* Concrete cross-check of the prune-soundness certificate
   ([Wp_analysis.Prove]): the invariants above only hold when the score
   table's weights satisfy [0 <= relaxed <= exact] (finite). *)
let check_table scores =
  match Wp_analysis.Prove.table_violations scores with
  | [] -> ()
  | v :: _ -> fail "score table fails prune-soundness: %s" v

let check_threshold ~before ~after =
  if not (le before after) then
    fail "top-k threshold decreased %.6f -> %.6f within an insertion" before
      after
