type entry = {
  root : int;
  score : float;
  match_id : int;
  bindings : int array;
  progress : int;  (* servers visited when the snapshot was taken *)
}

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

type t = {
  k : int;
  admit_partial : bool;
  by_root : (int, entry) Hashtbl.t;  (* at most k bindings *)
}

let create ~k ~admit_partial =
  if k < 1 then invalid_arg "Topk_set.create: k must be positive";
  { k; admit_partial; by_root = Hashtbl.create (2 * k) }

let k t = t.k
let cardinality t = Hashtbl.length t.by_root

let min_entry t =
  Hashtbl.fold
    (fun _ e acc ->
      match acc with
      | None -> Some e
      | Some m -> if e.score < m.score then Some e else acc)
    t.by_root None

let threshold t =
  if Hashtbl.length t.by_root < t.k then neg_infinity
  else match min_entry t with None -> neg_infinity | Some e -> e.score

let consider t ~complete (pm : Partial_match.t) =
  if complete || t.admit_partial then begin
    let threshold_before =
      if Invariants.enabled () then Some (threshold t) else None
    in
    let root = Partial_match.root_binding pm in
    let entry =
      {
        root;
        score = pm.score;
        match_id = pm.id;
        bindings = Array.copy pm.bindings;
        progress = popcount pm.visited_mask;
      }
    in
    (match Hashtbl.find_opt t.by_root root with
    | Some existing ->
        (* Equal scores prefer the more-processed match, so the reported
           bindings reflect a maximal match rather than an early partial
           snapshot. *)
        if
          pm.score > existing.score
          || (pm.score = existing.score && entry.progress > existing.progress)
        then Hashtbl.replace t.by_root root entry
    | None ->
        if Hashtbl.length t.by_root < t.k then Hashtbl.add t.by_root root entry
        else begin
          match min_entry t with
          | Some m when pm.score > m.score ->
              Hashtbl.remove t.by_root m.root;
              Hashtbl.add t.by_root root entry
          | Some _ | None -> ()
        end);
    match threshold_before with
    | Some before -> Invariants.check_threshold ~before ~after:(threshold t)
    | None -> ()
  end

let should_prune t (pm : Partial_match.t) =
  let theta = threshold t in
  if pm.max_possible < theta then true
  else if pm.max_possible > theta then false
  else
    (* A match that can at best tie the threshold can still improve the
       entry holding its own root, but cannot displace any other
       entry. *)
    match Hashtbl.find_opt t.by_root (Partial_match.root_binding pm) with
    | Some e -> pm.max_possible <= e.score && e.match_id <> pm.id
    | None -> true

let retract t (pm : Partial_match.t) =
  let root = Partial_match.root_binding pm in
  match Hashtbl.find_opt t.by_root root with
  | Some e when e.match_id = pm.id -> Hashtbl.remove t.by_root root
  | Some _ | None -> ()

let entries t =
  let compare_entries a b =
    match Float.compare b.score a.score with
    | 0 -> Int.compare a.root b.root
    | c -> c
  in
  List.sort compare_entries
    (Hashtbl.fold (fun _ e acc -> e :: acc) t.by_root [])

let pp ppf t =
  Format.fprintf ppf "@[<v>top-%d (threshold %.4f):@," t.k (threshold t);
  List.iteri
    (fun i e -> Format.fprintf ppf "%d. root=%d score=%.4f@," (i + 1) e.root e.score)
    (entries t);
  Format.fprintf ppf "@]"
