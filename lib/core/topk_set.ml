type entry = {
  root : int;
  score : float;
  match_id : int;
  bindings : int array;
  progress : int;  (* servers visited when the snapshot was taken *)
}

(* Min-heap over (score, root) with lazy deletion: [consider] pushes an
   item whenever an entry's current score is set, and stale items (the
   entry was evicted, retracted, or its score has moved on) are dropped
   when they surface at the top.  Each table modification pushes at most
   one item and each item is popped at most once, so threshold queries
   are O(log m) amortized instead of the previous O(k) hashtable fold —
   [should_prune] runs once per extension, making this the engines'
   hottest read path. *)
module Min_heap = struct
  type t = {
    mutable scores : float array;
    mutable roots : int array;
    mutable size : int;
  }

  let create cap =
    let cap = max cap 4 in
    { scores = Array.make cap 0.0; roots = Array.make cap 0; size = 0 }

  let swap h i j =
    let s = h.scores.(i) and r = h.roots.(i) in
    h.scores.(i) <- h.scores.(j);
    h.roots.(i) <- h.roots.(j);
    h.scores.(j) <- s;
    h.roots.(j) <- r

  let push h score root =
    if h.size = Array.length h.scores then begin
      let cap = 2 * h.size in
      let scores = Array.make cap 0.0 and roots = Array.make cap 0 in
      Array.blit h.scores 0 scores 0 h.size;
      Array.blit h.roots 0 roots 0 h.size;
      h.scores <- scores;
      h.roots <- roots
    end;
    h.scores.(h.size) <- score;
    h.roots.(h.size) <- root;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    (while
       !i > 0
       &&
       let p = (!i - 1) / 2 in
       h.scores.(p) > h.scores.(!i)
     do
       let p = (!i - 1) / 2 in
       swap h p !i;
       i := p
     done)
    [@wp.bounded "sift-up: !i moves to its parent each pass, strictly \
                  decreasing toward 0"]

  let drop_min h =
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.scores.(0) <- h.scores.(h.size);
      h.roots.(0) <- h.roots.(h.size);
      let i = ref 0 in
      let continue = ref true in
      (while !continue do
         let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
         let smallest = ref !i in
         if l < h.size && h.scores.(l) < h.scores.(!smallest) then smallest := l;
         if r < h.size && h.scores.(r) < h.scores.(!smallest) then smallest := r;
         if !smallest = !i then continue := false
         else begin
           swap h !i !smallest;
           i := !smallest
         end
       done)
      [@wp.bounded "sift-down: !i moves to a strictly deeper child each \
                    pass, bounded by the heap depth"]
    end
end

type t = {
  k : int;
  admit_partial : bool;
  by_root : (int, entry) Hashtbl.t;  (* at most k bindings *)
  heap : Min_heap.t;  (* (score, root) items, lazily pruned *)
}

let create ~k ~admit_partial =
  if k < 1 then invalid_arg "Topk_set.create: k must be positive";
  {
    k;
    admit_partial;
    by_root = Hashtbl.create (2 * k);
    heap = Min_heap.create (2 * k);
  }

let k t = t.k
let cardinality t = Hashtbl.length t.by_root

(* The live minimum entry: pop stale heap items until the top one
   matches a current table entry.  Every live entry's current score was
   pushed when it was set, so the first live item is the true minimum. *)
let rec min_entry t =
  if t.heap.Min_heap.size = 0 then None
  else
    let score = t.heap.Min_heap.scores.(0)
    and root = t.heap.Min_heap.roots.(0) in
    match Hashtbl.find_opt t.by_root root with
    | Some e when e.score = score -> Some e
    | Some _ | None ->
        Min_heap.drop_min t.heap;
        min_entry t
[@@wp.hot]
[@@wp.bounded
  "each recursive step drops one stale heap item; the heap size strictly \
   decreases"]

let threshold t =
  if Hashtbl.length t.by_root < t.k then neg_infinity
  else match min_entry t with None -> neg_infinity | Some e -> e.score
[@@wp.hot]

let consider t ~complete (pm : Partial_match.t) =
  if complete || t.admit_partial then begin
    let threshold_before =
      if Invariants.enabled () then Some (threshold t) else None
    in
    let root = Partial_match.root_binding pm in
    let entry =
      {
        root;
        score = pm.score;
        match_id = pm.id;
        bindings = Array.copy pm.bindings;
        progress = Partial_match.n_visited pm;
      }
    in
    (match Hashtbl.find_opt t.by_root root with
    | Some existing ->
        (* Equal scores prefer the more-processed match, so the reported
           bindings reflect a maximal match rather than an early partial
           snapshot. *)
        if pm.score > existing.score then begin
          Hashtbl.replace t.by_root root entry;
          Min_heap.push t.heap entry.score root
        end
        else if pm.score = existing.score && entry.progress > existing.progress
        then
          (* Same score: the existing heap item stays valid. *)
          Hashtbl.replace t.by_root root entry
    | None ->
        if Hashtbl.length t.by_root < t.k then begin
          Hashtbl.add t.by_root root entry;
          Min_heap.push t.heap entry.score root
        end
        else begin
          match min_entry t with
          | Some m when pm.score > m.score ->
              Hashtbl.remove t.by_root m.root;
              Hashtbl.add t.by_root root entry;
              Min_heap.push t.heap entry.score root
          | Some _ | None -> ()
        end);
    match threshold_before with
    | Some before -> Invariants.check_threshold ~before ~after:(threshold t)
    | None -> ()
  end

let should_prune t (pm : Partial_match.t) =
  let theta = threshold t in
  if pm.max_possible < theta then true
  else if pm.max_possible > theta then false
  else
    (* A match that can at best tie the threshold can still improve the
       entry holding its own root, but cannot displace any other
       entry. *)
    match Hashtbl.find_opt t.by_root (Partial_match.root_binding pm) with
    | Some e -> pm.max_possible <= e.score && e.match_id <> pm.id
    | None -> true
[@@wp.hot]

let retract t (pm : Partial_match.t) =
  let root = Partial_match.root_binding pm in
  match Hashtbl.find_opt t.by_root root with
  | Some e when e.match_id = pm.id -> Hashtbl.remove t.by_root root
  | Some _ | None -> ()

let entries t =
  let compare_entries a b =
    match Float.compare b.score a.score with
    | 0 -> Int.compare a.root b.root
    | c -> c
  in
  List.sort compare_entries
    (Hashtbl.fold (fun _ e acc -> e :: acc) t.by_root [])

let pp ppf t =
  Format.fprintf ppf "@[<v>top-%d (threshold %.4f):@," t.k (threshold t);
  List.iteri
    (fun i e -> Format.fprintf ppf "%d. root=%d score=%.4f@," (i + 1) e.root e.score)
    (entries t);
  Format.fprintf ppf "@]"
