type algorithm = Whirlpool_s | Whirlpool_m | Lockstep | Lockstep_noprun

let pp_algorithm ppf = function
  | Whirlpool_s -> Format.pp_print_string ppf "Whirlpool-S"
  | Whirlpool_m -> Format.pp_print_string ppf "Whirlpool-M"
  | Lockstep -> Format.pp_print_string ppf "LockStep"
  | Lockstep_noprun -> Format.pp_print_string ppf "LockStep-NoPrun"

let algorithm_of_string = function
  | "whirlpool-s" | "ws" -> Some Whirlpool_s
  | "whirlpool-m" | "wm" -> Some Whirlpool_m
  | "lockstep" -> Some Lockstep
  | "lockstep-noprun" | "noprun" -> Some Lockstep_noprun
  | _ -> None

let compile ?(config = Wp_relax.Relaxation.all) ?normalization idx pattern =
  Plan.compile ?normalization idx config pattern

let run ?(config = Engine.Config.default) ?order algorithm plan ~k =
  match algorithm with
  | Whirlpool_s -> Engine.run ~config plan ~k
  | Whirlpool_m -> Engine_mt.run ~config plan ~k
  | Lockstep ->
      Lockstep.run ?order ~queue_policy:config.Engine.Config.queue_policy
        ~prune:true plan ~k
  | Lockstep_noprun ->
      Lockstep.run ?order ~queue_policy:config.Engine.Config.queue_policy
        ~prune:false plan ~k

let engine_config routing =
  match routing with
  | None -> Engine.Config.default
  | Some r -> Engine.Config.(default |> with_routing r)

let top_k ?config ?normalization ?routing ?(algorithm = Whirlpool_s) idx
    pattern ~k =
  let plan = compile ?config ?normalization idx pattern in
  run ~config:(engine_config routing) algorithm plan ~k

let top_k_answers ?config ?normalization ?routing ?algorithm idx pattern ~k =
  let plan = compile ?config ?normalization idx pattern in
  let result =
    run ~config:(engine_config routing)
      (Option.value algorithm ~default:Whirlpool_s)
      plan ~k
  in
  Answer.of_result plan result
