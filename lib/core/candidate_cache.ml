module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Relaxation = Wp_relax.Relaxation
module Server_spec = Wp_relax.Server_spec
module Score_table = Wp_score.Score_table

type entry = { node : int; exact : bool; weight : float }

(* Names under which instrumented (Raceway) runs report the cache's
   mutex and shared table; Race.lock_rank knows [mutex_name]. *)
let mutex_name = "cache.mutex"
let state_loc = "cache.state"

type t = {
  table : (int * int, entry array) Hashtbl.t;  (* key: (server, root) *)
  lock : unit -> unit;
  unlock : unit -> unit;
  note : unit -> unit;  (* shared-state access sample for race detection *)
}

let nop () = ()

let create ?(lock = nop) ?(unlock = nop) ?(note = nop) () =
  { table = Hashtbl.create 256; lock; unlock; note }

let cardinality t = Hashtbl.length t.table

let content_level config doc value n =
  match value with
  | None -> Relaxation.Content_exact
  | Some query ->
      Relaxation.content_level config ~query ~actual:(Doc.value doc n)

(* The (server, root)-only part of Server.process: the candidate nodes
   below [root] satisfying the server's (relaxed) structural predicate
   and content test, each with its exactness level and score weight.
   Returns the entries in document order plus the number of index
   candidates examined (the slice length), which is what the uncached
   path charges to [Stats.comparisons]. *)
let compute (plan : Plan.t) ~server ~root =
  let spec = plan.specs.(server) in
  let score = Score_table.entry plan.scores server in
  let doc = Index.doc plan.index in
  let root_depth = Doc.depth doc root in
  let rel = Server_spec.candidate_relation spec in
  let examined = ref 0 in
  let rev = ref [] in
  let n = ref 0 in
  Index.iter_descendants plan.index spec.tag ~root (fun node ->
      incr examined;
      let content = content_level plan.config doc spec.value node in
      if
        content <> Relaxation.Content_reject
        && Relation.test_depths rel ~anc_depth:root_depth
             ~desc_depth:(Doc.depth doc node)
      then begin
        let exact =
          content = Relaxation.Content_exact
          && Relation.test_depths spec.to_root.exact ~anc_depth:root_depth
               ~desc_depth:(Doc.depth doc node)
        in
        let weight = if exact then score.exact_weight else score.relaxed_weight in
        incr n;
        rev := { node; exact; weight } :: !rev
      end);
  let entries =
    match !rev with
    | [] -> [||]
    | hd :: _ ->
        let a = Array.make !n hd in
        let i = ref (!n - 1) in
        List.iter
          (fun e ->
            a.(!i) <- e;
            decr i)
          !rev;
        a
  in
  (entries, !examined)

(* Cached lookup.  A miss computes and stores the entry array, charging
   the examined slice length to [comparisons] exactly as the uncached
   path does.  A hit charges nothing: no candidate is re-examined, no
   structural or content predicate re-evaluated — the match-dependent
   conditional checks the caller still performs are not candidate
   comparisons and were never counted as such.  Cached totals are
   therefore strictly below uncached ones whenever any hit occurs.
   The whole lookup runs inside the cache's critical section so each
   (server, root) pair is computed at most once. *)
let find t (plan : Plan.t) (stats : Stats.t) ~server ~root =
  t.lock ();
  Fun.protect
    ~finally:(fun () -> t.unlock ())
    (fun () ->
      t.note ();
      match Hashtbl.find_opt t.table (server, root) with
      | Some entries ->
          stats.cache_hits <- stats.cache_hits + 1;
          entries
      | None ->
          let entries, examined =
            (compute plan ~server ~root
            [@wp.allow
              "hot-alloc the miss path builds the (server, root) entry \
               array exactly once; steady-state lookups hit and stay \
               allocation-free"])
          in
          stats.cache_misses <- stats.cache_misses + 1;
          stats.comparisons <- stats.comparisons + examined;
          Hashtbl.add t.table (server, root) entries;
          entries)
[@@wp.hot]
