(** Streaming certification of top-k answers.

    The paper's invariant certifies an answer as final the moment no
    alive partial match can beat it: with [ub] the maximum
    [max_possible] over the alive set, every entry scoring {e strictly}
    above [ub] is immutable — it can never be displaced, evicted or
    re-ordered — so it can be pushed to a client mid-run.  Both engines
    drive one {!t} when a run's [Engine.Config.on_certified] hook is
    set: {!add} every enqueued partial match, {!remove} every consumed
    one, and flush newly certified entries at iteration boundaries.
    The emitted sequence is always a stable prefix of the final
    [Topk_set.entries] order.

    Single-threaded callers use {!flush}; the multi-threaded engine
    computes {!newly_certified} under its top-k lock and emits outside
    it (the callback may block on a socket). *)

type t

val create : emit:(Topk_set.entry -> unit) -> t

val add : t -> Partial_match.t -> unit
(** Register an alive partial match (call where it is enqueued). *)

val remove : t -> int -> unit
(** Drop a match id from the alive set (call where it is consumed:
    popped for processing, or pruned). *)

val alive_bound : t -> float
(** The certification bar: max [max_possible] over the alive set,
    [neg_infinity] when nothing is alive.  Non-increasing across
    certification points. *)

val streamed : t -> int
(** Entries handed to [emit] so far. *)

val newly_certified : t -> Topk_set.t -> Topk_set.entry list
(** Entries certified since the last call, in answer order; bumps the
    {!streamed} counter.  The caller must pass each to {!emit}. *)

val emit : t -> Topk_set.entry -> unit

val flush : t -> Topk_set.t -> unit
(** {!newly_certified} + {!emit} in one step, for single-threaded
    engines. *)

val flush_all : t -> Topk_set.t -> unit
(** Emit every remaining entry unconditionally — the end of a run that
    drained naturally, when nothing is alive. *)
