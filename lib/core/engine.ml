module Obs = Wp_obs.Obs

type result = {
  answers : Topk_set.entry list;
  stats : Stats.t;
  partial : bool;
}

let never_stop () = false

let now_ns = Clock.now_ns

let no_bound () = Float.neg_infinity
let no_publish (_ : float) = ()
let no_certify (_ : Topk_set.entry) = ()

module Config = struct
  type algo =
    | Whirlpool
    | Whirlpool_mt
    | Lockstep
    | Lockstep_noprun
    | Twig
    | Twig_seeded

  let all_algos =
    [ Whirlpool; Whirlpool_mt; Lockstep; Lockstep_noprun; Twig; Twig_seeded ]

  let algo_to_string = function
    | Whirlpool -> "whirlpool-s"
    | Whirlpool_mt -> "whirlpool-m"
    | Lockstep -> "lockstep"
    | Lockstep_noprun -> "lockstep-noprun"
    | Twig -> "twig"
    | Twig_seeded -> "twig-seeded"

  let algo_of_string = function
    | "whirlpool-s" | "ws" -> Some Whirlpool
    | "whirlpool-m" | "wm" -> Some Whirlpool_mt
    | "lockstep" -> Some Lockstep
    | "lockstep-noprun" | "noprun" -> Some Lockstep_noprun
    | "twig" -> Some Twig
    | "twig-seeded" -> Some Twig_seeded
    | _ -> None

  type t = {
    algo : algo;
    routing : Strategy.routing;
    queue_policy : Strategy.queue_policy;
    batch : int;
    use_cache : bool;
    threads_per_server : int;
    should_stop : unit -> bool;
    trace : Trace.t;
    obs : Obs.t;
    cache : Candidate_cache.t option;
    prune_bound : unit -> float;
    publish_threshold : float -> unit;
    on_certified : Topk_set.entry -> unit;
  }

  let default =
    {
      algo = Whirlpool;
      routing = Strategy.Min_alive;
      queue_policy = Strategy.Max_final_score;
      batch = 1;
      use_cache = true;
      threads_per_server = 1;
      should_stop = never_stop;
      trace = Trace.ignore_tracer;
      obs = Obs.disabled;
      cache = None;
      prune_bound = no_bound;
      publish_threshold = no_publish;
      on_certified = no_certify;
    }

  let with_algo algo t = { t with algo }
  let with_routing routing t = { t with routing }
  let with_queue_policy queue_policy t = { t with queue_policy }
  let with_batch batch t = { t with batch }
  let with_use_cache use_cache t = { t with use_cache }
  let with_cache cache t = { t with cache }
  let with_threads_per_server threads_per_server t = { t with threads_per_server }
  let with_should_stop should_stop t = { t with should_stop }
  let with_prune_bound prune_bound t = { t with prune_bound }
  let with_publish_threshold publish_threshold t = { t with publish_threshold }
  let with_on_certified on_certified t = { t with on_certified }
  let with_trace trace t = { t with trace }
  let with_obs obs t = { t with obs }
end

(* Static gate: a plan whose pattern or predicate sequences carry
   error-severity lint findings would silently return wrong answers;
   refuse to run it (raises {!Wp_analysis.Lint.Rejected}). *)
let validate_plan (plan : Plan.t) =
  Wp_analysis.Lint.validate_exn ~config:plan.config ~specs:plan.specs
    plan.pattern;
  if Invariants.enabled () then Invariants.check_table plan.scores

let run ?(config = Config.default) (plan : Plan.t) ~k =
  let {
    Config.routing;
    queue_policy;
    batch;
    use_cache;
    should_stop;
    obs;
    prune_bound;
    publish_threshold;
    _;
  } =
    config
  in
  if batch < 1 then invalid_arg "Engine.run: batch >= 1";
  validate_plan plan;
  (* [config.cache] lets a caller share one (plan-scoped) candidate
     cache across runs — the serve tier's cross-request cache; absent,
     each run memoizes privately as before. *)
  let cache =
    if not use_cache then None
    else match config.cache with Some _ as c -> c | None -> Some (Candidate_cache.create ())
  in
  let stats = Stats.create () in
  let t0 = now_ns () in
  (* Observability: a root span for the run, a child per iteration
     batch, a grandchild per server visit; trace events attach to the
     innermost open span.  All of it reads the counters without writing
     them, so a disabled (or unsampled) context leaves the run
     bit-identical. *)
  let obs_on = Obs.enabled obs in
  let qspan = if obs_on then Obs.root obs "query" else None in
  Obs.attr obs qspan "k" (float_of_int k);
  Obs.attr obs qspan "servers" (float_of_int plan.n_servers);
  let cur_span = ref qspan in
  let trace =
    if obs_on then (fun e ->
      config.trace e;
      Obs.event obs !cur_span (fun () ->
          Format.asprintf "%a" Trace.pp_event e))
    else config.trace
  in
  let topk = Topk_set.create ~k ~admit_partial:(Plan.admits_partial_answers plan) in
  (* Streaming certification: when the caller installed an
     [on_certified] hook, track the alive set and push entries the
     moment no alive match can beat them.  The physical-equality gate
     (the [Trace.ignore_tracer] idiom) keeps the default path free. *)
  let cert =
    if config.on_certified == no_certify then None
    else Some (Certify.create ~emit:config.on_certified)
  in
  let cert_add pm = match cert with Some c -> Certify.add c pm | None -> () in
  let cert_remove (pm : Partial_match.t) =
    match cert with Some c -> Certify.remove c pm.id | None -> ()
  in
  let certify () =
    match cert with Some c -> Certify.flush c topk | None -> ()
  in
  let queue : Partial_match.t Pqueue.t = Pqueue.create () in
  let seq = ref 0 in
  let next_id =
    let n = ref 0 in
    fun () -> incr n; !n
  in
  let enqueue (pm : Partial_match.t) =
    incr seq;
    cert_add pm;
    (* Equal priorities break toward the higher current score: matches
       closer to completion finish first, raising the threshold early. *)
    Pqueue.push queue ~tie:pm.score
      (Strategy.priority queue_policy plan ~seq:!seq ~server:None pm)
      pm
  in
  (* External bound pushing (scatter–gather): [prune_bound] is a floor
     published by the other shards' gathered top-k — a match that cannot
     strictly beat it can never enter the merged answer, so the strict
     [<] keeps ties alive and sharded answers identical to unsharded.
     [publish] reports this run's own threshold whenever it tightens. *)
  let xpruned (pm : Partial_match.t) = pm.max_possible < prune_bound () in
  let published = ref Float.neg_infinity in
  let publish () =
    let th = Topk_set.threshold topk in
    if th > !published then begin
      published := th;
      publish_threshold th
    end
  in
  let single_node = plan.n_servers = 1 in
  let checking = Invariants.enabled () in
  List.iter
    (fun pm ->
      if checking then Invariants.check_root plan pm;
      Topk_set.consider topk ~complete:single_node pm;
      if single_node then stats.completed <- stats.completed + 1
      else if Topk_set.should_prune topk pm || xpruned pm then
        stats.matches_pruned <- stats.matches_pruned + 1
      else enqueue pm)
    (Server.initial_matches plan stats ~next_id);
  publish ();
  certify ();
  let process_here (pm : Partial_match.t) server =
    let { Server.extensions; died } =
      Server.process ?cache plan stats ~next_id pm ~server
    in
    if checking then
      List.iter (Invariants.check_extension plan ~parent:pm) extensions;
    if died then begin
      trace (Trace.Died { id = pm.id; server });
      Topk_set.retract topk pm
    end;
    List.iter
      (fun (ext : Partial_match.t) ->
        let complete = Partial_match.is_complete ext ~full_mask:plan.full_mask in
        trace
          (Trace.Extended
             {
               parent = pm.id;
               id = ext.id;
               server;
               bound = Partial_match.bound ext server <> None;
             });
        Topk_set.consider topk ~complete ext;
        if complete then begin
          trace (Trace.Completed { id = ext.id; score = ext.score });
          stats.completed <- stats.completed + 1
        end
        else if Topk_set.should_prune topk ext || xpruned ext then begin
          trace (Trace.Pruned { id = ext.id });
          stats.matches_pruned <- stats.matches_pruned + 1
        end
        else enqueue ext)
      extensions
  in
  let process_at (pm : Partial_match.t) server =
    if not obs_on then process_here pm server
    else begin
      let vspan = Obs.child obs ~parent:!cur_span "visit" in
      let saved = !cur_span in
      if vspan <> None then cur_span := vspan;
      let v0 = now_ns () in
      let c0 = stats.comparisons
      and h0 = stats.cache_hits
      and m0 = stats.cache_misses in
      process_here pm server;
      Obs.visit obs ~server
        ~comparisons:(stats.comparisons - c0)
        ~cache_hits:(stats.cache_hits - h0)
        ~cache_misses:(stats.cache_misses - m0)
        ~ns:(Int64.sub (now_ns ()) v0);
      Obs.attr obs vspan "server" (float_of_int server);
      Obs.finish obs vspan;
      cur_span := saved
    end
  in
  let stopped = ref false in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some _ when should_stop () ->
        (* Deadline / cancellation: abandon the popped match and the
           rest of the queue — the top-k set already holds the best
           answers known so far, returned flagged [partial]. *)
        stopped := true
    | Some pm ->
        cert_remove pm;
        trace
          (Trace.Popped
             { id = pm.id; score = pm.score; max_possible = pm.max_possible });
        if Topk_set.should_prune topk pm || xpruned pm then begin
          trace (Trace.Pruned { id = pm.id });
          stats.matches_pruned <- stats.matches_pruned + 1
        end
        else begin
          let server =
            Strategy.choose_next routing plan
              ~threshold:(Topk_set.threshold topk) pm
          in
          stats.routing_decisions <- stats.routing_decisions + 1;
          trace (Trace.Routed { id = pm.id; server });
          let bspan =
            if obs_on then begin
              let b = Obs.child obs ~parent:qspan "batch" in
              Obs.attr obs b "server" (float_of_int server);
              if b <> None then cur_span := b;
              b
            end
            else None
          in
          process_at pm server;
          (* Bulk adaptivity: reuse the decision for queue heads that
             have visited the same servers (and therefore admit the same
             choice), without paying another decision. *)
          let rec drain_batch budget =
            if budget > 0 then
              match Pqueue.peek queue with
              | Some (head : Partial_match.t)
                when head.visited_mask = pm.visited_mask -> (
                  match Pqueue.pop queue with
                  | Some next ->
                      cert_remove next;
                      trace
                        (Trace.Popped
                           {
                             id = next.id;
                             score = next.score;
                             max_possible = next.max_possible;
                           });
                      if Topk_set.should_prune topk next || xpruned next then begin
                        trace (Trace.Pruned { id = next.id });
                        stats.matches_pruned <- stats.matches_pruned + 1
                      end
                      else begin
                        trace (Trace.Routed { id = next.id; server });
                        process_at next server
                      end;
                      drain_batch (budget - 1)
                  | None -> ())
              | Some _ | None -> ()
          in
          drain_batch (batch - 1);
          if obs_on then begin
            Obs.finish obs bspan;
            cur_span := qspan
          end
        end;
        publish ();
        certify ();
        loop ()
  in
  loop ();
  (* A drained run holds no alive matches: everything left is final.
     A stopped run emits nothing more — its remaining answers travel
     only in the buffered (partial) reply. *)
  (match cert with
  | Some c when not !stopped -> Certify.flush_all c topk
  | Some _ | None -> ());
  stats.wall_ns <- Int64.sub (now_ns ()) t0;
  let answers = Topk_set.entries topk in
  if obs_on then begin
    Obs.attr obs qspan "answers" (float_of_int (List.length answers));
    Obs.attr obs qspan "server_ops" (float_of_int stats.server_ops);
    if !stopped then Obs.attr obs qspan "partial" 1.0;
    Obs.finish obs qspan
  end;
  { answers; stats; partial = !stopped }

(* Threshold mode: no top-k set — a fixed bar prunes instead, and every
   completed match above the bar is an answer (best score per root). *)
let run_above ?(config = Config.default) (plan : Plan.t) ~threshold =
  let { Config.routing; queue_policy; use_cache; should_stop; _ } = config in
  validate_plan plan;
  let cache =
    if not use_cache then None
    else match config.cache with Some _ as c -> c | None -> Some (Candidate_cache.create ())
  in
  let stats = Stats.create () in
  let t0 = now_ns () in
  let queue : Partial_match.t Pqueue.t = Pqueue.create () in
  let seq = ref 0 in
  let next_id =
    let n = ref 0 in
    fun () -> incr n; !n
  in
  let answers : (int, Topk_set.entry) Hashtbl.t = Hashtbl.create 64 in
  let record (pm : Partial_match.t) =
    stats.completed <- stats.completed + 1;
    if pm.score > threshold then begin
      let root = Partial_match.root_binding pm in
      let entry =
        {
          Topk_set.root;
          score = pm.score;
          match_id = pm.id;
          bindings = Array.copy pm.bindings;
          progress = plan.n_servers;
        }
      in
      match Hashtbl.find_opt answers root with
      | Some e when e.Topk_set.score >= pm.score -> ()
      | Some _ | None -> Hashtbl.replace answers root entry
    end
  in
  let hopeless (pm : Partial_match.t) = pm.max_possible <= threshold in
  let enqueue (pm : Partial_match.t) =
    incr seq;
    Pqueue.push queue ~tie:pm.score
      (Strategy.priority queue_policy plan ~seq:!seq ~server:None pm)
      pm
  in
  let single_node = plan.n_servers = 1 in
  let checking = Invariants.enabled () in
  List.iter
    (fun pm ->
      if checking then Invariants.check_root plan pm;
      if single_node then record pm
      else if hopeless pm then
        stats.matches_pruned <- stats.matches_pruned + 1
      else enqueue pm)
    (Server.initial_matches plan stats ~next_id);
  let stopped = ref false in
  let rec loop () =
    match Pqueue.pop queue with
    | None -> ()
    | Some _ when should_stop () -> stopped := true
    | Some pm ->
        let server = Strategy.choose_next routing plan ~threshold pm in
        stats.routing_decisions <- stats.routing_decisions + 1;
        let { Server.extensions; died = _ } =
          Server.process ?cache plan stats ~next_id pm ~server
        in
        if checking then
          List.iter (Invariants.check_extension plan ~parent:pm) extensions;
        List.iter
          (fun ext ->
            if Partial_match.is_complete ext ~full_mask:plan.full_mask then
              record ext
            else if hopeless ext then
              stats.matches_pruned <- stats.matches_pruned + 1
            else enqueue ext)
          extensions;
        loop ()
  in
  loop ();
  stats.wall_ns <- Int64.sub (now_ns ()) t0;
  let sorted =
    List.sort
      (fun (a : Topk_set.entry) b ->
        match Float.compare b.score a.score with
        | 0 -> Int.compare a.root b.root
        | c -> c)
      (Hashtbl.fold (fun _ e acc -> e :: acc) answers [])
  in
  { answers = sorted; stats; partial = !stopped }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>%a@," Stats.pp r.stats;
  if r.partial then Format.fprintf ppf "(partial: run stopped early)@,";
  List.iteri
    (fun i (e : Topk_set.entry) ->
      Format.fprintf ppf "%d. root=%d score=%.4f@," (i + 1) e.root e.score)
    r.answers;
  Format.fprintf ppf "@]"
