(** Bit-twiddling helpers shared by the mask-based bookkeeping in
    {!Partial_match}, {!Topk_set} and the engines. *)

val popcount : int -> int
(** Number of set bits in a non-negative word, via a byte table (eight
    lookups per word rather than one loop iteration per bit).
    @raise Invalid_argument on a negative mask. *)
