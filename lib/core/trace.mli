(** Execution tracing.

    A tracer receives one event per engine action — match popped, routing
    decision, extension spawned, pruning, death, completion, top-k
    admission — giving both a debugging lens (via {!val-logs}) and a way
    for tests to assert scheduling invariants (via {!collector}).
    Tracing is opt-in per run ({!Engine.Config.t}'s [trace] field) and
    free when absent. *)

type event =
  | Popped of { id : int; score : float; max_possible : float }
  | Routed of { id : int; server : int }
  | Extended of { parent : int; id : int; server : int; bound : bool }
  | Pruned of { id : int }
  | Died of { id : int; server : int }
  | Completed of { id : int; score : float }

type t = event -> unit

val ignore_tracer : t

val collector : unit -> t * (unit -> event list)
(** A tracer that records events, and the function that returns them in
    emission order.  Thread-safe: Whirlpool-M hands one tracer to every
    domain. *)

type timed = { ts_ns : int64; seq : int; event : event }
(** An event stamped at receipt with the monotonic {!Clock} and a
    per-collector sequence number; [(ts_ns, seq)] totally orders events,
    making traces from different runs — in particular multi-threaded
    runs, where per-domain emission order is meaningless — comparable
    and diffable. *)

val timed_collector : unit -> t * (unit -> timed list)
(** Like {!collector}, returning stamped events sorted by
    [(ts_ns, seq)]. *)

val compare_timed : timed -> timed -> int

val logs : unit -> t
(** A tracer that reports every event at debug level on the
    ["whirlpool"] {!Logs} source. *)

val event_id : event -> int
val pp_event : Format.formatter -> event -> unit
