(** Monotonic clock shared by the engines, the benchmark harness and
    the CLI.

    Re-export of {!Wp_obs.Clock}: a [clock_gettime(CLOCK_MONOTONIC)]
    C stub, immune to NTP steps and manual clock changes.  The origin
    is unspecified, so readings are only meaningful relative to one
    another — subtract two for an elapsed time.  See {!Wp_obs.Clock}
    for the full contract. *)

val now_ns : unit -> int64
(** Nanoseconds since an unspecified fixed origin, monotonically
    non-decreasing across all domains of the process. *)

val now : unit -> float
(** Seconds, on the same monotonic basis as {!now_ns}. *)
