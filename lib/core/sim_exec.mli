(** Discrete-event simulated execution.

    The paper's hardware-dependent experiments — the processor sweep of
    Figure 9 (1, 2, 4 and "infinitely many" CPUs on a 54-CPU Sun F15K)
    and the operation-cost sweep of Figure 8 — are reproduced under a
    virtual clock instead of on exotic hardware.  The simulator runs the
    {e same} server, router, top-k and strategy code as the real engines,
    but charges a configurable cost per server operation and per routing
    decision, and schedules the per-server threads of the Whirlpool-M
    architecture onto [processors] virtual CPUs (a thread occupies a CPU
    for the duration of each operation; ready threads wait for a free
    CPU in arrival order).  All interleaving effects the paper discusses
    — the top-k threshold growing at a different pace under parallelism
    and thereby changing adaptive routing choices — arise naturally.

    The simulated Whirlpool-S engine is the sequential special case: a
    single thread paying [route_cost + op_cost] per step, so its
    makespan is exactly [ops·op_cost + decisions·route_cost]. *)

type costs = {
  op_cost : float;  (** seconds charged per server operation *)
  route_cost : float;  (** seconds charged per routing decision *)
}

type result = {
  makespan : float;  (** simulated completion time, seconds *)
  engine : Engine.result;  (** answers and operation counts *)
  busy_time : float;  (** total CPU-seconds consumed *)
}

val simulate_s :
  ?config:Engine.Config.t -> costs:costs -> Plan.t -> k:int -> result
(** Sequential Whirlpool-S under the cost model (runs {!Engine.run} and
    prices its operation counts). *)

val simulate_lockstep :
  ?order:int array -> ?prune:bool -> costs:costs -> Plan.t -> k:int -> result
(** LockStep variants under the cost model. *)

val simulate_m :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  costs:costs ->
  processors:int ->
  Plan.t ->
  k:int ->
  result
(** Event-driven simulation of the Whirlpool-M architecture on
    [processors] virtual CPUs ([max_int] models the paper's "infinite"
    machine). *)
