type t = {
  id : int;
  bindings : int array;
  mutable visited_mask : int;
  mutable score : float;
  mutable max_possible : float;
}

let unbound = -1
let root_binding t = t.bindings.(0)

let create_root ~plan_servers ~id ~root ~weight ~max_rest =
  let bindings = Array.make plan_servers unbound in
  bindings.(0) <- root;
  {
    id;
    bindings;
    visited_mask = 1;
    score = weight;
    max_possible = weight +. max_rest;
  }

let visited t s = t.visited_mask land (1 lsl s) <> 0
let is_complete t ~full_mask = t.visited_mask = full_mask

let unvisited_servers t ~n_servers =
  let rec go s acc =
    if s < 1 then acc
    else go (s - 1) (if visited t s then acc else s :: acc)
  in
  go (n_servers - 1) []

let extend_onto bindings t ~id ~server ~binding ~weight ~server_max =
  bindings.(server) <- (match binding with Some n -> n | None -> unbound);
  {
    id;
    bindings;
    visited_mask = t.visited_mask lor (1 lsl server);
    score = t.score +. weight;
    max_possible = t.max_possible -. server_max +. weight;
  }
[@@wp.hot]

let extend t ~id ~server ~binding ~weight ~server_max =
  extend_onto (Array.copy t.bindings) t ~id ~server ~binding ~weight ~server_max

let extend_last t ~id ~server ~binding ~weight ~server_max =
  extend_onto t.bindings t ~id ~server ~binding ~weight ~server_max
[@@wp.hot]

let n_visited t = Bits.popcount t.visited_mask

let bound t s = if t.bindings.(s) = unbound then None else Some t.bindings.(s)

let pp ppf t =
  Format.fprintf ppf "#%d score=%.4f max=%.4f [" t.id t.score t.max_possible;
  Array.iteri
    (fun i b ->
      if i > 0 then Format.pp_print_char ppf ' ';
      if b = unbound then Format.pp_print_string ppf "_"
      else Format.pp_print_int ppf b)
    t.bindings;
  Format.pp_print_char ppf ']'
