(** Execution counters — the paper's evaluation measures.

    [server_ops] and [matches_created] are the y-axes of Figures 7 and
    Table 2; [comparisons] is the join-predicate-comparison count of the
    motivating example; [routing_decisions] feeds the adaptivity-overhead
    model of Figure 8. *)

type t = {
  mutable server_ops : int;  (** partial matches processed by servers *)
  mutable comparisons : int;  (** candidate nodes examined (join predicate comparisons) *)
  mutable matches_created : int;  (** partial matches spawned, root tuples included *)
  mutable matches_pruned : int;  (** dropped by top-k score pruning *)
  mutable matches_died : int;  (** dropped for (in)validity, e.g. exact-mode empty joins *)
  mutable routing_decisions : int;  (** adaptive/static router choices made *)
  mutable completed : int;  (** matches that visited every server *)
  mutable cache_hits : int;
      (** candidate-cache lookups answered from a cached (server, root)
          entry array *)
  mutable cache_misses : int;  (** lookups that had to compute the array *)
  mutable wall_ns : int64;  (** elapsed monotonic time *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (wall time takes the max, the
    counters sum) — used to merge per-domain statistics. *)

val wall_seconds : t -> float

val cache_hit_rate : t -> float
(** Fraction of candidate-cache lookups served from the cache, in
    [0, 1]; [0.] when no lookup happened (e.g. the uncached engines). *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Wp_json.Json.t
(** Every counter plus the derived cache-hit rate and wall seconds —
    the object {!Wp_serve} attaches to query replies. *)

val register : ?prefix:string -> t -> Wp_obs.Registry.t -> unit
(** Register each counter as a pull-style Prometheus counter named
    [prefix ^ field ^ "_total"] ([prefix] defaults to ["wp_engine_"]).
    The registry reads the accumulator at snapshot time; the engine hot
    path is untouched. *)
