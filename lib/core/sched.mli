(** Deterministic virtual-time scheduler — the instrumented {!Sync}
    implementation.

    Runs a multithreaded program (typically {!Engine_mt.Make}) as
    cooperative fibers on a single domain, using OCaml effects to
    suspend a fiber at every synchronization operation (lock, unlock,
    condition wait/signal, atomic access, spawn/join, shared-memory
    note).  At each such point the scheduler consults a pluggable
    choice function to pick which runnable fiber advances, so a run is
    a pure function of the program and the choice sequence: the same
    seed replays the same interleaving, and different seeds explore
    different ones.

    Every operation is recorded as a {!Wp_analysis.Concurrency.event};
    the resulting trace feeds the lock-order, data-race and shutdown
    analyzers.  Blocking faithfully models the real primitives —
    condition wait atomically releases its mutex, signal with no waiter
    is lost, mutexes hand off FIFO — so a deadlock in the model is a
    schedule the real engine can reach at its synchronization points.

    If no fiber is runnable but some are blocked, the run stops and
    reports them in [blocked] (deadlock).  A step budget bounds
    livelock: when exceeded, [budget_exceeded] is set and the remaining
    fibers are abandoned. *)

type 'a outcome = {
  value : ('a, exn) result;
      (** the program's return value, or the exception that killed the
          main fiber *)
  trace : Wp_analysis.Concurrency.event list;  (** in execution order *)
  blocked : string list;
      (** names of fibers that never completed — deadlocked threads, or
          everything still alive when the step budget ran out *)
  steps : int;
  choices : (int * int) list;
      (** the (arity, chosen) decisions taken at every point where more
          than one fiber was runnable — a replayable schedule *)
  budget_exceeded : bool;
}

val run :
  ?max_steps:int ->
  choose:(arity:int -> int) ->
  ((module Sync.S) -> 'a) ->
  'a outcome
(** Execute the program under the scheduler.  [choose ~arity] picks the
    index of the next fiber among [arity] runnable ones (called only
    when [arity > 1]; out-of-range answers are clamped to 0).
    [max_steps] (default [1_000_000]) bounds total scheduling steps. *)

val random : seed:int -> arity:int -> int
(** A self-contained seeded uniform chooser: partially applying
    [random ~seed] yields a fresh deterministic choice stream. *)

val replay : int list -> arity:int -> int
(** Follow the given choice prefix, then always pick 0 — the
    depth-first exploration order.  Partially apply per run. *)

val explore :
  ?max_steps:int ->
  max_schedules:int ->
  ((module Sync.S) -> 'a) ->
  'a outcome list * bool
(** Exhaustive depth-first schedule enumeration by replay, up to
    [max_schedules] runs.  Returns the outcomes and whether the
    schedule tree was fully explored ([true]) or truncated by the
    budget ([false]). *)
