(** High-level façade over the engines.

    A typical interaction:

    {[
      let doc = Wp_xml.Parser.parse_doc xml in
      let idx = Wp_xml.Index.build doc in
      let query = Wp_pattern.Xpath_parser.parse "//item[./description/parlist]" in
      let result =
        Whirlpool.Run.top_k ~algorithm:Whirlpool_s ~k:10 idx query
      in
      List.iter
        (fun (a : Whirlpool.Topk_set.entry) ->
          Printf.printf "root node %d, score %.3f\n" a.root a.score)
        result.answers
    ]} *)

type algorithm = Whirlpool_s | Whirlpool_m | Lockstep | Lockstep_noprun

val pp_algorithm : Format.formatter -> algorithm -> unit
val algorithm_of_string : string -> algorithm option
(** Recognizes ["whirlpool-s"], ["whirlpool-m"], ["lockstep"],
    ["lockstep-noprun"]. *)

val compile :
  ?config:Wp_relax.Relaxation.config ->
  ?normalization:Wp_score.Score_table.normalization ->
  Wp_xml.Index.t ->
  Wp_pattern.Pattern.t ->
  Plan.t
(** Compile a query against an indexed document.  [config] defaults to
    all relaxations enabled, [normalization] to [Sparse]. *)

val run :
  ?config:Engine.Config.t ->
  ?order:int array ->
  algorithm ->
  Plan.t ->
  k:int ->
  Engine.result
(** Dispatch to the chosen engine under [config] (default
    {!Engine.Config.default}).  [order] only applies to the LockStep
    variants and to [Static] routing default construction; the LockStep
    variants honor only [config.queue_policy]. *)

val top_k :
  ?config:Wp_relax.Relaxation.config ->
  ?normalization:Wp_score.Score_table.normalization ->
  ?routing:Strategy.routing ->
  ?algorithm:algorithm ->
  Wp_xml.Index.t ->
  Wp_pattern.Pattern.t ->
  k:int ->
  Engine.result
(** One-call convenience: compile then run (default [Whirlpool_s] with
    [Min_alive] routing). *)

val top_k_answers :
  ?config:Wp_relax.Relaxation.config ->
  ?normalization:Wp_score.Score_table.normalization ->
  ?routing:Strategy.routing ->
  ?algorithm:algorithm ->
  Wp_xml.Index.t ->
  Wp_pattern.Pattern.t ->
  k:int ->
  Answer.t list
(** Like {!top_k}, with the answers materialized (fragments, bindings,
    exactness). *)
