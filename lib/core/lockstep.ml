let now_ns = Clock.now_ns

let run ?order ?(queue_policy = Strategy.Max_final_score) ?(prune = true)
    (plan : Plan.t) ~k =
  let order =
    match order with
    | Some o -> o
    | None -> Strategy.default_static_order plan
  in
  if Array.length order <> plan.n_servers - 1 then
    invalid_arg "Lockstep.run: order must cover every non-root server";
  let stats = Stats.create () in
  let t0 = now_ns () in
  let topk = Topk_set.create ~k ~admit_partial:(Plan.admits_partial_answers plan) in
  let next_id =
    let n = ref 0 in
    fun () -> incr n; !n
  in
  let seq = ref 0 in
  let consider_and_keep pm =
    let complete = Partial_match.is_complete pm ~full_mask:plan.full_mask in
    if prune then Topk_set.consider topk ~complete pm;
    if complete then begin
      stats.completed <- stats.completed + 1;
      None
    end
    else if prune && Topk_set.should_prune topk pm then begin
      stats.matches_pruned <- stats.matches_pruned + 1;
      None
    end
    else Some pm
  in
  let completed_noprune = ref [] in
  (* In the no-pruning variant, completed matches are collected and the
     winners picked by a final sort. *)
  let collect pm =
    if Partial_match.is_complete pm ~full_mask:plan.full_mask then
      completed_noprune := pm :: !completed_noprune
  in
  let handle pm =
    match consider_and_keep pm with
    | Some alive -> Some alive
    | None ->
        if not prune then collect pm;
        None
  in
  let current =
    ref (List.filter_map handle (Server.initial_matches plan stats ~next_id))
  in
  Array.iter
    (fun server ->
      let stage : Partial_match.t Pqueue.t = Pqueue.create () in
      List.iter
        (fun (pm : Partial_match.t) ->
          incr seq;
          Pqueue.push stage ~tie:pm.score
            (Strategy.priority queue_policy plan ~seq:!seq ~server:(Some server) pm)
            pm)
        !current;
      let survivors = ref [] in
      (let rec drain () =
        match Pqueue.pop stage with
        | None -> ()
        | Some pm ->
            if prune && Topk_set.should_prune topk pm then
              stats.matches_pruned <- stats.matches_pruned + 1
            else begin
              stats.routing_decisions <- stats.routing_decisions + 1;
              let { Server.extensions; died } =
                Server.process plan stats ~next_id pm ~server
              in
              if died && prune then Topk_set.retract topk pm;
              List.iter
                (fun ext ->
                  match handle ext with
                  | Some alive -> survivors := alive :: !survivors
                  | None -> ())
                extensions
            end;
            drain ()
      in
      drain ())
      [@wp.bounded
        "every pass pops one staged match and extensions accumulate in \
         [survivors], never back into [stage]"];
      current := List.rev !survivors)
    order;
  let answers =
    if prune then Topk_set.entries topk
    else begin
      let final = Topk_set.create ~k ~admit_partial:true in
      List.iter (fun pm -> Topk_set.consider final ~complete:true pm)
        !completed_noprune;
      Topk_set.entries final
    end
  in
  stats.wall_ns <- Int64.sub (now_ns ()) t0;
  { Engine.answers; stats; partial = false }
