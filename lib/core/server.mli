(** Server-side join processing.

    One server per pattern node.  Processing a partial match at a server
    (i) retrieves, through the tag index, the candidate document nodes
    below the match's root binding that satisfy the server's (relaxed)
    structural predicate, (ii) filters them through the conditional
    predicate sequence against whichever related pattern nodes the match
    already binds, (iii) scores each surviving extension at the level
    (exact or relaxed) its root predicate satisfies, and (iv) spawns one
    extended match per survivor — or a single unbound extension when the
    node is optional and nothing matched, or nothing at all when the
    match thereby dies.

    With subtree promotion disabled, bindings are not independent: a
    binding accepted now can invalidate a relative's options later, so
    whenever the node participates in hard conditionals the deletion
    branch is emitted {e alongside} the bound extensions, and candidates
    below an already-deleted pattern ancestor are rejected.  This keeps
    the explored answer space independent of the order in which servers
    process a match (the cross-engine equality the tests rely on). *)

type outcome = {
  extensions : Partial_match.t list;
  died : bool;
      (** no extension and the match is invalid (exact-mode empty join,
          or an optional node that cannot be deleted because a pattern
          descendant is already bound while promotion is disabled) *)
}

val initial_matches :
  Plan.t -> Stats.t -> next_id:(unit -> int) -> Partial_match.t list
(** Evaluate the root server: one fresh partial match per candidate root
    binding (the paper's "book server" step). *)

val process :
  ?cache:Candidate_cache.t -> Plan.t -> Stats.t -> next_id:(unit -> int) ->
  Partial_match.t -> server:int -> outcome
(** Process a partial match at a non-root server it has not visited.

    When [cache] is given, the (server, root)-only candidate derivation
    is memoized through it ({!Candidate_cache}); without it every call
    recomputes the candidates — the reference behaviour the cached path
    is tested against.  Either way only the conditional-predicate checks
    depend on the partial match itself.

    @raise Invalid_argument on the root server or an already-visited
    one. *)
