(** Partial matches — the tuples flowing through the Whirlpool system.

    A partial match binds a document node to each pattern node whose
    server has processed it (or records that the node stayed unbound,
    for optional nodes with no candidate).  Scores grow monotonically as
    servers bind nodes; [max_possible] adds the best weight of every
    unvisited server and therefore shrinks monotonically, which is what
    makes pruning against the top-k threshold safe. *)

type t = {
  id : int;  (** unique per run; ties in priority queues break on it *)
  bindings : int array;
      (** by pattern node id; [unbound] when the node is not (yet)
          bound *)
  mutable visited_mask : int;  (** bit [s] set once server [s] processed it *)
  mutable score : float;
  mutable max_possible : float;  (** maximum possible final score *)
}

val unbound : int
(** The sentinel (-1) used in [bindings]. *)

val root_binding : t -> int
(** The document node bound at the pattern root (always present). *)

val create_root : plan_servers:int -> id:int -> root:int -> weight:float ->
  max_rest:float -> t
(** A fresh match produced by the root server: [weight] is the root
    binding's score contribution, [max_rest] the sum of the other
    servers' best weights. *)

val visited : t -> int -> bool
val is_complete : t -> full_mask:int -> bool

val unvisited_servers : t -> n_servers:int -> int list

val extend : t -> id:int -> server:int -> binding:int option -> weight:float ->
  server_max:float -> t
(** Copy of the match with [server] marked visited, bound to [binding]
    (or left unbound), its score raised by [weight] and its maximum
    possible score lowered by [server_max - weight]. *)

val extend_last : t -> id:int -> server:int -> binding:int option ->
  weight:float -> server_max:float -> t
(** As {!extend}, but the parent's bindings array is transferred to the
    extension instead of copied — the common single-extension case pays
    no allocation for the array.  The parent must not be extended again
    and its bindings must not be read afterwards (its root binding,
    scores and visited mask stay valid). *)

val n_visited : t -> int
(** Number of servers that have processed the match (popcount of the
    visited mask). *)

val bound : t -> int -> int option
(** Binding of a pattern node, if the node is bound. *)

val pp : Format.formatter -> t -> unit
