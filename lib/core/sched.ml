module C = Wp_analysis.Concurrency

type fiber_state = Runnable | Blocked | Done

type fiber = {
  fid : int;
  fname : string;
  mutable fstate : fiber_state;
  mutable start : (unit -> unit) option;  (* not yet started *)
  mutable resume : (unit, unit) Effect.Deep.continuation option;
  mutable joiners : fiber list;
  mutable failure : exn option;
}

type mutex_i = {
  m_name : string;
  mutable owner : int option;  (* fid *)
  mutable m_waiters : fiber list;  (* FIFO *)
}

type cond_i = { mutable c_waiters : fiber list (* FIFO *) }

type reason =
  | Point  (* plain scheduling point; fiber stays runnable *)
  | Lock_wait of mutex_i
  | Cond_wait of cond_i
  | Join_wait of fiber

type _ Effect.t += Suspend : reason -> unit Effect.t

type sched = {
  mutable fibers : fiber list;  (* in spawn order *)
  mutable current : fiber;
  mutable next_fid : int;
  mutable trace_rev : C.event list;
  mutable steps : int;
  max_steps : int;
  choose : arity:int -> int;
  mutable choices_rev : (int * int) list;
  mutable budget_exceeded : bool;
}

type 'a outcome = {
  value : ('a, exn) result;
  trace : C.event list;
  blocked : string list;
  steps : int;
  choices : (int * int) list;
  budget_exceeded : bool;
}

let park fiber = function
  | Point -> ()
  | Lock_wait m ->
      fiber.fstate <- Blocked;
      m.m_waiters <- m.m_waiters @ [ fiber ]
  | Cond_wait c ->
      fiber.fstate <- Blocked;
      c.c_waiters <- c.c_waiters @ [ fiber ]
  | Join_wait target ->
      if target.fstate = Done then ()
      else begin
        fiber.fstate <- Blocked;
        target.joiners <- fiber :: target.joiners
      end

let finish_fiber st fiber failure =
  fiber.fstate <- Done;
  fiber.failure <- failure;
  st.trace_rev <- C.Exit { tid = fiber.fid } :: st.trace_rev;
  List.iter (fun j -> j.fstate <- Runnable) fiber.joiners;
  fiber.joiners <- []

(* Advance one fiber until it suspends again or terminates.  The deep
   handler installed at the fiber's first dispatch stays in force for
   its whole life, so resuming a continuation returns here on the next
   Suspend. *)
let dispatch st fiber =
  st.current <- fiber;
  match fiber.start with
  | Some thunk ->
      fiber.start <- None;
      Effect.Deep.match_with thunk ()
        {
          retc = (fun () -> finish_fiber st fiber None);
          exnc = (fun e -> finish_fiber st fiber (Some e));
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend reason ->
                  Some
                    (fun (k : (a, unit) Effect.Deep.continuation) ->
                      fiber.resume <- Some k;
                      park fiber reason)
              | _ -> None);
        }
  | None -> (
      match fiber.resume with
      | Some k ->
          fiber.resume <- None;
          Effect.Deep.continue k ()
      | None -> assert false)

(* --- the instrumented Sync implementation, closed over one run --- *)

let make_sync (st : sched) : (module Sync.S) =
  (module struct
    type mutex = mutex_i
    type condition = cond_i
    type atomic_rec = { a_name : string; mutable v : int }
    type atomic_int = atomic_rec
    type handle = fiber

    let record ev = st.trace_rev <- ev :: st.trace_rev
    let self () = st.current
    let point () = Effect.perform (Suspend Point)
    let mutex name = { m_name = name; owner = None; m_waiters = [] }

    let lock m =
      point ();
      let f = self () in
      (match m.owner with
      | None -> m.owner <- Some f.fid
      | Some _ ->
          (* Ownership is handed to us by the releasing fiber. *)
          Effect.perform (Suspend (Lock_wait m)));
      record (C.Acquire { tid = f.fid; lock = m.m_name })

    (* Release without a scheduling point, so Condition.wait can
       atomically release-and-sleep. *)
    let release_owned m =
      let f = self () in
      (match m.owner with
      | Some o when o = f.fid -> ()
      | Some _ | None ->
          failwith ("Sched: unlock of a mutex not held: " ^ m.m_name));
      record (C.Release { tid = f.fid; lock = m.m_name });
      match m.m_waiters with
      | [] -> m.owner <- None
      | w :: rest ->
          m.m_waiters <- rest;
          m.owner <- Some w.fid;
          w.fstate <- Runnable

    let unlock m =
      release_owned m;
      point ()

    let condition _name = { c_waiters = [] }

    let wait c m =
      release_owned m;
      (* No scheduling point between the release and the suspension:
         registration on the condition is atomic with the unlock, as in
         the real primitive (no lost wakeups beyond the real ones). *)
      Effect.perform (Suspend (Cond_wait c));
      (lock m
      [@wp.allow
        "lock-leak re-acquisition after a condition wait: the section that \
         called [wait] already guards this mutex with Fun.protect"])

    let signal c =
      (match c.c_waiters with
      | [] -> ()
      | w :: rest ->
          c.c_waiters <- rest;
          w.fstate <- Runnable);
      point ()

    let broadcast c =
      List.iter (fun w -> w.fstate <- Runnable) c.c_waiters;
      c.c_waiters <- [];
      point ()

    let atomic name v = { a_name = name; v }

    let get a =
      point ();
      record (C.Atomic { tid = (self ()).fid; loc = a.a_name; kind = C.Get; value = a.v });
      a.v

    let set a x =
      point ();
      a.v <- x;
      record (C.Atomic { tid = (self ()).fid; loc = a.a_name; kind = C.Set; value = x })

    let fetch_and_add a d =
      point ();
      let old = a.v in
      a.v <- old + d;
      record (C.Atomic { tid = (self ()).fid; loc = a.a_name; kind = C.Rmw; value = a.v });
      old

    let incr a = ignore (fetch_and_add a 1)

    let spawn name fn =
      point ();
      let parent = self () in
      let fiber =
        {
          fid = st.next_fid;
          fname = name;
          fstate = Runnable;
          start = Some fn;
          resume = None;
          joiners = [];
          failure = None;
        }
      in
      st.next_fid <- st.next_fid + 1;
      st.fibers <- st.fibers @ [ fiber ];
      record (C.Spawn { parent = parent.fid; child = fiber.fid; name });
      fiber

    let join h =
      point ();
      if h.fstate <> Done then Effect.perform (Suspend (Join_wait h));
      record (C.Join { tid = (self ()).fid; child = h.fid });
      match h.failure with Some e -> raise e | None -> ()

    let note_read loc =
      point ();
      record (C.Access { tid = (self ()).fid; loc; kind = C.Read })

    let note_write loc =
      point ();
      record (C.Access { tid = (self ()).fid; loc; kind = C.Write })
  end : Sync.S)

let run ?(max_steps = 1_000_000) ~choose f =
  let main =
    {
      fid = 0;
      fname = "main";
      fstate = Runnable;
      start = None;
      resume = None;
      joiners = [];
      failure = None;
    }
  in
  let st =
    {
      fibers = [ main ];
      current = main;
      next_fid = 1;
      trace_rev = [];
      steps = 0;
      max_steps;
      choose;
      choices_rev = [];
      budget_exceeded = false;
    }
  in
  let out = ref None in
  main.start <- Some (fun () -> out := Some (f (make_sync st)));
  let rec loop () =
    let runnable = List.filter (fun fb -> fb.fstate = Runnable) st.fibers in
    match runnable with
    | [] -> ()
    | fs ->
        if st.steps >= st.max_steps then st.budget_exceeded <- true
        else begin
          st.steps <- st.steps + 1;
          let n = List.length fs in
          let i =
            if n = 1 then 0
            else begin
              let i = st.choose ~arity:n in
              let i = if i < 0 || i >= n then 0 else i in
              st.choices_rev <- (n, i) :: st.choices_rev;
              i
            end
          in
          dispatch st (List.nth fs i);
          loop ()
        end
  in
  loop ();
  let blocked =
    List.filter_map
      (fun fb -> if fb.fstate <> Done then Some fb.fname else None)
      st.fibers
  in
  let value =
    match !out with
    | Some v -> Ok v
    | None -> (
        match main.failure with
        | Some e -> Error e
        | None -> Error (Failure "Sched.run: main fiber did not complete"))
  in
  {
    value;
    trace = List.rev st.trace_rev;
    blocked;
    steps = st.steps;
    choices = List.rev st.choices_rev;
    budget_exceeded = st.budget_exceeded;
  }

let random ~seed =
  let state = Random.State.make [| seed; 0x5ced |] in
  fun ~arity -> Random.State.int state arity

let replay prefix =
  let rem = ref prefix in
  fun ~arity ->
    match !rem with
    | [] -> 0
    | c :: tl ->
        rem := tl;
        if c < arity then c else arity - 1

(* The next depth-first schedule after one with the given choices: bump
   the deepest choice that still has an untried sibling, drop everything
   after it. *)
let next_prefix choices =
  let rec go = function
    | [] -> None
    | (arity, chosen) :: earlier ->
        if chosen + 1 < arity then
          Some (List.rev_map snd earlier @ [ chosen + 1 ])
        else go earlier
  in
  go (List.rev choices)

let explore ?max_steps ~max_schedules f =
  let rec go prefix n acc =
    let r = run ?max_steps ~choose:(replay prefix) f in
    let acc = r :: acc in
    if n + 1 >= max_schedules then (List.rev acc, next_prefix r.choices = None)
    else
      match next_prefix r.choices with
      | None -> (List.rev acc, true)
      | Some p -> go p (n + 1) acc
  in
  go [] 0 []
