module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Score_table = Wp_score.Score_table
module Pattern = Wp_pattern.Pattern

type exactness = Exact | Relaxed | Unbound

type binding = {
  query_node : Pattern.node_id;
  tag : string;
  node : Doc.node_id option;
  exactness : exactness;
  weight : float;
}

type t = {
  rank : int;
  root : Doc.node_id;
  score : float;
  bindings : binding list;
}

let binding_of (plan : Plan.t) ~root query_node = function
  | None ->
      {
        query_node;
        tag = Pattern.tag plan.pattern query_node;
        node = None;
        exactness = Unbound;
        weight = 0.0;
      }
  | Some node ->
      let doc = Index.doc plan.index in
      let entry = Score_table.entry plan.scores query_node in
      let spec = plan.specs.(query_node) in
      let anc =
        if query_node = Pattern.root plan.pattern then Doc.root doc else root
      in
      let content_exact =
        match spec.value with
        | None -> true
        | Some query ->
            Wp_relax.Relaxation.content_level plan.config ~query
              ~actual:(Doc.value doc node)
            = Wp_relax.Relaxation.Content_exact
      in
      let exact =
        content_exact && Relation.test doc spec.to_root.exact ~anc ~desc:node
      in
      {
        query_node;
        tag = Pattern.tag plan.pattern query_node;
        node = Some node;
        exactness = (if exact then Exact else Relaxed);
        weight = (if exact then entry.exact_weight else entry.relaxed_weight);
      }

let of_entry (plan : Plan.t) ~rank (entry : Topk_set.entry) =
  let bindings =
    List.mapi
      (fun q b -> binding_of plan ~root:entry.root q (if b < 0 then None else Some b))
      (Array.to_list entry.bindings)
  in
  { rank; root = entry.root; score = entry.score; bindings }

let of_result plan (result : Engine.result) =
  List.mapi (fun i e -> of_entry plan ~rank:(i + 1) e) result.answers

let fragment (plan : Plan.t) t = Doc.to_tree (Index.doc plan.index) t.root

let pp_exactness ppf = function
  | Exact -> Format.pp_print_string ppf "exact"
  | Relaxed -> Format.pp_print_string ppf "relaxed"
  | Unbound -> Format.pp_print_string ppf "deleted"

let exactness_to_string = function
  | Exact -> "exact"
  | Relaxed -> "relaxed"
  | Unbound -> "deleted"

let to_json (plan : Plan.t) t =
  let doc = Index.doc plan.index in
  let open Wp_json.Json in
  Obj
    [
      ("rank", Int t.rank);
      ("root", Int t.root);
      ("dewey", String (Wp_xml.Dewey.to_string (Doc.dewey doc t.root)));
      ("score", Float t.score);
      ( "bindings",
        List
          (List.map
             (fun b ->
               Obj
                 [
                   ("query_node", Int b.query_node);
                   ("tag", String b.tag);
                   ( "node",
                     match b.node with None -> Null | Some n -> Int n );
                   ("exactness", String (exactness_to_string b.exactness));
                   ("weight", Float b.weight);
                 ])
             t.bindings) );
    ]

let result_to_json (plan : Plan.t) (result : Engine.result) =
  let open Wp_json.Json in
  let stats = result.stats in
  Obj
    [
      ("partial", Bool result.partial);
      ( "answers",
        List (List.map (to_json plan) (of_result plan result)) );
      ( "stats",
        Obj
          [
            ("server_ops", Int stats.server_ops);
            ("comparisons", Int stats.comparisons);
            ("matches_created", Int stats.matches_created);
            ("matches_pruned", Int stats.matches_pruned);
            ("matches_died", Int stats.matches_died);
            ("routing_decisions", Int stats.routing_decisions);
            ("completed", Int stats.completed);
            ("cache_hits", Int stats.cache_hits);
            ("cache_misses", Int stats.cache_misses);
            ("cache_hit_rate", Float (Stats.cache_hit_rate stats));
            ("wall_seconds", Float (Stats.wall_seconds stats));
          ] );
    ]

let pp (plan : Plan.t) ppf t =
  let doc = Index.doc plan.index in
  Format.fprintf ppf "@[<v 2>%d. %a  score %.4f" t.rank (Doc.pp_node doc)
    t.root t.score;
  List.iter
    (fun b ->
      match b.node with
      | None ->
          Format.fprintf ppf "@,%-12s -> (%a)" b.tag pp_exactness b.exactness
      | Some n ->
          Format.fprintf ppf "@,%-12s -> %a (%a, +%.4f)" b.tag
            (Doc.pp_node doc) n pp_exactness b.exactness b.weight)
    t.bindings;
  Format.fprintf ppf "@]"
