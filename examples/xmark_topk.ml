(* Command-line top-k search over generated XMark-style documents.

   Examples:

     dune exec examples/xmark_topk.exe -- --size 1000000 --k 15
     dune exec examples/xmark_topk.exe -- -q "//item[./name and ./incategory]" \
       --algo whirlpool-m --routing max_score --k 5 --verbose
*)

let default_query = "//item[./description/parlist and ./mailbox/mail/text]"

let run size seed query k algo routing normalization exact verbose =
  let algo =
    match Whirlpool.Run.algorithm_of_string algo with
    | Some a -> a
    | None -> prerr_endline ("unknown algorithm: " ^ algo); exit 2
  in
  let routing =
    match Whirlpool.Strategy.routing_of_string routing with
    | Some r -> r
    | None -> prerr_endline ("unknown routing: " ^ routing); exit 2
  in
  let normalization =
    match Wp_score.Score_table.normalization_of_string normalization with
    | Some n -> n
    | None -> prerr_endline ("unknown normalization: " ^ normalization); exit 2
  in
  let pattern =
    match Wp_pattern.Xpath_parser.parse_opt query with
    | Some p -> p
    | None -> prerr_endline ("cannot parse query: " ^ query); exit 2
  in
  let t0 = Whirlpool.Clock.now () in
  let doc = Wp_xmark.Generator.generate_doc ~seed ~target_bytes:size () in
  let idx = Wp_xml.Index.build doc in
  Printf.printf "Generated %d-node document (~%d bytes) in %.2fs\n"
    (Wp_xml.Doc.size doc)
    (Wp_xml.Printer.doc_serialized_size doc)
    (Whirlpool.Clock.now () -. t0);
  let config =
    if exact then Wp_relax.Relaxation.exact else Wp_relax.Relaxation.all
  in
  let plan = Whirlpool.Run.compile ~config ~normalization idx pattern in
  if verbose then Format.printf "%a@." Whirlpool.Plan.pp plan;
  let result =
    Whirlpool.Run.run
      ~config:Whirlpool.Engine.Config.(default |> with_routing routing)
      algo plan ~k
  in
  Printf.printf "\nTop-%d answers for %s\n  (%s, %s routing, %s scores%s):\n" k
    (Wp_pattern.Pattern.to_string pattern)
    (Format.asprintf "%a" Whirlpool.Run.pp_algorithm algo)
    (Format.asprintf "%a" Whirlpool.Strategy.pp_routing routing)
    (Format.asprintf "%a" Wp_score.Score_table.pp_normalization normalization)
    (if exact then ", exact matching" else "");
  List.iteri
    (fun i (e : Whirlpool.Topk_set.entry) ->
      Printf.printf "  %2d. node %-7d %-18s score %.4f\n" (i + 1) e.root
        (Format.asprintf "%a" Wp_xml.Dewey.pp (Wp_xml.Doc.dewey doc e.root))
        e.score)
    result.answers;
  Printf.printf "\n%s\n" (Format.asprintf "%a" Whirlpool.Stats.pp result.stats)

open Cmdliner

let size =
  Arg.(value & opt int 500_000 & info [ "size" ] ~docv:"BYTES"
         ~doc:"Target document size in serialized bytes.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed.")

let query =
  Arg.(value & opt string default_query & info [ "q"; "query" ] ~docv:"XPATH"
         ~doc:"Tree-pattern query (the paper's XPath subset).")

let k = Arg.(value & opt int 10 & info [ "k" ] ~doc:"Number of answers.")

let algo =
  Arg.(value & opt string "whirlpool-s" & info [ "algo" ]
         ~doc:"Engine: whirlpool-s, whirlpool-m, lockstep, lockstep-noprun.")

let routing =
  Arg.(value & opt string "min_alive" & info [ "routing" ]
         ~doc:"Adaptive routing: min_alive, max_score, min_score.")

let normalization =
  Arg.(value & opt string "sparse" & info [ "scores" ]
         ~doc:"Scoring normalization: raw, sparse, dense, random-sparse, random-dense.")

let exact =
  Arg.(value & flag & info [ "exact" ] ~doc:"Disable all relaxations.")

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the compiled plan.")

let cmd =
  let doc = "adaptive top-k XPath search over a generated XMark document" in
  Cmd.v
    (Cmd.info "xmark_topk" ~doc)
    Term.(
      const run $ size $ seed $ query $ k $ algo $ routing $ normalization
      $ exact $ verbose)

let () = exit (Cmd.eval cmd)
