(* Why adaptivity?  The paper's Section 2 motivating example.

   Reproduces Figure 3 — the cost of all six static join plans for book
   (d) as the current top-k threshold grows — and then shows the same
   phenomenon on a generated document: the adaptive engine tracks the
   best static permutation without knowing it in advance.

     dune exec examples/adaptivity_demo.exe
*)

let () =
  Printf.printf "Motivating example (paper Figure 3)\n";
  Printf.printf "Book (d): 3 exact title matches (0.3 each),\n";
  Printf.printf "          5 approx location matches (0.3 0.2 0.1 0.1 0.1),\n";
  Printf.printf "          1 exact price match (0.2)\n\n";
  let plans =
    Whirlpool.Join_plan.permutations Whirlpool.Join_plan.book_d_example
  in
  let name order =
    String.concat ">" (List.map (fun p -> p.Whirlpool.Join_plan.name) order)
  in
  let thresholds = [ 0.0; 0.2; 0.4; 0.5; 0.6; 0.7; 0.75; 0.8 ] in
  Printf.printf "%-24s" "plan \\ currentTopK";
  List.iter (fun t -> Printf.printf "%6.2f" t) thresholds;
  print_newline ();
  List.iter
    (fun order ->
      Printf.printf "%-24s" (name order);
      List.iter
        (fun current_topk ->
          let m =
            Whirlpool.Join_plan.evaluate ~root_score:0.0 ~order ~current_topk
          in
          Printf.printf "%6d" m.comparisons)
        thresholds;
      print_newline ())
    plans;
  Printf.printf
    "\nNo single static plan is cheapest at every threshold — which is\n\
     exactly why the router re-decides per partial match.\n\n";

  (* The same effect, live: adaptive routing vs all static orders. *)
  let doc = Wp_xmark.Generator.generate_doc ~seed:4 ~target_bytes:400_000 () in
  let idx = Wp_xml.Index.build doc in
  let query =
    Wp_pattern.Xpath_parser.parse
      "//item[./description/parlist and ./mailbox/mail/text]"
  in
  let plan = Whirlpool.Run.compile idx query in
  Printf.printf "Generated document: %d nodes; query %s, k=15\n\n"
    (Wp_xml.Doc.size doc)
    (Wp_pattern.Pattern.to_string query);
  let static_costs =
    List.map
      (fun order ->
        let r =
          Whirlpool.Engine.run
            ~config:
              Whirlpool.Engine.Config.(
                default |> with_routing (Whirlpool.Strategy.Static order))
            plan
            ~k:15
        in
        r.stats.server_ops)
      (Whirlpool.Strategy.static_permutations plan)
  in
  let adaptive =
    (Whirlpool.Engine.run
       ~config:
         Whirlpool.Engine.Config.(
           default |> with_routing Whirlpool.Strategy.Min_alive)
       plan ~k:15)
      .stats
      .server_ops
  in
  let mn = List.fold_left min max_int static_costs in
  let mx = List.fold_left max 0 static_costs in
  let sorted = List.sort compare static_costs in
  let median = List.nth sorted (List.length sorted / 2) in
  Printf.printf "Server operations over all %d static permutations:\n"
    (List.length static_costs);
  Printf.printf "  best static    %6d\n" mn;
  Printf.printf "  median static  %6d\n" median;
  Printf.printf "  worst static   %6d\n" mx;
  Printf.printf "  ADAPTIVE       %6d (min_alive_partial_matches routing)\n"
    adaptive
