(* Figure 10 — execution time vs k and query size (log scale in the
   paper): Whirlpool-S and Whirlpool-M for Q1-Q3 with k in {3, 15, 75}
   on the default (10Mb-class) document. *)

let run (scale : Common.scale) =
  Common.header "Figure 10: execution time vs k and query size";
  let widths = [ 8; 6; 14; 14; 12; 12 ] in
  Common.print_row widths
    [ "query"; "k"; "Whirlpool-S"; "Whirlpool-M"; "W-S ops"; "W-M ops" ];
  List.iter
    (fun (qname, q) ->
      let plan = Common.plan_for ~size:scale.default_size q in
      List.iter
        (fun k ->
          let (rs : Whirlpool.Engine.result), ts =
            Common.timed_runs (fun () -> Whirlpool.Engine.run plan ~k)
          in
          let (rm : Whirlpool.Engine.result), tm =
            Common.timed_runs (fun () -> Whirlpool.Engine_mt.run plan ~k)
          in
          Common.print_row widths
            [
              qname; Common.fint k; Common.fsec ts; Common.fsec tm;
              Common.fint rs.stats.server_ops; Common.fint rm.stats.server_ops;
            ])
        scale.ks)
    Common.queries;
  Printf.printf
    "\nPaper: time grows roughly exponentially with query size and\n\
     linearly with k; the W-M advantage over W-S widens with both.\n"
