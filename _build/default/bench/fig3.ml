(* Figure 3 — the motivating example: number of join operations of every
   static plan for book (d), as a function of currentTopK. *)

let run (_scale : Common.scale) =
  Common.header
    "Figure 3: static join plans vs currentTopK (motivating example)";
  Printf.printf
    "Book (d): 3 exact title (0.3), 5 approx location (0.3 0.2 0.1 0.1 0.1),\n\
     1 exact price (0.2); counting join predicate comparisons.\n\n";
  let plans =
    Whirlpool.Join_plan.permutations Whirlpool.Join_plan.book_d_example
  in
  let thresholds = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.65; 0.7; 0.75; 0.8 ] in
  let widths = 26 :: List.map (fun _ -> 6) thresholds in
  Common.print_row widths
    ("plan \\ currentTopK"
    :: List.map (fun t -> Printf.sprintf "%.2f" t) thresholds);
  List.iteri
    (fun i order ->
      let name =
        String.concat ">"
          (List.map (fun p -> p.Whirlpool.Join_plan.name) order)
      in
      Common.print_row widths
        (Printf.sprintf "plan %d: %s" (i + 1) name
        :: List.map
             (fun current_topk ->
               let m =
                 Whirlpool.Join_plan.evaluate ~root_score:0.0 ~order
                   ~current_topk
               in
               string_of_int m.comparisons)
             thresholds))
    plans;
  (* The paper's observation, checked programmatically. *)
  let cost theta order =
    (Whirlpool.Join_plan.evaluate ~root_score:0.0 ~order ~current_topk:theta)
      .comparisons
  in
  let best theta =
    List.fold_left
      (fun acc o -> if cost theta o < cost theta acc then o else acc)
      (List.hd plans) plans
  in
  let name o =
    String.concat ">" (List.map (fun p -> p.Whirlpool.Join_plan.name) o)
  in
  Printf.printf "\nBest plan at currentTopK=0.1:  %s\n" (name (best 0.1));
  Printf.printf "Best plan at currentTopK=0.65: %s\n" (name (best 0.65));
  Printf.printf "Best plan at currentTopK=0.75: %s\n" (name (best 0.75));
  Printf.printf
    "Paper: price-first wins below 0.6, price>location>title in 0.6-0.7,\n\
     location-first plans above 0.7 — no static plan dominates.\n"
