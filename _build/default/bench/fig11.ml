(* Figure 11 — execution time vs document size (log scale in the paper):
   Whirlpool-S and Whirlpool-M for Q1-Q3 over the 1Mb/10Mb/50Mb sweep,
   k = 15. *)

let run (scale : Common.scale) =
  Common.header "Figure 11: execution time vs document size (k = 15)";
  let k = scale.default_k in
  let widths = [ 8; 8; 14; 14; 12; 12 ] in
  Common.print_row widths
    [ "query"; "doc"; "Whirlpool-S"; "Whirlpool-M"; "W-S ops"; "W-M ops" ];
  List.iter
    (fun (qname, q) ->
      List.iter
        (fun (slabel, size) ->
          let plan = Common.plan_for ~size q in
          let (rs : Whirlpool.Engine.result), ts =
            Common.timed_runs (fun () -> Whirlpool.Engine.run plan ~k)
          in
          let (rm : Whirlpool.Engine.result), tm =
            Common.timed_runs (fun () -> Whirlpool.Engine_mt.run plan ~k)
          in
          Common.print_row widths
            [
              qname; slabel; Common.fsec ts; Common.fsec tm;
              Common.fint rs.stats.server_ops; Common.fint rm.stats.server_ops;
            ])
        scale.sizes)
    Common.queries;
  Printf.printf
    "\nPaper: time grows steeply with document size; W-M's threading\n\
     overhead dominates on small documents but it wins on medium and\n\
     large ones (up to 92%% faster at 50Mb).\n"
