bench/queues.ml: Common Format List Printf Whirlpool
