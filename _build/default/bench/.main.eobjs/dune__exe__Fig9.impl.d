bench/fig9.ml: Common List Printf Whirlpool
