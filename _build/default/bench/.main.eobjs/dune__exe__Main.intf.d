bench/main.mli:
