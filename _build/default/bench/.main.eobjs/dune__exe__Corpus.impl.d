bench/corpus.ml: Common Hashtbl List Printf Whirlpool Wp_pattern Wp_xmark Wp_xml
