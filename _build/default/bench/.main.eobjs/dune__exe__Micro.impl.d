bench/micro.ml: Analyze Bechamel Benchmark Common Hashtbl List Measure Option Printf Staged String Test Time Toolkit Whirlpool Wp_xml
