bench/fig3.ml: Common List Printf String Whirlpool
