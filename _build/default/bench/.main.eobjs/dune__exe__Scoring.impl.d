bench/scoring.ml: Common Format List Printf Whirlpool Wp_score
