bench/common.ml: Char Filename Float Format Gc Hashtbl List Option Printf String Unix Whirlpool Wp_pattern Wp_score Wp_xmark Wp_xml
