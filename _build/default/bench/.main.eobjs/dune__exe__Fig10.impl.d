bench/fig10.ml: Common List Printf Whirlpool
