bench/fig67.ml: Common Float List Option Printf Whirlpool
