bench/table2.ml: Common List Printf Whirlpool
