bench/fig11.ml: Common List Printf Whirlpool
