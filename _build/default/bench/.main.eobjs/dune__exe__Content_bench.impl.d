bench/content_bench.ml: Array Common Hashtbl List Option Printf String Whirlpool Wp_pattern Wp_relax Wp_score Wp_xml
