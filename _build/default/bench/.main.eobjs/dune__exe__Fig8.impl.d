bench/fig8.ml: Common Float List Printf Whirlpool
