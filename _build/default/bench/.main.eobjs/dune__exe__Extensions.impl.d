bench/extensions.ml: Common Format List Printf Whirlpool Wp_pattern Wp_relax Wp_score
