bench/fig5.ml: Common List Printf Whirlpool
