bench/main.ml: Arg Cmd Cmdliner Common Content_bench Corpus Extensions Fagin_bench Fig10 Fig11 Fig3 Fig5 Fig67 Fig8 Fig9 Hashtbl List Micro Option Printf Queues Scoring String Sys Table2 Term Unix
