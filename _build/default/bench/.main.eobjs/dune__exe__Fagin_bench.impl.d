bench/fagin_bench.ml: Common List Printf Whirlpool
