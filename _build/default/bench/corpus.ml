(* Dataset sensitivity: the headline comparisons re-run on the
   DBLP-style bibliography corpus (see Wp_xmark.Dblp).  The paper's
   claims are about evaluation strategy, not about XMark specifically,
   so the ordering LockStep-NoPrun > LockStep > adaptive should hold on
   a corpus with very different structure. *)

let doc_cache : (int, Wp_xml.Index.t) Hashtbl.t = Hashtbl.create 4

let dblp_index size =
  match Hashtbl.find_opt doc_cache size with
  | Some idx -> idx
  | None ->
      let doc = Wp_xmark.Dblp.generate_doc ~seed:23 ~target_bytes:size () in
      let idx = Wp_xml.Index.build doc in
      Printf.printf "  [generated %d-byte dblp corpus: %d nodes]\n%!" size
        (Wp_xml.Doc.size doc);
      Hashtbl.add doc_cache size idx;
      idx

let run (scale : Common.scale) =
  Common.header "Dataset sensitivity: the DBLP-style corpus";
  let idx = dblp_index scale.default_size in
  let k = scale.default_k in
  let widths = [ 8; 18; 14; 12; 12 ] in
  Common.print_row widths [ "query"; "technique"; "time"; "ops"; "created" ];
  List.iter
    (fun (qname, q) ->
      let plan =
        Whirlpool.Run.compile idx (Wp_pattern.Xpath_parser.parse q)
      in
      List.iter
        (fun (tname, f) ->
          let (r : Whirlpool.Engine.result), dt = Common.timed_runs f in
          Common.print_row widths
            [
              qname; tname; Common.fsec dt;
              Common.fint r.stats.server_ops;
              Common.fint r.stats.matches_created;
            ])
        [
          ("Whirlpool-S", fun () -> Whirlpool.Engine.run plan ~k);
          ("Whirlpool-M", fun () -> Whirlpool.Engine_mt.run plan ~k);
          ("LockStep", fun () -> Whirlpool.Lockstep.run plan ~k);
          ("LockStep-NoPrun", fun () -> Whirlpool.Lockstep.run ~prune:false plan ~k);
        ])
    Wp_xmark.Dblp.queries;
  Printf.printf
    "\nSame ordering as on XMark: pruning wins, per-match adaptive\n\
     processing wins more — independent of the corpus shape.\n"
