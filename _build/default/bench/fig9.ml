(* Figure 9 — effect of parallelism.

   Ratio of Whirlpool-M's execution time over Whirlpool-S's for 1, 2, 4
   and "infinitely many" processors, for Q1-Q3 (10Mb-class document,
   k = 15).  The paper used machines with up to 54 CPUs; we reproduce
   the sweep on the discrete-event simulator with the paper's ~1.8ms
   per join operation and the measured routing-decision cost, so the
   processor count is exact and independent of this container. *)

let run (scale : Common.scale) =
  Common.header "Figure 9: Whirlpool-M / Whirlpool-S time ratio vs processors";
  let k = scale.default_k in
  let processors = [ (1, "1"); (2, "2"); (4, "4"); (100_000, "inf") ] in
  let widths = [ 8; 10; 10; 10; 10; 12 ] in
  Common.print_row widths
    (("query" :: List.map (fun (_, l) -> l ^ " cpu") processors)
    @ [ "real wall" ]);
  List.iter
    (fun (qname, q) ->
      let plan = Common.plan_for ~size:scale.default_size q in
      let adaptive_cost, _ = Common.measure_decision_costs plan in
      let costs =
        { Whirlpool.Sim_exec.op_cost = 1.8e-3; route_cost = adaptive_cost }
      in
      let s = Whirlpool.Sim_exec.simulate_s ~costs plan ~k in
      let cells =
        List.map
          (fun (p, _) ->
            let m =
              Whirlpool.Sim_exec.simulate_m ~costs ~processors:p plan ~k
            in
            Common.fratio (m.makespan /. s.makespan))
          processors
      in
      (* Real wall-clock ratio on this machine (includes the domain-spawn
         overhead the paper attributes to threading). *)
      let _, s_wall = Common.timed_runs (fun () -> Whirlpool.Engine.run plan ~k) in
      let _, m_wall =
        Common.timed_runs (fun () -> Whirlpool.Engine_mt.run plan ~k)
      in
      Common.print_row widths
        ((qname :: cells) @ [ Common.fratio (m_wall /. s_wall) ]))
    Common.queries;
  Printf.printf
    "\n(ratios above 1 mean Whirlpool-M is slower than Whirlpool-S)\n\
     Paper: with one CPU, W-M loses to W-S on the small Q1; with more\n\
     CPUs it wins increasingly on Q2/Q3 — up to ~3.5x with unlimited\n\
     parallelism — and the speedup saturates once the CPU count exceeds\n\
     the number of servers + 2.\n"
