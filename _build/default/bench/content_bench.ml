(* Extension: content relaxation (FleXPath-style).

   Item names in the generated corpus are short word sequences, so a
   single-word value predicate has few exact matches but many token
   matches — exactly the situation content relaxation is for.  This
   exhibit compares the strict and content-relaxed runs of the same
   query. *)

let run (scale : Common.scale) =
  Common.header "Extension: content relaxation on value predicates";
  let idx = Common.index_for scale.default_size in
  let doc = Wp_xml.Index.doc idx in
  (* Pick the most frequent first word of item names as the query
     constant, so the exhibit is deterministic but data-driven. *)
  let counts = Hashtbl.create 64 in
  Array.iter
    (fun n ->
      let is_item_name =
        match Wp_xml.Doc.parent doc n with
        | Some p -> String.equal (Wp_xml.Doc.tag doc p) "item"
        | None -> false
      in
      match (is_item_name, Wp_xml.Doc.value doc n) with
      | true, Some v -> (
          match String.split_on_char ' ' v with
          | w :: _ :: _ ->
              (* multi-word names only: these are token, not exact,
                 matches *)
              Hashtbl.replace counts w
                (1 + Option.value (Hashtbl.find_opt counts w) ~default:0)
          | _ -> ())
      | _ -> ())
    (Wp_xml.Index.ids idx "name");
  let word, _ =
    Hashtbl.fold
      (fun w c ((_, best) as acc) -> if c > best then (w, c) else acc)
      counts ("", 0)
  in
  let q = Printf.sprintf "//item[./name = '%s' and ./incategory]" word in
  Printf.printf "query: %s\n\n" q;
  let pattern = Wp_pattern.Xpath_parser.parse q in
  let k = 4 * scale.default_k in
  let widths = [ 26; 10; 14; 14; 12 ] in
  Common.print_row widths
    [ "config"; "answers"; "name bound"; "best score"; "ops" ];
  List.iter
    (fun (name, config) ->
      let plan =
        Whirlpool.Plan.compile ~normalization:Wp_score.Score_table.Raw idx
          config pattern
      in
      let r = Whirlpool.Engine.run plan ~k in
      let bound =
        List.length
          (List.filter
             (fun (e : Whirlpool.Topk_set.entry) -> e.bindings.(1) >= 0)
             r.answers)
      in
      let best =
        match r.answers with e :: _ -> e.score | [] -> 0.0
      in
      Common.print_row widths
        [
          name;
          Common.fint (List.length r.answers);
          Common.fint bound;
          Printf.sprintf "%.4f" best;
          Common.fint r.stats.server_ops;
        ])
    [
      ("strict values", Wp_relax.Relaxation.all);
      ("content relaxation", Wp_relax.Relaxation.with_content);
    ];
  Printf.printf
    "\nUnder content relaxation, names containing the query word as a\n\
     token bind (at the relaxed weight) instead of being deleted.\n"
