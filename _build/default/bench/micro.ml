(* Bechamel micro-benchmarks of the primitives each experiment stands
   on: one Test.make per exhibit, estimating the per-call cost of the
   operations whose counts the figures and tables report.  This both
   validates the cost model used by the Figure 8/9 simulations and
   documents the constant factors of this implementation. *)

open Bechamel

let tests_for (scale : Common.scale) =
  (* A small fixed workload keeps each Bechamel run in the sub-second
     range; the macro benchmarks cover the big documents. *)
  let size = min 300_000 scale.default_size in
  let plan = Common.plan_for ~size Common.q2 in
  let plan_q1 = Common.plan_for ~size Common.q1 in
  let idx = plan.index in
  let doc = Wp_xml.Index.doc idx in
  let d1 = Wp_xml.Doc.dewey doc (Wp_xml.Doc.size doc / 3) in
  let d2 = Wp_xml.Doc.dewey doc (Wp_xml.Doc.size doc / 2) in
  let stats = Whirlpool.Stats.create () in
  let next_id =
    let n = ref 0 in
    fun () -> incr n; !n
  in
  let pm = List.hd (Whirlpool.Server.initial_matches plan stats ~next_id) in
  let root = Whirlpool.Partial_match.root_binding pm in
  let topk = Whirlpool.Topk_set.create ~k:15 ~admit_partial:true in
  [
    (* Figure 3 — one static plan evaluation of the motivating example. *)
    Test.make ~name:"fig3/join-plan-eval"
      (Staged.stage (fun () ->
           Whirlpool.Join_plan.evaluate ~root_score:0.0
             ~order:Whirlpool.Join_plan.book_d_example ~current_topk:0.5));
    (* Figures 5-7 — the unit of work they count: one server operation. *)
    Test.make ~name:"fig5-7/server-op"
      (Staged.stage (fun () ->
           Whirlpool.Server.process plan stats ~next_id pm ~server:1));
    (* Figure 8 — the adaptivity overhead: one min_alive routing
       decision vs one static decision. *)
    Test.make ~name:"fig8/route-min-alive"
      (Staged.stage (fun () ->
           Whirlpool.Strategy.choose_next Whirlpool.Strategy.Min_alive plan
             ~threshold:1.0 pm));
    Test.make ~name:"fig8/route-static"
      (Staged.stage
         (let order = Whirlpool.Strategy.default_static_order plan in
          fun () ->
            Whirlpool.Strategy.choose_next (Whirlpool.Strategy.Static order)
              plan ~threshold:1.0 pm));
    (* Figure 9 — what the simulator schedules: queue push/pop and the
       top-k bookkeeping between operations. *)
    Test.make ~name:"fig9/topk-consider"
      (Staged.stage (fun () -> Whirlpool.Topk_set.consider topk ~complete:false pm));
    (* Figures 10-11 / Table 2 — a complete small-document run per
       engine. *)
    Test.make ~name:"fig10-11/whirlpool-s-q1"
      (Staged.stage (fun () -> Whirlpool.Engine.run plan_q1 ~k:15));
    Test.make ~name:"table2/lockstep-noprun-q1"
      (Staged.stage (fun () ->
           Whirlpool.Lockstep.run ~prune:false plan_q1 ~k:15));
    (* Substrate constants. *)
    Test.make ~name:"substrate/dewey-compare"
      (Staged.stage (fun () -> Wp_xml.Dewey.compare d1 d2));
    Test.make ~name:"substrate/index-subtree-count"
      (Staged.stage (fun () ->
           Wp_xml.Index.count_descendants idx "text" ~root));
  ]

let run (scale : Common.scale) =
  Common.header "Bechamel micro-benchmarks (one per exhibit)";
  Common.clear_caches ();
  let tests = tests_for scale in
  let cfg =
    Benchmark.cfg ~limit:3000 ~quota:(Time.second 1.0) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let grouped = Test.make_grouped ~name:"whirlpool" ~fmt:"%s/%s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let est =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | Some [] | None -> nan
        in
        let r2 = Option.value (Analyze.OLS.r_square ols) ~default:nan in
        (name, est, r2) :: acc)
      results []
  in
  let widths = [ 44; 16; 8 ] in
  Common.print_row widths [ "benchmark"; "time/run"; "r^2" ];
  List.iter
    (fun (name, est, r2) ->
      let pretty =
        if est > 1e9 then Printf.sprintf "%.3f s" (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%.3f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%.3f us" (est /. 1e3)
        else Printf.sprintf "%.1f ns" est
      in
      Common.print_row widths [ name; pretty; Printf.sprintf "%.3f" r2 ])
    (List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows)
