(* Section 6.3.5 (scoring functions) — sparse vs dense score
   distributions: sparse lets the threshold rise quickly (strong
   pruning, fast execution); dense bunches final scores together (weak
   pruning), which is where Whirlpool-M's head start on the threshold
   pays off most. *)

let run (scale : Common.scale) =
  Common.header "Scoring functions: sparse vs dense (Q2, default setting)";
  let k = scale.default_k in
  let widths = [ 20; 14; 14; 12; 12; 12 ] in
  Common.print_row widths
    [ "scoring"; "engine"; "time"; "ops"; "created"; "pruned" ];
  List.iter
    (fun normalization ->
      let plan =
        Common.plan_for ~normalization ~size:scale.default_size Common.q2
      in
      List.iter
        (fun (ename, f) ->
          let (r : Whirlpool.Engine.result), dt = Common.timed_runs f in
          Common.print_row widths
            [
              Format.asprintf "%a" Wp_score.Score_table.pp_normalization
                normalization;
              ename;
              Common.fsec dt;
              Common.fint r.stats.server_ops;
              Common.fint r.stats.matches_created;
              Common.fint r.stats.matches_pruned;
            ])
        [
          ("Whirlpool-S", fun () -> Whirlpool.Engine.run plan ~k);
          ("Whirlpool-M", fun () -> Whirlpool.Engine_mt.run plan ~k);
        ])
    [
      Wp_score.Score_table.Sparse;
      Wp_score.Score_table.Dense;
      Wp_score.Score_table.Random_sparse 42;
      Wp_score.Score_table.Random_dense 42;
    ];
  Printf.printf
    "\nPaper: sparse scoring prunes earlier and runs faster; under dense\n\
     scoring the gap between Whirlpool-M and Whirlpool-S widens.\n"
