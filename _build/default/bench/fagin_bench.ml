(* Baseline comparison: the Fagin-style Threshold Algorithm vs the
   adaptive engine.

   The paper's related-work argument (Section 3): Fagin's family
   assumes per-predicate sorted score lists that exist up front; on XML
   joins those lists must first be materialized with a full scan, after
   which TA's early termination saves little.  This exhibit quantifies
   both halves of that argument. *)

let run (scale : Common.scale) =
  Common.header "Baseline: Threshold Algorithm (Fagin) vs Whirlpool-S";
  let k = scale.default_k in
  let widths = [ 8; 12; 12; 12; 12; 12; 12; 12 ] in
  Common.print_row widths
    [ "query"; "build"; "TA time"; "sorted"; "random"; "NRA sorted"; "W-S time";
      "W-S ops" ];
  List.iter
    (fun (qname, q) ->
      let plan = Common.plan_for ~size:scale.default_size q in
      let lists, build_dt =
        Common.time (fun () -> Whirlpool.Fagin.build_lists plan)
      in
      let ta, ta_dt = Common.timed_runs (fun () -> Whirlpool.Fagin.top_k lists ~k) in
      let nra = Whirlpool.Fagin.top_k_nra lists ~k in
      let (ws : Whirlpool.Engine.result), ws_dt =
        Common.timed_runs (fun () -> Whirlpool.Engine.run plan ~k)
      in
      Common.print_row widths
        [
          qname;
          Common.fsec build_dt;
          Common.fsec ta_dt;
          Common.fint ta.sorted_accesses;
          Common.fint ta.random_accesses;
          Common.fint nra.sorted_accesses;
          Common.fsec ws_dt;
          Common.fint ws.stats.server_ops;
        ])
    Common.queries;
  Printf.printf
    "\nTA itself is fast once its sorted lists exist, but building them\n\
     costs a full scan of every candidate (the 'build' column) — the\n\
     work Whirlpool avoids by pruning during the join itself.\n"
