(* Table 2 — scalability of pruning: partial matches created by
   Whirlpool-M as a percentage of the maximum possible number of partial
   matches (i.e. those created by LockStep-NoPrun), per query and
   document size. *)

let run (scale : Common.scale) =
  Common.header
    "Table 2: partial matches created by Whirlpool-M / maximum possible";
  let k = scale.default_k in
  let widths = [ 10; 12; 12; 12 ] in
  Common.print_row widths
    ("doc size" :: List.map (fun (q, _) -> q) Common.queries);
  List.iter
    (fun (slabel, size) ->
      let cells =
        List.map
          (fun (_, q) ->
            let plan = Common.plan_for ~size q in
            let noprun = Whirlpool.Lockstep.run ~prune:false plan ~k in
            let wm = Whirlpool.Engine_mt.run plan ~k in
            Printf.sprintf "%.2f%%"
              (100.0
              *. float_of_int wm.stats.matches_created
              /. float_of_int (max 1 noprun.stats.matches_created)))
          Common.queries
      in
      Common.print_row widths (slabel :: cells))
    scale.sizes;
  Printf.printf
    "\nPaper: 100%% for Q1 at 1Mb falling to ~31%% for Q3 at 50Mb — the\n\
     benefit of pruning grows with query and document size.\n"
