(* A tour of the XML tf*idf scoring function (paper Section 4).

   Decomposes a query into component predicates, prints each predicate's
   idf over the Figure 1 book collection, each candidate's per-predicate
   tf, and the resulting Definition 4.4 scores; then shows how the
   engine's per-binding weights derive from the same idfs, and what the
   sparse/dense normalizations do to them.

     dune exec examples/scoring_explorer.exe
*)

open Wp_score

let books_xml =
  {|<bib>
      <book>
        <title>wodehouse</title>
        <info>
          <publisher><name>psmith</name></publisher>
          <price>48.95</price>
        </info>
        <isbn>1234</isbn>
      </book>
      <book>
        <title>wodehouse</title>
        <publisher><name>psmith</name><location>london</location></publisher>
        <info><isbn>1234</isbn></info>
        <price>48.95</price>
      </book>
      <book>
        <reviews><title>wodehouse</title></reviews>
        <location>london</location>
        <isbn>1234</isbn>
        <price>48.95</price>
      </book>
    </bib>|}

let () =
  let doc = Wp_xml.Parser.parse_doc books_xml in
  let idx = Wp_xml.Index.build doc in
  let query =
    Wp_pattern.Xpath_parser.parse
      "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']"
  in
  Printf.printf "Query: %s\n\n" (Wp_pattern.Pattern.to_string query);

  (* Definition 4.1: component predicates. *)
  let comps = Component.of_pattern ~doc_root_tag:"bib" query in
  Printf.printf "Component predicates (Definition 4.1) and idf (4.2):\n";
  Array.iter
    (fun c ->
      Printf.printf "  %-42s idf = %.4f\n"
        (Format.asprintf "%a" Component.pp c)
        (Tfidf.idf idx c))
    comps;

  (* Definitions 4.3 / 4.4 per candidate. *)
  let candidates = Wp_pattern.Matcher.root_candidates idx query in
  Printf.printf "\nPer-candidate tf (4.3) and total score (4.4):\n";
  Printf.printf "  %-10s" "candidate";
  Array.iter
    (fun c -> Printf.printf " tf(%s)" c.Component.target_tag)
    comps;
  Printf.printf "  score\n";
  List.iter
    (fun root ->
      Printf.printf "  book @%-4d" root;
      Array.iter
        (fun c -> Printf.printf " %6d" (Tfidf.tf idx c ~root))
        comps;
      Printf.printf "  %.4f\n" (Tfidf.score idx comps ~root))
    candidates;

  (* The engine's per-binding weight tables. *)
  let show normalization =
    let table =
      Score_table.build idx query Wp_relax.Relaxation.all normalization
    in
    Printf.printf "\n%s weights (exact / relaxed per query node):\n"
      (Format.asprintf "%a" Score_table.pp_normalization normalization);
    for i = 0 to Score_table.size table - 1 do
      let e = Score_table.entry table i in
      Printf.printf "  q%d <%s>: %.4f / %.4f\n" i
        (Wp_pattern.Pattern.tag query i)
        e.exact_weight e.relaxed_weight
    done
  in
  List.iter show [ Score_table.Raw; Score_table.Sparse; Score_table.Dense ];

  Printf.printf
    "\nSparse spreads final scores apart (strong pruning); dense bunches\n\
     them together (weak pruning) — the paper's Section 6.3.5 contrast.\n"
