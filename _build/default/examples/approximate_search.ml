(* Approximate search, explained.

   Combines three capabilities beyond the basic top-k call: threshold
   queries (every answer above a score bar), FleXPath-style content
   relaxation (value predicates matched by token containment), and
   answer materialization (which node bound where, and how exactly).

     dune exec examples/approximate_search.exe
*)

open Wp_xml

let catalog_xml =
  {|<catalog>
      <book><title>wodehouse</title>
            <info><publisher><name>psmith</name></publisher></info></book>
      <book><title>the wodehouse omnibus</title>
            <publisher><name>psmith</name></publisher></book>
      <book><title>wodehouse stories</title></book>
      <book><title>collected dickens</title>
            <info><publisher><name>psmith</name></publisher></info></book>
      <book><reviews><title>wodehouse</title></reviews></book>
    </catalog>|}

let () =
  let doc = Parser.parse_doc catalog_xml in
  let idx = Index.build doc in
  let query =
    Wp_pattern.Xpath_parser.parse
      "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']"
  in
  Printf.printf "Query: %s\n\n" (Wp_pattern.Pattern.to_string query);

  (* Structural relaxations only: the approximate titles don't bind. *)
  let structural =
    Whirlpool.Run.compile ~normalization:Wp_score.Score_table.Raw idx query
  in
  (* Adding content relaxation: 'the wodehouse omnibus' and 'wodehouse
     stories' now satisfy the title predicate approximately. *)
  let with_content =
    Whirlpool.Run.compile ~config:Wp_relax.Relaxation.with_content
      ~normalization:Wp_score.Score_table.Raw idx query
  in
  let show name plan =
    let r = Whirlpool.Engine.run plan ~k:5 in
    Printf.printf "%s:\n" name;
    List.iter
      (fun a -> Format.printf "%a@." (Whirlpool.Answer.pp plan) a)
      (Whirlpool.Answer.of_result plan r);
    print_newline ();
    r
  in
  let _ = show "Structural relaxations only" structural in
  let r = show "With content relaxation" with_content in

  (* Threshold mode: keep everything above half of the best score. *)
  (match r.answers with
  | best :: _ ->
      let threshold = best.score /. 2.0 in
      let above = Whirlpool.Engine.run_above with_content ~threshold in
      Printf.printf
        "Threshold query (score > %.3f): %d of %d candidates qualify\n"
        threshold
        (List.length above.answers)
        (List.length (Whirlpool.Plan.root_candidates with_content))
  | [] -> ());

  (* The same answers as machine-readable JSON (what the CLI's --json
     emits). *)
  let r = Whirlpool.Engine.run with_content ~k:2 in
  Printf.printf "\nTop-2 as JSON:\n%s\n"
    (Wp_json.Json.to_string (Whirlpool.Answer.result_to_json with_content r))
