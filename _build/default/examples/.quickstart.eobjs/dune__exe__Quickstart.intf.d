examples/quickstart.mli:
