examples/quickstart.ml: Doc Format Index List Parser Printf String Whirlpool Wp_pattern Wp_score Wp_xml
