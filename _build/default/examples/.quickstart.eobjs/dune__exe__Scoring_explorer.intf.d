examples/scoring_explorer.mli:
