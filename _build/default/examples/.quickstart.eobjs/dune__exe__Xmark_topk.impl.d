examples/xmark_topk.ml: Arg Cmd Cmdliner Format List Printf Term Unix Whirlpool Wp_pattern Wp_relax Wp_score Wp_xmark Wp_xml
