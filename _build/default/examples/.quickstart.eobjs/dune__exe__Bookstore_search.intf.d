examples/bookstore_search.mli:
