examples/xmark_topk.mli:
