examples/scoring_explorer.ml: Array Component Format List Printf Score_table Tfidf Wp_pattern Wp_relax Wp_score Wp_xml
