examples/approximate_search.mli:
