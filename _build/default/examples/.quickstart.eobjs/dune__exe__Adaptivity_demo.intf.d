examples/adaptivity_demo.mli:
