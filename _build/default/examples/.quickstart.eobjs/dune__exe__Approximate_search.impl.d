examples/approximate_search.ml: Format Index List Parser Printf Whirlpool Wp_json Wp_pattern Wp_relax Wp_score Wp_xml
