examples/bookstore_search.ml: Doc Format Index List Option Printf Tree Whirlpool Wp_pattern Wp_relax Wp_score Wp_xmark Wp_xml
