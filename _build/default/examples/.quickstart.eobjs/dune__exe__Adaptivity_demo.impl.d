examples/adaptivity_demo.ml: List Printf String Whirlpool Wp_pattern Wp_xmark Wp_xml
