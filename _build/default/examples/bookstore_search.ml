(* Searching a structurally heterogeneous bookstore.

   The paper motivates top-k approximate matching with "querying books
   from different online sellers": each seller exports a different
   schema, so no single exact XPath finds everything.  This example
   builds a catalog merged from three sellers, runs one query against
   all of them, and shows how relaxations and scoring surface the best
   candidates — and how the engines agree on the result while doing very
   different amounts of work.

     dune exec examples/bookstore_search.exe
*)

open Wp_xml

let authors =
  [| "wodehouse"; "austen"; "dickens"; "tolstoy"; "woolf"; "joyce" |]

let cities = [| "london"; "paris"; "dublin"; "moscow" |]

(* Seller A nests publisher data under info, like Figure 1(a). *)
let seller_a rng i =
  let author = Wp_xmark.Rng.pick rng authors in
  Tree.el "book"
    [
      Tree.leaf "title" (Printf.sprintf "%s collected works %d" author i);
      Tree.leaf "author" author;
      Tree.el "info"
        [
          Tree.el "publisher"
            [
              Tree.leaf "name" "psmith";
              Tree.leaf "location" (Wp_xmark.Rng.pick rng cities);
            ];
          Tree.leaf "price" (Printf.sprintf "%d.95" (10 + Wp_xmark.Rng.int rng 60));
        ];
    ]

(* Seller B flattens everything to direct children. *)
let seller_b rng i =
  let author = Wp_xmark.Rng.pick rng authors in
  Tree.el "book"
    [
      Tree.leaf "title" (Printf.sprintf "%s anthology %d" author i);
      Tree.leaf "author" author;
      Tree.el "publisher" [ Tree.leaf "name" "psmith" ];
      Tree.leaf "location" (Wp_xmark.Rng.pick rng cities);
      Tree.leaf "price" (Printf.sprintf "%d.50" (5 + Wp_xmark.Rng.int rng 40));
    ]

(* Seller C wraps content in a listing envelope and omits publishers. *)
let seller_c rng i =
  let author = Wp_xmark.Rng.pick rng authors in
  Tree.el "book"
    [
      Tree.el "listing"
        [
          Tree.leaf "title" (Printf.sprintf "%s omnibus %d" author i);
          Tree.el "seller-info" [ Tree.leaf "price" "9.99" ];
        ];
      Tree.leaf "author" author;
    ]

let catalog seed n =
  let rng = Wp_xmark.Rng.create seed in
  let pick i =
    match i mod 3 with
    | 0 -> seller_a rng i
    | 1 -> seller_b rng i
    | _ -> seller_c rng i
  in
  Doc.of_forest ~root_tag:"catalog" (List.init n pick)

let () =
  let doc = catalog 2024 120 in
  let idx = Index.build doc in
  Printf.printf "Catalog: %d nodes from three sellers\n\n" (Doc.size doc);

  let query =
    Wp_pattern.Xpath_parser.parse
      "/book[./title and ./info/publisher/name = 'psmith' and \
       ./info/publisher/location = 'london']"
  in
  Printf.printf "Query: %s\n\n" (Wp_pattern.Pattern.to_string query);

  Printf.printf "Exact matches: %d of 120 books (seller A in london only)\n\n"
    (List.length (Wp_pattern.Matcher.matching_roots idx query));

  let show_answer (e : Whirlpool.Topk_set.entry) =
    let title =
      (* first title node under the answer root, if any *)
      match Index.descendants idx "title" ~root:e.root with
      | t :: _ -> Option.value (Doc.value doc t) ~default:"?"
      | [] -> "(no title)"
    in
    Printf.printf "  score %.3f  %s\n" e.score title
  in

  let plan = Whirlpool.Run.compile ~normalization:Wp_score.Score_table.Raw idx query in
  let top = Whirlpool.Engine.run plan ~k:8 in
  Printf.printf "Top-8 across all sellers (relaxed):\n";
  List.iter show_answer top.answers;

  (* The same answers, four engines, very different work: *)
  Printf.printf "\nWorkload comparison (same top-8):\n";
  List.iter
    (fun algo ->
      let r = Whirlpool.Run.run algo plan ~k:8 in
      Printf.printf "  %-16s ops=%-6d created=%-6d pruned=%-6d\n"
        (Format.asprintf "%a" Whirlpool.Run.pp_algorithm algo)
        r.stats.server_ops r.stats.matches_created r.stats.matches_pruned)
    [ Whirlpool.Run.Whirlpool_s; Whirlpool.Run.Whirlpool_m;
      Whirlpool.Run.Lockstep; Whirlpool.Run.Lockstep_noprun ];

  (* Restricting relaxations changes the answer set: without subtree
     promotion, seller B's flattened location cannot float to the book
     level. *)
  let no_promo =
    {
      Wp_relax.Relaxation.edge_generalization = true;
      leaf_deletion = true;
      subtree_promotion = false;
      value_relaxation = false;
    }
  in
  let restricted =
    Whirlpool.Run.top_k ~config:no_promo
      ~normalization:Wp_score.Score_table.Raw idx query ~k:8
  in
  Printf.printf "\nTop-8 without subtree promotion:\n";
  List.iter show_answer restricted.answers
