(* Quickstart: the paper's running example, end to end.

   Builds the heterogeneous book collection of Figure 1, asks the query of
   Figure 2(a), and prints the top-3 approximate answers with their
   scores.  Run with:

     dune exec examples/quickstart.exe
*)

open Wp_xml

let books_xml =
  {|<bib>
      <book>
        <title>wodehouse</title>
        <info>
          <publisher><name>psmith</name></publisher>
          <price>48.95</price>
        </info>
        <isbn>1234</isbn>
      </book>
      <book>
        <title>wodehouse</title>
        <publisher><name>psmith</name><location>london</location></publisher>
        <info><isbn>1234</isbn></info>
        <price>48.95</price>
      </book>
      <book>
        <reviews><title>wodehouse</title></reviews>
        <location>london</location>
        <isbn>1234</isbn>
        <price>48.95</price>
      </book>
    </bib>|}

let () =
  (* 1. Load and index the document. *)
  let doc = Parser.parse_doc books_xml in
  let idx = Index.build doc in
  Printf.printf "Document: %d element nodes, tags: %s\n\n" (Doc.size doc)
    (String.concat ", " (Doc.distinct_tags doc));

  (* 2. Parse the XPath query (Figure 2(a) of the paper). *)
  let query =
    Wp_pattern.Xpath_parser.parse
      "/book[./title = 'wodehouse' and ./info/publisher/name = 'psmith']"
  in
  Printf.printf "Query: %s\n\n" (Wp_pattern.Pattern.to_string query);

  (* 3. Exact matching finds only the first book. *)
  let exact_roots = Wp_pattern.Matcher.matching_roots idx query in
  Printf.printf "Exact matches: %d (only the first book)\n\n"
    (List.length exact_roots);

  (* 4. Top-k with relaxations (edge generalization, leaf deletion,
     subtree promotion) ranks all three books. *)
  let result =
    Whirlpool.Run.top_k ~normalization:Wp_score.Score_table.Raw idx query ~k:3
  in
  Printf.printf "Top-3 approximate answers (Whirlpool-S, min_alive routing):\n";
  List.iteri
    (fun i (e : Whirlpool.Topk_set.entry) ->
      Printf.printf "  %d. %-30s score %.4f\n" (i + 1)
        (Format.asprintf "%a" (Doc.pp_node doc) e.root)
        e.score)
    result.answers;

  (* 5. The statistics the paper's evaluation is built on. *)
  Printf.printf "\nExecution: %s\n"
    (Format.asprintf "%a" Whirlpool.Stats.pp result.stats)
