(** Retrieval-quality evaluation of rankings.

    The paper explicitly defers "validating the scoring functions using
    precision and recall" to future work; this module implements that
    evaluation.  Ground truth comes from the relaxation semantics
    itself: a candidate answer's {e relevance grade} is determined by the
    minimal number of relaxation steps needed before it matches the
    query exactly — [1 / (1 + steps)], so exact matches grade 1, one-step
    approximations 1/2, and so on; candidates matching no relaxed query
    grade 0.  Standard IR metrics (precision/recall at k, nDCG, Kendall
    rank correlation) then compare any ranking against this ground
    truth.

    Grading enumerates the relaxation closure, so it is meant for
    evaluation-sized queries (the paper's Q1-Q3 are fine). *)

type grades = (Wp_xml.Doc.node_id, float) Hashtbl.t

val relevance_grades :
  ?limit:int ->
  Wp_xml.Index.t ->
  Wp_relax.Relaxation.config ->
  Wp_pattern.Pattern.t ->
  grades
(** Grade of every root candidate (absent = 0).  [limit] caps the
    closure enumeration (default 10_000 patterns). *)

val grade : grades -> Wp_xml.Doc.node_id -> float

val precision_at : grades -> relevant_above:float -> ranking:Wp_xml.Doc.node_id list -> k:int -> float
(** Fraction of the top-[k] whose grade is [>= relevant_above].
    Returns 1.0 for an empty prefix. *)

val recall_at : grades -> relevant_above:float -> ranking:Wp_xml.Doc.node_id list -> k:int -> float
(** Fraction of all candidates grading [>= relevant_above] found in the
    top-[k].  Returns 1.0 when nothing is relevant. *)

val dcg_at : grades -> ranking:Wp_xml.Doc.node_id list -> k:int -> float
(** Discounted cumulative gain: [Σ grade_i / log2(i + 1)]. *)

val ndcg_at : grades -> ranking:Wp_xml.Doc.node_id list -> k:int -> float
(** {!dcg_at} normalized by the ideal ordering's DCG (1.0 when the
    ideal DCG is 0). *)

val average_precision :
  grades -> relevant_above:float -> ranking:Wp_xml.Doc.node_id list -> float
(** Average of the precision values at each rank where a relevant item
    appears, normalized by the number of relevant items (1.0 when
    nothing is relevant) — the per-query component of MAP. *)

val kendall_tau :
  (Wp_xml.Doc.node_id * float) list ->
  (Wp_xml.Doc.node_id * float) list ->
  float
(** Kendall rank correlation (tau-a) between two scored rankings,
    computed over the items present in both; 1.0 when fewer than two
    common items exist. *)
