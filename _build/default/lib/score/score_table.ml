module Pattern = Wp_pattern.Pattern
module Relaxation = Wp_relax.Relaxation

type normalization =
  | Raw
  | Sparse
  | Dense
  | Random_sparse of int
  | Random_dense of int

let pp_normalization ppf = function
  | Raw -> Format.pp_print_string ppf "raw"
  | Sparse -> Format.pp_print_string ppf "sparse"
  | Dense -> Format.pp_print_string ppf "dense"
  | Random_sparse seed -> Format.fprintf ppf "random-sparse(%d)" seed
  | Random_dense seed -> Format.fprintf ppf "random-dense(%d)" seed

let normalization_of_string = function
  | "raw" -> Some Raw
  | "sparse" -> Some Sparse
  | "dense" -> Some Dense
  | "random-sparse" -> Some (Random_sparse 42)
  | "random-dense" -> Some (Random_dense 42)
  | _ -> None

type entry = {
  node : Pattern.node_id;
  exact_weight : float;
  relaxed_weight : float;
}

type t = { entries : entry array }

let of_entries entries = { entries = Array.copy entries }
let entry t node = t.entries.(node)
let size t = Array.length t.entries
let max_contribution t node = t.entries.(node).exact_weight

let max_total t =
  Array.fold_left (fun acc e -> acc +. e.exact_weight) 0.0 t.entries

(* splitmix64, kept local to avoid a dependency on the generator lib. *)
let make_rng seed =
  let state = ref (Int64.of_int seed) in
  fun () ->
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = logxor z (shift_right_logical z 31) in
    Int64.to_float (shift_right_logical z 11) /. 9007199254740992.0

let uniform rng lo hi = lo +. ((hi -. lo) *. rng ())

let raw_entries idx pat config =
  let components = Component.of_pattern pat in
  Array.map
    (fun c ->
      let exact_weight = Tfidf.idf idx c in
      let relaxed_c = Component.relaxed config c in
      (* The relaxed level differs when the structural relation widened,
         or when content relaxation weakens a value predicate. *)
      let distinct =
        (not
           (Wp_relax.Relation.equal relaxed_c.Component.relation
              c.Component.relation))
        || (relaxed_c.Component.value_tokens && c.Component.target_value <> None)
      in
      let relaxed_weight =
        if distinct then Tfidf.idf idx relaxed_c else exact_weight
      in
      { node = c.Component.node; exact_weight; relaxed_weight })
    components

let normalize_sparse entries =
  Array.map
    (fun e ->
      if e.exact_weight > 0.0 then
        {
          e with
          exact_weight = 1.0;
          relaxed_weight = min 1.0 (e.relaxed_weight /. e.exact_weight);
        }
      else
        (* A predicate every candidate satisfies discriminates nothing;
           under per-predicate normalization it still contributes a full
           unit when matched exactly. *)
        { e with exact_weight = 1.0; relaxed_weight = 0.5 })
    entries

let normalize_dense entries =
  let m =
    Array.fold_left (fun acc e -> Float.max acc e.exact_weight) 0.0 entries
  in
  if m <= 0.0 then
    Array.map (fun e -> { e with exact_weight = 1.0; relaxed_weight = 1.0 }) entries
  else
    Array.map
      (fun e ->
        {
          e with
          exact_weight = e.exact_weight /. m;
          relaxed_weight = e.relaxed_weight /. m;
        })
      entries

let random_entries pat ~sparse seed =
  let rng = make_rng seed in
  Array.init (Pattern.size pat) (fun node ->
      if sparse then
        let exact_weight = uniform rng 0.6 1.0 in
        { node; exact_weight; relaxed_weight = exact_weight *. uniform rng 0.2 0.6 }
      else
        let exact_weight = uniform rng 0.45 0.55 in
        { node; exact_weight; relaxed_weight = exact_weight *. uniform rng 0.85 1.0 })

let build idx pat config normalization =
  let entries =
    match normalization with
    | Raw -> raw_entries idx pat config
    | Sparse -> normalize_sparse (raw_entries idx pat config)
    | Dense -> normalize_dense (raw_entries idx pat config)
    | Random_sparse seed -> random_entries pat ~sparse:true seed
    | Random_dense seed -> random_entries pat ~sparse:false seed
  in
  { entries }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iter
    (fun e ->
      Format.fprintf ppf "q%d: exact=%.4f relaxed=%.4f@," e.node e.exact_weight
        e.relaxed_weight)
    t.entries;
  Format.fprintf ppf "@]"
