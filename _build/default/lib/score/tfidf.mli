(** The XML tf*idf scoring function — Definitions 4.2, 4.3 and 4.4.

    For a component predicate [p(q0, qi)] over database [D]:

    - [idf(p, D) = log(|{n : tag(n)=q0}| / |{n : tag(n)=q0 and some n'
      with tag qi satisfies p(n, n')}|)] — the fewer [q0] nodes satisfy
      the predicate, the more discriminating it is;
    - [tf(p, n) = |{n' : tag(n')=qi and p(n, n')}|] — the number of
      distinct ways candidate [n] satisfies it;
    - the score of answer [n] is [Σ_p idf(p, D) · tf(p, n)], predicates
      assumed independent as in the IR vector-space model.

    Conventions for degenerate counts: when no node carries [q0]'s tag
    the idf is 0 (the predicate cannot discriminate an empty candidate
    set); when candidates exist but none satisfies [p], the idf is
    [log (count(q0) + 1)] — the value the formula would give if exactly
    one "virtual" candidate satisfied the predicate with add-one
    smoothing — so that rarer-than-observable predicates stay finite yet
    maximally discriminating. *)

val satisfies :
  Wp_xml.Index.t -> Component.t -> root:Wp_xml.Doc.node_id ->
  target:Wp_xml.Doc.node_id -> bool
(** Does the (root, target) node pair satisfy the component predicate
    (relation, target tag and value)?  For the root component, [root] is
    ignored and the document root is used as the source. *)

val tf : Wp_xml.Index.t -> Component.t -> root:Wp_xml.Doc.node_id -> int
(** Definition 4.3. *)

val satisfying_roots : Wp_xml.Index.t -> Component.t -> int
(** [|{n : tag(n) = q0 and ∃ n' : p(n, n')}|] — the idf denominator. *)

val idf : Wp_xml.Index.t -> Component.t -> float
(** Definition 4.2, with the degenerate-count conventions above. *)

val score : Wp_xml.Index.t -> Component.t array -> root:Wp_xml.Doc.node_id -> float
(** Definition 4.4: [Σ idf·tf] over the query's component predicates for
    a candidate answer node. *)

val rank :
  Wp_xml.Index.t -> Wp_pattern.Pattern.t -> k:int ->
  (Wp_xml.Doc.node_id * float) list
(** Top-k candidate root nodes by Definition 4.4 score, best first (ties
    by document order).  Candidates are the nodes matching the pattern
    root's tag, value and root edge.  This is the direct (non-adaptive)
    reference ranking used to validate the engine's scoring. *)
