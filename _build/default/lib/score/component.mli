(** Component predicates of a tree-pattern query — Definition 4.1.

    An XPath query decomposes into a set of "atomic" binary predicates
    [p(q0, qi)] relating the returned node [q0] to every other query node
    [qi], where [p] is the {e composed} axis of the pattern path between
    them (e.g. a grand-child reached through two [Pc] edges yields a
    depth-2 descendant predicate).  The root itself contributes the
    predicate relating it to the document root, as in the paper's
    [a\[parent::doc-root\]] example.  These predicates play the role that
    individual keyword-containment predicates play in IR: the query score
    is assembled from their independent idf and tf contributions. *)

type t = {
  node : Wp_pattern.Pattern.node_id;  (** the query node [qi] *)
  root_tag : string;  (** tag of [q0] (or of the synthetic document root) *)
  target_tag : string;  (** tag of [qi] *)
  target_value : string option;
      (** content constraint carried by [qi], if any *)
  value_tokens : bool;
      (** when true (relaxed components under content relaxation), the
          value constraint is satisfied by token containment rather than
          equality *)
  relation : Wp_relax.Relation.t;  (** composed axis from [q0] to [qi] *)
  from_doc_root : bool;
      (** [true] only for the root component, whose source is the
          document root rather than a [q0] binding *)
}

val of_pattern : ?doc_root_tag:string -> Wp_pattern.Pattern.t -> t array
(** One component per pattern node, indexed by node id; index 0 is the
    root component. *)

val relaxed : Wp_relax.Relaxation.config -> t -> t
(** The component with its relation relaxed as far as [config] allows
    (used to score bindings that satisfy only the relaxed level). *)

val pp : Format.formatter -> t -> unit
