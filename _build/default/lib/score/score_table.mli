(** Per-server scoring weights used by the top-k engine.

    The engine assigns each partial match an incrementally-maintained
    score: binding query node [qi] contributes the idf of the component
    predicate [p(q0, qi)] at the level the binding satisfies — the exact
    composed relation, or its permitted relaxation (relaxed matches
    satisfy a less selective predicate, hence earn its lower idf).  An
    unbound (deleted) node contributes 0.  The maximum-possible-final
    score of a partial match adds every unvisited server's best weight to
    its current score; it drives both pruning against the top-k set and
    the maximum-possible-final-score priority queues.

    Normalizations (paper Section 6.2.2): [Sparse] rescales each
    predicate's weights so every predicate tops out at 1 (uniform
    predicate importance — final scores spread out, pruning bites early);
    [Dense] rescales all weights by the single global maximum (skew
    preserved — final scores bunch together, pruning bites late).
    [Random_sparse]/[Random_dense] draw synthetic weights with the same
    two shapes, for score-distribution experiments independent of the
    document statistics. *)

type normalization =
  | Raw
  | Sparse
  | Dense
  | Random_sparse of int  (** seed *)
  | Random_dense of int  (** seed *)

val pp_normalization : Format.formatter -> normalization -> unit
val normalization_of_string : string -> normalization option

type entry = {
  node : Wp_pattern.Pattern.node_id;
  exact_weight : float;  (** contribution of an exact-level binding *)
  relaxed_weight : float;
      (** contribution of a relaxed-level binding; equals [exact_weight]
          when the configuration permits no relaxation of this
          predicate *)
}

type t

val build :
  Wp_xml.Index.t -> Wp_pattern.Pattern.t -> Wp_relax.Relaxation.config ->
  normalization -> t

val of_entries : entry array -> t
(** Hand-built table (tests and the motivating example). *)

val entry : t -> Wp_pattern.Pattern.node_id -> entry
val size : t -> int

val max_contribution : t -> Wp_pattern.Pattern.node_id -> float
(** Best weight a binding at this node can earn ([exact_weight]). *)

val max_total : t -> float
(** Upper bound on any match score: sum of all max contributions. *)

val pp : Format.formatter -> t -> unit
