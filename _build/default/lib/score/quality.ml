module Matcher = Wp_pattern.Matcher
module Relaxation = Wp_relax.Relaxation

type grades = (Wp_xml.Doc.node_id, float) Hashtbl.t

let relevance_grades ?limit idx config pat : grades =
  let grades = Hashtbl.create 64 in
  let record root g =
    match Hashtbl.find_opt grades root with
    | Some g' when g' >= g -> ()
    | Some _ | None -> Hashtbl.replace grades root g
  in
  List.iter
    (fun (relaxed, steps) ->
      let g = 1.0 /. float_of_int (1 + steps) in
      List.iter (fun root -> record root g) (Matcher.matching_roots idx relaxed))
    (Relaxation.closure_with_steps ?limit config pat);
  grades

let grade grades root =
  Option.value (Hashtbl.find_opt grades root) ~default:0.0

let take k l = List.filteri (fun i _ -> i < k) l

let precision_at grades ~relevant_above ~ranking ~k =
  let prefix = take k ranking in
  match prefix with
  | [] -> 1.0
  | _ ->
      let hits =
        List.length
          (List.filter (fun r -> grade grades r >= relevant_above) prefix)
      in
      float_of_int hits /. float_of_int (List.length prefix)

let recall_at grades ~relevant_above ~ranking ~k =
  let relevant =
    Hashtbl.fold
      (fun root g acc -> if g >= relevant_above then root :: acc else acc)
      grades []
  in
  match relevant with
  | [] -> 1.0
  | _ ->
      let prefix = take k ranking in
      let hits =
        List.length (List.filter (fun r -> List.mem r prefix) relevant)
      in
      float_of_int hits /. float_of_int (List.length relevant)

let dcg_at grades ~ranking ~k =
  List.fold_left
    (fun (i, acc) root ->
      (i + 1, acc +. (grade grades root /. (log (float_of_int (i + 1)) /. log 2.0))))
    (1, 0.0)
    (take k ranking)
  |> snd

let ndcg_at grades ~ranking ~k =
  let ideal =
    List.sort (fun a b -> Float.compare b a)
      (Hashtbl.fold (fun _ g acc -> g :: acc) grades [])
  in
  let ideal_dcg =
    List.fold_left
      (fun (i, acc) g ->
        (i + 1, acc +. (g /. (log (float_of_int (i + 1)) /. log 2.0))))
      (1, 0.0) (take k ideal)
    |> snd
  in
  if ideal_dcg <= 0.0 then 1.0 else dcg_at grades ~ranking ~k /. ideal_dcg

let average_precision grades ~relevant_above ~ranking =
  let total_relevant =
    Hashtbl.fold
      (fun _ g acc -> if g >= relevant_above then acc + 1 else acc)
      grades 0
  in
  if total_relevant = 0 then 1.0
  else begin
    let hits = ref 0 in
    let sum = ref 0.0 in
    List.iteri
      (fun i root ->
        if grade grades root >= relevant_above then begin
          incr hits;
          sum := !sum +. (float_of_int !hits /. float_of_int (i + 1))
        end)
      ranking;
    !sum /. float_of_int total_relevant
  end

let kendall_tau a b =
  let score_b = Hashtbl.create 16 in
  List.iter (fun (r, s) -> Hashtbl.replace score_b r s) b;
  let common =
    List.filter_map
      (fun (r, sa) ->
        Option.map (fun sb -> (sa, sb)) (Hashtbl.find_opt score_b r))
      a
  in
  let n = List.length common in
  if n < 2 then 1.0
  else begin
    let arr = Array.of_list common in
    let concordant = ref 0 and discordant = ref 0 in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        let sa1, sb1 = arr.(i) and sa2, sb2 = arr.(j) in
        let da = Float.compare sa1 sa2 and db = Float.compare sb1 sb2 in
        if da * db > 0 then incr concordant
        else if da * db < 0 then incr discordant
      done
    done;
    float_of_int (!concordant - !discordant)
    /. (float_of_int (n * (n - 1)) /. 2.0)
  end
