module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Pattern = Wp_pattern.Pattern

let value_ok doc (c : Component.t) target =
  match c.target_value with
  | None -> true
  | Some v -> (
      match Doc.value doc target with
      | Some v' ->
          String.equal v v'
          || (c.value_tokens
             && List.exists (String.equal v) (String.split_on_char ' ' v'))
      | None -> false)

let source idx (c : Component.t) ~root =
  if c.from_doc_root then Doc.root (Index.doc idx) else root

let satisfies idx (c : Component.t) ~root ~target =
  let doc = Index.doc idx in
  (String.equal c.target_tag Index.wildcard
  || String.equal (Doc.tag doc target) c.target_tag)
  && value_ok doc c target
  && Relation.test doc c.relation ~anc:(source idx c ~root) ~desc:target

let tf idx (c : Component.t) ~root =
  let doc = Index.doc idx in
  let anc = source idx c ~root in
  let anc_depth = Doc.depth doc anc in
  Index.fold_descendants idx c.target_tag ~root:anc
    (fun acc n ->
      if
        Relation.test_depths c.relation ~anc_depth ~desc_depth:(Doc.depth doc n)
        && value_ok doc c n
      then acc + 1
      else acc)
    0

(* Candidate sources of a component: every node with the q0 tag (the
   document root for root components). *)
let sources idx (c : Component.t) =
  if c.from_doc_root then [| Doc.root (Index.doc idx) |] else Index.ids idx c.root_tag

let satisfying_roots idx (c : Component.t) =
  Array.fold_left
    (fun acc n -> if tf idx c ~root:n > 0 then acc + 1 else acc)
    0 (sources idx c)

let idf idx (c : Component.t) =
  let total = Array.length (sources idx c) in
  if total = 0 then 0.0
  else
    let satisfying = satisfying_roots idx c in
    if satisfying = 0 then log (float_of_int (total + 1))
    else log (float_of_int total /. float_of_int satisfying)

let score idx components ~root =
  Array.fold_left
    (fun acc c -> acc +. (idf idx c *. float_of_int (tf idx c ~root)))
    0.0 components

let rank idx pat ~k =
  let components = Component.of_pattern pat in
  let candidates = Wp_pattern.Matcher.root_candidates idx pat in
  let scored =
    List.map (fun n -> (n, score idx components ~root:n)) candidates
  in
  let by_score (n1, s1) (n2, s2) =
    match Float.compare s2 s1 with 0 -> Int.compare n1 n2 | c -> c
  in
  let sorted = List.sort by_score scored in
  List.filteri (fun i _ -> i < k) sorted
