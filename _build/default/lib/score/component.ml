module Pattern = Wp_pattern.Pattern
module Relation = Wp_relax.Relation
module Relaxation = Wp_relax.Relaxation

type t = {
  node : Pattern.node_id;
  root_tag : string;
  target_tag : string;
  target_value : string option;
  value_tokens : bool;
  relation : Relation.t;
  from_doc_root : bool;
}

let of_pattern ?(doc_root_tag = "doc-root") pat =
  let root = Pattern.root pat in
  Array.init (Pattern.size pat) (fun node ->
      if node = root then
        {
          node;
          root_tag = doc_root_tag;
          target_tag = Pattern.tag pat root;
          target_value = Pattern.value pat root;
          value_tokens = false;
          relation = Relation.of_edge (Pattern.root_edge pat);
          from_doc_root = true;
        }
      else
        let edges =
          match Pattern.path_edges pat root node with
          | Some (_ :: _ as es) -> es
          | Some [] | None -> assert false (* root is an ancestor of all *)
        in
        {
          node;
          root_tag = Pattern.tag pat root;
          target_tag = Pattern.tag pat node;
          target_value = Pattern.value pat node;
          value_tokens = false;
          relation = Relation.of_edges edges;
          from_doc_root = false;
        })

let relaxed config c =
  let value_tokens = config.Relaxation.value_relaxation in
  if c.from_doc_root then
    { c with relation = Relaxation.relax_internal config c.relation; value_tokens }
  else { c with relation = Relaxation.relax_to_root config c.relation; value_tokens }

let pp ppf c =
  Format.fprintf ppf "%s[%a::%s%s]" c.root_tag Relation.pp c.relation
    c.target_tag
    (match c.target_value with None -> "" | Some v -> "='" ^ v ^ "'")
