lib/score/tfidf.ml: Array Component Float Int List String Wp_pattern Wp_relax Wp_xml
