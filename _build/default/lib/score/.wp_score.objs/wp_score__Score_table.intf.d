lib/score/score_table.mli: Format Wp_pattern Wp_relax Wp_xml
