lib/score/component.ml: Array Format Wp_pattern Wp_relax
