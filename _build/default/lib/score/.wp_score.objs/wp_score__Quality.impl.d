lib/score/quality.ml: Array Float Hashtbl List Option Wp_pattern Wp_relax Wp_xml
