lib/score/quality.mli: Hashtbl Wp_pattern Wp_relax Wp_xml
