lib/score/score_table.ml: Array Component Float Format Int64 Tfidf Wp_pattern Wp_relax
