lib/score/component.mli: Format Wp_pattern Wp_relax
