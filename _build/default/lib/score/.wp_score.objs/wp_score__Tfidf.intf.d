lib/score/tfidf.mli: Component Wp_pattern Wp_xml
