(** Execution tracing.

    A tracer receives one event per engine action — match popped, routing
    decision, extension spawned, pruning, death, completion, top-k
    admission — giving both a debugging lens (via {!val-logs}) and a way
    for tests to assert scheduling invariants (via {!collector}).
    Tracing is opt-in per run ({!Engine.run}'s [?trace]) and free when
    absent. *)

type event =
  | Popped of { id : int; score : float; max_possible : float }
  | Routed of { id : int; server : int }
  | Extended of { parent : int; id : int; server : int; bound : bool }
  | Pruned of { id : int }
  | Died of { id : int; server : int }
  | Completed of { id : int; score : float }

type t = event -> unit

val ignore_tracer : t

val collector : unit -> t * (unit -> event list)
(** A tracer that records events, and the function that returns them in
    emission order. *)

val logs : unit -> t
(** A tracer that reports every event at debug level on the
    ["whirlpool"] {!Logs} source. *)

val event_id : event -> int
val pp_event : Format.formatter -> event -> unit
