module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Server_spec = Wp_relax.Server_spec
module Score_table = Wp_score.Score_table

type lists = {
  n_lists : int;
  (* per list: (root, score) sorted by score desc, root asc on ties *)
  sorted : (int * float) array array;
  (* per list: random-access map root -> score (absent = 0) *)
  random : (int, float) Hashtbl.t array;
}

let content_level config doc value n =
  match value with
  | None -> Wp_relax.Relaxation.Content_exact
  | Some query ->
      Wp_relax.Relaxation.content_level config ~query ~actual:(Doc.value doc n)

(* Best weight any binding of [server] can earn under [root]. *)
let best_weight (plan : Plan.t) ~root ~server =
  let spec = plan.specs.(server) in
  let entry = Score_table.entry plan.scores server in
  let doc = Index.doc plan.index in
  let root_depth = Doc.depth doc root in
  let rel = Server_spec.candidate_relation spec in
  let best = ref neg_infinity in
  Index.iter_descendants plan.index spec.tag ~root (fun n ->
      let content = content_level plan.config doc spec.value n in
      if
        content <> Wp_relax.Relaxation.Content_reject
        && Relation.test_depths rel ~anc_depth:root_depth
             ~desc_depth:(Doc.depth doc n)
      then begin
        let exact =
          content = Wp_relax.Relaxation.Content_exact
          && Relation.test_depths spec.to_root.exact ~anc_depth:root_depth
               ~desc_depth:(Doc.depth doc n)
        in
        let w = if exact then entry.exact_weight else entry.relaxed_weight in
        if w > !best then best := w
      end);
  if !best = neg_infinity then 0.0 (* deleted node contributes nothing *)
  else !best

let build_lists (plan : Plan.t) =
  if not Wp_relax.Relaxation.(
       plan.config.edge_generalization && plan.config.leaf_deletion
       && plan.config.subtree_promotion)
  then
    invalid_arg
      "Fagin.build_lists: per-node independence requires all relaxations";
  let doc = Index.doc plan.index in
  let roots = Plan.root_candidates plan in
  let entry0 = Score_table.entry plan.scores 0 in
  let spec0 = plan.specs.(0) in
  let doc_root_depth = Doc.depth doc (Doc.root doc) in
  let root_weight root =
    if
      Relation.test_depths spec0.to_root.exact ~anc_depth:doc_root_depth
        ~desc_depth:(Doc.depth doc root)
    then entry0.exact_weight
    else entry0.relaxed_weight
  in
  let list_for server =
    let scored =
      List.map
        (fun root ->
          ( root,
            if server = 0 then root_weight root
            else best_weight plan ~root ~server ))
        roots
    in
    List.sort
      (fun (r1, s1) (r2, s2) ->
        match Float.compare s2 s1 with 0 -> Int.compare r1 r2 | c -> c)
      scored
  in
  let sorted =
    Array.init plan.n_servers (fun server -> Array.of_list (list_for server))
  in
  let random =
    Array.map
      (fun list ->
        let h = Hashtbl.create (Array.length list) in
        Array.iter (fun (root, score) -> Hashtbl.replace h root score) list;
        h)
      sorted
  in
  { n_lists = plan.n_servers; sorted; random }

type result = {
  answers : (int * float) list;
  sorted_accesses : int;
  random_accesses : int;
  rounds : int;
}

let top_k lists ~k =
  let sorted_accesses = ref 0 in
  let random_accesses = ref 0 in
  let seen = Hashtbl.create 64 in
  (* Candidate top-k kept worst-first ((score asc, root desc)), so the
     head is the entry to displace; ties prefer smaller roots, matching
     the scan's ordering. *)
  let worse (r1, s1) (r2, s2) =
    match Float.compare s1 s2 with 0 -> Int.compare r2 r1 | c -> c
  in
  let top : (int * float) list ref = ref [] in
  let kth_score () =
    if List.length !top < k then neg_infinity
    else match !top with (_, s) :: _ -> s | [] -> neg_infinity
  in
  let offer root total =
    if not (Hashtbl.mem seen root) then begin
      Hashtbl.add seen root ();
      let merged = List.sort worse ((root, total) :: !top) in
      top := (if List.length merged > k then List.tl merged else merged)
    end
  in
  let positions = Array.make lists.n_lists 0 in
  let last_seen = Array.make lists.n_lists infinity in
  let exhausted () =
    let all = ref true in
    for l = 0 to lists.n_lists - 1 do
      if positions.(l) < Array.length lists.sorted.(l) then all := false
    done;
    !all
  in
  let threshold () = Array.fold_left ( +. ) 0.0 last_seen in
  let total_of root =
    let sum = ref 0.0 in
    for l = 0 to lists.n_lists - 1 do
      incr random_accesses;
      sum :=
        !sum
        +. Option.value (Hashtbl.find_opt lists.random.(l) root) ~default:0.0
    done;
    !sum
  in
  let rounds = ref 0 in
  let stop = ref false in
  while not !stop do
    incr rounds;
    (* One sorted access per list. *)
    for l = 0 to lists.n_lists - 1 do
      if positions.(l) < Array.length lists.sorted.(l) then begin
        let root, score = lists.sorted.(l).(positions.(l)) in
        positions.(l) <- positions.(l) + 1;
        incr sorted_accesses;
        last_seen.(l) <- score;
        if not (Hashtbl.mem seen root) then offer root (total_of root)
      end
      else last_seen.(l) <- 0.0
    done;
    if List.length !top >= k && kth_score () >= threshold () then stop := true;
    if exhausted () then stop := true
  done;
  let answers =
    List.sort
      (fun (r1, s1) (r2, s2) ->
        match Float.compare s2 s1 with 0 -> Int.compare r1 r2 | c -> c)
      !top
  in
  {
    answers;
    sorted_accesses = !sorted_accesses;
    random_accesses = !random_accesses;
    rounds = !rounds;
  }

(* NRA candidate bookkeeping: which lists have reported this root, and
   the sum of the reported scores. *)
type nra_candidate = { mutable known_mask : int; mutable known_sum : float }

let top_k_nra lists ~k =
  let sorted_accesses = ref 0 in
  let candidates : (int, nra_candidate) Hashtbl.t = Hashtbl.create 256 in
  let positions = Array.make lists.n_lists 0 in
  let last_seen = Array.make lists.n_lists infinity in
  let full_mask = (1 lsl lists.n_lists) - 1 in
  let exhausted () =
    let all = ref true in
    for l = 0 to lists.n_lists - 1 do
      if positions.(l) < Array.length lists.sorted.(l) then all := false
    done;
    !all
  in
  let upper_of c =
    let u = ref c.known_sum in
    for l = 0 to lists.n_lists - 1 do
      if c.known_mask land (1 lsl l) = 0 then u := !u +. last_seen.(l)
    done;
    !u
  in
  let rounds = ref 0 in
  let stop = ref false in
  while not !stop do
    incr rounds;
    for l = 0 to lists.n_lists - 1 do
      if positions.(l) < Array.length lists.sorted.(l) then begin
        let root, score = lists.sorted.(l).(positions.(l)) in
        positions.(l) <- positions.(l) + 1;
        incr sorted_accesses;
        last_seen.(l) <- score;
        let c =
          match Hashtbl.find_opt candidates root with
          | Some c -> c
          | None ->
              let c = { known_mask = 0; known_sum = 0.0 } in
              Hashtbl.add candidates root c;
              c
        in
        if c.known_mask land (1 lsl l) = 0 then begin
          c.known_mask <- c.known_mask lor (1 lsl l);
          c.known_sum <- c.known_sum +. score
        end
      end
      else last_seen.(l) <- 0.0
    done;
    (* Halt when the k best lower bounds are fully resolved and beat
       every other upper bound (including the bound on unseen roots). *)
    let by_lower =
      List.sort
        (fun (r1, c1) (r2, c2) ->
          match Float.compare c2.known_sum c1.known_sum with
          | 0 -> Int.compare r1 r2
          | c -> c)
        (Hashtbl.fold (fun r c acc -> (r, c) :: acc) candidates [])
    in
    let topk = List.filteri (fun i _ -> i < k) by_lower in
    let rest = List.filteri (fun i _ -> i >= k) by_lower in
    if List.length topk = k || exhausted () then begin
      let resolved =
        List.for_all (fun (_, c) -> c.known_mask = full_mask) topk
      in
      let kth_lower =
        List.fold_left (fun acc (_, c) -> Float.min acc c.known_sum) infinity
          topk
      in
      let best_outside =
        List.fold_left
          (fun acc (_, c) -> Float.max acc (upper_of c))
          (Array.fold_left ( +. ) 0.0 last_seen (* unseen roots *))
          rest
      in
      if (resolved && kth_lower >= best_outside) || exhausted () then
        stop := true
    end
  done;
  let answers =
    List.sort
      (fun (r1, s1) (r2, s2) ->
        match Float.compare s2 s1 with 0 -> Int.compare r1 r2 | c -> c)
      (List.filteri
         (fun i _ -> i < k)
         (List.sort
            (fun (r1, c1) (r2, c2) ->
              match Float.compare c2.known_sum c1.known_sum with
              | 0 -> Int.compare r1 r2
              | c -> c)
            (Hashtbl.fold (fun r c acc -> (r, c) :: acc) candidates []))
       |> List.map (fun (r, c) -> (r, c.known_sum)))
  in
  {
    answers;
    sorted_accesses = !sorted_accesses;
    random_accesses = 0;
    rounds = !rounds;
  }

let scan_top_k lists ~k =
  let totals = Hashtbl.create 256 in
  Array.iter
    (fun list ->
      Array.iter
        (fun (root, score) ->
          Hashtbl.replace totals root
            (score +. Option.value (Hashtbl.find_opt totals root) ~default:0.0))
        list)
    lists.sorted;
  let all = Hashtbl.fold (fun r s acc -> (r, s) :: acc) totals [] in
  let sorted =
    List.sort
      (fun (r1, s1) (r2, s2) ->
        match Float.compare s2 s1 with 0 -> Int.compare r1 r2 | c -> c)
      all
  in
  List.filteri (fun i _ -> i < k) sorted
