lib/core/engine.ml: Array Float Format Hashtbl Int Int64 List Partial_match Plan Pqueue Server Stats Strategy Topk_set Trace Unix
