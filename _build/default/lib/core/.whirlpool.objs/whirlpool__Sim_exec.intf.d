lib/core/sim_exec.mli: Engine Plan Strategy
