lib/core/strategy.mli: Format Partial_match Plan
