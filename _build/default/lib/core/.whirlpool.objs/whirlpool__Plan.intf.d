lib/core/plan.mli: Format Wp_pattern Wp_relax Wp_score Wp_stats Wp_xml
