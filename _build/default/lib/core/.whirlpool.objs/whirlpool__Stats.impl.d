lib/core/stats.ml: Format Int64
