lib/core/fagin.mli: Plan
