lib/core/server.mli: Partial_match Plan Stats
