lib/core/engine.mli: Format Plan Stats Strategy Topk_set Trace
