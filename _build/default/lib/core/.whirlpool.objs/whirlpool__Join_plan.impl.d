lib/core/join_plan.ml: Array Float List
