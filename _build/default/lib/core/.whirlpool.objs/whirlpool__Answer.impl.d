lib/core/answer.ml: Array Engine Format List Plan Stats Topk_set Wp_json Wp_pattern Wp_relax Wp_score Wp_xml
