lib/core/fagin.ml: Array Float Hashtbl Int List Option Plan Wp_relax Wp_score Wp_xml
