lib/core/pqueue.mli:
