lib/core/strategy.ml: Array Float Format List Partial_match Plan String Wp_score
