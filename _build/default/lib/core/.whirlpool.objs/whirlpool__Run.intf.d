lib/core/run.mli: Answer Engine Format Plan Strategy Wp_pattern Wp_relax Wp_score Wp_xml
