lib/core/server.ml: Array List Partial_match Plan Stats Wp_pattern Wp_relax Wp_score Wp_xml
