lib/core/plan.ml: Array Float Format Hashtbl List Sys Wp_pattern Wp_relax Wp_score Wp_stats Wp_xml
