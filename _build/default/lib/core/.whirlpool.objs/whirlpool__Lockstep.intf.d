lib/core/lockstep.mli: Engine Plan Strategy
