lib/core/lockstep.ml: Array Engine Int64 List Partial_match Plan Pqueue Server Stats Strategy Topk_set Unix
