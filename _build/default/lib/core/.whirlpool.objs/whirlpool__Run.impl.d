lib/core/run.ml: Answer Engine Engine_mt Format Lockstep Option Plan Wp_relax
