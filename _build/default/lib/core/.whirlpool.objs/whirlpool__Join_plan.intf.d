lib/core/join_plan.mli:
