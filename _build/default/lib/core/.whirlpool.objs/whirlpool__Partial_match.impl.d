lib/core/partial_match.ml: Array Format
