lib/core/topk_set.ml: Array Float Format Hashtbl Int List Partial_match
