lib/core/pqueue.ml: Array List Option
