lib/core/engine_mt.mli: Engine Plan Strategy
