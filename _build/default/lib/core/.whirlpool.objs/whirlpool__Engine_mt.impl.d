lib/core/engine_mt.ml: Array Atomic Condition Domain Engine Fun Int64 List Mutex Partial_match Plan Pqueue Server Stats Strategy Topk_set Unix
