lib/core/partial_match.mli: Format
