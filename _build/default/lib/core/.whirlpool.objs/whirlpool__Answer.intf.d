lib/core/answer.mli: Engine Format Plan Topk_set Wp_json Wp_pattern Wp_xml
