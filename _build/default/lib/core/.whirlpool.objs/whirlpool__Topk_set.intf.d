lib/core/topk_set.mli: Format Partial_match
