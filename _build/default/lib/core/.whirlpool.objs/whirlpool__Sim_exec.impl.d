lib/core/sim_exec.ml: Array Engine List Lockstep Option Partial_match Plan Pqueue Queue Server Stats Strategy Topk_set
