(** Compiled query plans.

    A plan bundles everything the engines share: the pattern, the
    relaxation configuration, the per-server predicate specs (Algorithm
    1), the scoring table, the document index, and per-server statistics
    estimated from a sample of root candidates (average fan-out, fraction
    of exact-level extensions, fraction of empty joins) that feed the
    size-based and score-based routing strategies. *)

type t = {
  pattern : Wp_pattern.Pattern.t;
  config : Wp_relax.Relaxation.config;
  specs : Wp_relax.Server_spec.t array;  (** by pattern node id *)
  scores : Wp_score.Score_table.t;
  index : Wp_xml.Index.t;
  n_servers : int;  (** = pattern size; server ids are pattern node ids *)
  full_mask : int;  (** bitmask with one bit per server *)
  est_fanout : float array;
      (** estimated candidate extensions per partial match, per server *)
  est_p_exact : float array;
      (** estimated fraction of extensions earning the exact weight *)
  est_p_empty : float array;
      (** estimated fraction of partial matches finding no extension *)
}

type estimator =
  | Sampled  (** inspect a sample of root candidates (default) *)
  | Synopsis
      (** derive the estimates from a {!Wp_stats.Synopsis} of the
          document — selectivity-estimation style, no per-query
          sampling *)

val compile :
  ?normalization:Wp_score.Score_table.normalization ->
  ?sample:int ->
  ?estimator:estimator ->
  Wp_xml.Index.t ->
  Wp_relax.Relaxation.config ->
  Wp_pattern.Pattern.t ->
  t
(** [compile idx config pat] builds a plan.  [normalization] defaults to
    [Sparse]; [sample] (default 100) bounds the number of root candidates
    inspected for the routing estimates when [estimator] is
    [Sampled]. *)

val synopsis_for : Wp_xml.Index.t -> Wp_stats.Synopsis.t
(** The (memoized per index) structural synopsis used by the [Synopsis]
    estimator. *)

val admits_partial_answers : t -> bool
(** Whether the top-k set may hold partial matches: true as soon as leaf
    deletion or subtree promotion can leave nodes unbound; under the
    exact configuration only complete matches are answers. *)

val max_weight : t -> int -> float
(** Best score contribution of a server (its exact weight). *)

val server_op_cost_hint : t -> int -> float
(** Relative cost estimate of one operation at a server (its fan-out),
    used by cost-aware routing variants. *)

val root_candidates : t -> Wp_xml.Doc.node_id list
(** Document nodes matching the pattern root's tag, value and (relaxed)
    root edge — the tuples the root server generates. *)

val pp : Format.formatter -> t -> unit
