(** Fagin-style Threshold Algorithm baseline.

    The paper positions Whirlpool against the classical top-k family of
    Fagin et al., which assumes {e independent subsystems}, each
    delivering (candidate, score) pairs sorted by score, combined by a
    monotone aggregate.  That model fits our setting exactly when all
    relaxations are enabled: every query node then binds independently
    below the root, so the best match score of a root is the {e sum over
    query nodes of the root's best per-node binding weight} — a monotone
    sum of per-node scores.

    [build_lists] materializes one sorted list per query node (the
    mediator-setting inputs Fagin assumes pre-exist; building them costs
    a full scan, which is precisely the paper's argument for not using
    this family on XML joins).  [top_k] then runs TA: round-robin sorted
    access, random access to complete each newly seen candidate, and the
    [threshold = sum of last-seen scores] stopping rule.

    With any relaxation disabled, per-node independence fails and the
    TA result is only an upper-bound ranking; {!top_k} refuses plans
    whose configuration is not fully relaxed. *)

type lists

val build_lists : Plan.t -> lists
(** One sorted (root, best-binding-weight) list per query node.
    @raise Invalid_argument if the plan's configuration disables any
    relaxation. *)

type result = {
  answers : (int * float) list;  (** top-k (root, score), best first *)
  sorted_accesses : int;
  random_accesses : int;
  rounds : int;  (** sorted-access rounds before the threshold stopped TA *)
}

val top_k : lists -> k:int -> result
(** The classic TA guarantee: the returned {e scores} are the k best
    aggregate scores.  When several candidates tie at the k-th score, TA
    may legitimately return a different (equally valid) tie subset than
    an exhaustive scan, because its stopping rule fires as soon as the
    k-th score matches the threshold. *)

val top_k_nra : lists -> k:int -> result
(** The No-Random-Access variant: candidates accumulate [lower, upper]
    score bounds from sorted accesses only ([random_accesses] is 0);
    the algorithm halts once the k best lower bounds are fully resolved
    and no other candidate's upper bound can intrude.  Same score
    guarantee (and tie caveat) as {!top_k}. *)

val scan_top_k : lists -> k:int -> (int * float) list
(** Reference: aggregate every candidate and sort — what TA's result
    must equal. *)
