type event =
  | Popped of { id : int; score : float; max_possible : float }
  | Routed of { id : int; server : int }
  | Extended of { parent : int; id : int; server : int; bound : bool }
  | Pruned of { id : int }
  | Died of { id : int; server : int }
  | Completed of { id : int; score : float }

type t = event -> unit

let ignore_tracer (_ : event) = ()

let collector () =
  let events = ref [] in
  let trace e = events := e :: !events in
  (trace, fun () -> List.rev !events)

let src = Logs.Src.create "whirlpool" ~doc:"Whirlpool engine tracing"

module Log = (val Logs.src_log src : Logs.LOG)

let event_id = function
  | Popped { id; _ }
  | Routed { id; _ }
  | Extended { id; _ }
  | Pruned { id }
  | Died { id; _ }
  | Completed { id; _ } ->
      id

let pp_event ppf = function
  | Popped { id; score; max_possible } ->
      Format.fprintf ppf "pop #%d score=%.4f max=%.4f" id score max_possible
  | Routed { id; server } -> Format.fprintf ppf "route #%d -> q%d" id server
  | Extended { parent; id; server; bound } ->
      Format.fprintf ppf "extend #%d -> #%d at q%d (%s)" parent id server
        (if bound then "bound" else "deleted")
  | Pruned { id } -> Format.fprintf ppf "prune #%d" id
  | Died { id; server } -> Format.fprintf ppf "die #%d at q%d" id server
  | Completed { id; score } ->
      Format.fprintf ppf "complete #%d score=%.4f" id score

let logs () = fun e -> Log.debug (fun m -> m "%a" pp_event e)
