module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Relation = Wp_relax.Relation
module Server_spec = Wp_relax.Server_spec
module Score_table = Wp_score.Score_table
module Pattern = Wp_pattern.Pattern

module Relaxation = Wp_relax.Relaxation

type outcome = { extensions : Partial_match.t list; died : bool }

let content_level config doc value n =
  match value with
  | None -> Relaxation.Content_exact
  | Some query ->
      Relaxation.content_level config ~query ~actual:(Doc.value doc n)

let initial_matches (plan : Plan.t) (stats : Stats.t) ~next_id =
  let entry = Score_table.entry plan.scores 0 in
  let spec = plan.specs.(0) in
  let doc = Index.doc plan.index in
  let max_rest =
    List.fold_left
      (fun acc s -> acc +. Plan.max_weight plan s)
      0.0
      (List.init (plan.n_servers - 1) (fun i -> i + 1))
  in
  stats.server_ops <- stats.server_ops + 1;
  let doc_root_depth = Doc.depth doc (Doc.root doc) in
  let matches =
    List.map
      (fun root ->
        stats.comparisons <- stats.comparisons + 1;
        let exact =
          Relation.test_depths spec.to_root.exact ~anc_depth:doc_root_depth
            ~desc_depth:(Doc.depth doc root)
          && content_level plan.config doc spec.value root
             = Relaxation.Content_exact
        in
        let weight =
          if exact then entry.exact_weight else entry.relaxed_weight
        in
        Partial_match.create_root ~plan_servers:plan.n_servers
          ~id:(next_id ()) ~root ~weight ~max_rest)
      (Plan.root_candidates plan)
  in
  stats.matches_created <- stats.matches_created + List.length matches;
  matches

(* A conditional predicate holds when its exact relation holds, or its
   relaxed relation (if any) does. *)
let conditional_holds doc (c : Server_spec.conditional) ~anc ~desc =
  Relation.test doc c.exact ~anc ~desc
  ||
  match c.relaxed with
  | Some r -> Relation.test doc r ~anc ~desc
  | None -> false

(* Check the conditional predicate sequence of [spec] for candidate [n]
   against the nodes bound by [pm]; returns false when a hard conditional
   fails. *)
let hard_conditionals_ok doc (spec : Server_spec.t) (pm : Partial_match.t) n =
  List.for_all
    (fun (c : Server_spec.conditional) ->
      (not c.hard)
      ||
      match Partial_match.bound pm c.other with
      | None -> true
      | Some other ->
          if c.downward then conditional_holds doc c ~anc:n ~desc:other
          else conditional_holds doc c ~anc:other ~desc:n)
    spec.conditionals

(* With promotion disabled, an unbound node may not have bound pattern
   descendants (a subtree cannot outlive its deleted root). *)
let deletion_ok (plan : Plan.t) (pm : Partial_match.t) ~server =
  plan.config.subtree_promotion
  || List.for_all
       (fun d -> Partial_match.bound pm d = None)
       (Pattern.descendants plan.pattern server)

(* ... and symmetrically, a node cannot bind below an already-deleted
   pattern ancestor. *)
let under_deleted_ancestor (plan : Plan.t) (pm : Partial_match.t) ~server =
  (not plan.config.subtree_promotion)
  && List.exists
       (fun a ->
         a <> Pattern.root plan.pattern
         && Partial_match.visited pm a
         && Partial_match.bound pm a = None)
       (Pattern.ancestors plan.pattern server)

(* Without promotion, bindings are not independent: a binding accepted
   now can invalidate a sibling's or descendant's options later, so the
   deletion branch must be explored as a genuine alternative whenever
   the node participates in hard conditionals.  With promotion enabled
   the branch is dominated (a binding can never hurt) and is skipped. *)
let needs_deletion_branch (plan : Plan.t) (spec : Server_spec.t) =
  spec.optional
  && (not plan.config.subtree_promotion)
  && spec.conditionals <> []

let process (plan : Plan.t) (stats : Stats.t) ~next_id (pm : Partial_match.t)
    ~server =
  if server = 0 then invalid_arg "Server.process: the root server runs first";
  if Partial_match.visited pm server then
    invalid_arg "Server.process: server already visited";
  let spec = plan.specs.(server) in
  let entry = Score_table.entry plan.scores server in
  let doc = Index.doc plan.index in
  let root = Partial_match.root_binding pm in
  let root_depth = Doc.depth doc root in
  let rel = Server_spec.candidate_relation spec in
  let server_max = entry.exact_weight in
  stats.server_ops <- stats.server_ops + 1;
  let extensions = ref [] in
  if not (under_deleted_ancestor plan pm ~server) then
    Index.iter_descendants plan.index spec.tag ~root (fun n ->
        stats.comparisons <- stats.comparisons + 1;
        let content = content_level plan.config doc spec.value n in
        if
          content <> Relaxation.Content_reject
          && Relation.test_depths rel ~anc_depth:root_depth
               ~desc_depth:(Doc.depth doc n)
          && hard_conditionals_ok doc spec pm n
        then begin
          let exact =
            content = Relaxation.Content_exact
            && Relation.test_depths spec.to_root.exact ~anc_depth:root_depth
                 ~desc_depth:(Doc.depth doc n)
          in
          let weight = if exact then entry.exact_weight else entry.relaxed_weight in
          extensions :=
            Partial_match.extend pm ~id:(next_id ()) ~server ~binding:(Some n)
              ~weight ~server_max
            :: !extensions
        end);
  let extensions = List.rev !extensions in
  let unbound_extension () =
    Partial_match.extend pm ~id:(next_id ()) ~server ~binding:None ~weight:0.0
      ~server_max
  in
  match extensions with
  | _ :: _ ->
      let extensions =
        if needs_deletion_branch plan spec && deletion_ok plan pm ~server then
          extensions @ [ unbound_extension () ]
        else extensions
      in
      stats.matches_created <- stats.matches_created + List.length extensions;
      { extensions; died = false }
  | [] ->
      if spec.optional && deletion_ok plan pm ~server then begin
        stats.matches_created <- stats.matches_created + 1;
        { extensions = [ unbound_extension () ]; died = false }
      end
      else begin
        stats.matches_died <- stats.matches_died + 1;
        { extensions = []; died = true }
      end
