(** LockStep — the non-adaptive baseline (and its no-pruning variant).

    All partial matches pass through one server before the next server is
    considered, so at any time every alive match has gone through exactly
    the same sequence of operations; this is the OptThres-style strategy
    the paper compares against.  Within a stage, matches are processed in
    queue-policy order (max possible final score by default), and — in
    the pruning variant — checked against the top-k set before and after
    each server operation.

    [run ~prune:false] is LockStep-NoPrun: every partial match is fully
    materialized and scored, and the top-k is selected by a final sort.
    Its [matches_created] statistic is the "maximum possible number of
    partial matches" denominator of the paper's Table 2. *)

val run :
  ?order:int array ->
  ?queue_policy:Strategy.queue_policy ->
  ?prune:bool ->
  Plan.t ->
  k:int ->
  Engine.result
(** [order] is the server sequence (default [1 .. n-1]); [prune] defaults
    to [true]. *)
