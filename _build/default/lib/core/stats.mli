(** Execution counters — the paper's evaluation measures.

    [server_ops] and [matches_created] are the y-axes of Figures 7 and
    Table 2; [comparisons] is the join-predicate-comparison count of the
    motivating example; [routing_decisions] feeds the adaptivity-overhead
    model of Figure 8. *)

type t = {
  mutable server_ops : int;  (** partial matches processed by servers *)
  mutable comparisons : int;  (** candidate nodes examined (join predicate comparisons) *)
  mutable matches_created : int;  (** partial matches spawned, root tuples included *)
  mutable matches_pruned : int;  (** dropped by top-k score pruning *)
  mutable matches_died : int;  (** dropped for (in)validity, e.g. exact-mode empty joins *)
  mutable routing_decisions : int;  (** adaptive/static router choices made *)
  mutable completed : int;  (** matches that visited every server *)
  mutable wall_ns : int64;  (** elapsed monotonic time *)
}

val create : unit -> t
val reset : t -> unit

val add : t -> t -> unit
(** [add acc x] accumulates [x] into [acc] (wall time takes the max, the
    counters sum) — used to merge per-domain statistics. *)

val wall_seconds : t -> float
val pp : Format.formatter -> t -> unit
