(** Whirlpool-M — the multi-threaded adaptive engine.

    Mirrors the paper's architecture (Figure 4): one thread per server,
    each with its own priority queue of partial matches, plus a router
    thread with the router queue; the number of threads is therefore the
    query size + 2 counting the coordinating main thread.  Threads are
    OCaml 5 domains, so available cores give true parallelism.  The
    top-k set is shared under a mutex; termination is detected by an
    atomic count of in-flight partial matches.

    Because server and router threads interleave nondeterministically,
    pruning decisions — and hence the operation counts — can differ from
    run to run and from Whirlpool-S; the paper observes exactly this
    effect (Section 6.3.5: the threshold grows at a different pace,
    changing the adaptive routing choices). *)

val run :
  ?routing:Strategy.routing ->
  ?queue_policy:Strategy.queue_policy ->
  ?threads_per_server:int ->
  Plan.t ->
  k:int ->
  Engine.result
(** Defaults as in {!Engine.run}: [Min_alive] routing, server and router
    queues on maximum possible final score.

    [threads_per_server] (default 1) implements the paper's future-work
    extension of Section 7 ("increasing the number of threads per server
    for maximal parallelism"): each server's queue is drained by that
    many domains, so a single hot server no longer serializes the
    system. *)
