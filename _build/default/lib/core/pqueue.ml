type 'a cell = { priority : float; tie : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size
let is_empty q = q.size = 0

(* [a] wins over [b] on higher priority, then higher tie-break key, then
   earlier insertion. *)
let wins a b =
  a.priority > b.priority
  || (a.priority = b.priority
     && (a.tie > b.tie || (a.tie = b.tie && a.seq < b.seq)))

let swap q i j =
  let t = q.heap.(i) in
  q.heap.(i) <- q.heap.(j);
  q.heap.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if wins q.heap.(i) q.heap.(parent) then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < q.size && wins q.heap.(l) q.heap.(!best) then best := l;
  if r < q.size && wins q.heap.(r) q.heap.(!best) then best := r;
  if !best <> i then begin
    swap q i !best;
    sift_down q !best
  end

let push ?(tie = 0.0) q priority value =
  let cell = { priority; tie; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then begin
    let capacity = max 16 (2 * Array.length q.heap) in
    let heap = Array.make capacity cell in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end;
  q.heap.(q.size) <- cell;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let pop_with_priority q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.priority, top.value)
  end

let pop q = Option.map snd (pop_with_priority q)
let peek q = if q.size = 0 then None else Some q.heap.(0).value
let peek_priority q = if q.size = 0 then None else Some q.heap.(0).priority

let clear q = q.size <- 0

let drain q =
  let rec go acc = match pop q with None -> List.rev acc | Some x -> go (x :: acc) in
  go []
