(** Routing strategies and queue prioritization policies (Sections 6.1.3
    and 6.1.4 of the paper). *)

type routing =
  | Static of int array
      (** fixed order over the non-root servers; every partial match
          visits the remaining servers in this sequence *)
  | Max_score
      (** send to the unvisited server expected to raise the score most *)
  | Min_score  (** ... to raise it least *)
  | Min_alive
      (** size-based: to the server expected to leave the fewest alive
          extensions after pruning — the paper's winning strategy *)

val pp_routing : Format.formatter -> routing -> unit
val routing_of_string : string -> routing option
(** Recognizes ["max_score"], ["min_score"], ["min_alive"]. *)

val default_static_order : Plan.t -> int array
(** The identity order [1 .. n-1]. *)

val static_permutations : Plan.t -> int array list
(** Every permutation of the non-root servers (the 120 plans of the
    paper's Figure 6 for a 6-node query). *)

val choose_next :
  routing -> Plan.t -> threshold:float -> Partial_match.t -> int
(** The next server for a partial match (among unvisited ones).
    [threshold] is the current k-th score, used by [Min_alive].
    @raise Invalid_argument on a complete match. *)

val estimated_alive :
  Plan.t -> threshold:float -> Partial_match.t -> server:int -> float
(** The [Min_alive] objective: expected number of extensions surviving
    pruning if the match goes to [server] next, from the plan's sampled
    fan-out/exactness/emptiness statistics. *)

type queue_policy =
  | Fifo
  | Current_score
  | Max_next_score
  | Max_final_score

val pp_queue_policy : Format.formatter -> queue_policy -> unit
val queue_policy_of_string : string -> queue_policy option

val priority :
  queue_policy -> Plan.t -> seq:int -> server:int option ->
  Partial_match.t -> float
(** Priority of a match in a queue under the policy; [server] names the
    server whose queue it is ([None] for the router queue, where
    [Max_next_score] uses the best unvisited server).  [seq] is the
    arrival sequence number, consumed by [Fifo]. *)
