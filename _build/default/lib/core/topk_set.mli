(** The candidate top-k set.

    Holds at most [k] (partial or complete) matches, at most one per
    distinct root binding — "the k returned answers must be distinct
    instantiations of the query root node".  A new match with a root
    already present updates that entry when its current score is higher;
    otherwise it competes with the lowest entry.  The threshold (the
    k-th best current score, once the set is full) prunes any match
    whose maximum possible final score cannot strictly beat it.

    Whether partial matches are admitted depends on the relaxation
    configuration: with outer-join (relaxed) semantics every partial
    match is a potential answer and scores only grow, so admitting them
    tightens the threshold sooner; under exact semantics a partial match
    may still die on an empty join, so only complete matches are
    admitted (a prematurely admitted match could inflate the threshold
    and prune sound answers). *)

type entry = {
  root : int;  (** document node bound at the pattern root *)
  score : float;
  match_id : int;
  bindings : int array;  (** snapshot of the contributing match *)
  progress : int;
      (** how many servers the snapshot had visited — among equal-score
          matches for a root, the most-processed one is kept *)
}

type t

val create : k:int -> admit_partial:bool -> t

val k : t -> int
val cardinality : t -> int

val threshold : t -> float
(** The k-th best current score, or [neg_infinity] while the set holds
    fewer than [k] entries. *)

val consider : t -> complete:bool -> Partial_match.t -> unit
(** Offer a match to the set (no-op for incomplete matches when the set
    only admits complete ones). *)

val should_prune : t -> Partial_match.t -> bool
(** True when the match's maximum possible final score cannot strictly
    beat the current threshold — the match can never enter the final
    top-k. *)

val retract : t -> Partial_match.t -> unit
(** Remove the entry contributed by this exact match, if it still owns
    one.  Called when a partial match {e dies} for validity reasons
    (possible only in configurations mixing leaf deletion with disabled
    promotion), so a dead match cannot linger as a phantom answer.  The
    threshold may drop as a result; matches already pruned against the
    higher threshold are not resurrected — the same approximation the
    paper's lock-step predecessor accepts. *)

val entries : t -> entry list
(** Current entries, best first (ties by root document order). *)

val pp : Format.formatter -> t -> unit
