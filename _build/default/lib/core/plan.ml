module Pattern = Wp_pattern.Pattern
module Relaxation = Wp_relax.Relaxation
module Relation = Wp_relax.Relation
module Server_spec = Wp_relax.Server_spec
module Score_table = Wp_score.Score_table
module Index = Wp_xml.Index
module Doc = Wp_xml.Doc

type t = {
  pattern : Pattern.t;
  config : Relaxation.config;
  specs : Server_spec.t array;
  scores : Score_table.t;
  index : Index.t;
  n_servers : int;
  full_mask : int;
  est_fanout : float array;
  est_p_exact : float array;
  est_p_empty : float array;
}

(* Content acceptance and exactness under the configuration. *)
let content_level config doc value n =
  match value with
  | None -> Relaxation.Content_exact
  | Some query -> Relaxation.content_level config ~query ~actual:(Doc.value doc n)

let value_ok config doc value n =
  content_level config doc value n <> Relaxation.Content_reject

(* Candidates for the pattern root: nodes with the right tag/value whose
   relation to the document root satisfies the (possibly relaxed) root
   edge. *)
let root_candidates_of config idx (specs : Server_spec.t array) =
  let doc = Index.doc idx in
  let spec = specs.(0) in
  let rel = Server_spec.candidate_relation spec in
  let doc_root_depth = Doc.depth doc (Doc.root doc) in
  Array.to_list (Index.ids idx spec.tag)
  |> List.filter (fun n ->
         n <> Doc.root doc
         && Relation.test_depths rel ~anc_depth:doc_root_depth
              ~desc_depth:(Doc.depth doc n)
         && value_ok config doc spec.value n)

(* Estimate fan-out, exactness and emptiness of each server over a sample
   of root candidates. *)
let estimate config idx (specs : Server_spec.t array) roots ~sample =
  let doc = Index.doc idx in
  let n = Array.length specs in
  let est_fanout = Array.make n 1.0 in
  let est_p_exact = Array.make n 1.0 in
  let est_p_empty = Array.make n 0.0 in
  let sampled =
    let rec take k = function
      | [] -> []
      | _ when k = 0 -> []
      | x :: rest -> x :: take (k - 1) rest
    in
    take sample roots
  in
  let n_sampled = List.length sampled in
  if n_sampled > 0 then
    for s = 1 to n - 1 do
      let spec = specs.(s) in
      let rel = Server_spec.candidate_relation spec in
      let total = ref 0 and exact = ref 0 and empty = ref 0 in
      List.iter
        (fun root ->
          let root_depth = Doc.depth doc root in
          let here = ref 0 in
          Index.iter_descendants idx spec.tag ~root (fun c ->
              if
                Relation.test_depths rel ~anc_depth:root_depth
                  ~desc_depth:(Doc.depth doc c)
                && value_ok config doc spec.value c
              then begin
                incr here;
                if
                  Relation.test_depths spec.to_root.exact ~anc_depth:root_depth
                    ~desc_depth:(Doc.depth doc c)
                  && content_level config doc spec.value c
                     = Relaxation.Content_exact
                then incr exact
              end);
          total := !total + !here;
          if !here = 0 then incr empty)
        sampled;
      est_fanout.(s) <- float_of_int !total /. float_of_int n_sampled;
      est_p_exact.(s) <-
        (if !total = 0 then 1.0 else float_of_int !exact /. float_of_int !total);
      est_p_empty.(s) <- float_of_int !empty /. float_of_int n_sampled
    done;
  (est_fanout, est_p_exact, est_p_empty)

type estimator = Sampled | Synopsis

(* One synopsis per document, built on first use. *)
let synopsis_cache : (Doc.t, Wp_stats.Synopsis.t) Hashtbl.t = Hashtbl.create 4

let synopsis_for idx =
  let doc = Index.doc idx in
  match Hashtbl.find_opt synopsis_cache doc with
  | Some s -> s
  | None ->
      let s = Wp_stats.Synopsis.build doc in
      Hashtbl.add synopsis_cache doc s;
      s

(* Selectivity-estimation variant of [estimate]: per-server fan-out,
   exactness and emptiness derived from the document synopsis instead of
   sampling root candidates. *)
let estimate_synopsis idx (specs : Server_spec.t array) pat =
  let syn = synopsis_for idx in
  let n = Array.length specs in
  let est_fanout = Array.make n 1.0 in
  let est_p_exact = Array.make n 1.0 in
  let est_p_empty = Array.make n 0.0 in
  let root_tag = Pattern.tag pat 0 in
  for s = 1 to n - 1 do
    let spec = specs.(s) in
    let rel = Server_spec.candidate_relation spec in
    let fanout =
      Wp_stats.Synopsis.expected_related syn ~anc:root_tag ~desc:spec.tag rel
    in
    let exact_fanout =
      Wp_stats.Synopsis.expected_related syn ~anc:root_tag ~desc:spec.tag
        spec.to_root.exact
    in
    est_fanout.(s) <- fanout;
    est_p_exact.(s) <- (if fanout > 0.0 then Float.min 1.0 (exact_fanout /. fanout) else 1.0);
    est_p_empty.(s) <-
      Wp_stats.Synopsis.p_empty syn ~anc:root_tag ~desc:spec.tag rel
  done;
  (est_fanout, est_p_exact, est_p_empty)

let compile ?(normalization = Wp_score.Score_table.Sparse) ?(sample = 100)
    ?(estimator = Sampled) idx config pat =
  let n_servers = Pattern.size pat in
  if n_servers > Sys.int_size - 2 then
    invalid_arg "Plan.compile: pattern too large for bitmask bookkeeping";
  let specs = Server_spec.build config pat in
  let scores = Score_table.build idx pat config normalization in
  let roots = root_candidates_of config idx specs in
  let est_fanout, est_p_exact, est_p_empty =
    match estimator with
    | Sampled -> estimate config idx specs roots ~sample
    | Synopsis -> estimate_synopsis idx specs pat
  in
  {
    pattern = pat;
    config;
    specs;
    scores;
    index = idx;
    n_servers;
    full_mask = (1 lsl n_servers) - 1;
    est_fanout;
    est_p_exact;
    est_p_empty;
  }

let admits_partial_answers t =
  t.config.leaf_deletion || t.config.subtree_promotion

let max_weight t s = (Score_table.entry t.scores s).exact_weight
let server_op_cost_hint t s = Float.max 1.0 t.est_fanout.(s)
let root_candidates t = root_candidates_of t.config t.index t.specs

let pp ppf t =
  Format.fprintf ppf "@[<v>plan: %s (%a)@," (Pattern.to_string t.pattern)
    Relaxation.pp_config t.config;
  Array.iteri
    (fun s spec ->
      Format.fprintf ppf "%a@,  fanout=%.2f p_exact=%.2f p_empty=%.2f w=%.3f/%.3f@,"
        Server_spec.pp spec t.est_fanout.(s) t.est_p_exact.(s) t.est_p_empty.(s)
        (Score_table.entry t.scores s).exact_weight
        (Score_table.entry t.scores s).relaxed_weight)
    t.specs;
  Format.fprintf ppf "@]"
