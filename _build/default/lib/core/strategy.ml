module Score_table = Wp_score.Score_table

type routing = Static of int array | Max_score | Min_score | Min_alive

let pp_routing ppf = function
  | Static order ->
      Format.fprintf ppf "static[%s]"
        (String.concat ";" (Array.to_list (Array.map string_of_int order)))
  | Max_score -> Format.pp_print_string ppf "max_score"
  | Min_score -> Format.pp_print_string ppf "min_score"
  | Min_alive -> Format.pp_print_string ppf "min_alive_partial_matches"

let routing_of_string = function
  | "max_score" -> Some Max_score
  | "min_score" -> Some Min_score
  | "min_alive" | "min_alive_partial_matches" -> Some Min_alive
  | _ -> None

let default_static_order (plan : Plan.t) =
  Array.init (plan.n_servers - 1) (fun i -> i + 1)

let static_permutations (plan : Plan.t) =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun p -> x :: p) (perms rest))
          l
  in
  List.map Array.of_list (perms (List.init (plan.n_servers - 1) (fun i -> i + 1)))

(* Expected score contribution of routing a match to [server]: the
   sampled mix of exact and relaxed extensions. *)
let expected_weight (plan : Plan.t) server =
  let e = Score_table.entry plan.scores server in
  let pe = plan.est_p_exact.(server) in
  let p_empty = plan.est_p_empty.(server) in
  (1.0 -. p_empty)
  *. ((pe *. e.exact_weight) +. ((1.0 -. pe) *. e.relaxed_weight))

let estimated_alive (plan : Plan.t) ~threshold (pm : Partial_match.t) ~server =
  let e = Score_table.entry plan.scores server in
  (* Maximum score the match can still reach from the servers other than
     [server]. *)
  let rest_max = pm.max_possible -. e.exact_weight in
  let survives w = if rest_max +. w > threshold then 1.0 else 0.0 in
  let fanout = plan.est_fanout.(server) in
  let pe = plan.est_p_exact.(server) in
  let p_empty = plan.est_p_empty.(server) in
  let bound_alive =
    fanout *. ((pe *. survives e.exact_weight) +. ((1.0 -. pe) *. survives e.relaxed_weight))
  in
  let unbound_alive =
    if plan.specs.(server).optional then p_empty *. survives 0.0 else 0.0
  in
  bound_alive +. unbound_alive

let choose_next routing (plan : Plan.t) ~threshold (pm : Partial_match.t) =
  match Partial_match.unvisited_servers pm ~n_servers:plan.n_servers with
  | [] -> invalid_arg "Strategy.choose_next: match is complete"
  | [ s ] -> s
  | candidates -> (
      match routing with
      | Static order ->
          let rec first = function
            | [] -> invalid_arg "Strategy.choose_next: order misses a server"
            | s :: rest -> if Partial_match.visited pm s then first rest else s
          in
          first (Array.to_list order)
      | Max_score ->
          let best s acc =
            if expected_weight plan s > expected_weight plan acc then s else acc
          in
          List.fold_left (fun acc s -> best s acc) (List.hd candidates) candidates
      | Min_score ->
          let best s acc =
            if expected_weight plan s < expected_weight plan acc then s else acc
          in
          List.fold_left (fun acc s -> best s acc) (List.hd candidates) candidates
      | Min_alive ->
          let objective s = estimated_alive plan ~threshold pm ~server:s in
          let best s acc = if objective s < objective acc then s else acc in
          List.fold_left (fun acc s -> best s acc) (List.hd candidates) candidates)

type queue_policy = Fifo | Current_score | Max_next_score | Max_final_score

let pp_queue_policy ppf = function
  | Fifo -> Format.pp_print_string ppf "fifo"
  | Current_score -> Format.pp_print_string ppf "current_score"
  | Max_next_score -> Format.pp_print_string ppf "max_next_score"
  | Max_final_score -> Format.pp_print_string ppf "max_final_score"

let queue_policy_of_string = function
  | "fifo" -> Some Fifo
  | "current" | "current_score" -> Some Current_score
  | "max_next" | "max_next_score" -> Some Max_next_score
  | "max_final" | "max_final_score" -> Some Max_final_score
  | _ -> None

let priority policy (plan : Plan.t) ~seq ~server (pm : Partial_match.t) =
  match policy with
  | Fifo -> -.float_of_int seq
  | Current_score -> pm.score
  | Max_final_score -> pm.max_possible
  | Max_next_score -> (
      match server with
      | Some s -> pm.score +. (Score_table.entry plan.scores s).exact_weight
      | None ->
          let best =
            List.fold_left
              (fun acc s -> Float.max acc (Plan.max_weight plan s))
              0.0
              (Partial_match.unvisited_servers pm ~n_servers:plan.n_servers)
          in
          pm.score +. best)
