(** Max-priority queue with deterministic FIFO tie-breaking.

    Server and router queues order partial matches by a float priority
    (e.g. maximum possible final score); equal priorities pop in
    insertion order so runs are reproducible. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : ?tie:float -> 'a t -> float -> 'a -> unit
(** [push q priority x] — higher priorities pop first.  Elements with
    equal priority pop by descending [tie] (default [0.]), then FIFO. *)

val pop : 'a t -> 'a option
val pop_with_priority : 'a t -> (float * 'a) option
val peek : 'a t -> 'a option
val peek_priority : 'a t -> float option

val clear : 'a t -> unit

val drain : 'a t -> 'a list
(** Pop everything, best first. *)
