(** Static left-deep join plans — the paper's motivating example.

    Section 2 studies a single root tuple joined against a set of
    predicates, each carrying the scores of its matching bindings, under
    every static join order, as the current top-k threshold varies
    (Figure 3).  A tuple is pruned before a join when its current score
    plus the best it can still gain cannot strictly beat the threshold;
    joining an alive tuple against a predicate costs one comparison per
    binding and spawns one extended tuple per binding. *)

type predicate = {
  name : string;
  binding_scores : float array;  (** one entry per matching binding *)
}

type metrics = {
  comparisons : int;  (** join predicate comparisons performed *)
  tuples_created : int;  (** tuples spawned by the joins *)
  tuple_joins : int;  (** alive tuples fed into a join *)
  best_score : float;  (** best complete tuple score (threshold-independent input aside) *)
  survivors : int;  (** complete tuples alive at the end *)
}

val evaluate :
  root_score:float -> order:predicate list -> current_topk:float -> metrics
(** Evaluate one static plan at a fixed threshold. *)

val permutations : 'a list -> 'a list list
(** All orderings, in a deterministic order. *)

val book_d_example : predicate list
(** The paper's book (d): three exact [title] matches scoring 0.3, five
    approximate [location] matches scoring 0.3, 0.2, 0.1, 0.1, 0.1, and
    one exact [price] match scoring 0.2. *)
