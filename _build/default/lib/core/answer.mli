(** Materialized answers.

    The engines return compact {!Topk_set.entry} records (node ids and
    scores).  This module turns them into user-facing answers: the XML
    fragment rooted at the answer node, the per-query-node bindings, and
    an explanation of how exactly each binding satisfied its predicate —
    the information a ranked-retrieval UI would display. *)

type exactness =
  | Exact  (** the binding satisfies the original composed predicate *)
  | Relaxed  (** it satisfies only the relaxed predicate *)
  | Unbound  (** the query node was deleted for this answer *)

type binding = {
  query_node : Wp_pattern.Pattern.node_id;
  tag : string;
  node : Wp_xml.Doc.node_id option;
  exactness : exactness;
  weight : float;  (** score contribution of this binding *)
}

type t = {
  rank : int;  (** 1-based position in the answer list *)
  root : Wp_xml.Doc.node_id;
  score : float;
  bindings : binding list;  (** in pattern preorder *)
}

val of_entry : Plan.t -> rank:int -> Topk_set.entry -> t
val of_result : Plan.t -> Engine.result -> t list

val fragment : Plan.t -> t -> Wp_xml.Tree.t
(** The document subtree rooted at the answer node. *)

val pp : Plan.t -> Format.formatter -> t -> unit
(** Multi-line rendering with tags, Dewey labels and per-binding
    exactness. *)

val pp_exactness : Format.formatter -> exactness -> unit

val to_json : Plan.t -> t -> Wp_json.Json.t
(** Machine-readable form: root node id and Dewey label, score, and the
    per-binding detail. *)

val result_to_json : Plan.t -> Engine.result -> Wp_json.Json.t
(** The whole answer list plus execution statistics. *)
