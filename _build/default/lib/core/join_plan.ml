type predicate = { name : string; binding_scores : float array }

type metrics = {
  comparisons : int;
  tuples_created : int;
  tuple_joins : int;
  best_score : float;
  survivors : int;
}

let max_binding p = Array.fold_left Float.max 0.0 p.binding_scores

let evaluate ~root_score ~order ~current_topk =
  let comparisons = ref 0 in
  let tuples_created = ref 0 in
  let tuple_joins = ref 0 in
  (* rest_max.(i) = best score obtainable from predicates i.. *)
  let n = List.length order in
  let preds = Array.of_list order in
  let rest_max = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    rest_max.(i) <- rest_max.(i + 1) +. max_binding preds.(i)
  done;
  let tuples = ref [ root_score ] in
  for i = 0 to n - 1 do
    let p = preds.(i) in
    let next = ref [] in
    List.iter
      (fun score ->
        (* Prune before the join: the tuple must still be able to beat
           the current top-k score. *)
        if score +. rest_max.(i) > current_topk then begin
          incr tuple_joins;
          Array.iter
            (fun b ->
              incr comparisons;
              incr tuples_created;
              next := (score +. b) :: !next)
            p.binding_scores
        end)
      !tuples;
    tuples := !next
  done;
  let survivors = List.filter (fun s -> s > current_topk) !tuples in
  {
    comparisons = !comparisons;
    tuples_created = !tuples_created;
    tuple_joins = !tuple_joins;
    best_score = List.fold_left Float.max 0.0 !tuples;
    survivors = List.length survivors;
  }

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y != x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let book_d_example =
  [
    { name = "title"; binding_scores = [| 0.3; 0.3; 0.3 |] };
    { name = "location"; binding_scores = [| 0.3; 0.2; 0.1; 0.1; 0.1 |] };
    { name = "price"; binding_scores = [| 0.2 |] };
  ]
