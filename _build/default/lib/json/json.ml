type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    let s = Printf.sprintf "%.17g" f in
    (* Trim to the shortest representation that round-trips. *)
    let rec shorten p =
      if p >= 17 then s
      else
        let c = Printf.sprintf "%.*g" p f in
        if float_of_string c = f then c else shorten (p + 1)
    in
    shorten 1

let rec to_buffer b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> Buffer.add_string b (float_repr f)
  | String s ->
      Buffer.add_char b '"';
      Buffer.add_string b (escape_string s);
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          to_buffer b item)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          Buffer.add_string b (escape_string key);
          Buffer.add_string b "\":";
          to_buffer b value)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  to_buffer b v;
  Buffer.contents b

let rec pp ppf = function
  | (Null | Bool _ | Int _ | Float _ | String _) as v ->
      Format.pp_print_string ppf (to_string v)
  | List [] -> Format.pp_print_string ppf "[]"
  | List items ->
      Format.fprintf ppf "@[<v 2>[@,%a@]@,]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           pp)
        items
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
      let field ppf (key, value) =
        Format.fprintf ppf "@[<hv 2>\"%s\":@ %a@]" (escape_string key) pp value
      in
      Format.fprintf ppf "@[<v 2>{@,%a@]@,}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
           field)
        fields
