lib/json/json.mli: Buffer Format
