(** Streaming (SAX-style) XML parsing.

    {!Parser} materializes the whole input string; this interface
    instead delivers a callback stream of events while reading the
    input incrementally through a refillable buffer, so arbitrarily
    large documents parse in O(depth + buffer) working memory (plus
    whatever the callback retains).

    The accepted language matches {!Parser}: elements, attributes, text
    with the predefined entities and character references, comments,
    processing instructions, CDATA sections, and prolog/DOCTYPE
    constructs (reported or skipped, never failing).  Well-formedness
    (tag balance) is enforced. *)

type attribute = { name : string; value : string }

type event =
  | Start_element of { tag : string; attributes : attribute list }
  | End_element of string
  | Text of string  (** non-blank character data, entity-decoded *)
  | Cdata of string
  | Comment of string
  | Processing_instruction of string
  | Doctype of string

exception Error of { position : int; message : string }
(** [position] is an absolute byte offset in the input stream. *)

val parse_string : string -> (event -> unit) -> unit
val parse_channel : ?buffer_size:int -> in_channel -> (event -> unit) -> unit

val fold_string : string -> ('a -> event -> 'a) -> 'a -> 'a

val tree_of_string : string -> Tree.t
(** Build a {!Tree.t} through the event stream (attributes become
    ["@name"] children, text chunks concatenate — the same conventions
    as {!Parser.parse_string}). *)

val doc_of_channel : ?buffer_size:int -> in_channel -> Doc.t
(** Stream a whole document from a channel into a frozen {!Doc.t}
    without ever holding the serialized text in memory. *)

val doc_of_file : string -> Doc.t
