(** XPath structural axes over frozen documents.

    Tree-pattern edges only use {!Child} and {!Descendant}; the remaining
    axes appear in component predicates of the scoring function (the
    paper's Section 4 example uses [following-sibling]). *)

type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Following_sibling

val test : Doc.t -> t -> from:Doc.node_id -> target:Doc.node_id -> bool
(** [test doc axis ~from ~target] checks whether [target] is reachable
    from [from] along [axis] — e.g. [test doc Child ~from ~target] holds
    iff [target] is a child of [from]. *)

val select : Index.t -> t -> from:Doc.node_id -> tag:string -> Doc.node_id list
(** All nodes with [tag] reachable from [from] along the axis, in
    document order. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val equal : t -> t -> bool
