(** XML serialization.

    The compact forms are the inverse of {!Parser.parse_string} (modulo
    whitespace) and the byte counts they produce agree with
    {!Doc.serialized_size}. *)

val escape : string -> string
(** Escape the five XML special characters (ampersand, angle brackets and
    both quotes) as predefined entities. *)

val escaped_length : string -> int
(** [escaped_length s = String.length (escape s)], without allocating. *)

val tree_to_buffer : Buffer.t -> Tree.t -> unit
(** Compact (no whitespace) serialization of a tree. *)

val tree_to_string : Tree.t -> string

val doc_to_string : Doc.t -> string
(** Compact serialization of a whole document starting at its root. *)

val pp_tree : Format.formatter -> Tree.t -> unit
(** Indented, human-readable rendering (2-space indent). *)

val to_channel : out_channel -> Tree.t -> unit
(** Compact serialization to a channel, without building the whole string
    in memory. *)

val doc_serialized_size : Doc.t -> int
(** [doc_serialized_size d = String.length (doc_to_string d)], without
    allocating the string; used to calibrate generated documents against
    the paper's 1Mb/10Mb/50Mb sweep. *)
