(** Dewey order encoding of XML node positions.

    A Dewey label is the sequence of 1-based child ranks on the path from
    the document root to a node; the root itself is labeled [[||]].  All
    XPath structural axes used by tree-pattern queries (parent-child,
    ancestor-descendant, document order, sibling order) reduce to cheap
    prefix and lexicographic tests on Dewey labels, which is why the paper
    stores query-relevant nodes "in indexes along with their Dewey
    encoding" (Section 6.2.1). *)

type t = private int array
(** A Dewey label.  The representation is exposed read-only so that hot
    loops can index components without a copy; construction goes through
    the functions below, which enforce that every component is positive. *)

val root : t
(** Label of the document root: the empty sequence. *)

val of_list : int list -> t
(** [of_list cs] builds a label from child ranks.
    @raise Invalid_argument if any rank is [< 1]. *)

val of_array : int array -> t
(** Same as {!of_list} for arrays.  The array is copied. *)

val to_list : t -> int list

val child : t -> int -> t
(** [child d i] is the label of the [i]-th (1-based) child of [d].
    @raise Invalid_argument if [i < 1]. *)

val parent : t -> t option
(** [parent d] is [None] on the root. *)

val depth : t -> int
(** Number of components; the root has depth 0. *)

val component : t -> int -> int
(** [component d i] is the 0-based [i]-th rank on the path. *)

val compare : t -> t -> int
(** Document (pre)order: lexicographic with prefixes first, so an ancestor
    sorts immediately before its descendants. *)

val equal : t -> t -> bool

val is_ancestor : t -> t -> bool
(** [is_ancestor a d] iff [a] is a {e proper} ancestor of [d], i.e. [a] is
    a proper prefix of [d]. *)

val is_parent : t -> t -> bool
(** [is_parent p c] iff [c] is exactly one level below [p]. *)

val is_descendant : t -> t -> bool
(** [is_descendant d a] iff [d] is a proper descendant of [a]. *)

val is_child : t -> t -> bool
(** [is_child c p] iff [p] is the parent of [c]. *)

val is_ancestor_or_self : t -> t -> bool

val is_following_sibling : t -> t -> bool
(** [is_following_sibling b a] iff [a] and [b] share a parent and [b]
    comes strictly after [a]. *)

val common_ancestor : t -> t -> t
(** Longest common prefix of the two labels. *)

val pp : Format.formatter -> t -> unit
(** Prints the conventional dotted form, e.g. [1.3.2]; the root prints as
    [ε]. *)

val to_string : t -> string

val of_string : string -> t
(** Parses the dotted form produced by {!to_string}.
    @raise Invalid_argument on malformed input. *)
