exception Error of { position : int; message : string }

type state = { src : string; mutable pos : int }

let fail st message = raise (Error { position = st.pos; message })
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None
let eof st = st.pos >= String.length st.src

let advance st = st.pos <- st.pos + 1

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st (Printf.sprintf "expected %C, found %C" c c')
  | None -> fail st (Printf.sprintf "expected %C, found end of input" c)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces st =
  while (not (eof st)) && is_space st.src.[st.pos] do
    advance st
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | Some c -> fail st (Printf.sprintf "invalid name start %C" c)
  | None -> fail st "expected a name, found end of input");
  while (not (eof st)) && is_name_char st.src.[st.pos] do
    advance st
  done;
  String.sub st.src start (st.pos - start)

(* Reads past a reference (the '&' has been consumed) and returns the
   referenced text. *)
let parse_reference st =
  let start = st.pos in
  let rec find_semi p =
    if p >= String.length st.src then fail st "unterminated entity reference"
    else if st.src.[p] = ';' then p
    else find_semi (p + 1)
  in
  let semi = find_semi start in
  let body = String.sub st.src start (semi - start) in
  st.pos <- semi + 1;
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length body > 1 && body.[0] = '#' then begin
        let code =
          let num = String.sub body 1 (String.length body - 1) in
          let parsed =
            if String.length num > 1 && (num.[0] = 'x' || num.[0] = 'X') then
              int_of_string_opt ("0x" ^ String.sub num 1 (String.length num - 1))
            else int_of_string_opt num
          in
          match parsed with
          | Some c when c >= 0 && c <= 0x10FFFF -> c
          | Some _ | None -> fail st ("bad character reference &" ^ body ^ ";")
        in
        (* Encode as UTF-8. *)
        let b = Buffer.create 4 in
        Buffer.add_utf_8_uchar b (Uchar.of_int code);
        Buffer.contents b
      end
      else fail st ("unknown entity &" ^ body ^ ";")

let parse_text st =
  let b = Buffer.create 32 in
  let rec loop () =
    match peek st with
    | None | Some '<' -> Buffer.contents b
    | Some '&' ->
        advance st;
        Buffer.add_string b (parse_reference st);
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ()

let skip_until st target =
  (* Advances past the next occurrence of [target]. *)
  let tl = String.length target in
  let limit = String.length st.src - tl in
  let rec loop p =
    if p > limit then fail st (Printf.sprintf "unterminated construct (missing %s)" target)
    else if String.sub st.src p tl = target then st.pos <- p + tl
    else loop (p + 1)
  in
  loop st.pos

let parse_attribute st =
  let name = parse_name st in
  skip_spaces st;
  expect st '=';
  skip_spaces st;
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st; q
    | Some c -> fail st (Printf.sprintf "expected a quote, found %C" c)
    | None -> fail st "expected a quote, found end of input"
  in
  let b = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' ->
        advance st;
        Buffer.add_string b (parse_reference st);
        loop ()
    | Some c ->
        advance st;
        Buffer.add_char b c;
        loop ()
  in
  loop ();
  Tree.leaf ("@" ^ name) (Buffer.contents b)

(* Parses an element, assuming the opening '<' has been consumed and the
   next character starts the element name. *)
let rec parse_element st =
  let tag = parse_name st in
  let attrs = ref [] in
  let rec attributes () =
    skip_spaces st;
    match peek st with
    | Some '>' | Some '/' | None -> ()
    | Some c when is_name_start c ->
        attrs := parse_attribute st :: !attrs;
        attributes ()
    | Some c -> fail st (Printf.sprintf "unexpected %C in element tag" c)
  in
  attributes ();
  match peek st with
  | Some '/' ->
      advance st;
      expect st '>';
      { Tree.tag; value = None; children = List.rev !attrs }
  | Some '>' ->
      advance st;
      let text, children = parse_content st in
      expect st '<';
      expect st '/';
      let close = parse_name st in
      if not (String.equal close tag) then
        fail st (Printf.sprintf "mismatched </%s>, expected </%s>" close tag);
      skip_spaces st;
      expect st '>';
      let value = if text = "" then None else Some text in
      { Tree.tag; value; children = List.rev_append !attrs children }
  | Some c -> fail st (Printf.sprintf "unexpected %C in element tag" c)
  | None -> fail st "unterminated element tag"

(* Parses element content up to (but not including) the closing tag.
   Returns the concatenated non-blank text and the child elements. *)
and parse_content st =
  let text = Buffer.create 16 in
  let children = ref [] in
  let add_text s =
    if String.exists (fun c -> not (is_space c)) s then
      Buffer.add_string text (String.trim s)
  in
  let rec loop () =
    if eof st then fail st "unterminated element content";
    match st.src.[st.pos] with
    | '<' ->
        if st.pos + 1 < String.length st.src && st.src.[st.pos + 1] = '/' then ()
        else begin
          advance st;
          (match peek st with
          | Some '!' ->
              advance st;
              if st.pos + 1 < String.length st.src
                 && st.src.[st.pos] = '-' && st.src.[st.pos + 1] = '-'
              then skip_until st "-->"
              else if st.pos + 7 <= String.length st.src
                      && String.sub st.src st.pos 7 = "[CDATA["
              then begin
                st.pos <- st.pos + 7;
                let start = st.pos in
                skip_until st "]]>";
                add_text (String.sub st.src start (st.pos - start - 3))
              end
              else skip_until st ">"
          | Some '?' -> skip_until st "?>"
          | _ -> children := parse_element st :: !children);
          loop ()
        end
    | _ ->
        add_text (parse_text st);
        loop ()
  in
  loop ();
  (Buffer.contents text, List.rev !children)

let skip_prolog st =
  let rec loop () =
    skip_spaces st;
    if (not (eof st)) && st.src.[st.pos] = '<' && st.pos + 1 < String.length st.src
    then
      match st.src.[st.pos + 1] with
      | '?' -> skip_until st "?>"; loop ()
      | '!' ->
          if st.pos + 3 < String.length st.src
             && st.src.[st.pos + 2] = '-' && st.src.[st.pos + 3] = '-'
          then begin skip_until st "-->"; loop () end
          else begin skip_until st ">"; loop () end
      | _ -> ()
  in
  loop ()

let parse_string src =
  let st = { src; pos = 0 } in
  skip_prolog st;
  skip_spaces st;
  expect st '<';
  let root = parse_element st in
  skip_spaces st;
  (* Trailing comments / PIs are tolerated. *)
  skip_prolog st;
  skip_spaces st;
  if not (eof st) then fail st "trailing content after the root element";
  root

let parse_file path =
  let ic = open_in_bin path in
  let finally () = close_in_noerr ic in
  Fun.protect ~finally (fun () ->
      let n = in_channel_length ic in
      let src = really_input_string ic n in
      parse_string src)

let parse_doc s = Doc.of_tree (parse_string s)
