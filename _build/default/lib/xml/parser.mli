(** A small, dependency-free XML parser.

    Accepts the subset needed to round-trip documents produced by
    {!Printer} plus the usual conveniences found in benchmark data files:
    element nodes, text content, the five predefined entities, numeric
    character references, XML declarations, comments, processing
    instructions, CDATA sections and DOCTYPE lines (the latter four are
    skipped).  Attributes are parsed and attached as children elements
    tagged ["@name"] holding the attribute value, which keeps the node
    data model uniform (tree patterns can match attributes as ordinary
    child predicates).

    Mixed content is simplified: all text chunks directly inside an
    element are concatenated (whitespace-only chunks between elements are
    dropped) and stored as the element's [value]. *)

exception Error of { position : int; message : string }
(** Raised on malformed input; [position] is a byte offset. *)

val parse_string : string -> Tree.t
(** Parse a complete document.  @raise Error on malformed input. *)

val parse_file : string -> Tree.t
(** Parse the contents of a file.  @raise Error or [Sys_error]. *)

val parse_doc : string -> Doc.t
(** [parse_doc s = Doc.of_tree (parse_string s)]. *)
