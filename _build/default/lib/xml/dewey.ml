type t = int array

let root = [||]

let check_component c =
  if c < 1 then invalid_arg "Dewey: child ranks are 1-based and positive"

let of_list cs =
  List.iter check_component cs;
  Array.of_list cs

let of_array cs =
  Array.iter check_component cs;
  Array.copy cs

let to_list = Array.to_list

let child d i =
  check_component i;
  let n = Array.length d in
  let r = Array.make (n + 1) i in
  Array.blit d 0 r 0 n;
  r

let parent d =
  match Array.length d with
  | 0 -> None
  | n -> Some (Array.sub d 0 (n - 1))

let depth = Array.length
let component d i = d.(i)

let compare a b =
  let la = Array.length a and lb = Array.length b in
  let rec loop i =
    if i >= la && i >= lb then 0
    else if i >= la then -1
    else if i >= lb then 1
    else
      let c = Stdlib.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let equal a b = compare a b = 0

let is_proper_prefix a d =
  let la = Array.length a and ld = Array.length d in
  la < ld
  &&
  let rec loop i = i >= la || (a.(i) = d.(i) && loop (i + 1)) in
  loop 0

let is_ancestor a d = is_proper_prefix a d
let is_parent p c = Array.length c = Array.length p + 1 && is_proper_prefix p c
let is_descendant d a = is_proper_prefix a d
let is_child c p = is_parent p c
let is_ancestor_or_self a d = equal a d || is_proper_prefix a d

let is_following_sibling b a =
  let lb = Array.length b in
  lb = Array.length a && lb > 0
  && is_proper_prefix (Array.sub a 0 (lb - 1)) b
  && b.(lb - 1) > a.(lb - 1)

let common_ancestor a b =
  let n = min (Array.length a) (Array.length b) in
  let rec len i = if i < n && a.(i) = b.(i) then len (i + 1) else i in
  Array.sub a 0 (len 0)

let pp ppf d =
  if Array.length d = 0 then Format.pp_print_string ppf "\xce\xb5"
  else
    Array.iteri
      (fun i c ->
        if i > 0 then Format.pp_print_char ppf '.';
        Format.pp_print_int ppf c)
      d

let to_string d = Format.asprintf "%a" pp d

let of_string s =
  if s = "" || s = "\xce\xb5" then root
  else
    let parts = String.split_on_char '.' s in
    let comp p =
      match int_of_string_opt p with
      | Some c when c >= 1 -> c
      | Some _ | None -> invalid_arg ("Dewey.of_string: bad component " ^ p)
    in
    Array.of_list (List.map comp parts)
