(** Construction-friendly XML trees.

    [Tree.t] is the immutable, pointer-based form used to author documents
    in code (examples, tests, the XMark generator) before freezing them
    into the array-based {!Doc.t} that query evaluation runs on. *)

type t = {
  tag : string;  (** element tag *)
  value : string option;  (** textual content, for leaf-like elements *)
  children : t list;
}

val el : string -> t list -> t
(** [el tag children] is an element node with no textual content. *)

val leaf : string -> string -> t
(** [leaf tag v] is an element holding the text value [v]. *)

val el_v : string -> string -> t list -> t
(** Element with both a text value and children. *)

val tag : t -> string
val value : t -> string option
val children : t -> t list

val size : t -> int
(** Number of element nodes in the tree. *)

val depth : t -> int
(** Length of the longest root-to-leaf path; a single node has depth 1. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over all element nodes. *)

val iter : (t -> unit) -> t -> unit

val tags : t -> string list
(** Distinct tags, in first-occurrence (preorder) order. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Compact single-line rendering, for debugging and test failure
    messages. *)
