(** Binary document snapshots.

    Parsing large XML files dominates query start-up, so the CLI can
    freeze a parsed {!Doc.t} into a compact binary snapshot and reload
    it in one pass.  The format is self-describing and versioned:

    {v
    magic "WPDOC" | version u8 | node count u32 |
    string table (u32 count, length-prefixed bytes) |
    per node: tag id u32 | value id u32 (0 = none) |
              parent+1 u32 | subtree_end u32
    v}

    All integers are little-endian.  Dewey labels are not stored; they
    are recomputed from the tree shape on load (cheaper than storing
    them). *)

val magic : string
val version : int

val write : out_channel -> Doc.t -> unit
val read : in_channel -> Doc.t
(** @raise Failure on a bad magic, version or truncated input. *)

val save : string -> Doc.t -> unit
val load : string -> Doc.t
(** File-path conveniences over {!write}/{!read}. *)
