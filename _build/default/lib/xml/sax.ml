type attribute = { name : string; value : string }

type event =
  | Start_element of { tag : string; attributes : attribute list }
  | End_element of string
  | Text of string
  | Cdata of string
  | Comment of string
  | Processing_instruction of string
  | Doctype of string

exception Error of { position : int; message : string }

(* A refillable byte window over the input stream.  [refill b] reads
   fresh bytes into [b] and returns how many (0 at end of stream). *)
type reader = {
  refill : bytes -> int -> int;  (* refill buf ~len -> read count *)
  mutable buf : bytes;
  mutable pos : int;  (* cursor within [buf] *)
  mutable len : int;  (* valid bytes in [buf] *)
  mutable base : int;  (* absolute offset of buf.[0] *)
  mutable at_eof : bool;  (* the refill function returned 0 *)
}

let position r = r.base + r.pos
let fail r message = raise (Error { position = position r; message })

(* Make at least [k] bytes available from the cursor, unless the stream
   ends first.  Compacts the buffer and refills. *)
let ensure r k =
  if r.pos + k > r.len && not r.at_eof then begin
    (* compact *)
    let remaining = r.len - r.pos in
    Bytes.blit r.buf r.pos r.buf 0 remaining;
    r.base <- r.base + r.pos;
    r.pos <- 0;
    r.len <- remaining;
    if k > Bytes.length r.buf then begin
      let bigger = Bytes.create (max k (2 * Bytes.length r.buf)) in
      Bytes.blit r.buf 0 bigger 0 r.len;
      r.buf <- bigger
    end;
    let rec fill () =
      if r.len < k && not r.at_eof then begin
        let n = r.refill r.buf r.len in
        if n = 0 then r.at_eof <- true else r.len <- r.len + n;
        fill ()
      end
    in
    fill ()
  end

let peek r =
  ensure r 1;
  if r.pos < r.len then Some (Bytes.get r.buf r.pos) else None

let advance r = r.pos <- r.pos + 1

let next r =
  match peek r with
  | Some c ->
      advance r;
      c
  | None -> fail r "unexpected end of input"

let expect r c =
  let c' = next r in
  if c' <> c then fail r (Printf.sprintf "expected %C, found %C" c c')

(* Does the input continue with [s] at the cursor?  Consumes it if so. *)
let looking_at r s =
  let n = String.length s in
  ensure r n;
  r.pos + n <= r.len
  && (let ok = ref true in
      for i = 0 to n - 1 do
        if Bytes.get r.buf (r.pos + i) <> s.[i] then ok := false
      done;
      if !ok then r.pos <- r.pos + n;
      !ok)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_spaces r =
  let rec go () =
    match peek r with
    | Some c when is_space c ->
        advance r;
        go ()
    | Some _ | None -> ()
  in
  go ()

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
  || Char.code c >= 128

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let scan_name r =
  let b = Buffer.create 12 in
  (match peek r with
  | Some c when is_name_start c ->
      advance r;
      Buffer.add_char b c
  | Some c -> fail r (Printf.sprintf "invalid name start %C" c)
  | None -> fail r "expected a name, found end of input");
  let rec go () =
    match peek r with
    | Some c when is_name_char c ->
        advance r;
        Buffer.add_char b c;
        go ()
    | Some _ | None -> ()
  in
  go ();
  Buffer.contents b

(* Decode an entity reference; the '&' has been consumed. *)
let scan_reference r =
  let b = Buffer.create 8 in
  let rec body () =
    match next r with
    | ';' -> Buffer.contents b
    | c when Buffer.length b > 16 ->
        ignore c;
        fail r "unterminated entity reference"
    | c ->
        Buffer.add_char b c;
        body ()
  in
  let body = body () in
  match body with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length body > 1 && body.[0] = '#' then begin
        let num = String.sub body 1 (String.length body - 1) in
        let parsed =
          if String.length num > 1 && (num.[0] = 'x' || num.[0] = 'X') then
            int_of_string_opt ("0x" ^ String.sub num 1 (String.length num - 1))
          else int_of_string_opt num
        in
        match parsed with
        | Some code when code >= 0 && code <= 0x10FFFF ->
            let b = Buffer.create 4 in
            Buffer.add_utf_8_uchar b (Uchar.of_int code);
            Buffer.contents b
        | Some _ | None -> fail r ("bad character reference &" ^ body ^ ";")
      end
      else fail r ("unknown entity &" ^ body ^ ";")

(* Collect input until the delimiter string (consumed); the delimiter is
   matched across refills with a rolling suffix check. *)
let scan_until r delim =
  let b = Buffer.create 32 in
  let n = String.length delim in
  let matches_suffix () =
    Buffer.length b >= n
    &&
    let off = Buffer.length b - n in
    let ok = ref true in
    for i = 0 to n - 1 do
      if Buffer.nth b (off + i) <> delim.[i] then ok := false
    done;
    !ok
  in
  let rec go () =
    match peek r with
    | None -> fail r (Printf.sprintf "unterminated construct (missing %s)" delim)
    | Some c ->
        advance r;
        Buffer.add_char b c;
        if matches_suffix () then Buffer.sub b 0 (Buffer.length b - n) else go ()
  in
  go ()

let scan_attribute r =
  let name = scan_name r in
  skip_spaces r;
  expect r '=';
  skip_spaces r;
  let quote =
    match next r with
    | ('"' | '\'') as q -> q
    | c -> fail r (Printf.sprintf "expected a quote, found %C" c)
  in
  let b = Buffer.create 16 in
  let rec go () =
    match next r with
    | c when c = quote -> ()
    | '&' ->
        Buffer.add_string b (scan_reference r);
        go ()
    | c ->
        Buffer.add_char b c;
        go ()
  in
  go ();
  { name; value = Buffer.contents b }

(* A text run up to the next '<' (or end of input); returns the decoded
   content, blank or not. *)
let scan_text r =
  let b = Buffer.create 32 in
  let rec go () =
    match peek r with
    | None | Some '<' -> Buffer.contents b
    | Some '&' ->
        advance r;
        Buffer.add_string b (scan_reference r);
        go ()
    | Some c ->
        advance r;
        Buffer.add_char b c;
        go ()
  in
  go ()

let parse_reader r emit =
  let stack = ref [] in
  let seen_root = ref false in
  let handle_markup () =
    (* The '<' has been consumed. *)
    if looking_at r "!--" then emit (Comment (scan_until r "-->"))
    else if looking_at r "![CDATA[" then begin
      if !stack = [] then fail r "character data outside the root element";
      emit (Cdata (scan_until r "]]>"))
    end
    else if looking_at r "!" then emit (Doctype (scan_until r ">"))
    else if looking_at r "?" then
      emit (Processing_instruction (scan_until r "?>"))
    else if looking_at r "/" then begin
      let tag = scan_name r in
      skip_spaces r;
      expect r '>';
      match !stack with
      | top :: rest ->
          if not (String.equal top tag) then
            fail r (Printf.sprintf "mismatched </%s>, expected </%s>" tag top);
          stack := rest;
          emit (End_element tag)
      | [] -> fail r (Printf.sprintf "closing tag </%s> without an opening" tag)
    end
    else begin
      let tag = scan_name r in
      if !stack = [] && !seen_root then
        fail r "a document has a single root element";
      let attributes = ref [] in
      let rec attrs () =
        skip_spaces r;
        match peek r with
        | Some '>' ->
            advance r;
            emit (Start_element { tag; attributes = List.rev !attributes });
            seen_root := true;
            stack := tag :: !stack
        | Some '/' ->
            advance r;
            expect r '>';
            emit (Start_element { tag; attributes = List.rev !attributes });
            seen_root := true;
            emit (End_element tag)
        | Some c when is_name_start c ->
            attributes := scan_attribute r :: !attributes;
            attrs ()
        | Some c -> fail r (Printf.sprintf "unexpected %C in element tag" c)
        | None -> fail r "unterminated element tag"
      in
      attrs ()
    end
  in
  let rec loop () =
    match peek r with
    | None ->
        if !stack <> [] then
          fail r (Printf.sprintf "unclosed element <%s>" (List.hd !stack))
        else if not !seen_root then fail r "no root element"
    | Some '<' ->
        advance r;
        handle_markup ();
        loop ()
    | Some _ ->
        let text = scan_text r in
        if String.exists (fun c -> not (is_space c)) text then begin
          if !stack = [] then fail r "character data outside the root element";
          emit (Text text)
        end;
        loop ()
  in
  loop ()

let reader_of_string s =
  let sent = ref false in
  {
    refill =
      (fun buf off ->
        if !sent then 0
        else begin
          sent := true;
          let n = min (String.length s) (Bytes.length buf - off) in
          Bytes.blit_string s 0 buf off n;
          (* A string longer than the buffer is handled by growing the
             buffer up front. *)
          n
        end);
    buf = Bytes.create (max 64 (String.length s));
    pos = 0;
    len = 0;
    base = 0;
    at_eof = false;
  }

let reader_of_channel ?(buffer_size = 65536) ic =
  {
    refill =
      (fun buf off -> input ic buf off (Bytes.length buf - off));
    buf = Bytes.create (max 64 buffer_size);
    pos = 0;
    len = 0;
    base = 0;
    at_eof = false;
  }

let parse_string s emit = parse_reader (reader_of_string s) emit
let parse_channel ?buffer_size ic emit =
  parse_reader (reader_of_channel ?buffer_size ic) emit

let fold_string s f init =
  let acc = ref init in
  parse_string s (fun e -> acc := f !acc e);
  !acc

(* --- Tree building over the event stream. --- *)

type frame = {
  tag : string;
  text : Buffer.t;
  mutable children_rev : Tree.t list;
}

let builder () =
  let stack : frame list ref = ref [] in
  let result : Tree.t option ref = ref None in
  let add_text frame s =
    if String.exists (fun c -> not (is_space c)) s then
      Buffer.add_string frame.text (String.trim s)
  in
  let emit event =
    match (event, !stack) with
    | Start_element { tag; attributes }, _ ->
        let frame = { tag; text = Buffer.create 8; children_rev = [] } in
        frame.children_rev <-
          List.rev_map
            (fun { name; value } -> Tree.leaf ("@" ^ name) value)
            attributes;
        stack := frame :: !stack
    | End_element _, frame :: rest ->
        let value =
          if Buffer.length frame.text = 0 then None
          else Some (Buffer.contents frame.text)
        in
        let node =
          { Tree.tag = frame.tag; value; children = List.rev frame.children_rev }
        in
        (match rest with
        | parent :: _ -> parent.children_rev <- node :: parent.children_rev
        | [] -> result := Some node);
        stack := rest
    | (Text s | Cdata s), frame :: _ -> add_text frame s
    | (Comment _ | Processing_instruction _ | Doctype _), _ -> ()
    | (End_element _ | Text _ | Cdata _), [] ->
        (* parse_reader enforces well-formedness before emitting *)
        assert false
  in
  (emit, fun () -> Option.get !result)

let tree_of_string s =
  let emit, finish = builder () in
  parse_string s emit;
  finish ()

let doc_of_channel ?buffer_size ic =
  let emit, finish = builder () in
  parse_channel ?buffer_size ic emit;
  Doc.of_tree (finish ())

let doc_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> doc_of_channel ic)
