type t =
  | Self
  | Child
  | Descendant
  | Descendant_or_self
  | Parent
  | Ancestor
  | Following_sibling

let test doc axis ~from ~target =
  match axis with
  | Self -> from = target
  | Child -> Doc.is_parent doc ~parent:from ~child:target
  | Descendant -> Doc.is_ancestor doc ~anc:from ~desc:target
  | Descendant_or_self -> from = target || Doc.is_ancestor doc ~anc:from ~desc:target
  | Parent -> Doc.is_parent doc ~parent:target ~child:from
  | Ancestor -> Doc.is_ancestor doc ~anc:target ~desc:from
  | Following_sibling ->
      Dewey.is_following_sibling (Doc.dewey doc target) (Doc.dewey doc from)

let select idx axis ~from ~tag =
  let doc = Index.doc idx in
  let has_tag i =
    String.equal tag Index.wildcard || String.equal (Doc.tag doc i) tag
  in
  match axis with
  | Self -> if has_tag from then [ from ] else []
  | Child -> Index.children idx tag ~parent:from
  | Descendant -> Index.descendants idx tag ~root:from
  | Descendant_or_self ->
      let ds = Index.descendants idx tag ~root:from in
      if has_tag from then from :: ds else ds
  | Parent -> (
      match Doc.parent doc from with
      | Some p when has_tag p -> [ p ]
      | Some _ | None -> [])
  | Ancestor ->
      let rec up acc i =
        match Doc.parent doc i with
        | None -> acc
        | Some p -> up (if has_tag p then p :: acc else acc) p
      in
      up [] from
  | Following_sibling -> (
      match Doc.parent doc from with
      | None -> []
      | Some p ->
          List.filter
            (fun c -> c > from && has_tag c)
            (Doc.children doc p))

let to_string = function
  | Self -> "self"
  | Child -> "child"
  | Descendant -> "descendant"
  | Descendant_or_self -> "descendant-or-self"
  | Parent -> "parent"
  | Ancestor -> "ancestor"
  | Following_sibling -> "following-sibling"

let pp ppf a = Format.pp_print_string ppf (to_string a)
let equal (a : t) (b : t) = a = b
