lib/xml/doc.ml: Array Dewey Format Hashtbl List Tree
