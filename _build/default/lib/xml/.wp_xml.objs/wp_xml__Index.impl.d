lib/xml/index.ml: Array Doc Fun Hashtbl List Option String
