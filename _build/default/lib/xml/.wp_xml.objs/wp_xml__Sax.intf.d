lib/xml/sax.mli: Doc Tree
