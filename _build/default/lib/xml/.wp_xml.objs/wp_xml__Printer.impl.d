lib/xml/printer.ml: Buffer Doc Format List Option String Tree
