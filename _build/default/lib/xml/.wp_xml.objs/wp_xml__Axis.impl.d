lib/xml/axis.ml: Dewey Doc Format Index List String
