lib/xml/doc_io.mli: Doc
