lib/xml/sax.ml: Buffer Bytes Char Doc Fun List Option Printf String Tree Uchar
