lib/xml/axis.mli: Doc Format Index
