lib/xml/parser.ml: Buffer Char Doc Fun List Printf String Tree Uchar
