lib/xml/doc_io.ml: Array Doc Fun Hashtbl List Option Printf String
