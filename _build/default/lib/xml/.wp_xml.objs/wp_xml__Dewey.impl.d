lib/xml/dewey.ml: Array Format List Stdlib String
