lib/xml/index.mli: Doc
