lib/xml/printer.mli: Buffer Doc Format Tree
