lib/xml/tree.ml: Format Hashtbl List Option String
