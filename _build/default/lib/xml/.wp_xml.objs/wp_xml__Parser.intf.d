lib/xml/parser.mli: Doc Tree
