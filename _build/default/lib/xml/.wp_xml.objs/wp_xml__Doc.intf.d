lib/xml/doc.mli: Dewey Format Tree
