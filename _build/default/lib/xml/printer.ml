let escaped_entity = function
  | '&' -> Some "&amp;"
  | '<' -> Some "&lt;"
  | '>' -> Some "&gt;"
  | '"' -> Some "&quot;"
  | '\'' -> Some "&apos;"
  | _ -> None

let escape s =
  if String.for_all (fun c -> escaped_entity c = None) s then s
  else begin
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match escaped_entity c with
        | Some e -> Buffer.add_string b e
        | None -> Buffer.add_char b c)
      s;
    Buffer.contents b
  end

let escaped_length s =
  let n = ref 0 in
  String.iter
    (fun c ->
      n := !n + (match escaped_entity c with Some e -> String.length e | None -> 1))
    s;
  !n

(* A child printed as an attribute: tagged "@name", no children (the
   inverse of the parser's attribute encoding). *)
let is_attribute (t : Tree.t) =
  String.length t.tag > 1 && t.tag.[0] = '@' && t.children = []

let split_children (t : Tree.t) = List.partition is_attribute t.children

let add_attribute b (a : Tree.t) =
  Buffer.add_char b ' ';
  Buffer.add_string b (String.sub a.tag 1 (String.length a.tag - 1));
  Buffer.add_string b "=\"";
  Option.iter (fun v -> Buffer.add_string b (escape v)) a.value;
  Buffer.add_char b '"'

let rec tree_to_buffer b (t : Tree.t) =
  let attrs, elements = split_children t in
  Buffer.add_char b '<';
  Buffer.add_string b t.tag;
  List.iter (add_attribute b) attrs;
  match (t.value, elements) with
  | None, [] -> Buffer.add_string b "/>"
  | v, cs ->
      Buffer.add_char b '>';
      Option.iter (fun s -> Buffer.add_string b (escape s)) v;
      List.iter (tree_to_buffer b) cs;
      Buffer.add_string b "</";
      Buffer.add_string b t.tag;
      Buffer.add_char b '>'

let tree_to_string t =
  let b = Buffer.create 1024 in
  tree_to_buffer b t;
  Buffer.contents b

let doc_to_string d = tree_to_string (Doc.to_tree d (Doc.root d))

let rec pp_tree_indented indent ppf (t : Tree.t) =
  let attrs, elements = split_children t in
  let pp_attrs ppf =
    List.iter
      (fun (a : Tree.t) ->
        Format.fprintf ppf " %s=\"%s\""
          (String.sub a.Tree.tag 1 (String.length a.Tree.tag - 1))
          (escape (Option.value a.Tree.value ~default:"")))
      attrs
  in
  match (t.value, elements) with
  | None, [] -> Format.fprintf ppf "%s<%s%t/>" indent t.tag pp_attrs
  | Some v, [] ->
      Format.fprintf ppf "%s<%s%t>%s</%s>" indent t.tag pp_attrs (escape v) t.tag
  | v, cs ->
      Format.fprintf ppf "%s<%s%t>" indent t.tag pp_attrs;
      Option.iter (fun s -> Format.fprintf ppf "%s" (escape s)) v;
      let indent' = indent ^ "  " in
      List.iter
        (fun c ->
          Format.pp_print_newline ppf ();
          pp_tree_indented indent' ppf c)
        cs;
      Format.pp_print_newline ppf ();
      Format.fprintf ppf "%s</%s>" indent t.tag

let pp_tree ppf t = pp_tree_indented "" ppf t

let to_channel oc (t : Tree.t) =
  (* Flush the buffer at element boundaries to bound memory on big docs. *)
  let b = Buffer.create 65536 in
  let flush_if_large () =
    if Buffer.length b > 32768 then begin
      Buffer.output_buffer oc b;
      Buffer.clear b
    end
  in
  let rec go (t : Tree.t) =
    let attrs, elements = split_children t in
    Buffer.add_char b '<';
    Buffer.add_string b t.tag;
    List.iter (add_attribute b) attrs;
    (match (t.value, elements) with
    | None, [] -> Buffer.add_string b "/>"
    | v, cs ->
        Buffer.add_char b '>';
        Option.iter (fun s -> Buffer.add_string b (escape s)) v;
        List.iter go cs;
        Buffer.add_string b "</";
        Buffer.add_string b t.tag;
        Buffer.add_char b '>');
    flush_if_large ()
  in
  go t;
  Buffer.output_buffer oc b

(* Byte accounting mirrors tree_to_buffer; kept in sync by a unit test.
   [full_tag] still carries its '@' prefix: space + name + '="' + value +
   '"' is one byte more than the prefixed tag length plus 3. *)
let attribute_bytes full_tag value =
  String.length full_tag + 3
  + match value with Some v -> escaped_length v | None -> 0

let doc_serialized_size d =
  let rec node_bytes i =
    let tl = String.length (Doc.tag d i) in
    let children = Doc.children d i in
    let attrs, elements =
      List.partition
        (fun c ->
          let t = Doc.tag d c in
          String.length t > 1 && t.[0] = '@' && Doc.subtree_end d c = c + 1)
        children
    in
    let attr_bytes =
      List.fold_left
        (fun acc a -> acc + attribute_bytes (Doc.tag d a) (Doc.value d a))
        0 attrs
    in
    match (Doc.value d i, elements) with
    | None, [] -> tl + 3 + attr_bytes
    | v, cs ->
        (2 * tl) + 5 + attr_bytes
        + (match v with Some s -> escaped_length s | None -> 0)
        + List.fold_left (fun acc c -> acc + node_bytes c) 0 cs
  in
  node_bytes (Doc.root d)
