type node_id = int

type t = {
  tags : string array;
  values : string option array;
  deweys : Dewey.t array;
  parents : int array;  (* -1 for the root *)
  subtree_ends : int array;  (* exclusive *)
}

let of_tree tree =
  let n = Tree.size tree in
  let tags = Array.make n "" in
  let values = Array.make n None in
  let deweys = Array.make n Dewey.root in
  let parents = Array.make n (-1) in
  let subtree_ends = Array.make n 0 in
  (* Preorder numbering; [next] is the next free id. *)
  let next = ref 0 in
  let rec assign parent dewey (node : Tree.t) =
    let id = !next in
    incr next;
    tags.(id) <- Tree.tag node;
    values.(id) <- Tree.value node;
    deweys.(id) <- dewey;
    parents.(id) <- parent;
    List.iteri
      (fun i child -> assign id (Dewey.child dewey (i + 1)) child)
      (Tree.children node);
    subtree_ends.(id) <- !next
  in
  assign (-1) Dewey.root tree;
  { tags; values; deweys; parents; subtree_ends }

let of_forest ?(root_tag = "doc-root") trees =
  of_tree (Tree.el root_tag trees)

let of_components ~tags ~values ~parents =
  let n = Array.length tags in
  if Array.length values <> n || Array.length parents <> n then
    invalid_arg "Doc.of_components: array lengths differ";
  if n = 0 then invalid_arg "Doc.of_components: empty document";
  if parents.(0) <> -1 then
    invalid_arg "Doc.of_components: node 0 must be the root";
  for i = 1 to n - 1 do
    if parents.(i) < 0 || parents.(i) >= i then
      invalid_arg "Doc.of_components: parents must precede children"
  done;
  (* Subtree extents: scanning ids backwards, a child's extent is final
     before its parent's is read. *)
  let subtree_ends = Array.init n (fun i -> i + 1) in
  for i = n - 1 downto 1 do
    let p = parents.(i) in
    if subtree_ends.(i) > subtree_ends.(p) then
      subtree_ends.(p) <- subtree_ends.(i)
  done;
  (* Dewey labels from per-parent child ranks. *)
  let next_rank = Array.make n 0 in
  let deweys = Array.make n Dewey.root in
  for i = 1 to n - 1 do
    let p = parents.(i) in
    next_rank.(p) <- next_rank.(p) + 1;
    deweys.(i) <- Dewey.child deweys.(p) next_rank.(p)
  done;
  {
    tags = Array.copy tags;
    values = Array.copy values;
    deweys;
    parents = Array.copy parents;
    subtree_ends;
  }

let root _ = 0
let size d = Array.length d.tags
let tag d i = d.tags.(i)
let value d i = d.values.(i)
let dewey d i = d.deweys.(i)
let parent d i = if d.parents.(i) < 0 then None else Some d.parents.(i)
let depth d i = Dewey.depth d.deweys.(i)
let subtree_end d i = d.subtree_ends.(i)

let children d i =
  let stop = d.subtree_ends.(i) in
  let rec loop j acc =
    if j >= stop then List.rev acc
    else loop d.subtree_ends.(j) (j :: acc)
  in
  loop (i + 1) []

let is_parent d ~parent:p ~child:c = d.parents.(c) = p
let is_ancestor d ~anc ~desc = anc < desc && desc < d.subtree_ends.(anc)

let rec to_tree d i =
  let cs = List.map (to_tree d) (children d i) in
  { Tree.tag = d.tags.(i); value = d.values.(i); children = cs }

let fold f d acc =
  let r = ref acc in
  for i = 0 to size d - 1 do
    r := f i !r
  done;
  !r

let distinct_tags d =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  Array.iter
    (fun t ->
      if not (Hashtbl.mem seen t) then begin
        Hashtbl.add seen t ();
        out := t :: !out
      end)
    d.tags;
  List.rev !out

let pp_node d ppf i =
  Format.fprintf ppf "%s[%a]" d.tags.(i) Dewey.pp d.deweys.(i);
  match d.values.(i) with
  | None -> ()
  | Some v -> Format.fprintf ppf "(%s)" v
