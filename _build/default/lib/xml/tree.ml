type t = { tag : string; value : string option; children : t list }

let el tag children = { tag; value = None; children }
let leaf tag v = { tag; value = Some v; children = [] }
let el_v tag v children = { tag; value = Some v; children }
let tag t = t.tag
let value t = t.value
let children t = t.children

let rec size t = List.fold_left (fun acc c -> acc + size c) 1 t.children

let rec depth t =
  1 + List.fold_left (fun acc c -> max acc (depth c)) 0 t.children

let rec fold f acc t = List.fold_left (fold f) (f acc t) t.children
let rec iter f t = f t; List.iter (iter f) t.children

let tags t =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  iter
    (fun n ->
      if not (Hashtbl.mem seen n.tag) then begin
        Hashtbl.add seen n.tag ();
        out := n.tag :: !out
      end)
    t;
  List.rev !out

let rec equal a b =
  String.equal a.tag b.tag
  && Option.equal String.equal a.value b.value
  && List.equal equal a.children b.children

let rec pp ppf t =
  match (t.value, t.children) with
  | None, [] -> Format.fprintf ppf "<%s/>" t.tag
  | Some v, [] -> Format.fprintf ppf "<%s>%s</%s>" t.tag v t.tag
  | v, cs ->
      Format.fprintf ppf "<%s>" t.tag;
      Option.iter (Format.pp_print_string ppf) v;
      List.iter (pp ppf) cs;
      Format.fprintf ppf "</%s>" t.tag
