module Doc = Wp_xml.Doc
module Index = Wp_xml.Index
module Axis = Wp_xml.Axis

type embedding = Doc.node_id option array

let axis_of_edge = function Pattern.Pc -> Axis.Child | Pattern.Ad -> Axis.Descendant

let value_ok doc pat i n =
  match Pattern.value pat i with
  | None -> true
  | Some v -> (
      match Doc.value doc n with Some v' -> String.equal v v' | None -> false)

(* Candidate document nodes for pattern node [i], given the document node
   its pattern parent is bound to. *)
let candidates idx pat i ~from =
  let doc = Index.doc idx in
  let edge = if i = 0 then Pattern.root_edge pat else Pattern.edge pat i in
  let nodes = Axis.select idx (axis_of_edge edge) ~from ~tag:(Pattern.tag pat i) in
  List.filter (value_ok doc pat i) nodes

let root_candidates idx pat =
  candidates idx pat 0 ~from:(Doc.root (Index.doc idx))

let iter_embeddings idx pat f =
  let size = Pattern.size pat in
  let binding = Array.make size (-1) in
  let rec assign i =
    if i >= size then f (Array.copy binding)
    else begin
      let from =
        if i = 0 then Doc.root (Index.doc idx)
        else binding.(Option.get (Pattern.parent pat i))
      in
      let cands = candidates idx pat i ~from in
      List.iter
        (fun n ->
          binding.(i) <- n;
          assign (i + 1))
        cands
    end
  in
  assign 0

let count_embeddings idx pat =
  let n = ref 0 in
  iter_embeddings idx pat (fun _ -> incr n);
  !n

let matching_roots idx pat =
  let seen = Hashtbl.create 16 in
  iter_embeddings idx pat (fun b ->
      if not (Hashtbl.mem seen b.(0)) then Hashtbl.add seen b.(0) ());
  List.sort Stdlib.compare (Hashtbl.fold (fun k () acc -> k :: acc) seen [])

let iter_outer_embeddings idx pat f =
  let size = Pattern.size pat in
  let binding : embedding = Array.make size None in
  (* Pattern ids are preorder ranks, so processing 0..size-1 visits every
     parent before its children.  The root is mandatory; below it, a node
     is bound whenever a satisfying document node exists under its bound
     parent, and left unbound (together with its whole pattern subtree)
     otherwise. *)
  let rec assign i =
    if i >= size then f (Array.copy binding)
    else begin
      match binding.(Option.get (Pattern.parent pat i)) with
      | None ->
          binding.(i) <- None;
          assign (i + 1)
      | Some from -> (
          match candidates idx pat i ~from with
          | [] ->
              binding.(i) <- None;
              assign (i + 1)
          | cands ->
              List.iter
                (fun n ->
                  binding.(i) <- Some n;
                  assign (i + 1))
                cands)
    end
  in
  List.iter
    (fun r ->
      binding.(0) <- Some r;
      assign 1)
    (root_candidates idx pat)

let count_outer_embeddings idx pat =
  let n = ref 0 in
  iter_outer_embeddings idx pat (fun _ -> incr n);
  !n
