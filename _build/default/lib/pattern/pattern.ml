type edge = Pc | Ad

type spec = {
  tag : string;
  value : string option;
  children : (edge * spec) list;
}

type node_id = int

type t = {
  tags : string array;
  values : string option array;
  parents : int array;  (* -1 for the root *)
  edges : edge array;  (* edges.(0) is the root edge to the document root *)
}

let n ?value tag children = { tag; value; children }

let spec_size spec =
  let rec go s = List.fold_left (fun acc (_, c) -> acc + go c) 1 s.children in
  go spec

let of_spec ?(root_edge = Ad) spec =
  let size = spec_size spec in
  let tags = Array.make size "" in
  let values = Array.make size None in
  let parents = Array.make size (-1) in
  let edges = Array.make size root_edge in
  let next = ref 0 in
  let rec assign parent edge s =
    let id = !next in
    incr next;
    tags.(id) <- s.tag;
    values.(id) <- s.value;
    parents.(id) <- parent;
    edges.(id) <- edge;
    List.iter (fun (e, c) -> assign id e c) s.children
  in
  assign (-1) root_edge spec;
  { tags; values; parents; edges }

let root _ = 0
let size p = Array.length p.tags
let root_edge p = p.edges.(0)
let tag p i = p.tags.(i)
let value p i = p.values.(i)
let parent p i = if p.parents.(i) < 0 then None else Some p.parents.(i)

let edge p i =
  if i = 0 then invalid_arg "Pattern.edge: the root has no parent edge"
  else p.edges.(i)

let children p i =
  let out = ref [] in
  for j = size p - 1 downto i + 1 do
    if p.parents.(j) = i then out := j :: !out
  done;
  !out

let is_strict_descendant p ~anc j =
  let rec up k = k >= 0 && (p.parents.(k) = anc || up p.parents.(k)) in
  up j

let descendants p i =
  let out = ref [] in
  for j = size p - 1 downto i + 1 do
    if is_strict_descendant p ~anc:i j then out := j :: !out
  done;
  !out

(* Nearest ancestor first. *)
let ancestors p i =
  let rec up acc k =
    if p.parents.(k) < 0 then List.rev acc
    else up (p.parents.(k) :: acc) p.parents.(k)
  in
  up [] i

let is_leaf p i = children p i = []
let node_ids p = List.init (size p) Fun.id

let path_edges p anc desc =
  let rec up acc k =
    if k = anc then Some acc
    else if k <= 0 then None
    else up (p.edges.(k) :: acc) p.parents.(k)
  in
  if anc = desc then Some [] else up [] desc

let to_spec p =
  let rec go i =
    {
      tag = p.tags.(i);
      value = p.values.(i);
      children = List.map (fun c -> (p.edges.(c), go c)) (children p i);
    }
  in
  go 0

let equal a b =
  size a = size b
  && a.tags = b.tags && a.values = b.values && a.parents = b.parents
  && a.edges = b.edges

let pp_edge ppf = function
  | Pc -> Format.pp_print_string ppf "/"
  | Ad -> Format.pp_print_string ppf "//"

let pp ppf p =
  (* Reconstructs XPath syntax: inside predicates a chain of only-children
     prints as a path (./a/b/c); branching prints as [pred and pred].  The
     returned node (the query root) always keeps the bracket form, since
     the grammar's top level is a single step. *)
  let rec pp_step ~top ppf i =
    Format.pp_print_string ppf p.tags.(i);
    (match (children p i, p.values.(i)) with
    | [], _ -> ()
    | [ c ], None when not top ->
        pp_edge ppf p.edges.(c);
        pp_step ~top:false ppf c
    | cs, _ ->
        Format.pp_print_char ppf '[';
        List.iteri
          (fun k c ->
            if k > 0 then Format.pp_print_string ppf " and ";
            pp_pred ppf c)
          cs;
        Format.pp_print_char ppf ']');
    match p.values.(i) with
    | None -> ()
    | Some v -> Format.fprintf ppf " = '%s'" v
  and pp_pred ppf i =
    Format.pp_print_char ppf '.';
    pp_edge ppf p.edges.(i);
    pp_step ~top:false ppf i
  in
  pp_edge ppf p.edges.(0);
  pp_step ~top:true ppf 0

let to_string p = Format.asprintf "%a" pp p
