(** Tree-pattern queries — the XPath subset of the paper.

    A pattern is a rooted tree whose nodes carry element tags (leaves may
    additionally require a content value) and whose edges are XPath axes:
    [Pc] (parent-child) or [Ad] (ancestor-descendant).  The pattern root
    is the returned node; its own [root_edge] relates it to the document
    root ([Pc] for queries written [/tag...], [Ad] for [//tag...]).

    Node identifiers are preorder ranks within the pattern: the root is
    [0] and every node's parent has a smaller id. *)

type edge = Pc | Ad

type spec = {
  tag : string;
  value : string option;
  children : (edge * spec) list;
}
(** Inductive form used to author patterns in code. *)

type node_id = int

type t

val of_spec : ?root_edge:edge -> spec -> t
(** Freeze a pattern; [root_edge] defaults to [Ad] (i.e. [//tag...]). *)

val n : ?value:string -> string -> (edge * spec) list -> spec
(** Spec builder: [n "item" [ (Pc, n "name" []) ]]. *)

val root : t -> node_id
val size : t -> int
val root_edge : t -> edge

val tag : t -> node_id -> string
val value : t -> node_id -> string option

val parent : t -> node_id -> node_id option
(** [None] on the pattern root. *)

val edge : t -> node_id -> edge
(** The axis between a non-root node and its parent.
    @raise Invalid_argument on the root. *)

val children : t -> node_id -> node_id list
val descendants : t -> node_id -> node_id list
(** Proper descendants, in preorder. *)

val ancestors : t -> node_id -> node_id list
(** Proper ancestors, nearest first. *)

val is_leaf : t -> node_id -> bool
val node_ids : t -> node_id list
(** All ids in preorder, i.e. [0 .. size-1]. *)

val path_edges : t -> node_id -> node_id -> edge list option
(** [path_edges p anc desc] is the downward edge sequence from [anc] to
    [desc] when [anc] is an ancestor-or-self of [desc] ([Some []] when
    equal), and [None] otherwise. *)

val to_spec : t -> spec
val equal : t -> t -> bool

val pp_edge : Format.formatter -> edge -> unit

val pp : Format.formatter -> t -> unit
(** Prints the pattern back in XPath syntax, e.g.
    [//item\[./description/parlist and ./mailbox/mail/text\]]. *)

val to_string : t -> string
