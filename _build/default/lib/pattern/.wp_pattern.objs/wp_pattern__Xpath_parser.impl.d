lib/pattern/xpath_parser.ml: List Pattern Printf String
