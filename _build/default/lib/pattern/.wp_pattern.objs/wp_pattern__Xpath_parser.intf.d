lib/pattern/xpath_parser.mli: Pattern
