lib/pattern/matcher.ml: Array Hashtbl List Option Pattern Stdlib String Wp_xml
