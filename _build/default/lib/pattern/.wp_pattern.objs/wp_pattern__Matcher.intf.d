lib/pattern/matcher.mli: Pattern Wp_xml
