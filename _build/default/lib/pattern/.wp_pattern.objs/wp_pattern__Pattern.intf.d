lib/pattern/pattern.mli: Format
