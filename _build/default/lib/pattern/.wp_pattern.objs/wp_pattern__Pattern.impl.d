lib/pattern/pattern.ml: Array Format Fun List
