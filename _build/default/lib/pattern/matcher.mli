(** Naive exact tree-pattern matcher.

    Enumerates every embedding of a pattern into a document by exhaustive
    search.  This is the reference semantics the Whirlpool engine is
    tested against, and the source of the "maximum possible number of
    partial matches" baseline (paper's Table 2): with outer-join
    semantics, a pattern embedding may leave non-root nodes unbound.

    An embedding maps each pattern node to a document node satisfying the
    tag, value and axis constraints; [None] entries appear only in
    {e partial} embeddings produced by {!iter_outer_embeddings}. *)

type embedding = Wp_xml.Doc.node_id option array
(** Indexed by pattern node id; [Some n] binds the pattern node to [n]. *)

val iter_embeddings :
  Wp_xml.Index.t -> Pattern.t -> (Wp_xml.Doc.node_id array -> unit) -> unit
(** Iterate all {e complete, exact} embeddings (every pattern node bound,
    every edge satisfied literally). *)

val count_embeddings : Wp_xml.Index.t -> Pattern.t -> int

val matching_roots : Wp_xml.Index.t -> Pattern.t -> Wp_xml.Doc.node_id list
(** Distinct document nodes that root at least one exact embedding, in
    document order. *)

val root_candidates : Wp_xml.Index.t -> Pattern.t -> Wp_xml.Doc.node_id list
(** Document nodes matching just the pattern root (tag, value and the
    root edge) — the tuples the root server generates. *)

val iter_outer_embeddings :
  Wp_xml.Index.t -> Pattern.t -> (embedding -> unit) -> unit
(** Iterate all maximal outer-join embeddings: each pattern node below a
    bound node is bound when a satisfying document node exists and left
    [None] otherwise; one embedding is produced per combination of bound
    nodes.  This is the match space explored by LockStep-NoPrun. *)

val count_outer_embeddings : Wp_xml.Index.t -> Pattern.t -> int
