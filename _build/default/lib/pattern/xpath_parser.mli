(** Parser for the XPath subset that maps onto tree patterns.

    Grammar (whitespace is insignificant outside quoted strings):

    {v
    query  ::= ('/' | '//') step
    step   ::= name ('[' pred ('and' pred)* ']')? ('=' string)?
    pred   ::= '.' ('/' | '//') step ('/' | '//' step)*      -- a path
    string ::= "'" chars "'"  |  '"' chars '"'
    name   ::= XML name (also '@name' for attribute children)
    v}

    A path inside a predicate, e.g. [./mailbox/mail/text], denotes a chain
    of pattern nodes linked by the written axes; a trailing [= 'v']
    constrains the content of the last node of the chain.  This covers all
    queries in the paper (Figures 2 and Section 6.2.1). *)

exception Error of { position : int; message : string }

val parse : string -> Pattern.t
(** @raise Error on input outside the grammar. *)

val parse_opt : string -> Pattern.t option
