module Pattern = Wp_pattern.Pattern
module Doc = Wp_xml.Doc

type t = { min_depth : int; max_depth : int option }

let child = { min_depth = 1; max_depth = Some 1 }
let descendant = { min_depth = 1; max_depth = None }

let of_edge = function Pattern.Pc -> child | Pattern.Ad -> descendant

let compose a b =
  {
    min_depth = a.min_depth + b.min_depth;
    max_depth =
      (match (a.max_depth, b.max_depth) with
      | Some x, Some y -> Some (x + y)
      | Some _, None | None, Some _ | None, None -> None);
  }

let of_edges = function
  | [] -> invalid_arg "Relation.of_edges: empty path"
  | e :: es -> List.fold_left (fun acc e -> compose acc (of_edge e)) (of_edge e) es

let generalize r = { r with max_depth = None }

(* Promotion re-attaches the subtree with an [Ad] edge, so both bounds
   collapse: the target may land at any depth below the new parent. *)
let promote _ = descendant

let is_subrelation a b =
  b.min_depth <= a.min_depth
  &&
  match (a.max_depth, b.max_depth) with
  | _, None -> true
  | None, Some _ -> false
  | Some x, Some y -> x <= y

let equal (a : t) (b : t) = a = b

let test_depths r ~anc_depth ~desc_depth =
  let diff = desc_depth - anc_depth in
  diff >= r.min_depth
  && match r.max_depth with None -> true | Some m -> diff <= m

let test doc r ~anc ~desc =
  Doc.is_ancestor doc ~anc ~desc
  && test_depths r ~anc_depth:(Doc.depth doc anc) ~desc_depth:(Doc.depth doc desc)

let pp ppf r =
  match (r.min_depth, r.max_depth) with
  | 1, Some 1 -> Format.pp_print_string ppf "child"
  | 1, None -> Format.pp_print_string ppf "descendant"
  | lo, Some hi when lo = hi -> Format.fprintf ppf "descendant@depth=%d" lo
  | lo, Some hi -> Format.fprintf ppf "descendant@depth=%d..%d" lo hi
  | lo, None -> Format.fprintf ppf "descendant@depth>=%d" lo

let to_string r = Format.asprintf "%a" pp r
