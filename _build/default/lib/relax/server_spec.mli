(** Per-server predicate generation — the paper's Algorithm 1.

    Each query node becomes a server.  Because adaptive routing lets
    partial matches reach a server with {e any} subset of the other nodes
    bound, the server cannot rely on specific predecessors: it keeps
    (i) a {e structural predicate} relating it to the query root (always
    bound), used for the index lookup that produces candidate extensions,
    and (ii) a {e conditional predicate sequence} — for every pattern
    ancestor and descendant, the composed exact relation followed by its
    permitted relaxation — checked against whichever of those nodes are
    bound in the incoming partial match. *)

type conditional = {
  other : Wp_pattern.Pattern.node_id;  (** the related query node *)
  downward : bool;
      (** [true] when the server node is the ancestor side of the pair *)
  exact : Relation.t;  (** composed relation of the pattern path *)
  relaxed : Relation.t option;
      (** the permitted relaxation, when it differs from [exact] *)
  hard : bool;
      (** whether failing even the most relaxed level invalidates the
          match (with subtree promotion enabled, only the root predicate
          is hard) *)
}

type t = {
  node : Wp_pattern.Pattern.node_id;
  tag : string;
  value : string option;
  to_root : conditional;
      (** structural predicate; for the root server itself this is the
          root-edge predicate w.r.t. the document root *)
  conditionals : conditional list;
      (** vs. proper pattern ancestors (excluding the root, covered by
          [to_root]) and descendants, in pattern preorder *)
  optional : bool;
      (** leaf deletion permits leaving this node unbound *)
}

val build : Relaxation.config -> Wp_pattern.Pattern.t -> t array
(** One spec per pattern node, indexed by pattern node id. *)

val candidate_relation : t -> Relation.t
(** The relation actually used for candidate retrieval under the root
    binding: the relaxed level of [to_root] when present, its exact level
    otherwise. *)

val pp : Format.formatter -> t -> unit
