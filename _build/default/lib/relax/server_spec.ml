module Pattern = Wp_pattern.Pattern

type conditional = {
  other : Pattern.node_id;
  downward : bool;
  exact : Relation.t;
  relaxed : Relation.t option;
  hard : bool;
}

type t = {
  node : Pattern.node_id;
  tag : string;
  value : string option;
  to_root : conditional;
  conditionals : conditional list;
  optional : bool;
}

let some_if_differs exact relaxed =
  if Relation.equal exact relaxed then None else Some relaxed

let edges_between pat ~anc ~desc =
  match Pattern.path_edges pat anc desc with
  | Some (_ :: _ as edges) -> edges
  | Some [] | None ->
      invalid_arg "Server_spec: nodes are not in ancestor-descendant position"

(* Relation of the server node to the query root (or, for the root
   itself, to the document root via the pattern's root edge). *)
let root_conditional (config : Relaxation.config) pat node =
  if node = Pattern.root pat then begin
    let exact = Relation.of_edge (Pattern.root_edge pat) in
    let relaxed =
      if config.edge_generalization then Relation.generalize exact else exact
    in
    { other = -1; downward = false; exact; relaxed = some_if_differs exact relaxed;
      hard = true }
  end
  else begin
    let exact = Relation.of_edges (edges_between pat ~anc:(Pattern.root pat) ~desc:node) in
    let relaxed = Relaxation.relax_to_root config exact in
    { other = Pattern.root pat; downward = false; exact;
      relaxed = some_if_differs exact relaxed; hard = true }
  end

(* Conditional towards a non-root pattern ancestor [a] of the server
   node.  With subtree promotion the node may escape [a]'s subtree
   entirely, so the predicate is soft (score-only); otherwise it is a
   hard consistency requirement whenever [a] is bound. *)
let ancestor_conditional (config : Relaxation.config) pat node a =
  let exact = Relation.of_edges (edges_between pat ~anc:a ~desc:node) in
  let relaxed = Relaxation.relax_internal config exact in
  {
    other = a;
    downward = false;
    exact;
    relaxed = some_if_differs exact relaxed;
    hard = not config.subtree_promotion;
  }

(* Conditional towards a pattern descendant [d] of the server node:
   promotion moves whole subtrees, so a bound descendant may have been
   promoted out of the server node's subtree. *)
let descendant_conditional (config : Relaxation.config) pat node d =
  let exact = Relation.of_edges (edges_between pat ~anc:node ~desc:d) in
  let relaxed = Relaxation.relax_internal config exact in
  {
    other = d;
    downward = true;
    exact;
    relaxed = some_if_differs exact relaxed;
    hard = not config.subtree_promotion;
  }

let build_one config pat node =
  let root = Pattern.root pat in
  let ancestors =
    List.filter (fun a -> a <> root) (Pattern.ancestors pat node)
  in
  let conditionals =
    List.map (ancestor_conditional config pat node) ancestors
    @ List.map (descendant_conditional config pat node) (Pattern.descendants pat node)
  in
  let conditionals =
    List.sort (fun a b -> Stdlib.compare a.other b.other) conditionals
  in
  {
    node;
    tag = Pattern.tag pat node;
    value = Pattern.value pat node;
    to_root = root_conditional config pat node;
    conditionals;
    optional = (node <> root && config.leaf_deletion);
  }

let build config pat =
  Array.init (Pattern.size pat) (fun node -> build_one config pat node)

let candidate_relation spec =
  match spec.to_root.relaxed with
  | Some r -> r
  | None -> spec.to_root.exact

let pp_conditional ppf c =
  Format.fprintf ppf "%s q%d: %a%a%s"
    (if c.downward then "to" else "from")
    c.other Relation.pp c.exact
    (fun ppf -> function
      | None -> ()
      | Some r -> Format.fprintf ppf " else %a" Relation.pp r)
    c.relaxed
    (if c.hard then " [hard]" else "")

let pp ppf t =
  Format.fprintf ppf "@[<v 2>server q%d <%s%s>%s@,root: %a" t.node t.tag
    (match t.value with None -> "" | Some v -> "='" ^ v ^ "'")
    (if t.optional then " (optional)" else "")
    pp_conditional t.to_root;
  List.iter (fun c -> Format.fprintf ppf "@,cond: %a" pp_conditional c) t.conditionals;
  Format.fprintf ppf "@]"
