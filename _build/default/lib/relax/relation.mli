(** Composed binary structural relations.

    Composing the axes along a tree-pattern path yields a binary relation
    between the path's endpoints that is checkable from Dewey labels
    alone: "proper descendant with depth difference in [min_depth,
    max_depth]".  A pure parent-child chain of length [k] composes to
    exactly depth [k]; any [Ad] edge on the path removes the upper bound.
    These relations are what the paper's conditional predicate sequences
    test, ordered from most to least specific (e.g. "if not child, then
    descendant"). *)

type t = { min_depth : int; max_depth : int option }
(** Invariant: [min_depth >= 1] and [max_depth >= min_depth] when
    present.  The relation holds between [anc] and [desc] iff [desc] is a
    proper descendant of [anc] with depth difference within bounds. *)

val child : t
val descendant : t
(** [child] = depth exactly 1; [descendant] = any depth >= 1. *)

val of_edge : Wp_pattern.Pattern.edge -> t

val compose : t -> t -> t
(** Relation of a path split into two consecutive segments. *)

val of_edges : Wp_pattern.Pattern.edge list -> t
(** Composed relation of a full edge path.
    @raise Invalid_argument on the empty path. *)

val generalize : t -> t
(** Drop the upper depth bound (edge generalization applied to every [Pc]
    edge of the underlying path). *)

val promote : t -> t
(** Allow the target to hang anywhere below the source (the closure of
    subtree promotion re-attaches with an [Ad] edge): both depth bounds
    collapse, yielding {!descendant}. *)

val is_subrelation : t -> t -> bool
(** [is_subrelation a b] iff every pair related by [a] is related by
    [b]. *)

val equal : t -> t -> bool

val test : Wp_xml.Doc.t -> t -> anc:Wp_xml.Doc.node_id -> desc:Wp_xml.Doc.node_id -> bool

val test_depths : t -> anc_depth:int -> desc_depth:int -> bool
(** The depth component of {!test}, for candidates already known to lie
    in the ancestor's subtree (e.g. drawn from an index subtree slice). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
