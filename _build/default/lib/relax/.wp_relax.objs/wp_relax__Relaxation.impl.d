lib/relax/relaxation.ml: Format Hashtbl List Printf Queue Relation String Wp_pattern
