lib/relax/relaxation.mli: Format Relation Wp_pattern
