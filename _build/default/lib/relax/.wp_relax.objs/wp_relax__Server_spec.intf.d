lib/relax/server_spec.mli: Format Relation Relaxation Wp_pattern
