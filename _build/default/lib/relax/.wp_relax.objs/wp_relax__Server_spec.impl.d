lib/relax/server_spec.ml: Array Format List Relation Relaxation Stdlib Wp_pattern
