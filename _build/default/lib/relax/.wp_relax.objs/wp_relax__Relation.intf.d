lib/relax/relation.mli: Format Wp_pattern Wp_xml
