lib/relax/relation.ml: Format List Wp_pattern Wp_xml
