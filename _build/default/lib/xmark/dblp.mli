(** DBLP-style bibliography generator — a second evaluation corpus.

    The relaxation literature the paper builds on (tree pattern
    relaxation, FleXPath) evaluates on bibliographic data as well as
    XMark; this generator produces a deterministic DBLP-shaped corpus so
    the benchmark shapes can be checked for dataset sensitivity.  Its
    heterogeneity is the interesting property:

    - {e optional} fields ([volume], [pages], [isbn], [ee]) exercise
      leaf deletion;
    - authors appear either directly under the entry or wrapped in an
      [authors] group element (so [./author] needs edge generalization
      or promotion on part of the corpus);
    - entry kinds ([article], [inproceedings], [book], [phdthesis])
      share field vocabulary with different structure. *)

type profile = {
  p_article : float;
  p_inproceedings : float;
  p_book : float;  (** remainder are phdthesis entries *)
  p_author_group : float;
      (** probability the authors are nested under an [authors] wrapper *)
  min_authors : int;
  max_authors : int;
  p_volume : float;
  p_pages : float;
  p_isbn : float;
  p_ee : float;
}

val default_profile : profile

val entry : profile -> Rng.t -> Wp_xml.Tree.t
(** One random bibliography entry. *)

val generate :
  ?profile:profile -> seed:int -> target_bytes:int -> unit -> Wp_xml.Tree.t
(** A [dblp] document of approximately [target_bytes] serialized
    bytes. *)

val generate_doc :
  ?profile:profile -> seed:int -> target_bytes:int -> unit -> Wp_xml.Doc.t

val queries : (string * string) list
(** Benchmark queries over this corpus (name, XPath), mirroring the
    paper's Q1-Q3 sizes: D1 (3 nodes), D2 (6 nodes), D3 (8 nodes). *)
