(** Word pools for synthetic text content.

    The original XMark generator fills text with Shakespeare vocabulary;
    any fixed pool with a reasonable spread of frequencies preserves the
    statistics that matter here (distinct content values for tf*idf, a
    small keyword pool so keyword predicates are selective but not
    empty). *)

val words : string array
(** General prose vocabulary. *)

val keywords : string array
(** Small pool used for [keyword] elements and query constants. *)

val first_names : string array
val last_names : string array
val cities : string array
val categories : string array
(** Category code pool for [incategory] references. *)

val sentence : Rng.t -> min_words:int -> max_words:int -> string
(** A space-separated random sentence. *)

val person_name : Rng.t -> string
val email : Rng.t -> string
val date : Rng.t -> string
(** A plausible [MM/DD/YYYY] date. *)
