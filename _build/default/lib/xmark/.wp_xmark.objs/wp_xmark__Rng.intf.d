lib/xmark/rng.mli:
