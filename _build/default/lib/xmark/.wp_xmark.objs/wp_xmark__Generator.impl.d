lib/xmark/generator.ml: Array Hashtbl List Option Rng Stdlib String Vocabulary Wp_xml
