lib/xmark/dblp.mli: Rng Wp_xml
