lib/xmark/vocabulary.ml: Array Buffer Printf Rng
