lib/xmark/dblp.ml: Generator List Printf Rng String Vocabulary Wp_xml
