lib/xmark/vocabulary.mli: Rng
