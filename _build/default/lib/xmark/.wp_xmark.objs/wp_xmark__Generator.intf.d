lib/xmark/generator.mli: Rng Wp_xml
