type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014). *)
let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit int non-negatively. *)
  let r = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  r mod bound

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t p = float t 1.0 < p

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let geometric t p =
  if not (p > 0.0 && p <= 1.0) then invalid_arg "Rng.geometric: p outside (0,1]";
  let rec go n = if bool t p then n else go (n + 1) in
  go 0
