(** Deterministic splitmix64 pseudo-random generator.

    Benchmarks must be reproducible across runs and independent of the
    global [Random] state, so the generator carries its own state and is
    fully determined by its seed. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val copy : t -> t

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val pick : t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val geometric : t -> float -> int
(** [geometric t p] counts failures before the first success of a
    Bernoulli([p]) trial — a natural depth distribution for recursive
    elements.  [p] must be in (0, 1]. *)
