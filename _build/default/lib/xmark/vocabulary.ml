let words =
  [|
    "the"; "of"; "and"; "to"; "a"; "in"; "that"; "is"; "was"; "he";
    "for"; "it"; "with"; "as"; "his"; "on"; "be"; "at"; "by"; "had";
    "not"; "are"; "but"; "from"; "or"; "have"; "an"; "they"; "which";
    "one"; "you"; "were"; "her"; "all"; "she"; "there"; "would";
    "their"; "we"; "him"; "been"; "has"; "when"; "who"; "will"; "more";
    "no"; "if"; "out"; "so"; "said"; "what"; "up"; "its"; "about";
    "into"; "than"; "them"; "can"; "only"; "other"; "new"; "some";
    "could"; "time"; "these"; "two"; "may"; "then"; "do"; "first";
    "any"; "my"; "now"; "such"; "like"; "our"; "over"; "man"; "me";
    "even"; "most"; "made"; "after"; "also"; "did"; "many"; "before";
    "must"; "through"; "years"; "where"; "much"; "your"; "way"; "well";
    "down"; "should"; "because"; "each"; "just"; "those"; "people";
    "how"; "too"; "little"; "state"; "good"; "very"; "make"; "world";
    "still"; "own"; "see"; "men"; "work"; "long"; "get"; "here";
    "between"; "both"; "life"; "being"; "under"; "never"; "day";
    "same"; "another"; "know"; "while"; "last"; "might"; "us"; "great";
    "old"; "year"; "off"; "come"; "since"; "against"; "go"; "came";
    "right"; "used"; "take"; "three";
  |]

let keywords =
  [|
    "vintage"; "rare"; "antique"; "mint"; "sealed"; "signed"; "limited";
    "original"; "restored"; "pristine"; "collectible"; "handmade";
    "imported"; "certified"; "exclusive"; "discounted";
  |]

let first_names =
  [|
    "james"; "mary"; "john"; "patricia"; "robert"; "jennifer";
    "michael"; "linda"; "william"; "elizabeth"; "david"; "barbara";
    "richard"; "susan"; "joseph"; "jessica"; "thomas"; "sarah";
    "charles"; "karen"; "amelie"; "sihem"; "nick"; "divesh";
  |]

let last_names =
  [|
    "smith"; "johnson"; "williams"; "brown"; "jones"; "garcia";
    "miller"; "davis"; "rodriguez"; "martinez"; "hernandez"; "lopez";
    "gonzalez"; "wilson"; "anderson"; "thomas"; "taylor"; "moore";
    "jackson"; "martin"; "marian"; "koudas"; "srivastava"; "wodehouse";
  |]

let cities =
  [|
    "london"; "paris"; "tokyo"; "sydney"; "nairobi"; "lagos"; "mumbai";
    "beijing"; "berlin"; "madrid"; "rome"; "cairo"; "toronto";
    "chicago"; "dallas"; "seattle"; "lima"; "bogota"; "santiago";
    "auckland";
  |]

let categories = Array.init 64 (fun i -> Printf.sprintf "category%d" i)

let sentence rng ~min_words ~max_words =
  let n = Rng.in_range rng min_words max_words in
  let b = Buffer.create (n * 6) in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_char b ' ';
    Buffer.add_string b (Rng.pick rng words)
  done;
  Buffer.contents b

let person_name rng = Rng.pick rng first_names ^ " " ^ Rng.pick rng last_names

let email rng =
  Printf.sprintf "%s@%s.example.com" (Rng.pick rng first_names)
    (Rng.pick rng last_names)

let date rng =
  Printf.sprintf "%02d/%02d/%04d" (Rng.in_range rng 1 12)
    (Rng.in_range rng 1 28) (Rng.in_range rng 1998 2004)
