module Tree = Wp_xml.Tree

type profile = {
  p_article : float;
  p_inproceedings : float;
  p_book : float;
  p_author_group : float;
  min_authors : int;
  max_authors : int;
  p_volume : float;
  p_pages : float;
  p_isbn : float;
  p_ee : float;
}

let default_profile =
  {
    p_article = 0.45;
    p_inproceedings = 0.35;
    p_book = 0.12;
    p_author_group = 0.3;
    min_authors = 1;
    max_authors = 4;
    p_volume = 0.6;
    p_pages = 0.75;
    p_isbn = 0.5;
    p_ee = 0.4;
  }

let journals =
  [|
    "acm transactions on database systems"; "vldb journal";
    "information systems"; "sigmod record"; "ieee data engineering bulletin";
  |]

let venues =
  [| "sigmod"; "vldb"; "icde"; "edbt"; "pods"; "webdb"; "cikm" |]

let title rng = Vocabulary.sentence rng ~min_words:4 ~max_words:9

let authors p rng =
  let n = Rng.in_range rng p.min_authors p.max_authors in
  let names = List.init n (fun _ -> Tree.leaf "author" (Vocabulary.person_name rng)) in
  if Rng.bool rng p.p_author_group then [ Tree.el "authors" names ] else names

let year rng = Tree.leaf "year" (string_of_int (Rng.in_range rng 1990 2004))

let pages rng =
  let from = Rng.in_range rng 1 900 in
  Tree.leaf "pages" (Printf.sprintf "%d-%d" from (from + Rng.in_range rng 5 30))

let opt rng p field = if Rng.bool rng p then [ field () ] else []

let article p rng =
  Tree.el "article"
    (authors p rng
    @ [ Tree.leaf "title" (title rng); year rng;
        Tree.leaf "journal" (Rng.pick rng journals) ]
    @ opt rng p.p_volume (fun () ->
          Tree.leaf "volume" (string_of_int (Rng.in_range rng 1 40)))
    @ opt rng p.p_pages (fun () -> pages rng)
    @ opt rng p.p_ee (fun () ->
          Tree.el "eelist" [ Tree.leaf "ee" (Vocabulary.email rng) ]))

let inproceedings p rng =
  Tree.el "inproceedings"
    (authors p rng
    @ [ Tree.leaf "title" (title rng);
        Tree.leaf "booktitle" (Rng.pick rng venues); year rng ]
    @ opt rng p.p_pages (fun () -> pages rng)
    @ opt rng p.p_ee (fun () -> Tree.leaf "ee" (Vocabulary.email rng)))

let book p rng =
  Tree.el "book"
    (authors p rng
    @ [ Tree.leaf "title" (title rng);
        Tree.leaf "publisher" (Vocabulary.person_name rng); year rng ]
    @ opt rng p.p_isbn (fun () ->
          Tree.leaf "isbn" (string_of_int (Rng.in_range rng 1000000 9999999))))

let phdthesis p rng =
  Tree.el "phdthesis"
    (authors { p with max_authors = 1 } rng
    @ [ Tree.leaf "title" (title rng);
        Tree.leaf "school" (Rng.pick rng Vocabulary.cities); year rng ])

let entry p rng =
  let r = Rng.float rng 1.0 in
  if r < p.p_article then article p rng
  else if r < p.p_article +. p.p_inproceedings then inproceedings p rng
  else if r < p.p_article +. p.p_inproceedings +. p.p_book then book p rng
  else phdthesis p rng

let generate ?(profile = default_profile) ~seed ~target_bytes () =
  let rng = Rng.create seed in
  let entries = ref [] in
  let bytes = ref ((2 * String.length "dblp") + 5) in
  while !bytes < target_bytes do
    let e = entry profile rng in
    entries := e :: !entries;
    bytes := !bytes + Generator.tree_bytes e
  done;
  Tree.el "dblp" (List.rev !entries)

let generate_doc ?profile ~seed ~target_bytes () =
  Wp_xml.Doc.of_tree (generate ?profile ~seed ~target_bytes ())

let queries =
  [
    ("D1", "//article[./author and ./journal]");
    ("D2", "//article[./author and ./journal and ./volume and ./pages and ./ee]");
    ( "D3",
      "//inproceedings[./authors/author and ./booktitle and ./year and \
       ./pages and ./ee and ./title]" );
  ]
