lib/stats/synopsis.mli: Format Wp_relax Wp_xml
