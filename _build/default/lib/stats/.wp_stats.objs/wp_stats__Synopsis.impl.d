lib/stats/synopsis.ml: Array Float Format Hashtbl List Option Set String Wp_relax Wp_xml
