open Wp_xml

let test_escape () =
  Alcotest.(check string)
    "all specials" "&amp;&lt;&gt;&quot;&apos;" (Printer.escape "&<>\"'");
  Alcotest.(check string) "no-op" "plain text" (Printer.escape "plain text")

let test_escaped_length () =
  List.iter
    (fun s ->
      Alcotest.(check int)
        (Printf.sprintf "escaped_length %S" s)
        (String.length (Printer.escape s))
        (Printer.escaped_length s))
    [ ""; "plain"; "&"; "a<b>c"; "mixed & <quoted \"text\">" ]

let test_tree_to_string () =
  let t = Tree.el "a" [ Tree.leaf "b" "x&y"; Tree.el "c" [] ] in
  Alcotest.(check string)
    "compact form" "<a><b>x&amp;y</b><c/></a>" (Printer.tree_to_string t)

let test_empty_vs_valued () =
  Alcotest.(check string) "empty" "<a/>" (Printer.tree_to_string (Tree.el "a" []));
  Alcotest.(check string)
    "empty string value" "<a></a>"
    (Printer.tree_to_string (Tree.el_v "a" "" []))

let test_doc_to_string () =
  let t = Tree.el "r" [ Tree.leaf "x" "1" ] in
  Alcotest.(check string)
    "via doc" (Printer.tree_to_string t)
    (Printer.doc_to_string (Doc.of_tree t))

let test_serialized_size_agrees () =
  let trees =
    [
      Tree.el "a" [];
      Tree.leaf "ab" "value";
      Tree.el "site" [ Tree.leaf "x" "a&b"; Tree.el "y" [ Tree.el "z" [] ] ];
      Wp_xmark.Generator.generate ~seed:3 ~target_bytes:20_000 ();
    ]
  in
  List.iter
    (fun t ->
      let doc = Doc.of_tree t in
      Alcotest.(check int)
        "doc_serialized_size = |doc_to_string|"
        (String.length (Printer.doc_to_string doc))
        (Printer.doc_serialized_size doc))
    trees

let test_to_channel () =
  let t = Wp_xmark.Generator.generate ~seed:5 ~target_bytes:50_000 () in
  let path = Filename.temp_file "wp_print" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Printer.to_channel oc t;
      close_out oc;
      let ic = open_in_bin path in
      let contents = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string)
        "channel output matches string output"
        (Printer.tree_to_string t) contents)

let test_pp_tree_parses_back () =
  let t =
    Tree.el "a" [ Tree.el "b" [ Tree.leaf "c" "v" ]; Tree.leaf "d" "w" ]
  in
  let pretty = Format.asprintf "%a" Printer.pp_tree t in
  Alcotest.(check bool)
    "indented output reparses" true
    (Tree.equal t (Parser.parse_string pretty))

let suite =
  [
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "escaped_length" `Quick test_escaped_length;
    Alcotest.test_case "tree_to_string" `Quick test_tree_to_string;
    Alcotest.test_case "empty vs valued" `Quick test_empty_vs_valued;
    Alcotest.test_case "doc_to_string" `Quick test_doc_to_string;
    Alcotest.test_case "serialized size" `Quick test_serialized_size_agrees;
    Alcotest.test_case "to_channel" `Quick test_to_channel;
    Alcotest.test_case "pp_tree reparses" `Quick test_pp_tree_parses_back;
  ]
