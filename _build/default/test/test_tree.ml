open Wp_xml

let sample =
  Tree.el "a" [ Tree.leaf "b" "1"; Tree.el "c" [ Tree.leaf "d" "2" ] ]

let test_builders () =
  Alcotest.(check string) "el tag" "a" (Tree.tag sample);
  Alcotest.(check (option string)) "leaf value" (Some "1")
    (Tree.value (List.hd (Tree.children sample)));
  let ev = Tree.el_v "x" "v" [ Tree.el "y" [] ] in
  Alcotest.(check (option string)) "el_v value" (Some "v") (Tree.value ev);
  Alcotest.(check int) "el_v children" 1 (List.length (Tree.children ev))

let test_size_depth () =
  Alcotest.(check int) "size" 4 (Tree.size sample);
  Alcotest.(check int) "depth" 3 (Tree.depth sample);
  Alcotest.(check int) "single node depth" 1 (Tree.depth (Tree.el "x" []))

let test_fold_iter () =
  let tags = List.rev (Tree.fold (fun acc t -> Tree.tag t :: acc) [] sample) in
  Alcotest.(check (list string)) "preorder fold" [ "a"; "b"; "c"; "d" ] tags;
  let count = ref 0 in
  Tree.iter (fun _ -> incr count) sample;
  Alcotest.(check int) "iter visits all" 4 !count

let test_tags () =
  let t = Tree.el "a" [ Tree.el "b" []; Tree.el "a" [ Tree.el "c" [] ] ] in
  Alcotest.(check (list string)) "distinct first-occurrence" [ "a"; "b"; "c" ]
    (Tree.tags t)

let test_equal () =
  Alcotest.(check bool) "reflexive" true (Tree.equal sample sample);
  Alcotest.(check bool) "tag differs" false
    (Tree.equal (Tree.el "a" []) (Tree.el "b" []));
  Alcotest.(check bool) "value differs" false
    (Tree.equal (Tree.leaf "a" "1") (Tree.leaf "a" "2"));
  Alcotest.(check bool) "child order matters" false
    (Tree.equal
       (Tree.el "a" [ Tree.el "b" []; Tree.el "c" [] ])
       (Tree.el "a" [ Tree.el "c" []; Tree.el "b" [] ]))

let test_pp () =
  Alcotest.(check string)
    "compact pp" "<a><b>1</b><c><d>2</d></c></a>"
    (Format.asprintf "%a" Tree.pp sample)

let suite =
  [
    Alcotest.test_case "builders" `Quick test_builders;
    Alcotest.test_case "size and depth" `Quick test_size_depth;
    Alcotest.test_case "fold and iter" `Quick test_fold_iter;
    Alcotest.test_case "tags" `Quick test_tags;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
