open Whirlpool

let idx = Lazy.force Fixtures.xmark_index
let parse = Fixtures.parse
let costs = { Sim_exec.op_cost = 1e-3; route_cost = 1e-5 }

let test_sequential_pricing () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let r = Sim_exec.simulate_s ~costs plan ~k:10 in
  let expected =
    (float_of_int r.engine.stats.server_ops *. costs.op_cost)
    +. (float_of_int r.engine.stats.routing_decisions *. costs.route_cost)
  in
  Alcotest.(check (float 1e-9)) "makespan = priced counts" expected r.makespan;
  Alcotest.(check (float 1e-9)) "busy = makespan when sequential" r.makespan
    r.busy_time

let test_parallel_speedup () =
  let plan = Run.compile idx (parse Fixtures.q3) in
  let m1 = Sim_exec.simulate_m ~costs ~processors:1 plan ~k:15 in
  let m4 = Sim_exec.simulate_m ~costs ~processors:4 plan ~k:15 in
  let minf = Sim_exec.simulate_m ~costs ~processors:1000 plan ~k:15 in
  (* Parallelism can change which operations run before the threshold
     rises (extra speculative work), so makespan is not monotone in the
     processor count — but parallel runs must beat the one-CPU run. *)
  Alcotest.(check bool) "4 CPUs beat 1" true (m4.makespan < m1.makespan);
  Alcotest.(check bool) "infinite CPUs beat 1" true
    (minf.makespan < m1.makespan)

let test_makespan_bounds () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let p = 4 in
  let m = Sim_exec.simulate_m ~costs ~processors:p plan ~k:10 in
  (* Makespan is at least busy/p and at most busy (plus the root lead
     op). *)
  Alcotest.(check bool) "lower bound" true
    (m.makespan +. 1e-9 >= m.busy_time /. float_of_int p);
  Alcotest.(check bool) "upper bound" true
    (m.makespan <= m.busy_time +. costs.op_cost +. 1e-9)

let test_answers_are_correct () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let reference = Fixtures.sorted_scores (Engine.run plan ~k:10).answers in
  List.iter
    (fun processors ->
      let m = Sim_exec.simulate_m ~costs ~processors plan ~k:10 in
      Fixtures.check_scores_equal
        ~msg:(Printf.sprintf "sim with %d processors" processors)
        reference
        (Fixtures.sorted_scores m.engine.answers))
    [ 1; 2; 4; 1000 ]

let test_determinism () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let a = Sim_exec.simulate_m ~costs ~processors:2 plan ~k:10 in
  let b = Sim_exec.simulate_m ~costs ~processors:2 plan ~k:10 in
  Alcotest.(check (float 1e-12)) "same makespan" a.makespan b.makespan;
  Alcotest.(check int) "same ops" a.engine.stats.server_ops
    b.engine.stats.server_ops

let test_lockstep_pricing () =
  let plan = Run.compile idx (parse Fixtures.q1) in
  let r = Sim_exec.simulate_lockstep ~costs plan ~k:5 in
  Alcotest.(check bool) "positive makespan" true (r.makespan > 0.0);
  let noprun = Sim_exec.simulate_lockstep ~prune:false ~costs plan ~k:5 in
  Alcotest.(check bool) "noprun costs at least as much" true
    (noprun.makespan +. 1e-9 >= r.makespan)

let test_invalid_processors () =
  let plan = Run.compile idx (parse Fixtures.q1) in
  Alcotest.check_raises "zero processors"
    (Invalid_argument "Sim_exec.simulate_m: processors >= 1") (fun () ->
      ignore (Sim_exec.simulate_m ~costs ~processors:0 plan ~k:3))

let suite =
  [
    Alcotest.test_case "sequential pricing" `Quick test_sequential_pricing;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "makespan bounds" `Quick test_makespan_bounds;
    Alcotest.test_case "answers correct" `Quick test_answers_are_correct;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "lockstep pricing" `Quick test_lockstep_pricing;
    Alcotest.test_case "invalid processors" `Quick test_invalid_processors;
  ]
