(* FleXPath-inspired content relaxation (Relaxation.with_content): value
   predicates satisfied exactly by equal content and approximately by
   token containment. *)

open Wp_xml
open Wp_relax

let catalog =
  Doc.of_forest ~root_tag:"bib"
    [
      Tree.el "book" [ Tree.leaf "title" "wodehouse" ];
      Tree.el "book" [ Tree.leaf "title" "the wodehouse omnibus" ];
      Tree.el "book" [ Tree.leaf "title" "wodehousiana" ];
      Tree.el "book" [ Tree.leaf "title" "dickens" ];
    ]

let idx = Index.build catalog
let query = Fixtures.parse "/book[./title = 'wodehouse']"

let b_exact, b_token, b_sub, b_other =
  match Doc.children catalog (Doc.root catalog) with
  | [ a; b; c; d ] -> (a, b, c, d)
  | _ -> assert false

let test_content_level () =
  let level actual =
    Relaxation.content_level Relaxation.with_content ~query:"wodehouse"
      ~actual:(Some actual)
  in
  Alcotest.(check bool) "equal is exact" true
    (level "wodehouse" = Relaxation.Content_exact);
  Alcotest.(check bool) "token containment is relaxed" true
    (level "the wodehouse omnibus" = Relaxation.Content_relaxed);
  Alcotest.(check bool) "substring without token boundary rejects" true
    (level "wodehousiana" = Relaxation.Content_reject);
  Alcotest.(check bool) "unrelated rejects" true
    (level "dickens" = Relaxation.Content_reject);
  Alcotest.(check bool) "missing value rejects" true
    (Relaxation.content_level Relaxation.with_content ~query:"x" ~actual:None
    = Relaxation.Content_reject);
  (* Without value relaxation only equality passes. *)
  Alcotest.(check bool) "strict mode rejects tokens" true
    (Relaxation.content_level Relaxation.all ~query:"wodehouse"
       ~actual:(Some "the wodehouse omnibus")
    = Relaxation.Content_reject)

let run config =
  let plan =
    Whirlpool.Run.compile ~config ~normalization:Wp_score.Score_table.Sparse idx
      query
  in
  Whirlpool.Engine.run plan ~k:4

let bound_title (e : Whirlpool.Topk_set.entry) = e.bindings.(1) >= 0

let test_strict_matching () =
  let r = run Relaxation.all in
  (* All four books answer (title deletable), but only the exact title
     binds. *)
  let with_title =
    List.filter bound_title r.answers
    |> List.map (fun (e : Whirlpool.Topk_set.entry) -> e.root)
  in
  Alcotest.(check (list int)) "only the exact title binds" [ b_exact ] with_title

let test_relaxed_content_matching () =
  let r = run Relaxation.with_content in
  let bound =
    List.filter bound_title r.answers
    |> List.map (fun (e : Whirlpool.Topk_set.entry) -> e.root)
    |> List.sort compare
  in
  Alcotest.(check (list int)) "token match also binds" [ b_exact; b_token ]
    bound;
  (* And it earns only the relaxed weight: strictly between the exact
     match and the no-title books. *)
  let score_of root =
    (List.find (fun (e : Whirlpool.Topk_set.entry) -> e.root = root) r.answers)
      .score
  in
  Alcotest.(check bool) "exact > token" true (score_of b_exact > score_of b_token);
  Alcotest.(check bool) "token >= others" true
    (score_of b_token >= score_of b_sub && score_of b_token >= score_of b_other)

let test_answer_exactness_reflects_content () =
  let plan =
    Whirlpool.Run.compile ~config:Relaxation.with_content
      ~normalization:Wp_score.Score_table.Sparse idx query
  in
  let r = Whirlpool.Engine.run plan ~k:4 in
  let answers = Whirlpool.Answer.of_result plan r in
  let title_binding root =
    let a = List.find (fun (a : Whirlpool.Answer.t) -> a.root = root) answers in
    (List.nth a.bindings 1).Whirlpool.Answer.exactness
  in
  Alcotest.(check bool) "exact content reported exact" true
    (title_binding b_exact = Whirlpool.Answer.Exact);
  Alcotest.(check bool) "token content reported relaxed" true
    (title_binding b_token = Whirlpool.Answer.Relaxed)

let test_pp_config () =
  Alcotest.(check string) "config rendering" "edge-gen+leaf-del+promo+content"
    (Format.asprintf "%a" Relaxation.pp_config Relaxation.with_content)

let suite =
  [
    Alcotest.test_case "content levels" `Quick test_content_level;
    Alcotest.test_case "strict matching" `Quick test_strict_matching;
    Alcotest.test_case "relaxed content matching" `Quick test_relaxed_content_matching;
    Alcotest.test_case "answer exactness" `Quick test_answer_exactness_reflects_content;
    Alcotest.test_case "pp config" `Quick test_pp_config;
  ]
