open Whirlpool

let idx = Lazy.force Fixtures.xmark_index
let books = Fixtures.books_index
let parse = Fixtures.parse

let scores l = List.map snd l

let test_ta_equals_scan () =
  (* TA guarantees the top-k *scores*; with ties the chosen roots may
     legitimately differ from the scan's. *)
  List.iter
    (fun q ->
      let plan = Run.compile idx (parse q) in
      let lists = Fagin.build_lists plan in
      List.iter
        (fun k ->
          let ta = Fagin.top_k lists ~k in
          let scan = Fagin.scan_top_k lists ~k in
          Alcotest.(check (list (float 1e-9)))
            (Printf.sprintf "%s k=%d" q k)
            (scores scan) (scores ta.answers))
        [ 1; 5; 20 ])
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3 ]

let test_ta_equals_whirlpool_scores () =
  (* Under full relaxation, per-node independence makes the best match
     score of a root the sum of its per-node best weights — TA and the
     adaptive engine must agree on the top-k score multiset. *)
  List.iter
    (fun q ->
      let plan = Run.compile idx (parse q) in
      let lists = Fagin.build_lists plan in
      let k = 10 in
      let ta = Fagin.top_k lists ~k in
      let engine = Engine.run plan ~k in
      Fixtures.check_scores_equal ~msg:("TA = Whirlpool scores on " ^ q)
        (Fixtures.sorted_scores engine.answers)
        (List.sort (fun a b -> Float.compare b a) (List.map snd ta.answers)))
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3 ]

let test_nra_equals_scan () =
  List.iter
    (fun q ->
      let plan = Run.compile idx (parse q) in
      let lists = Fagin.build_lists plan in
      List.iter
        (fun k ->
          let nra = Fagin.top_k_nra lists ~k in
          Alcotest.(check (list (float 1e-9)))
            (Printf.sprintf "NRA %s k=%d" q k)
            (scores (Fagin.scan_top_k lists ~k))
            (scores nra.answers);
          Alcotest.(check int) "no random accesses" 0 nra.random_accesses)
        [ 1; 5; 20 ])
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3 ]

let test_ta_stops_early () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let lists = Fagin.build_lists plan in
  let ta = Fagin.top_k lists ~k:5 in
  let total = List.length (Plan.root_candidates plan) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer sorted accesses (%d) than full scan (%d lists x %d)"
       ta.sorted_accesses plan.n_servers total)
    true
    (ta.sorted_accesses < plan.n_servers * total);
  Alcotest.(check bool) "rounds positive" true (ta.rounds > 0)

let test_ta_exhausts_small_inputs () =
  let plan = Run.compile books (parse Fixtures.q2a) in
  let lists = Fagin.build_lists plan in
  let ta = Fagin.top_k lists ~k:10 in
  Alcotest.(check int) "three books" 3 (List.length ta.answers)

let test_requires_full_relaxation () =
  let plan =
    Run.compile ~config:Wp_relax.Relaxation.exact books (parse Fixtures.q2a)
  in
  Alcotest.check_raises "independence check"
    (Invalid_argument
       "Fagin.build_lists: per-node independence requires all relaxations")
    (fun () -> ignore (Fagin.build_lists plan))

let test_threshold_rule_is_safe () =
  (* Property: on random documents TA equals the scan for every k. *)
  let prop =
    QCheck2.Test.make ~name:"TA = scan on random docs" ~count:40
      Test_doc.gen_tree (fun tree ->
        let doc = Wp_xml.Doc.of_tree tree in
        let idx = Wp_xml.Index.build doc in
        let pat = parse "//t0[./t1 and .//t2]" in
        let plan = Run.compile idx pat in
        match Plan.root_candidates plan with
        | [] -> true
        | _ ->
            let lists = Fagin.build_lists plan in
            List.for_all
              (fun k ->
                List.map snd (Fagin.top_k lists ~k).answers
                = List.map snd (Fagin.scan_top_k lists ~k))
              [ 1; 3; 7 ])
  in
  QCheck_alcotest.to_alcotest prop

let suite =
  [
    Alcotest.test_case "TA = scan" `Quick test_ta_equals_scan;
    Alcotest.test_case "TA = Whirlpool scores" `Quick test_ta_equals_whirlpool_scores;
    Alcotest.test_case "TA stops early" `Quick test_ta_stops_early;
    Alcotest.test_case "TA exhausts small inputs" `Quick test_ta_exhausts_small_inputs;
    Alcotest.test_case "requires full relaxation" `Quick test_requires_full_relaxation;
    Alcotest.test_case "NRA = scan" `Quick test_nra_equals_scan;
    test_threshold_rule_is_safe ();
  ]
