open Wp_xml

let doc = Lazy.force Fixtures.xmark_doc
let idx = Lazy.force Fixtures.xmark_index

let histogram = Wp_xmark.Generator.tag_histogram doc
let count tag = Option.value (List.assoc_opt tag histogram) ~default:0

let test_determinism () =
  let a = Wp_xmark.Generator.generate ~seed:123 ~target_bytes:30_000 () in
  let b = Wp_xmark.Generator.generate ~seed:123 ~target_bytes:30_000 () in
  Alcotest.(check bool) "same seed, same document" true (Tree.equal a b);
  let c = Wp_xmark.Generator.generate ~seed:124 ~target_bytes:30_000 () in
  Alcotest.(check bool) "different seed, different document" false (Tree.equal a c)

let test_size_calibration () =
  List.iter
    (fun target ->
      let t = Wp_xmark.Generator.generate ~seed:9 ~target_bytes:target () in
      let actual = Wp_xmark.Generator.tree_bytes t in
      (* Within one item of overshoot plus a few bytes of skeleton
         accounting slack. *)
      Alcotest.(check bool)
        (Printf.sprintf "size %d within tolerance (got %d)" target actual)
        true
        (actual > target - 200 && actual - target < 20_000))
    [ 20_000; 100_000; 400_000 ]

let test_tree_bytes_agrees_with_printer () =
  let t = Wp_xmark.Generator.generate ~seed:2 ~target_bytes:25_000 () in
  Alcotest.(check int)
    "tree_bytes = |serialized|"
    (String.length (Printer.tree_to_string t))
    (Wp_xmark.Generator.tree_bytes t)

let test_structure () =
  Alcotest.(check string) "root is site" "site" (Doc.tag doc 0);
  List.iter
    (fun tag ->
      Alcotest.(check bool) (tag ^ " present") true (count tag > 0))
    [ "item"; "description"; "parlist"; "listitem"; "text"; "bold";
      "keyword"; "emph"; "mailbox"; "mail"; "name"; "incategory";
      "category"; "person"; "regions" ]

let test_recursive_parlist () =
  (* Edge generalization needs parlists nested under parlists. *)
  let nested =
    Array.exists
      (fun p -> Index.count_descendants idx "parlist" ~root:p > 0)
      (Index.ids idx "parlist")
  in
  Alcotest.(check bool) "some parlist nests another" true nested

let test_optional_incategory () =
  (* Leaf deletion needs items lacking incategory. *)
  let items = Index.ids idx "item" in
  let with_cat =
    Array.fold_left
      (fun acc i ->
        if Index.count_descendants idx "incategory" ~root:i > 0 then acc + 1
        else acc)
      0 items
  in
  Alcotest.(check bool) "some items have incategory" true (with_cat > 0);
  Alcotest.(check bool) "some items lack incategory" true
    (with_cat < Array.length items)

let test_shared_text () =
  (* Subtree promotion needs [text] under both [mail] and [description]. *)
  let under tag =
    Array.exists
      (fun p -> Index.count_descendants idx "text" ~root:p > 0)
      (Index.ids idx tag)
  in
  Alcotest.(check bool) "text under mail" true (under "mail");
  Alcotest.(check bool) "text under description" true (under "description")

let test_queries_have_matches () =
  List.iter
    (fun (name, q) ->
      let n =
        List.length
          (Wp_pattern.Matcher.matching_roots idx (Fixtures.parse q))
      in
      Alcotest.(check bool) (name ^ " has exact matches") true (n > 0))
    [ ("Q1", Fixtures.q1); ("Q2", Fixtures.q2); ("Q3", Fixtures.q3) ]

let test_profile_knobs () =
  (* Forcing a probability to an extreme must show in the output. *)
  let profile =
    { Wp_xmark.Generator.default_profile with p_item_name = 1.0; p_incategory = 0.0 }
  in
  let doc = Wp_xmark.Generator.generate_doc ~profile ~seed:3 ~target_bytes:60_000 () in
  let idx = Index.build doc in
  let items = Index.ids idx "item" in
  Alcotest.(check bool) "items exist" true (Array.length items > 0);
  Array.iter
    (fun i ->
      Alcotest.(check bool) "every item has a name" true
        (List.exists
           (fun c -> Doc.tag doc c = "name")
           (Doc.children doc i)))
    items;
  Alcotest.(check int) "no incategory anywhere" 0 (Index.count idx "incategory")

let test_rng_basics () =
  let rng = Wp_xmark.Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Wp_xmark.Rng.int rng 10 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 10);
    let f = Wp_xmark.Rng.float rng 1.0 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done;
  let r1 = Wp_xmark.Rng.create 5 and r2 = Wp_xmark.Rng.create 5 in
  let s1 = List.init 50 (fun _ -> Wp_xmark.Rng.int r1 1000) in
  let s2 = List.init 50 (fun _ -> Wp_xmark.Rng.int r2 1000) in
  Alcotest.(check (list int)) "deterministic stream" s1 s2;
  let r3 = Wp_xmark.Rng.copy r1 in
  Alcotest.(check int) "copy forks the stream" (Wp_xmark.Rng.int r1 1000)
    (Wp_xmark.Rng.int r3 1000)

let test_rng_distribution () =
  let rng = Wp_xmark.Rng.create 99 in
  let n = 10_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Wp_xmark.Rng.bool rng 0.3 then incr hits
  done;
  let p = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "bool 0.3 frequency ~0.3 (got %.3f)" p)
    true
    (p > 0.27 && p < 0.33);
  let g = Wp_xmark.Rng.geometric rng 0.5 in
  Alcotest.(check bool) "geometric non-negative" true (g >= 0)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "size calibration" `Quick test_size_calibration;
    Alcotest.test_case "tree_bytes" `Quick test_tree_bytes_agrees_with_printer;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "recursive parlist" `Quick test_recursive_parlist;
    Alcotest.test_case "optional incategory" `Quick test_optional_incategory;
    Alcotest.test_case "shared text" `Quick test_shared_text;
    Alcotest.test_case "paper queries match" `Quick test_queries_have_matches;
    Alcotest.test_case "profile knobs" `Quick test_profile_knobs;
    Alcotest.test_case "rng basics" `Quick test_rng_basics;
    Alcotest.test_case "rng distribution" `Quick test_rng_distribution;
  ]
