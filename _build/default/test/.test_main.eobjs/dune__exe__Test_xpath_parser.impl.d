test/test_xpath_parser.ml: Alcotest Fixtures List Pattern Printf QCheck2 QCheck_alcotest String Wp_pattern Xpath_parser
