test/test_score_table.ml: Alcotest Fixtures Float Relaxation Score_table Wp_relax Wp_score
