test/test_partial_match.ml: Alcotest List Partial_match Whirlpool
