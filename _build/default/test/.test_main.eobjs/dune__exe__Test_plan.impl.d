test/test_plan.ml: Alcotest Array Engine Fixtures Lazy List Plan Run Whirlpool Wp_pattern Wp_relax Wp_score
