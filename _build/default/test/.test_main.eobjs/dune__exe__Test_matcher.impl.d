test/test_matcher.ml: Alcotest Array Fixtures Fun List Matcher Option Pattern Printf QCheck2 QCheck_alcotest String Test_doc Wp_pattern Wp_xml
