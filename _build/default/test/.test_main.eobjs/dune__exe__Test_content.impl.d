test/test_content.ml: Alcotest Array Doc Fixtures Format Index List Relaxation Tree Whirlpool Wp_relax Wp_score Wp_xml
