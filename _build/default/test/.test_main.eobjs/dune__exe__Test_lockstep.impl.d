test/test_lockstep.ml: Alcotest Array Engine Fixtures Lazy List Lockstep Plan Run Topk_set Whirlpool Wp_pattern
