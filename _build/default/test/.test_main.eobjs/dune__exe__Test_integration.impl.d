test/test_integration.ml: Alcotest Engine Fixtures Float Format Lazy List Printf Run String Topk_set Whirlpool Wp_pattern Wp_score Wp_xmark Wp_xml
