test/test_synopsis.ml: Alcotest Array Fixtures Lazy List QCheck2 QCheck_alcotest Relation Synopsis Test_doc Whirlpool Wp_pattern Wp_relax Wp_stats Wp_xml
