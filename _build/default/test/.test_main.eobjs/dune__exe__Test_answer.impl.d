test/test_answer.ml: Alcotest Answer Engine Fixtures Format List Run String Test_stats Whirlpool Wp_score Wp_xml
