test/test_tree.ml: Alcotest Format List Tree Wp_xml
