test/test_configs.ml: Alcotest Engine Fixtures Float Format Lazy List Run Topk_set Whirlpool Wp_pattern Wp_relax
