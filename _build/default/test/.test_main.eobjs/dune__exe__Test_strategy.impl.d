test/test_strategy.ml: Alcotest Array Fixtures Float Lazy List Partial_match Plan Run Server Stats Strategy String Whirlpool
