test/test_stats.ml: Alcotest Format Stats String Whirlpool
