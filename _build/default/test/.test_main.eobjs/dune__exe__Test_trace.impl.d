test/test_trace.ml: Alcotest Engine Fixtures Float Format Hashtbl Lazy List Run Test_stats Trace Whirlpool
