test/test_server_spec.ml: Alcotest Array Fixtures List Relation Relaxation Server_spec Wp_pattern Wp_relax
