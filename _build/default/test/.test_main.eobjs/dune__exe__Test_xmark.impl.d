test/test_xmark.ml: Alcotest Array Doc Fixtures Index Lazy List Option Printer Printf String Tree Wp_pattern Wp_xmark Wp_xml
