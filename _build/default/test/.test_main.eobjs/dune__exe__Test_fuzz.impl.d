test/test_fuzz.ml: Char Fixtures List QCheck2 QCheck_alcotest String Wp_pattern Wp_xmark Wp_xml
