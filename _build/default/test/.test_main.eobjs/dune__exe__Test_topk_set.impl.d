test/test_topk_set.ml: Alcotest List Partial_match QCheck2 QCheck_alcotest Topk_set Whirlpool
