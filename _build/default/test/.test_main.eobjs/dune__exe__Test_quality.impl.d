test/test_quality.ml: Alcotest Fixtures Lazy List Printf Quality Score_table Whirlpool Wp_relax Wp_score
