test/test_doc_io.ml: Alcotest Buffer Char Dewey Doc Doc_io Filename Fixtures Fun Index Lazy List Printer Printf QCheck2 QCheck_alcotest String Sys Test_doc Tree Unix Wp_pattern Wp_xmark Wp_xml
