test/test_axis.ml: Alcotest Axis Doc Fixtures Fun Index List QCheck2 QCheck_alcotest String Test_doc Wp_xml
