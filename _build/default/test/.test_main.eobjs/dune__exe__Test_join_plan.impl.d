test/test_join_plan.ml: Alcotest Join_plan List Printf String Whirlpool
