test/test_engine.ml: Alcotest Engine Engine_mt Fixtures Format Lazy List Run Strategy Topk_set Whirlpool Wp_pattern Wp_relax Wp_score
