test/test_tfidf.ml: Alcotest Array Component Fixtures List Tfidf Wp_score Wp_xml
