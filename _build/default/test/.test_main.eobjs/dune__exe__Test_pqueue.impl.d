test/test_pqueue.ml: Alcotest Float List Pqueue QCheck2 QCheck_alcotest Whirlpool
