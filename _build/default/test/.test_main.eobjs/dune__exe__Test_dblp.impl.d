test/test_dblp.ml: Alcotest Array Doc Fixtures Index List Option Printf Tree Whirlpool Wp_pattern Wp_xmark Wp_xml
