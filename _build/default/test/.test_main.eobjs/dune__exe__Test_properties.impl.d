test/test_properties.ml: Engine Fixtures Float List Lockstep QCheck2 QCheck_alcotest Run Test_doc Test_matcher Topk_set Whirlpool Wp_pattern Wp_relax Wp_score Wp_xml
