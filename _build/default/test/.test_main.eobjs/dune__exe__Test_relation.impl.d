test/test_relation.ml: Alcotest Fixtures List Pattern QCheck2 QCheck_alcotest Relation Wp_pattern Wp_relax Wp_xml
