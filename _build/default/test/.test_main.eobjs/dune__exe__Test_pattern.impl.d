test/test_pattern.ml: Alcotest List Option Pattern String Wp_pattern
