test/test_index.ml: Alcotest Array Doc Fun Index List QCheck2 QCheck_alcotest String Test_doc Tree Wp_xml
