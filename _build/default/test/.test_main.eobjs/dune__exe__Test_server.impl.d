test/test_server.ml: Alcotest Fixtures List Partial_match Run Server Stats Whirlpool Wp_relax Wp_score
