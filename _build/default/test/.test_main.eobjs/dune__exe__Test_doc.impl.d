test/test_doc.ml: Alcotest Dewey Doc List Printf QCheck2 QCheck_alcotest Tree Wp_xml
