test/test_engine_mt.ml: Alcotest Engine Engine_mt Fixtures Format Lazy List Run Stats Strategy Whirlpool Wp_relax
