test/test_parser.ml: Alcotest Doc Filename Fun List Parser Printer Printf QCheck2 QCheck_alcotest Sys Tree Wp_xml
