test/test_dewey.ml: Alcotest Dewey List Option Printf QCheck2 QCheck_alcotest Wp_xml
