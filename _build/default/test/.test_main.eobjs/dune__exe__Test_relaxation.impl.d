test/test_relaxation.ml: Alcotest Fixtures Format List Pattern Printf QCheck2 QCheck_alcotest Relation Relaxation Test_doc Test_matcher Wp_pattern Wp_relax Wp_xml
