test/test_component.ml: Alcotest Array Component Fixtures Format Relation Relaxation Wp_relax Wp_score
