test/test_fagin.ml: Alcotest Engine Fagin Fixtures Float Lazy List Plan Printf QCheck2 QCheck_alcotest Run Test_doc Whirlpool Wp_relax Wp_xml
