test/test_json.ml: Alcotest Fixtures Float Format Json List Printf String Test_stats Whirlpool Wp_json Wp_score
