test/test_printer.ml: Alcotest Doc Filename Format Fun List Parser Printer Printf String Sys Tree Wp_xmark Wp_xml
