test/test_sim_exec.ml: Alcotest Engine Fixtures Lazy List Printf Run Sim_exec Whirlpool
