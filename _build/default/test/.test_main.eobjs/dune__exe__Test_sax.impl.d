test/test_sax.ml: Alcotest Doc Filename Fun List Parser Printer Printf QCheck2 QCheck_alcotest Sax String Sys Test_parser Tree Wp_xmark Wp_xml
