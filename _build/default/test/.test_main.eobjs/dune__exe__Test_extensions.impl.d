test/test_extensions.ml: Alcotest Array Engine Engine_mt Fixtures Lazy List Lockstep Plan Printf Run Topk_set Whirlpool Wp_pattern Wp_score
