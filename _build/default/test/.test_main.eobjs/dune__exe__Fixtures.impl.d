test/fixtures.ml: Alcotest Doc Float Index Lazy List Printf String Tree Whirlpool Wp_pattern Wp_xmark Wp_xml
