open Wp_stats
open Wp_relax

let books = Fixtures.books_doc
let syn = Synopsis.build books

let float_eq = Alcotest.(check (float 1e-9))

let test_tag_counts () =
  Alcotest.(check int) "books" 3 (Synopsis.tag_count syn "book");
  Alcotest.(check int) "titles" 3 (Synopsis.tag_count syn "title");
  Alcotest.(check int) "publishers" 2 (Synopsis.tag_count syn "publisher");
  Alcotest.(check int) "absent" 0 (Synopsis.tag_count syn "zzz");
  Alcotest.(check int) "wildcard = all nodes" (Wp_xml.Doc.size books)
    (Synopsis.tag_count syn "*")

let test_pair_histograms () =
  (* titles directly under books: books (a) and (b). *)
  Alcotest.(check int) "title at depth 1" 2
    (Synopsis.pair_count syn ~anc:"book" ~desc:"title" ~depth:0);
  (* book (c)'s title sits at depth 2 (under reviews). *)
  Alcotest.(check int) "title at depth 2" 1
    (Synopsis.pair_count syn ~anc:"book" ~desc:"title" ~depth:1);
  (* names: book (a) at depth 3, book (b) at depth 2. *)
  Alcotest.(check int) "name at depth 3" 1
    (Synopsis.pair_count syn ~anc:"book" ~desc:"name" ~depth:2);
  Alcotest.(check int) "name at depth 2" 1
    (Synopsis.pair_count syn ~anc:"book" ~desc:"name" ~depth:1)

let test_expected_related () =
  float_eq "title children per book" (2.0 /. 3.0)
    (Synopsis.expected_related syn ~anc:"book" ~desc:"title" Relation.child);
  float_eq "title descendants per book" 1.0
    (Synopsis.expected_related syn ~anc:"book" ~desc:"title" Relation.descendant);
  let depth2 = Relation.of_edges [ Wp_pattern.Pattern.Pc; Wp_pattern.Pattern.Pc ] in
  float_eq "publisher at depth 2 per book" (1.0 /. 3.0)
    (Synopsis.expected_related syn ~anc:"book" ~desc:"publisher" depth2);
  float_eq "absent tag" 0.0
    (Synopsis.expected_related syn ~anc:"book" ~desc:"zzz" Relation.descendant)

let test_coverage_and_emptiness () =
  float_eq "all books have a title somewhere" 1.0
    (Synopsis.coverage syn ~anc:"book" ~desc:"title");
  float_eq "two books have a publisher" (2.0 /. 3.0)
    (Synopsis.coverage syn ~anc:"book" ~desc:"publisher");
  float_eq "unbounded emptiness" (1.0 /. 3.0)
    (Synopsis.p_empty syn ~anc:"book" ~desc:"publisher" Relation.descendant);
  (* Depth-restricted emptiness is at least the unbounded one. *)
  let depth1 = Relation.child in
  Alcotest.(check bool) "restricted >= unbounded" true
    (Synopsis.p_empty syn ~anc:"book" ~desc:"publisher" depth1
    >= Synopsis.p_empty syn ~anc:"book" ~desc:"publisher" Relation.descendant)

let test_deep_documents_bucket () =
  (* A path deeper than the cap still lands in the last bucket. *)
  let rec chain n =
    if n = 0 then Wp_xml.Tree.leaf "leaf" "x"
    else Wp_xml.Tree.el "mid" [ chain (n - 1) ]
  in
  let doc = Wp_xml.Doc.of_tree (Wp_xml.Tree.el "top" [ chain 30 ]) in
  let s = Synopsis.build doc in
  Alcotest.(check int) "leaf seen from top in the capped bucket" 1
    (Synopsis.pair_count s ~anc:"top" ~desc:"leaf"
       ~depth:(Synopsis.depth_cap + 10));
  float_eq "expected via unbounded relation" 1.0
    (Synopsis.expected_related s ~anc:"top" ~desc:"leaf" Relation.descendant)

(* The synopsis is exact for depths below the cap: check against a naive
   count on random documents. *)
let prop_exact_below_cap =
  QCheck2.Test.make ~name:"synopsis pair counts are exact" ~count:60
    Test_doc.gen_tree (fun t ->
      let doc = Wp_xml.Doc.of_tree t in
      let s = Synopsis.build doc in
      let n = Wp_xml.Doc.size doc in
      let ok = ref true in
      let tags = Wp_xml.Doc.distinct_tags doc in
      List.iter
        (fun anc_tag ->
          List.iter
            (fun desc_tag ->
              for depth = 0 to 4 do
                let naive = ref 0 in
                for a = 0 to n - 1 do
                  for d = 0 to n - 1 do
                    if
                      Wp_xml.Doc.tag doc a = anc_tag
                      && Wp_xml.Doc.tag doc d = desc_tag
                      && Wp_xml.Doc.is_ancestor doc ~anc:a ~desc:d
                      && Wp_xml.Doc.depth doc d - Wp_xml.Doc.depth doc a
                         = depth + 1
                    then incr naive
                  done
                done;
                if Synopsis.pair_count s ~anc:anc_tag ~desc:desc_tag ~depth <> !naive
                then ok := false
              done)
            tags)
        tags;
      !ok)

let test_plan_integration () =
  let idx = Lazy.force Fixtures.xmark_index in
  let pat = Fixtures.parse Fixtures.q2 in
  let sampled = Whirlpool.Run.compile idx pat in
  let synopsis =
    Whirlpool.Plan.compile ~estimator:Whirlpool.Plan.Synopsis idx
      Wp_relax.Relaxation.all pat
  in
  (* Both estimators must produce sane numbers and comparable fan-outs. *)
  for s = 1 to sampled.n_servers - 1 do
    Alcotest.(check bool) "fanout non-negative" true
      (synopsis.est_fanout.(s) >= 0.0);
    Alcotest.(check bool) "p_exact in range" true
      (synopsis.est_p_exact.(s) >= 0.0 && synopsis.est_p_exact.(s) <= 1.0);
    Alcotest.(check bool) "p_empty in range" true
      (synopsis.est_p_empty.(s) >= 0.0 && synopsis.est_p_empty.(s) <= 1.0)
  done;
  (* And the engine returns the same answers under either estimator. *)
  let a = Whirlpool.Engine.run sampled ~k:10 in
  let b = Whirlpool.Engine.run synopsis ~k:10 in
  Fixtures.check_scores_equal ~msg:"same answers under both estimators"
    (Fixtures.sorted_scores a.answers)
    (Fixtures.sorted_scores b.answers)

let suite =
  [
    Alcotest.test_case "tag counts" `Quick test_tag_counts;
    Alcotest.test_case "pair histograms" `Quick test_pair_histograms;
    Alcotest.test_case "expected related" `Quick test_expected_related;
    Alcotest.test_case "coverage and emptiness" `Quick test_coverage_and_emptiness;
    Alcotest.test_case "depth cap" `Quick test_deep_documents_bucket;
    QCheck_alcotest.to_alcotest prop_exact_below_cap;
    Alcotest.test_case "plan integration" `Quick test_plan_integration;
  ]
