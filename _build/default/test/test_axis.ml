open Wp_xml

let doc = Fixtures.books_doc
let idx = Fixtures.books_index

(* Locate a node by tag under a given root, for readable assertions. *)
let find_first tag =
  let rec go i = if Doc.tag doc i = tag then i else go (i + 1) in
  go 0

let test_child_axis () =
  let book = find_first "book" in
  let title = find_first "title" in
  Alcotest.(check bool) "title child of book" true
    (Axis.test doc Axis.Child ~from:book ~target:title);
  Alcotest.(check bool) "book not child of title" false
    (Axis.test doc Axis.Child ~from:title ~target:book)

let test_descendant_axis () =
  let book = find_first "book" in
  let name = find_first "name" in
  Alcotest.(check bool) "name descendant of book" true
    (Axis.test doc Axis.Descendant ~from:book ~target:name);
  Alcotest.(check bool) "not self" false
    (Axis.test doc Axis.Descendant ~from:book ~target:book);
  Alcotest.(check bool) "descendant-or-self includes self" true
    (Axis.test doc Axis.Descendant_or_self ~from:book ~target:book)

let test_upward_axes () =
  let info = find_first "info" in
  let name = find_first "name" in
  let book = find_first "book" in
  Alcotest.(check bool) "parent" true
    (Axis.test doc Axis.Parent ~from:info ~target:book);
  Alcotest.(check bool) "ancestor" true
    (Axis.test doc Axis.Ancestor ~from:name ~target:book);
  Alcotest.(check bool) "self" true (Axis.test doc Axis.Self ~from:name ~target:name)

let test_following_sibling () =
  let title = find_first "title" in
  let info = find_first "info" in
  Alcotest.(check bool) "info follows title" true
    (Axis.test doc Axis.Following_sibling ~from:title ~target:info);
  Alcotest.(check bool) "title does not follow info" false
    (Axis.test doc Axis.Following_sibling ~from:info ~target:title)

let test_select () =
  let book = find_first "book" in
  Alcotest.(check int) "one title child" 1
    (List.length (Axis.select idx Axis.Child ~from:book ~tag:"title"));
  Alcotest.(check int) "name by descendant" 1
    (List.length (Axis.select idx Axis.Descendant ~from:book ~tag:"name"));
  Alcotest.(check int) "no location in book a" 0
    (List.length (Axis.select idx Axis.Descendant ~from:book ~tag:"location"));
  let name = find_first "name" in
  Alcotest.(check int) "two ancestors tagged publisher/info... none named book? one" 1
    (List.length (Axis.select idx Axis.Ancestor ~from:name ~tag:"book"))

(* select agrees with a naive test-everything scan. *)
let prop_select_matches_test =
  let axes =
    [ Axis.Self; Axis.Child; Axis.Descendant; Axis.Descendant_or_self;
      Axis.Parent; Axis.Ancestor; Axis.Following_sibling ]
  in
  QCheck2.Test.make ~name:"select = filter test" ~count:60 Test_doc.gen_tree
    (fun t ->
      let doc = Doc.of_tree t in
      let idx = Index.build doc in
      let tags = Doc.distinct_tags doc in
      List.for_all
        (fun axis ->
          List.for_all
            (fun tag ->
              let ok = ref true in
              for from = 0 to Doc.size doc - 1 do
                let naive =
                  List.filter
                    (fun i ->
                      String.equal (Doc.tag doc i) tag
                      && Axis.test doc axis ~from ~target:i)
                    (List.init (Doc.size doc) Fun.id)
                in
                if Axis.select idx axis ~from ~tag <> naive then ok := false
              done;
              !ok)
            tags)
        axes)

let suite =
  [
    Alcotest.test_case "child" `Quick test_child_axis;
    Alcotest.test_case "descendant" `Quick test_descendant_axis;
    Alcotest.test_case "upward axes" `Quick test_upward_axes;
    Alcotest.test_case "following-sibling" `Quick test_following_sibling;
    Alcotest.test_case "select" `Quick test_select;
    QCheck_alcotest.to_alcotest prop_select_matches_test;
  ]
