open Wp_relax
open Wp_pattern

let parse = Fixtures.parse
let idx = Fixtures.books_index

let test_configs () =
  Alcotest.(check string) "all" "edge-gen+leaf-del+promo"
    (Format.asprintf "%a" Relaxation.pp_config Relaxation.all);
  Alcotest.(check string) "exact" "exact"
    (Format.asprintf "%a" Relaxation.pp_config Relaxation.exact)

let test_relax_to_root () =
  let pc2 = Relation.of_edges [ Pattern.Pc; Pattern.Pc ] in
  let r = Relaxation.relax_to_root Relaxation.all pc2 in
  Alcotest.(check bool) "all: any-depth descendant" true
    (r.min_depth = 1 && r.max_depth = None);
  let eg_only = { Relaxation.exact with edge_generalization = true } in
  let r = Relaxation.relax_to_root eg_only pc2 in
  Alcotest.(check bool) "edge-gen only keeps min depth" true
    (r.min_depth = 2 && r.max_depth = None);
  let r = Relaxation.relax_to_root Relaxation.exact pc2 in
  Alcotest.(check bool) "exact: unchanged" true (Relation.equal r pc2)

let test_single_steps_counts () =
  let pat = parse Fixtures.q1 in
  (* //item/description/parlist: two pc edges below the root; root edge is
     already ad. *)
  Alcotest.(check int) "edge generalizations" 2
    (List.length (Relaxation.edge_generalizations pat));
  (* only parlist is a leaf *)
  Alcotest.(check int) "leaf deletions" 1
    (List.length (Relaxation.leaf_deletions pat));
  (* only parlist has a grand-parent inside the pattern *)
  Alcotest.(check int) "subtree promotions" 1
    (List.length (Relaxation.subtree_promotions pat))

let test_single_step_shapes () =
  let pat = parse "/book[./info/publisher]" in
  let promoted = Relaxation.subtree_promotions pat in
  (match promoted with
  | [ p ] ->
      Alcotest.(check string) "promotion reattaches under the root"
        "/book[./info and .//publisher]" (Pattern.to_string p)
  | l -> Alcotest.fail (Printf.sprintf "expected one promotion, got %d" (List.length l)));
  let deleted = Relaxation.leaf_deletions pat in
  match deleted with
  | [ p ] -> Alcotest.(check string) "leaf deletion" "/book[./info]" (Pattern.to_string p)
  | l -> Alcotest.fail (Printf.sprintf "expected one deletion, got %d" (List.length l))

let test_figure2_derivations () =
  (* Figure 2(b) is 2(a) with edge generalization on (book, title). *)
  let q2a = parse Fixtures.q2a and q2b = parse Fixtures.q2b in
  let eg = Relaxation.edge_generalizations q2a in
  Alcotest.(check bool) "2(b) is a single-step relaxation of 2(a)" true
    (List.exists (Pattern.equal q2b) eg);
  (* 2(c) and 2(d) are reachable in the closure of 2(a). *)
  let closure = Relaxation.closure Relaxation.all q2a in
  let q2c = parse Fixtures.q2c and q2d = parse Fixtures.q2d in
  let mem q = List.exists (fun p -> Relaxation.canonical_key p = Relaxation.canonical_key q) closure in
  Alcotest.(check bool) "2(c) in closure" true (mem q2c);
  Alcotest.(check bool) "2(d) in closure" true (mem q2d)

let test_closure_contains_original () =
  let pat = parse Fixtures.q1 in
  let closure = Relaxation.closure Relaxation.all pat in
  Alcotest.(check bool) "original included" true
    (List.exists (Pattern.equal pat) closure);
  Alcotest.(check bool) "closure grows" true (List.length closure > 4)

let test_closure_exact_is_singleton () =
  let pat = parse Fixtures.q2 in
  Alcotest.(check int) "no relaxations, no growth" 1
    (List.length (Relaxation.closure Relaxation.exact pat))

(* Soundness: every single-step relaxation preserves the matches of the
   original query. *)
let preserves_matches pat relaxed_list =
  let original = Wp_pattern.Matcher.matching_roots idx pat in
  List.for_all
    (fun relaxed ->
      let relaxed_roots = Wp_pattern.Matcher.matching_roots idx relaxed in
      List.for_all (fun r -> List.mem r relaxed_roots) original)
    relaxed_list

let test_steps_preserve_matches () =
  List.iter
    (fun q ->
      let pat = parse q in
      Alcotest.(check bool) ("edge gen preserves: " ^ q) true
        (preserves_matches pat (Relaxation.edge_generalizations pat));
      Alcotest.(check bool) ("leaf del preserves: " ^ q) true
        (preserves_matches pat (Relaxation.leaf_deletions pat));
      Alcotest.(check bool) ("promotion preserves: " ^ q) true
        (preserves_matches pat (Relaxation.subtree_promotions pat)))
    [ Fixtures.q2a; Fixtures.q2b; Fixtures.q2c; Fixtures.q2d;
      "/book[./info/publisher/name = 'psmith']" ]

let prop_steps_preserve_matches_random =
  QCheck2.Test.make ~name:"relaxation steps preserve matches" ~count:80
    QCheck2.Gen.(pair Test_doc.gen_tree Test_matcher.small_pattern_gen)
    (fun (tree, pat) ->
      let doc = Wp_xml.Doc.of_tree tree in
      let idx = Wp_xml.Index.build doc in
      let original = Wp_pattern.Matcher.matching_roots idx pat in
      List.for_all
        (fun relaxed ->
          let rr = Wp_pattern.Matcher.matching_roots idx relaxed in
          List.for_all (fun r -> List.mem r rr) original)
        (Relaxation.steps Relaxation.all pat))

let suite =
  [
    Alcotest.test_case "configs" `Quick test_configs;
    Alcotest.test_case "relax_to_root" `Quick test_relax_to_root;
    Alcotest.test_case "single step counts" `Quick test_single_steps_counts;
    Alcotest.test_case "single step shapes" `Quick test_single_step_shapes;
    Alcotest.test_case "figure 2 derivations" `Quick test_figure2_derivations;
    Alcotest.test_case "closure contains original" `Quick test_closure_contains_original;
    Alcotest.test_case "exact closure singleton" `Quick test_closure_exact_is_singleton;
    Alcotest.test_case "steps preserve matches" `Quick test_steps_preserve_matches;
    QCheck_alcotest.to_alcotest prop_steps_preserve_matches_random;
  ]
