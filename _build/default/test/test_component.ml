open Wp_score
open Wp_relax

let parse = Fixtures.parse

let test_decomposition () =
  let comps = Component.of_pattern ~doc_root_tag:"bib" (parse Fixtures.q2a) in
  Alcotest.(check int) "one component per node" 5 (Array.length comps);
  (* root component *)
  Alcotest.(check bool) "root from doc root" true comps.(0).Component.from_doc_root;
  Alcotest.(check string) "root source tag" "bib" comps.(0).Component.root_tag;
  Alcotest.(check bool) "root edge pc" true
    (Relation.equal comps.(0).Component.relation Relation.child);
  (* title: child of book, with a value *)
  Alcotest.(check string) "title target" "title" comps.(1).Component.target_tag;
  Alcotest.(check (option string)) "title value" (Some "wodehouse")
    comps.(1).Component.target_value;
  Alcotest.(check bool) "title relation" true
    (Relation.equal comps.(1).Component.relation Relation.child);
  (* name: composed pc^3 *)
  Alcotest.(check string) "name target" "name" comps.(4).Component.target_tag;
  Alcotest.(check bool) "name relation = depth exactly 3" true
    (comps.(4).Component.relation.min_depth = 3
    && comps.(4).Component.relation.max_depth = Some 3);
  Alcotest.(check string) "non-root source tag" "book" comps.(4).Component.root_tag

let test_composed_ad () =
  let comps = Component.of_pattern (parse "/a[.//b/c]") in
  Alcotest.(check bool) "ad.pc composes to depth >= 2" true
    (comps.(2).Component.relation.min_depth = 2
    && comps.(2).Component.relation.max_depth = None)

let test_relaxed_component () =
  let comps = Component.of_pattern (parse Fixtures.q2a) in
  let r = Component.relaxed Relaxation.all comps.(4) in
  Alcotest.(check bool) "fully relaxed = descendant" true
    (Relation.equal r.Component.relation Relation.descendant);
  let r = Component.relaxed Relaxation.exact comps.(4) in
  Alcotest.(check bool) "exact config leaves it alone" true
    (Relation.equal r.Component.relation comps.(4).Component.relation)

let test_pp () =
  let comps = Component.of_pattern (parse Fixtures.q2a) in
  Alcotest.(check string) "rendering" "book[child::title='wodehouse']"
    (Format.asprintf "%a" Component.pp comps.(1))

let suite =
  [
    Alcotest.test_case "decomposition" `Quick test_decomposition;
    Alcotest.test_case "composed ad" `Quick test_composed_ad;
    Alcotest.test_case "relaxed component" `Quick test_relaxed_component;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
