(* Cross-engine consistency under every relaxation configuration: all
   2^3 combinations of edge generalization, leaf deletion and subtree
   promotion must give the same top-k score multisets on every engine,
   and the phantom-entry retraction must keep dead matches out of the
   answers. *)

open Whirlpool

let idx = Lazy.force Fixtures.xmark_index
let books = Fixtures.books_index
let parse = Fixtures.parse

let all_configs =
  List.concat_map
    (fun eg ->
      List.concat_map
        (fun ld ->
          List.map
            (fun sp ->
              {
                Wp_relax.Relaxation.edge_generalization = eg;
                leaf_deletion = ld;
                subtree_promotion = sp;
                value_relaxation = false;
              })
            [ false; true ])
        [ false; true ])
    [ false; true ]

let config_name c = Format.asprintf "%a" Wp_relax.Relaxation.pp_config c

let test_engines_agree_on_all_configs () =
  List.iter
    (fun config ->
      let plan = Run.compile ~config idx (parse Fixtures.q2) in
      let reference = Fixtures.sorted_scores (Engine.run plan ~k:8).answers in
      List.iter
        (fun algo ->
          let r = Run.run algo plan ~k:8 in
          Fixtures.check_scores_equal
            ~msg:
              (Format.asprintf "%s under %a" (config_name config)
                 Run.pp_algorithm algo)
            reference
            (Fixtures.sorted_scores r.answers))
        [ Run.Whirlpool_m; Run.Lockstep ])
    all_configs

let test_monotone_in_relaxation_power () =
  (* Enabling more relaxations can only extend the answer set (the exact
     matches stay; approximations join).  Check answer counts are
     monotone along chains of configurations. *)
  let count config =
    let plan = Run.compile ~config books (parse Fixtures.q2a) in
    List.length (Engine.run plan ~k:10).answers
  in
  let exact = count Wp_relax.Relaxation.exact in
  let all = count Wp_relax.Relaxation.all in
  Alcotest.(check bool) "all >= exact" true (all >= exact);
  List.iter
    (fun config ->
      let n = count config in
      Alcotest.(check bool)
        (config_name config ^ " between exact and all")
        true
        (n >= exact && n <= all))
    all_configs

let test_no_phantom_answers () =
  (* Under deletion-without-promotion, matches can die after being
     admitted; every reported root must still be justified by a complete
     (possibly partial-binding) surviving match — cross-check with the
     no-pruning run, which explores everything. *)
  let config =
    {
      Wp_relax.Relaxation.edge_generalization = true;
      leaf_deletion = true;
      subtree_promotion = false;
      value_relaxation = false;
    }
  in
  List.iter
    (fun q ->
      let plan = Run.compile ~config idx (parse q) in
      let reference = Run.run Run.Lockstep_noprun plan ~k:8 in
      let r = Engine.run plan ~k:8 in
      Fixtures.check_scores_equal ~msg:("no phantom answers: " ^ q)
        (Fixtures.sorted_scores reference.answers)
        (Fixtures.sorted_scores r.answers))
    [ Fixtures.q1; Fixtures.q2 ]

let test_exact_config_subsumption () =
  (* Under every configuration, the exact matches must surface with the
     full score: with k no smaller than the exact-match count, at least
     that many full-score answers appear. *)
  let pat = parse Fixtures.q1 in
  let exact_roots = Wp_pattern.Matcher.matching_roots idx pat in
  let n_exact = List.length exact_roots in
  Alcotest.(check bool) "fixture has exact matches" true (n_exact > 0);
  List.iter
    (fun config ->
      let plan = Run.compile ~config idx pat in
      let r = Engine.run plan ~k:(n_exact + 5) in
      let full = float_of_int (Wp_pattern.Pattern.size pat) in
      let full_scored =
        List.filter
          (fun (e : Topk_set.entry) -> Float.abs (e.score -. full) < 1e-9)
          r.answers
      in
      Alcotest.(check bool)
        (config_name config ^ ": every exact match reaches the full score")
        true
        (List.length full_scored >= n_exact))
    all_configs

let suite =
  [
    Alcotest.test_case "engines agree on all configs" `Quick
      test_engines_agree_on_all_configs;
    Alcotest.test_case "monotone in relaxation power" `Quick
      test_monotone_in_relaxation_power;
    Alcotest.test_case "no phantom answers" `Quick test_no_phantom_answers;
    Alcotest.test_case "exact subsumption" `Quick test_exact_config_subsumption;
  ]
