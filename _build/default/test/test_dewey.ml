open Wp_xml

let d = Dewey.of_list

let test_root_properties () =
  Alcotest.(check int) "root depth" 0 (Dewey.depth Dewey.root);
  Alcotest.(check bool) "root = root" true (Dewey.equal Dewey.root Dewey.root);
  Alcotest.(check (option unit))
    "root has no parent" None
    (Option.map ignore (Dewey.parent Dewey.root))

let test_child_and_parent () =
  let c = Dewey.child Dewey.root 3 in
  Alcotest.(check int) "depth" 1 (Dewey.depth c);
  Alcotest.(check int) "component" 3 (Dewey.component c 0);
  (match Dewey.parent c with
  | Some p -> Alcotest.(check bool) "parent is root" true (Dewey.equal p Dewey.root)
  | None -> Alcotest.fail "expected a parent");
  Alcotest.check_raises "rank 0 rejected" (Invalid_argument
    "Dewey: child ranks are 1-based and positive") (fun () ->
      ignore (Dewey.child Dewey.root 0))

let test_document_order () =
  (* Preorder: ancestors before descendants, siblings by rank. *)
  let cases =
    [
      (d [], d [ 1 ], -1);
      (d [ 1 ], d [ 1; 1 ], -1);
      (d [ 1; 2 ], d [ 1; 10 ], -1);
      (d [ 2 ], d [ 1; 5; 9 ], 1);
      (d [ 1; 2; 3 ], d [ 1; 2; 3 ], 0);
    ]
  in
  List.iter
    (fun (a, b, expected) ->
      let sign x = if x < 0 then -1 else if x > 0 then 1 else 0 in
      Alcotest.(check int)
        (Printf.sprintf "compare %s %s" (Dewey.to_string a) (Dewey.to_string b))
        expected
        (sign (Dewey.compare a b)))
    cases

let test_axes () =
  let anc = d [ 1; 2 ] and desc = d [ 1; 2; 3; 4 ] in
  Alcotest.(check bool) "ancestor" true (Dewey.is_ancestor anc desc);
  Alcotest.(check bool) "not ancestor of self" false (Dewey.is_ancestor anc anc);
  Alcotest.(check bool) "ancestor-or-self of self" true
    (Dewey.is_ancestor_or_self anc anc);
  Alcotest.(check bool) "descendant" true (Dewey.is_descendant desc anc);
  Alcotest.(check bool) "not parent (two levels)" false (Dewey.is_parent anc desc);
  Alcotest.(check bool) "parent" true (Dewey.is_parent (d [ 1; 2; 3 ]) desc);
  Alcotest.(check bool) "child" true (Dewey.is_child desc (d [ 1; 2; 3 ]));
  Alcotest.(check bool) "sibling order" true
    (Dewey.is_following_sibling (d [ 1; 5 ]) (d [ 1; 2 ]));
  Alcotest.(check bool) "not sibling across parents" false
    (Dewey.is_following_sibling (d [ 2; 5 ]) (d [ 1; 2 ]));
  Alcotest.(check bool) "not preceding sibling" false
    (Dewey.is_following_sibling (d [ 1; 2 ]) (d [ 1; 5 ]))

let test_common_ancestor () =
  let lca = Dewey.common_ancestor (d [ 1; 2; 3 ]) (d [ 1; 2; 7; 1 ]) in
  Alcotest.(check string) "lca" "1.2" (Dewey.to_string lca);
  Alcotest.(check int) "lca with root" 0
    (Dewey.depth (Dewey.common_ancestor (d [ 3 ]) (d [ 4 ])))

let test_string_roundtrip () =
  List.iter
    (fun label ->
      let s = Dewey.to_string label in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (Dewey.equal label (Dewey.of_string s)))
    [ Dewey.root; d [ 1 ]; d [ 1; 2; 3 ]; d [ 10; 20; 30; 40 ] ];
  Alcotest.check_raises "bad input" (Invalid_argument
    "Dewey.of_string: bad component x") (fun () -> ignore (Dewey.of_string "1.x"))

(* Properties over random labels. *)
let gen_dewey =
  QCheck2.Gen.(map Dewey.of_list (list_size (int_bound 6) (int_range 1 9)))

let prop_order_total =
  QCheck2.Test.make ~name:"dewey compare is antisymmetric" ~count:500
    QCheck2.Gen.(pair gen_dewey gen_dewey)
    (fun (a, b) ->
      let c1 = Dewey.compare a b and c2 = Dewey.compare b a in
      (c1 = 0) = (c2 = 0) && (c1 < 0) = (c2 > 0))

let prop_parent_is_ancestor =
  QCheck2.Test.make ~name:"parent is an ancestor" ~count:500 gen_dewey
    (fun x ->
      match Dewey.parent x with
      | None -> Dewey.depth x = 0
      | Some p -> Dewey.is_parent p x && Dewey.is_ancestor p x)

let prop_roundtrip =
  QCheck2.Test.make ~name:"of_string . to_string = id" ~count:500 gen_dewey
    (fun x -> Dewey.equal x (Dewey.of_string (Dewey.to_string x)))

let prop_ancestor_implies_order =
  QCheck2.Test.make ~name:"ancestor sorts before descendant" ~count:500
    QCheck2.Gen.(pair gen_dewey gen_dewey)
    (fun (a, b) ->
      QCheck2.assume (Dewey.is_ancestor a b);
      Dewey.compare a b < 0)

let suite =
  [
    Alcotest.test_case "root properties" `Quick test_root_properties;
    Alcotest.test_case "child and parent" `Quick test_child_and_parent;
    Alcotest.test_case "document order" `Quick test_document_order;
    Alcotest.test_case "axes" `Quick test_axes;
    Alcotest.test_case "common ancestor" `Quick test_common_ancestor;
    Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_order_total;
    QCheck_alcotest.to_alcotest prop_parent_is_ancestor;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_ancestor_implies_order;
  ]
