open Wp_relax

let parse = Fixtures.parse

let specs_all q = Server_spec.build Relaxation.all (parse q)
let specs_exact q = Server_spec.build Relaxation.exact (parse q)

let test_root_spec () =
  let specs = specs_all Fixtures.q2 in
  let root = specs.(0) in
  Alcotest.(check string) "tag" "item" root.tag;
  Alcotest.(check bool) "root is mandatory" false root.optional;
  Alcotest.(check bool) "root edge relation" true
    (Relation.equal root.to_root.exact Relation.descendant);
  Alcotest.(check bool) "already most relaxed" true (root.to_root.relaxed = None)

let test_structural_predicates () =
  let specs = specs_all Fixtures.q2 in
  (* q5 = text, reached via item/mailbox/mail/text: exact depth 3. *)
  let text = specs.(5) in
  Alcotest.(check string) "text tag" "text" text.tag;
  Alcotest.(check bool) "exact = depth 3" true
    (text.to_root.exact.min_depth = 3 && text.to_root.exact.max_depth = Some 3);
  (match text.to_root.relaxed with
  | Some r -> Alcotest.(check bool) "relaxed = any descendant" true
      (r.min_depth = 1 && r.max_depth = None)
  | None -> Alcotest.fail "expected a relaxed level");
  Alcotest.(check bool) "structural predicate is hard" true text.to_root.hard;
  Alcotest.(check bool) "non-root servers optional under leaf deletion" true
    text.optional

let test_conditionals () =
  let specs = specs_all Fixtures.q2 in
  (* mail (q4) relates upward to mailbox (q3) and downward to text (q5);
     the root is covered by to_root. *)
  let mail = specs.(4) in
  let others = List.map (fun c -> (c.Server_spec.other, c.Server_spec.downward)) mail.conditionals in
  Alcotest.(check (list (pair int bool))) "related nodes" [ (3, false); (5, true) ] others;
  List.iter
    (fun c ->
      Alcotest.(check bool) "soft under promotion" false c.Server_spec.hard)
    mail.conditionals

let test_exact_config () =
  let specs = specs_exact Fixtures.q2 in
  let text = specs.(5) in
  Alcotest.(check bool) "no relaxed level" true (text.to_root.relaxed = None);
  Alcotest.(check bool) "not optional" false text.optional;
  List.iter
    (fun c -> Alcotest.(check bool) "hard without promotion" true c.Server_spec.hard)
    text.conditionals;
  Alcotest.(check bool) "candidate relation = exact" true
    (Relation.equal (Server_spec.candidate_relation text) text.to_root.exact)

let test_candidate_relation_relaxed () =
  let specs = specs_all Fixtures.q2 in
  let text = specs.(5) in
  Alcotest.(check bool) "candidate relation = relaxed" true
    (Relation.equal (Server_spec.candidate_relation text) Relation.descendant)

let test_promotion_only_softens_ancestors () =
  let config =
    { Relaxation.exact with Relaxation.subtree_promotion = true }
  in
  let specs = Server_spec.build config (parse Fixtures.q2) in
  let mail = specs.(4) in
  List.iter
    (fun c -> Alcotest.(check bool) "soft with promotion" false c.Server_spec.hard)
    mail.conditionals;
  (* Promotion alone still allows escaping to the root. *)
  Alcotest.(check bool) "root relation relaxed to any depth" true
    (Relation.equal (Server_spec.candidate_relation mail) Relation.descendant)

let test_every_node_has_spec () =
  List.iter
    (fun q ->
      let pat = parse q in
      let specs = specs_all q in
      Alcotest.(check int) "one spec per node" (Wp_pattern.Pattern.size pat)
        (Array.length specs);
      Array.iteri
        (fun i spec ->
          Alcotest.(check int) "ids align" i spec.Server_spec.node;
          Alcotest.(check string) "tags align" (Wp_pattern.Pattern.tag pat i)
            spec.Server_spec.tag)
        specs)
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q2a ]

let suite =
  [
    Alcotest.test_case "root spec" `Quick test_root_spec;
    Alcotest.test_case "structural predicates" `Quick test_structural_predicates;
    Alcotest.test_case "conditionals" `Quick test_conditionals;
    Alcotest.test_case "exact config" `Quick test_exact_config;
    Alcotest.test_case "relaxed candidate relation" `Quick test_candidate_relation_relaxed;
    Alcotest.test_case "promotion-only" `Quick test_promotion_only_softens_ancestors;
    Alcotest.test_case "spec per node" `Quick test_every_node_has_spec;
  ]
