open Wp_xml

(*  r
    ├ a        (1)
    │ ├ b      (2)
    │ │ └ b    (3)
    │ └ c      (4)
    ├ b        (5)
    └ a        (6)
      └ c      (7)  *)
let doc =
  Doc.of_tree
    (Tree.el "r"
       [
         Tree.el "a" [ Tree.el "b" [ Tree.el "b" [] ]; Tree.el "c" [] ];
         Tree.el "b" [];
         Tree.el "a" [ Tree.el "c" [] ];
       ])

let idx = Index.build doc

let test_ids () =
  Alcotest.(check (list int)) "a ids" [ 1; 6 ] (Array.to_list (Index.ids idx "a"));
  Alcotest.(check (list int)) "b ids" [ 2; 3; 5 ] (Array.to_list (Index.ids idx "b"));
  Alcotest.(check (list int)) "absent tag" [] (Array.to_list (Index.ids idx "zzz"));
  Alcotest.(check int) "count" 3 (Index.count idx "b")

let test_descendant_queries () =
  Alcotest.(check (list int)) "b under a(1)" [ 2; 3 ] (Index.descendants idx "b" ~root:1);
  Alcotest.(check (list int)) "b under root" [ 2; 3; 5 ] (Index.descendants idx "b" ~root:0);
  Alcotest.(check (list int)) "b under a(6)" [] (Index.descendants idx "b" ~root:6);
  Alcotest.(check (list int)) "self excluded" [ 3 ] (Index.descendants idx "b" ~root:2);
  Alcotest.(check int) "count_descendants" 2 (Index.count_descendants idx "b" ~root:1)

let test_children_queries () =
  Alcotest.(check (list int)) "a children of root" [ 1; 6 ] (Index.children idx "a" ~parent:0);
  Alcotest.(check (list int)) "b children of a(1)" [ 2 ] (Index.children idx "b" ~parent:1);
  Alcotest.(check (list int)) "none" [] (Index.children idx "c" ~parent:2)

let test_iteration_agreement () =
  let via_iter = ref [] in
  Index.iter_descendants idx "c" ~root:0 (fun i -> via_iter := i :: !via_iter);
  Alcotest.(check (list int)) "iter vs list" [ 4; 7 ] (List.rev !via_iter);
  let via_fold = Index.fold_descendants idx "c" ~root:0 (fun acc i -> acc + i) 0 in
  Alcotest.(check int) "fold" 11 via_fold

(* Agreement with a naive scan on random documents. *)
let prop_descendants_match_naive =
  QCheck2.Test.make ~name:"index subtree slice = naive scan" ~count:100
    Test_doc.gen_tree (fun t ->
      let doc = Doc.of_tree t in
      let idx = Index.build doc in
      let tags = Doc.distinct_tags doc in
      let ok = ref true in
      List.iter
        (fun tag ->
          for root = 0 to Doc.size doc - 1 do
            let naive =
              List.filter
                (fun i ->
                  String.equal (Doc.tag doc i) tag
                  && Doc.is_ancestor doc ~anc:root ~desc:i)
                (List.init (Doc.size doc) Fun.id)
            in
            if Index.descendants idx tag ~root <> naive then ok := false
          done)
        tags;
      !ok)

let suite =
  [
    Alcotest.test_case "ids" `Quick test_ids;
    Alcotest.test_case "descendant queries" `Quick test_descendant_queries;
    Alcotest.test_case "children queries" `Quick test_children_queries;
    Alcotest.test_case "iteration agreement" `Quick test_iteration_agreement;
    QCheck_alcotest.to_alcotest prop_descendants_match_naive;
  ]
