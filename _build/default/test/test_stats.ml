open Whirlpool

let test_create_and_reset () =
  let s = Stats.create () in
  Alcotest.(check int) "fresh" 0 s.server_ops;
  s.server_ops <- 5;
  s.comparisons <- 7;
  Stats.reset s;
  Alcotest.(check int) "reset ops" 0 s.server_ops;
  Alcotest.(check int) "reset comparisons" 0 s.comparisons

let test_add () =
  let a = Stats.create () and b = Stats.create () in
  a.server_ops <- 1;
  a.wall_ns <- 100L;
  b.server_ops <- 2;
  b.matches_pruned <- 3;
  b.wall_ns <- 50L;
  Stats.add a b;
  Alcotest.(check int) "ops summed" 3 a.server_ops;
  Alcotest.(check int) "pruned summed" 3 a.matches_pruned;
  Alcotest.(check bool) "wall takes the max" true (a.wall_ns = 100L);
  let c = Stats.create () in
  c.wall_ns <- 500L;
  Stats.add a c;
  Alcotest.(check bool) "wall max again" true (a.wall_ns = 500L)

let test_wall_seconds () =
  let s = Stats.create () in
  s.wall_ns <- 1_500_000_000L;
  Alcotest.(check (float 1e-9)) "ns to s" 1.5 (Stats.wall_seconds s)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_pp () =
  let s = Stats.create () in
  s.server_ops <- 2;
  let str = Format.asprintf "%a" Stats.pp s in
  Alcotest.(check bool) "mentions ops" true (contains ~needle:"ops=2" str)

let suite =
  [
    Alcotest.test_case "create and reset" `Quick test_create_and_reset;
    Alcotest.test_case "add" `Quick test_add;
    Alcotest.test_case "wall seconds" `Quick test_wall_seconds;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
