open Whirlpool

let idx = Fixtures.books_index
let parse = Fixtures.parse

let make_plan ?(config = Wp_relax.Relaxation.all) q =
  Run.compile ~config ~normalization:Wp_score.Score_table.Sparse idx (parse q)

let id_gen () =
  let n = ref 100 in
  fun () -> incr n; !n

let initial plan =
  Server.initial_matches plan (Stats.create ()) ~next_id:(id_gen ())

let book_a, book_b, book_c =
  match Fixtures.book_roots with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

let test_initial_matches () =
  let plan = make_plan Fixtures.q2a in
  let stats = Stats.create () in
  let ms = Server.initial_matches plan stats ~next_id:(id_gen ()) in
  Alcotest.(check int) "one match per book" 3 (List.length ms);
  Alcotest.(check (list int)) "roots in document order" [ book_a; book_b; book_c ]
    (List.map Partial_match.root_binding ms);
  Alcotest.(check int) "counted as one op" 1 stats.server_ops;
  Alcotest.(check int) "created" 3 stats.matches_created;
  List.iter
    (fun pm ->
      Alcotest.(check bool) "only root visited" true
        (Partial_match.visited pm 0 && not (Partial_match.visited pm 1)))
    ms

let test_extension_binds () =
  let plan = make_plan Fixtures.q2a in
  let stats = Stats.create () in
  let pm_a = List.hd (initial plan) in
  (* server 1 = title='wodehouse' *)
  let { Server.extensions; died } =
    Server.process plan stats ~next_id:(id_gen ()) pm_a ~server:1
  in
  Alcotest.(check bool) "alive" false died;
  Alcotest.(check int) "one title binding" 1 (List.length extensions);
  let ext = List.hd extensions in
  Alcotest.(check bool) "bound" true (Partial_match.bound ext 1 <> None);
  (* exact child binding earns the exact (sparse = 1.0) weight *)
  Alcotest.(check (float 1e-9)) "score grew by 1" (pm_a.score +. 1.0) ext.score;
  Alcotest.(check (float 1e-9)) "max unchanged on exact binding"
    pm_a.max_possible ext.max_possible

let test_relaxed_binding_scores_less () =
  let plan = make_plan Fixtures.q2a in
  let stats = Stats.create () in
  (* book (c): its wodehouse title sits under reviews — a relaxed
     (descendant) binding for the child predicate. *)
  let pm_c =
    List.find (fun pm -> Partial_match.root_binding pm = book_c) (initial plan)
  in
  let { Server.extensions; _ } =
    Server.process plan stats ~next_id:(id_gen ()) pm_c ~server:1
  in
  Alcotest.(check int) "one binding" 1 (List.length extensions);
  let ext = List.hd extensions in
  let relaxed_w = (Wp_score.Score_table.entry plan.scores 1).relaxed_weight in
  Alcotest.(check (float 1e-9)) "relaxed weight earned" (pm_c.score +. relaxed_w)
    ext.score;
  Alcotest.(check bool) "max dropped" true (ext.max_possible < pm_c.max_possible)

let test_optional_unbound_extension () =
  let plan = make_plan Fixtures.q2a in
  let stats = Stats.create () in
  (* book (c) has no publisher at all: server 3 must produce an unbound
     extension under leaf deletion. *)
  let pm_c =
    List.find (fun pm -> Partial_match.root_binding pm = book_c) (initial plan)
  in
  let { Server.extensions; died } =
    Server.process plan stats ~next_id:(id_gen ()) pm_c ~server:3
  in
  Alcotest.(check bool) "alive" false died;
  Alcotest.(check int) "single unbound extension" 1 (List.length extensions);
  let ext = List.hd extensions in
  Alcotest.(check (option int)) "unbound" None (Partial_match.bound ext 3);
  Alcotest.(check (float 1e-9)) "no score" pm_c.score ext.score

let test_exact_mode_death () =
  let plan = make_plan ~config:Wp_relax.Relaxation.exact Fixtures.q2a in
  let stats = Stats.create () in
  let pm_c =
    List.find (fun pm -> Partial_match.root_binding pm = book_c) (initial plan)
  in
  let { Server.extensions; died } =
    Server.process plan stats ~next_id:(id_gen ()) pm_c ~server:3
  in
  Alcotest.(check bool) "died" true died;
  Alcotest.(check int) "no extensions" 0 (List.length extensions);
  Alcotest.(check int) "death recorded" 1 stats.matches_died;
  (* In exact mode even the title server rejects book (c): the title is
     not a child. *)
  let { Server.died = died_title; _ } =
    Server.process plan stats ~next_id:(id_gen ()) pm_c ~server:1
  in
  Alcotest.(check bool) "title rejects nested binding" true died_title

let test_hard_conditionals_without_promotion () =
  (* Without promotion, a bound ancestor constrains candidates: book (b)'s
     publisher is not under info, so binding info first then asking for
     publisher must fail (and deletion is blocked by the bound
     descendant rule in the other direction). *)
  let config =
    {
      Wp_relax.Relaxation.edge_generalization = true;
      leaf_deletion = true;
      subtree_promotion = false;
      value_relaxation = false;
    }
  in
  let plan = make_plan ~config Fixtures.q2a in
  let stats = Stats.create () in
  let pm_b =
    List.find (fun pm -> Partial_match.root_binding pm = book_b) (initial plan)
  in
  (* Bind info (server 2) first. *)
  let { Server.extensions; _ } =
    Server.process plan stats ~next_id:(id_gen ()) pm_b ~server:2
  in
  let with_info =
    List.find (fun pm -> Partial_match.bound pm 2 <> None) extensions
  in
  (* Now the publisher server (3): without promotion the candidate
     relation keeps its minimum depth of 2, so book (b)'s depth-1
     publisher is rejected and (the name being unbound) the node is
     deleted instead. *)
  let { Server.extensions; _ } =
    Server.process plan stats ~next_id:(id_gen ()) with_info ~server:3
  in
  Alcotest.(check (list bool)) "publisher stays unbound"
    [ true ]
    (List.map (fun pm -> Partial_match.bound pm 3 = None) extensions)

let test_deletion_blocked_by_bound_descendant () =
  let config =
    {
      Wp_relax.Relaxation.edge_generalization = true;
      leaf_deletion = true;
      subtree_promotion = false;
      value_relaxation = false;
    }
  in
  (* Pattern nodes: 0 book, 1 info, 2 name. *)
  let plan = make_plan ~config "/book[./info/name = 'psmith']" in
  let stats = Stats.create () in
  let pm_b =
    List.find (fun pm -> Partial_match.root_binding pm = book_b) (initial plan)
  in
  (* Bind name (server 2) first: book (b)'s psmith sits at depth 2 under
     its publisher child, accepted by the generalized depth->=2
     relation. *)
  let { Server.extensions; _ } =
    Server.process plan stats ~next_id:(id_gen ()) pm_b ~server:2
  in
  let with_name =
    List.find (fun pm -> Partial_match.bound pm 2 <> None) extensions
  in
  (* Info server next: book (b) has an info child, but the bound name is
     not inside it — the hard descendant conditional rejects the
     candidate, and deletion is blocked by the bound descendant, so the
     match dies. *)
  let { Server.extensions = exts; died } =
    Server.process plan stats ~next_id:(id_gen ()) with_name ~server:1
  in
  Alcotest.(check bool) "info cannot be deleted over a bound subtree" true died;
  Alcotest.(check int) "no extensions" 0 (List.length exts)

let test_comparison_counting () =
  let plan = make_plan Fixtures.q2d in
  let stats = Stats.create () in
  let pm = List.hd (initial plan) in
  let before = stats.comparisons in
  let _ = Server.process plan stats ~next_id:(id_gen ()) pm ~server:1 in
  (* book (a) has one title node to examine. *)
  Alcotest.(check int) "one comparison" (before + 1) stats.comparisons;
  Alcotest.(check int) "one op" 1 stats.server_ops

let test_rejects_visited_server () =
  let plan = make_plan Fixtures.q2d in
  let pm = List.hd (initial plan) in
  Alcotest.check_raises "root server rejected"
    (Invalid_argument "Server.process: the root server runs first") (fun () ->
      ignore (Server.process plan (Stats.create ()) ~next_id:(id_gen ()) pm ~server:0))

let suite =
  [
    Alcotest.test_case "initial matches" `Quick test_initial_matches;
    Alcotest.test_case "extension binds" `Quick test_extension_binds;
    Alcotest.test_case "relaxed binding scores less" `Quick test_relaxed_binding_scores_less;
    Alcotest.test_case "optional unbound extension" `Quick test_optional_unbound_extension;
    Alcotest.test_case "exact-mode death" `Quick test_exact_mode_death;
    Alcotest.test_case "hard conditionals" `Quick test_hard_conditionals_without_promotion;
    Alcotest.test_case "deletion blocked" `Quick test_deletion_blocked_by_bound_descendant;
    Alcotest.test_case "comparison counting" `Quick test_comparison_counting;
    Alcotest.test_case "rejects visited" `Quick test_rejects_visited_server;
  ]
