open Wp_xml

let sample =
  Tree.el "a"
    [
      Tree.el "b" [ Tree.leaf "d" "x"; Tree.el "e" [] ];
      Tree.leaf "c" "y";
    ]

let doc = Doc.of_tree sample

let test_layout () =
  Alcotest.(check int) "size" 5 (Doc.size doc);
  Alcotest.(check string) "root tag" "a" (Doc.tag doc 0);
  (* Preorder: a b d e c *)
  Alcotest.(check (list string))
    "preorder tags"
    [ "a"; "b"; "d"; "e"; "c" ]
    (List.init 5 (Doc.tag doc));
  Alcotest.(check (option string)) "value of d" (Some "x") (Doc.value doc 2);
  Alcotest.(check (option string)) "no value on b" None (Doc.value doc 1)

let test_parents_and_children () =
  Alcotest.(check (option int)) "root parent" None (Doc.parent doc 0);
  Alcotest.(check (option int)) "b's parent" (Some 0) (Doc.parent doc 1);
  Alcotest.(check (option int)) "d's parent" (Some 1) (Doc.parent doc 2);
  Alcotest.(check (list int)) "root children" [ 1; 4 ] (Doc.children doc 0);
  Alcotest.(check (list int)) "b children" [ 2; 3 ] (Doc.children doc 1);
  Alcotest.(check (list int)) "leaf children" [] (Doc.children doc 2)

let test_subtree_intervals () =
  Alcotest.(check int) "root subtree end" 5 (Doc.subtree_end doc 0);
  Alcotest.(check int) "b subtree end" 4 (Doc.subtree_end doc 1);
  Alcotest.(check int) "leaf subtree end" 3 (Doc.subtree_end doc 2);
  Alcotest.(check bool) "b ancestor of e" true (Doc.is_ancestor doc ~anc:1 ~desc:3);
  Alcotest.(check bool) "b not ancestor of c" false (Doc.is_ancestor doc ~anc:1 ~desc:4);
  Alcotest.(check bool) "not own ancestor" false (Doc.is_ancestor doc ~anc:1 ~desc:1);
  Alcotest.(check bool) "is_parent" true (Doc.is_parent doc ~parent:1 ~child:2)

let test_dewey_assignment () =
  Alcotest.(check string) "root" "\xce\xb5" (Dewey.to_string (Doc.dewey doc 0));
  Alcotest.(check string) "b" "1" (Dewey.to_string (Doc.dewey doc 1));
  Alcotest.(check string) "d" "1.1" (Dewey.to_string (Doc.dewey doc 2));
  Alcotest.(check string) "e" "1.2" (Dewey.to_string (Doc.dewey doc 3));
  Alcotest.(check string) "c" "2" (Dewey.to_string (Doc.dewey doc 4));
  Alcotest.(check int) "depth" 2 (Doc.depth doc 2)

let test_roundtrip () =
  Alcotest.(check bool) "to_tree inverts of_tree" true
    (Tree.equal sample (Doc.to_tree doc 0))

let test_forest () =
  let f = Doc.of_forest [ Tree.el "x" []; Tree.el "y" [] ] in
  Alcotest.(check string) "synthetic root" "doc-root" (Doc.tag f 0);
  Alcotest.(check (list int)) "two children" [ 1; 2 ] (Doc.children f 0)

let test_distinct_tags () =
  Alcotest.(check (list string))
    "first-occurrence order"
    [ "a"; "b"; "d"; "e"; "c" ]
    (Doc.distinct_tags doc)

(* Random tree generator shared with other suites. *)
let gen_tree =
  let open QCheck2.Gen in
  let tag = map (fun i -> Printf.sprintf "t%d" i) (int_bound 5) in
  let value = opt (map (fun i -> Printf.sprintf "v%d" i) (int_bound 9)) in
  sized @@ fix (fun self n ->
      if n = 0 then map2 (fun t v -> { Tree.tag = t; value = v; children = [] }) tag value
      else
        map3
          (fun t v cs -> { Tree.tag = t; value = v; children = cs })
          tag value
          (list_size (int_bound 3) (self (n / 4))))

let prop_preorder_roundtrip =
  QCheck2.Test.make ~name:"of_tree . to_tree = id" ~count:200 gen_tree
    (fun t ->
      let d = Doc.of_tree t in
      Tree.equal t (Doc.to_tree d 0))

let prop_intervals_match_dewey =
  QCheck2.Test.make ~name:"interval ancestorship agrees with Dewey" ~count:100
    gen_tree (fun t ->
      let d = Doc.of_tree t in
      let n = Doc.size d in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let by_interval = Doc.is_ancestor d ~anc:i ~desc:j in
          let by_dewey = Dewey.is_ancestor (Doc.dewey d i) (Doc.dewey d j) in
          if by_interval <> by_dewey then ok := false
        done
      done;
      !ok)

let prop_size =
  QCheck2.Test.make ~name:"Doc.size = Tree.size" ~count:200 gen_tree
    (fun t -> Doc.size (Doc.of_tree t) = Tree.size t)

let suite =
  [
    Alcotest.test_case "layout" `Quick test_layout;
    Alcotest.test_case "parents and children" `Quick test_parents_and_children;
    Alcotest.test_case "subtree intervals" `Quick test_subtree_intervals;
    Alcotest.test_case "dewey assignment" `Quick test_dewey_assignment;
    Alcotest.test_case "tree roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "forest" `Quick test_forest;
    Alcotest.test_case "distinct tags" `Quick test_distinct_tags;
    QCheck_alcotest.to_alcotest prop_preorder_roundtrip;
    QCheck_alcotest.to_alcotest prop_intervals_match_dewey;
    QCheck_alcotest.to_alcotest prop_size;
  ]
