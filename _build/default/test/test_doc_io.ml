open Wp_xml

let roundtrip doc =
  let path = Filename.temp_file "wp_snap" ".wpdoc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Doc_io.save path doc;
      Doc_io.load path)

let check_equal_docs a b =
  Alcotest.(check int) "size" (Doc.size a) (Doc.size b);
  for i = 0 to Doc.size a - 1 do
    Alcotest.(check string) "tag" (Doc.tag a i) (Doc.tag b i);
    Alcotest.(check (option string)) "value" (Doc.value a i) (Doc.value b i);
    Alcotest.(check (option int)) "parent" (Doc.parent a i) (Doc.parent b i);
    Alcotest.(check int) "subtree end" (Doc.subtree_end a i) (Doc.subtree_end b i);
    Alcotest.(check string) "dewey"
      (Dewey.to_string (Doc.dewey a i))
      (Dewey.to_string (Doc.dewey b i))
  done

let test_roundtrip_books () =
  check_equal_docs Fixtures.books_doc (roundtrip Fixtures.books_doc)

let test_roundtrip_generated () =
  let doc = Wp_xmark.Generator.generate_doc ~seed:5 ~target_bytes:60_000 () in
  check_equal_docs doc (roundtrip doc)

let test_queries_survive () =
  let doc = roundtrip (Lazy.force Fixtures.xmark_doc) in
  let idx = Index.build doc in
  let orig = Lazy.force Fixtures.xmark_index in
  List.iter
    (fun q ->
      let pat = Fixtures.parse q in
      Alcotest.(check int) ("same matches: " ^ q)
        (List.length (Wp_pattern.Matcher.matching_roots orig pat))
        (List.length (Wp_pattern.Matcher.matching_roots idx pat)))
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3 ]

let test_string_interning_compactness () =
  (* Repeated tags and values are stored once: the snapshot of a highly
     repetitive document is much smaller than its XML. *)
  let doc = Wp_xmark.Generator.generate_doc ~seed:6 ~target_bytes:100_000 () in
  let path = Filename.temp_file "wp_snap" ".wpdoc" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Doc_io.save path doc;
      let snapshot_bytes = (Unix.stat path).Unix.st_size in
      let xml_bytes = Printer.doc_serialized_size doc in
      Alcotest.(check bool)
        (Printf.sprintf "snapshot (%d) not far above XML (%d)" snapshot_bytes
           xml_bytes)
        true
        (snapshot_bytes < 2 * xml_bytes))

let test_bad_inputs () =
  let check_fails name bytes =
    let path = Filename.temp_file "wp_bad" ".wpdoc" in
    Fun.protect
      ~finally:(fun () -> Sys.remove path)
      (fun () ->
        let oc = open_out_bin path in
        output_string oc bytes;
        close_out oc;
        match Doc_io.load path with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail ("expected failure: " ^ name))
  in
  check_fails "empty" "";
  check_fails "bad magic" "NOTIT\x01";
  check_fails "bad version" "WPDOC\x09";
  check_fails "truncated" "WPDOC\x01\x05\x00\x00"

(* Any truncation of a valid snapshot must fail cleanly, and any
   single-byte corruption must either fail cleanly or decode to a
   well-formed document — never crash with another exception. *)
let prop_truncation_fails_cleanly =
  let snapshot =
    let buf = Buffer.create 1024 in
    let path = Filename.temp_file "wp_snap_base" ".wpdoc" in
    Doc_io.save path Fixtures.books_doc;
    let ic = open_in_bin path in
    Buffer.add_string buf (really_input_string ic (in_channel_length ic));
    close_in ic;
    Sys.remove path;
    Buffer.contents buf
  in
  QCheck2.Test.make ~name:"snapshot truncation fails cleanly" ~count:100
    QCheck2.Gen.(int_bound (String.length snapshot - 1))
    (fun cut ->
      let path = Filename.temp_file "wp_snap_cut" ".wpdoc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out_bin path in
          output_string oc (String.sub snapshot 0 cut);
          close_out oc;
          match Doc_io.load path with
          | _ -> false (* a strict prefix can never be a valid snapshot *)
          | exception Failure _ -> true))

let prop_corruption_is_contained =
  let snapshot =
    let path = Filename.temp_file "wp_snap_base" ".wpdoc" in
    Doc_io.save path Fixtures.books_doc;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  QCheck2.Test.make ~name:"snapshot corruption is contained" ~count:200
    QCheck2.Gen.(pair (int_bound (String.length snapshot - 1)) (int_bound 255))
    (fun (pos, byte) ->
      let corrupted =
        String.mapi
          (fun i c -> if i = pos then Char.chr byte else c)
          snapshot
      in
      let path = Filename.temp_file "wp_snap_bad" ".wpdoc" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          let oc = open_out_bin path in
          output_string oc corrupted;
          close_out oc;
          match Doc_io.load path with
          | doc -> Wp_xml.Doc.size doc > 0
          | exception Failure _ -> true))

let prop_roundtrip =
  QCheck2.Test.make ~name:"snapshot roundtrip" ~count:50 Test_doc.gen_tree
    (fun t ->
      let doc = Doc.of_tree t in
      let back = roundtrip doc in
      Tree.equal (Doc.to_tree doc 0) (Doc.to_tree back 0))

let suite =
  [
    Alcotest.test_case "roundtrip books" `Quick test_roundtrip_books;
    Alcotest.test_case "roundtrip generated" `Quick test_roundtrip_generated;
    Alcotest.test_case "queries survive" `Quick test_queries_survive;
    Alcotest.test_case "interning compactness" `Quick test_string_interning_compactness;
    Alcotest.test_case "bad inputs" `Quick test_bad_inputs;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_truncation_fails_cleanly;
    QCheck_alcotest.to_alcotest prop_corruption_is_contained;
  ]
