open Whirlpool

let title, location, price =
  match Join_plan.book_d_example with
  | [ t; l; p ] -> (t, l, p)
  | _ -> assert false

let eval order theta =
  Join_plan.evaluate ~root_score:0.0 ~order ~current_topk:theta

let test_no_pruning_at_zero_threshold () =
  (* At threshold 0 every tuple can still reach a positive score, so no
     pruning: comparisons depend only on prefix products. *)
  let m = eval [ price; title; location ] 0.0 in
  (* 1*1 + 1*3 + 3*5 *)
  Alcotest.(check int) "plan 6 comparisons" 19 m.comparisons;
  Alcotest.(check int) "tuples" 19 m.tuples_created;
  let m = eval [ location; title; price ] 0.0 in
  (* 1*5 + 5*3 + 15*1 *)
  Alcotest.(check int) "location-first comparisons" 35 m.comparisons

let test_full_pruning_at_high_threshold () =
  (* Above the best achievable score (0.8) even the root tuple dies. *)
  List.iter
    (fun order ->
      let m = eval order 0.85 in
      Alcotest.(check int) "nothing joined" 0 m.comparisons;
      Alcotest.(check int) "no survivors" 0 m.survivors)
    (Join_plan.permutations Join_plan.book_d_example)

let test_best_score () =
  let m = eval [ title; location; price ] 0.0 in
  Alcotest.(check (float 1e-9)) "0.3+0.3+0.2" 0.8 m.best_score;
  Alcotest.(check int) "15 complete tuples" 15 m.survivors

let test_crossover_shape () =
  (* The motivating example's qualitative claim: the cheapest plan at a
     low threshold differs from the cheapest at a high threshold, and the
     location-first plans flip from worst to (joint) best. *)
  let plans = Join_plan.permutations Join_plan.book_d_example in
  let cost theta order = (eval order theta).comparisons in
  let best theta =
    List.fold_left
      (fun acc o -> if cost theta o < cost theta acc then o else acc)
      (List.hd plans) plans
  in
  let worst theta =
    List.fold_left
      (fun acc o -> if cost theta o > cost theta acc then o else acc)
      (List.hd plans) plans
  in
  let names o = String.concat "," (List.map (fun p -> p.Join_plan.name) o) in
  (* Low threshold: price-first wins (smallest fan-out first). *)
  Alcotest.(check string) "low threshold winner starts with price" "price"
    (List.hd (best 0.1)).Join_plan.name;
  (* Low threshold: location-first is worst. *)
  Alcotest.(check string) "low threshold loser starts with location" "location"
    (List.hd (worst 0.1)).Join_plan.name;
  (* High threshold: a location-first plan is at least as cheap as the
     low-threshold winner. *)
  let low_winner = best 0.1 in
  let loc_first =
    List.find (fun o -> (List.hd o).Join_plan.name = "location") plans
  in
  Alcotest.(check bool)
    (Printf.sprintf "crossover: %s beats %s at high threshold"
       (names loc_first) (names low_winner))
    true
    (cost 0.75 loc_first <= cost 0.75 low_winner);
  (* And no single plan is best across the whole threshold range. *)
  let winners =
    List.sort_uniq String.compare
      (List.map (fun t -> names (best t)) [ 0.0; 0.3; 0.5; 0.65; 0.75 ])
  in
  Alcotest.(check bool) "no plan dominates every threshold" true
    (List.length winners > 1)

let test_monotone_in_threshold () =
  (* Raising the threshold can only reduce work. *)
  let plans = Join_plan.permutations Join_plan.book_d_example in
  List.iter
    (fun order ->
      let last = ref max_int in
      List.iter
        (fun theta ->
          let c = (eval order theta).comparisons in
          Alcotest.(check bool) "comparisons non-increasing" true (c <= !last);
          last := c)
        [ 0.0; 0.2; 0.4; 0.6; 0.8; 1.0 ])
    plans

let test_permutations () =
  Alcotest.(check int) "3! permutations" 6
    (List.length (Join_plan.permutations Join_plan.book_d_example));
  Alcotest.(check int) "empty" 1 (List.length (Join_plan.permutations []))

let suite =
  [
    Alcotest.test_case "no pruning at zero" `Quick test_no_pruning_at_zero_threshold;
    Alcotest.test_case "full pruning above max" `Quick test_full_pruning_at_high_threshold;
    Alcotest.test_case "best score" `Quick test_best_score;
    Alcotest.test_case "crossover shape" `Quick test_crossover_shape;
    Alcotest.test_case "monotone in threshold" `Quick test_monotone_in_threshold;
    Alcotest.test_case "permutations" `Quick test_permutations;
  ]
