open Wp_score
open Wp_relax

let idx = Fixtures.books_index
let parse = Fixtures.parse
let float_eq = Alcotest.(check (float 1e-9))

let test_raw_weights () =
  let t =
    Score_table.build idx (parse Fixtures.q2a) Relaxation.all Score_table.Raw
  in
  Alcotest.(check int) "size" 5 (Score_table.size t);
  (* Exact weights are the exact-component idfs. *)
  float_eq "title exact" (log (3.0 /. 2.0)) (Score_table.entry t 1).exact_weight;
  float_eq "publisher exact" (log 3.0) (Score_table.entry t 3).exact_weight;
  (* The relaxed publisher predicate (any descendant) is satisfied by
     books (a) and (b): lower idf. *)
  float_eq "publisher relaxed" (log (3.0 /. 2.0))
    (Score_table.entry t 3).relaxed_weight;
  (* Relaxation can only lose selectivity. *)
  for i = 0 to Score_table.size t - 1 do
    let e = Score_table.entry t i in
    Alcotest.(check bool) "relaxed <= exact" true
      (e.relaxed_weight <= e.exact_weight +. 1e-12)
  done

let test_exact_config_weights () =
  let t =
    Score_table.build idx (parse Fixtures.q2a) Relaxation.exact Score_table.Raw
  in
  for i = 0 to Score_table.size t - 1 do
    let e = Score_table.entry t i in
    float_eq "no relaxation: weights equal" e.exact_weight e.relaxed_weight
  done

let test_sparse_normalization () =
  let t =
    Score_table.build idx (parse Fixtures.q2a) Relaxation.all Score_table.Sparse
  in
  for i = 0 to Score_table.size t - 1 do
    let e = Score_table.entry t i in
    float_eq "every exact weight is 1" 1.0 e.exact_weight;
    Alcotest.(check bool) "relaxed within [0,1]" true
      (e.relaxed_weight >= 0.0 && e.relaxed_weight <= 1.0)
  done;
  float_eq "max_total = pattern size" 5.0 (Score_table.max_total t)

let test_dense_normalization () =
  let t =
    Score_table.build idx (parse Fixtures.q2a) Relaxation.all Score_table.Dense
  in
  let max_w = ref 0.0 in
  for i = 0 to Score_table.size t - 1 do
    max_w := Float.max !max_w (Score_table.entry t i).exact_weight
  done;
  float_eq "global max is 1" 1.0 !max_w;
  (* Skew preserved: title/publisher ratio survives normalization. *)
  let title = (Score_table.entry t 1).exact_weight in
  let publisher = (Score_table.entry t 3).exact_weight in
  float_eq "ratio preserved" (log (3.0 /. 2.0) /. log 3.0) (title /. publisher)

let test_random_tables () =
  let pat = parse Fixtures.q2 in
  let t1 = Score_table.build idx pat Relaxation.all (Score_table.Random_sparse 7) in
  let t2 = Score_table.build idx pat Relaxation.all (Score_table.Random_sparse 7) in
  for i = 0 to Score_table.size t1 - 1 do
    float_eq "deterministic per seed" (Score_table.entry t1 i).exact_weight
      (Score_table.entry t2 i).exact_weight
  done;
  let t3 = Score_table.build idx pat Relaxation.all (Score_table.Random_sparse 8) in
  let differs = ref false in
  for i = 0 to Score_table.size t1 - 1 do
    if
      Float.abs
        ((Score_table.entry t1 i).exact_weight
        -. (Score_table.entry t3 i).exact_weight)
      > 1e-12
    then differs := true
  done;
  Alcotest.(check bool) "seeds differ" true !differs;
  (* Shape: sparse has a large exact/relaxed gap, dense a small one. *)
  let gap table i =
    let e = Score_table.entry table i in
    e.relaxed_weight /. e.exact_weight
  in
  let dense = Score_table.build idx pat Relaxation.all (Score_table.Random_dense 7) in
  for i = 1 to Score_table.size t1 - 1 do
    Alcotest.(check bool) "sparse gap below dense gap" true (gap t1 i < gap dense i)
  done

let test_max_contribution () =
  let t = Score_table.build idx (parse Fixtures.q2a) Relaxation.all Score_table.Raw in
  float_eq "max contribution = exact weight" (log 3.0)
    (Score_table.max_contribution t 3)

let test_of_entries () =
  let entries =
    [|
      { Score_table.node = 0; exact_weight = 0.0; relaxed_weight = 0.0 };
      { Score_table.node = 1; exact_weight = 0.5; relaxed_weight = 0.25 };
    |]
  in
  let t = Score_table.of_entries entries in
  float_eq "entry preserved" 0.5 (Score_table.entry t 1).exact_weight;
  float_eq "max_total" 0.5 (Score_table.max_total t)

let test_normalization_parsing () =
  Alcotest.(check bool) "sparse" true
    (Score_table.normalization_of_string "sparse" = Some Score_table.Sparse);
  Alcotest.(check bool) "unknown" true
    (Score_table.normalization_of_string "bogus" = None)

let suite =
  [
    Alcotest.test_case "raw weights" `Quick test_raw_weights;
    Alcotest.test_case "exact config" `Quick test_exact_config_weights;
    Alcotest.test_case "sparse normalization" `Quick test_sparse_normalization;
    Alcotest.test_case "dense normalization" `Quick test_dense_normalization;
    Alcotest.test_case "random tables" `Quick test_random_tables;
    Alcotest.test_case "max contribution" `Quick test_max_contribution;
    Alcotest.test_case "of_entries" `Quick test_of_entries;
    Alcotest.test_case "normalization parsing" `Quick test_normalization_parsing;
  ]
