open Wp_score

let idx = Fixtures.books_index
let parse = Fixtures.parse
let comps q = Component.of_pattern ~doc_root_tag:"bib" (parse q)

let book_a, book_b, book_c =
  match Fixtures.book_roots with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

let float_eq = Alcotest.(check (float 1e-9))

let test_idf_values () =
  let c = comps Fixtures.q2a in
  (* All three books are children of the collection root. *)
  float_eq "root component idf" 0.0 (Tfidf.idf idx c.(0));
  (* title='wodehouse' as a child: books (a) and (b). *)
  float_eq "title idf" (log (3.0 /. 2.0)) (Tfidf.idf idx c.(1));
  (* info as a child: books (a) and (b). *)
  float_eq "info idf" (log (3.0 /. 2.0)) (Tfidf.idf idx c.(2));
  (* publisher at depth exactly 2: only book (a). *)
  float_eq "publisher idf" (log 3.0) (Tfidf.idf idx c.(3));
  (* name='psmith' at depth exactly 3: only book (a). *)
  float_eq "name idf" (log 3.0) (Tfidf.idf idx c.(4))

let test_idf_no_satisfier () =
  let c = comps "/book[./nonexistent]" in
  (* No book satisfies the predicate: idf falls back to log(total+1). *)
  float_eq "smoothed idf" (log 4.0) (Tfidf.idf idx c.(1))

let test_idf_empty_candidate_set () =
  let c = comps "/pamphlet[./title]" in
  float_eq "no candidates: idf 0" 0.0 (Tfidf.idf idx c.(1))

let test_tf_values () =
  let c = comps Fixtures.q2d in
  (* q2d's title component is descendant-based. *)
  Alcotest.(check int) "book a: one title" 1 (Tfidf.tf idx c.(1) ~root:book_a);
  Alcotest.(check int) "book c: one (nested) title" 1
    (Tfidf.tf idx c.(1) ~root:book_c);
  let c = comps Fixtures.q2a in
  Alcotest.(check int) "child-only tf misses nested title" 0
    (Tfidf.tf idx c.(1) ~root:book_c);
  (* tf counts multiplicity. *)
  let multi =
    Wp_xml.Doc.of_forest ~root_tag:"bib"
      [
        Wp_xml.Tree.el "book"
          [ Wp_xml.Tree.leaf "title" "x"; Wp_xml.Tree.leaf "title" "x" ];
      ]
  in
  let midx = Wp_xml.Index.build multi in
  let c = Component.of_pattern ~doc_root_tag:"bib" (parse "/book[./title = 'x']") in
  Alcotest.(check int) "two titles, tf = 2" 2 (Tfidf.tf midx c.(1) ~root:1)

let test_satisfies () =
  let c = comps Fixtures.q2a in
  (* book (a)'s title node is its first child. *)
  let title_a = List.hd (Wp_xml.Doc.children Fixtures.books_doc book_a) in
  Alcotest.(check bool) "title satisfies" true
    (Tfidf.satisfies idx c.(1) ~root:book_a ~target:title_a);
  Alcotest.(check bool) "wrong root" false
    (Tfidf.satisfies idx c.(1) ~root:book_b ~target:title_a)

let test_score_aggregates () =
  let c = comps Fixtures.q2a in
  let expected_a =
    0.0 +. log (3.0 /. 2.0) +. log (3.0 /. 2.0) +. log 3.0 +. log 3.0
  in
  float_eq "book a score" expected_a (Tfidf.score idx c ~root:book_a);
  (* book b satisfies title and info only. *)
  float_eq "book b score" (2.0 *. log (3.0 /. 2.0)) (Tfidf.score idx c ~root:book_b);
  float_eq "book c score" 0.0 (Tfidf.score idx c ~root:book_c)

let test_rank () =
  let ranked = Tfidf.rank idx (parse Fixtures.q2d) ~k:3 in
  Alcotest.(check int) "three candidates" 3 (List.length ranked);
  (* All books have exactly one wodehouse title reachable by descendant,
     so scores tie and ranking falls back to document order. *)
  Alcotest.(check (list int)) "document order on ties" [ book_a; book_b; book_c ]
    (List.map fst ranked);
  let ranked = Tfidf.rank idx (parse Fixtures.q2a) ~k:2 in
  Alcotest.(check int) "k truncates" 2 (List.length ranked);
  Alcotest.(check int) "book a first" book_a (fst (List.hd ranked))

let test_rank_scores_match_score () =
  let pat = parse Fixtures.q2c in
  let c = Component.of_pattern ~doc_root_tag:"bib" pat in
  List.iter
    (fun (root, s) -> float_eq "rank score = score" (Tfidf.score idx c ~root) s)
    (Tfidf.rank idx pat ~k:10)

let suite =
  [
    Alcotest.test_case "idf values" `Quick test_idf_values;
    Alcotest.test_case "idf without satisfiers" `Quick test_idf_no_satisfier;
    Alcotest.test_case "idf empty candidates" `Quick test_idf_empty_candidate_set;
    Alcotest.test_case "tf values" `Quick test_tf_values;
    Alcotest.test_case "satisfies" `Quick test_satisfies;
    Alcotest.test_case "score aggregates" `Quick test_score_aggregates;
    Alcotest.test_case "rank" `Quick test_rank;
    Alcotest.test_case "rank/score agreement" `Quick test_rank_scores_match_score;
  ]
