open Wp_xml

let doc = Wp_xmark.Dblp.generate_doc ~seed:17 ~target_bytes:80_000 ()
let idx = Index.build doc

let histogram = Wp_xmark.Generator.tag_histogram doc
let count tag = Option.value (List.assoc_opt tag histogram) ~default:0

let test_determinism () =
  let a = Wp_xmark.Dblp.generate ~seed:3 ~target_bytes:20_000 () in
  let b = Wp_xmark.Dblp.generate ~seed:3 ~target_bytes:20_000 () in
  Alcotest.(check bool) "same seed, same corpus" true (Tree.equal a b)

let test_size_calibration () =
  let t = Wp_xmark.Dblp.generate ~seed:5 ~target_bytes:60_000 () in
  let actual = Wp_xmark.Generator.tree_bytes t in
  Alcotest.(check bool)
    (Printf.sprintf "size close to target (got %d)" actual)
    true
    (actual >= 60_000 && actual < 62_000)

let test_entry_mix () =
  Alcotest.(check string) "root" "dblp" (Doc.tag doc 0);
  List.iter
    (fun tag -> Alcotest.(check bool) (tag ^ " present") true (count tag > 0))
    [ "article"; "inproceedings"; "book"; "phdthesis"; "author"; "title";
      "year" ]

let test_heterogeneous_authors () =
  (* Both direct authors and grouped authors must occur. *)
  let grouped = count "authors" in
  Alcotest.(check bool) "some grouped" true (grouped > 0);
  let direct =
    Array.exists
      (fun a ->
        match Doc.parent doc a with
        | Some p -> Doc.tag doc p <> "authors"
        | None -> false)
      (Index.ids idx "author")
  in
  Alcotest.(check bool) "some direct" true direct

let test_optional_fields () =
  let articles = Index.ids idx "article" in
  let with_volume =
    Array.fold_left
      (fun acc a ->
        if Index.count_descendants idx "volume" ~root:a > 0 then acc + 1 else acc)
      0 articles
  in
  Alcotest.(check bool) "some articles have volume" true (with_volume > 0);
  Alcotest.(check bool) "some articles lack volume" true
    (with_volume < Array.length articles)

let test_queries_behave () =
  List.iter
    (fun (name, q) ->
      let pat = Fixtures.parse q in
      let plan = Whirlpool.Run.compile idx pat in
      let r = Whirlpool.Engine.run plan ~k:10 in
      Alcotest.(check bool) (name ^ " returns answers") true
        (List.length r.answers > 0);
      (* and the engines agree here too *)
      let noprun = Whirlpool.Lockstep.run ~prune:false plan ~k:10 in
      Fixtures.check_scores_equal ~msg:(name ^ " consistent")
        (Fixtures.sorted_scores noprun.answers)
        (Fixtures.sorted_scores r.answers))
    Wp_xmark.Dblp.queries

let test_promotion_matters_for_ee () =
  (* D2 asks for ./ee but articles nest it under eelist: without
     promotion the binding is impossible, with it the ee binds at the
     relaxed level. *)
  let pat = Fixtures.parse "//article[./ee]" in
  let with_promo = Whirlpool.Run.compile idx pat in
  let r = Whirlpool.Engine.run with_promo ~k:50 in
  let bound =
    List.filter
      (fun (e : Whirlpool.Topk_set.entry) -> e.bindings.(1) >= 0)
      r.answers
  in
  Alcotest.(check bool) "promotion finds nested ee" true (List.length bound > 0);
  let exact_roots = Wp_pattern.Matcher.matching_roots idx pat in
  Alcotest.(check int) "no article has a direct ee child" 0
    (List.length exact_roots)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "size calibration" `Quick test_size_calibration;
    Alcotest.test_case "entry mix" `Quick test_entry_mix;
    Alcotest.test_case "heterogeneous authors" `Quick test_heterogeneous_authors;
    Alcotest.test_case "optional fields" `Quick test_optional_fields;
    Alcotest.test_case "queries behave" `Quick test_queries_behave;
    Alcotest.test_case "promotion matters" `Quick test_promotion_matters_for_ee;
  ]
