open Whirlpool

let pm ~id ~root ~score ~max_possible =
  let p =
    Partial_match.create_root ~plan_servers:2 ~id ~root ~weight:score
      ~max_rest:(max_possible -. score)
  in
  p

let test_fill_and_threshold () =
  let t = Topk_set.create ~k:2 ~admit_partial:true in
  Alcotest.(check bool) "empty threshold" true
    (Topk_set.threshold t = neg_infinity);
  Topk_set.consider t ~complete:false (pm ~id:1 ~root:10 ~score:0.5 ~max_possible:1.0);
  Alcotest.(check bool) "below k, threshold stays -inf" true
    (Topk_set.threshold t = neg_infinity);
  Topk_set.consider t ~complete:false (pm ~id:2 ~root:20 ~score:0.8 ~max_possible:1.0);
  Alcotest.(check (float 1e-9)) "kth score" 0.5 (Topk_set.threshold t);
  Alcotest.(check int) "cardinality" 2 (Topk_set.cardinality t)

let test_replacement () =
  let t = Topk_set.create ~k:2 ~admit_partial:true in
  Topk_set.consider t ~complete:false (pm ~id:1 ~root:10 ~score:0.5 ~max_possible:1.0);
  Topk_set.consider t ~complete:false (pm ~id:2 ~root:20 ~score:0.8 ~max_possible:1.0);
  (* Higher score evicts the min entry. *)
  Topk_set.consider t ~complete:false (pm ~id:3 ~root:30 ~score:0.9 ~max_possible:1.0);
  let roots = List.map (fun (e : Topk_set.entry) -> e.root) (Topk_set.entries t) in
  Alcotest.(check (list int)) "evicted the weakest" [ 30; 20 ] roots;
  (* Lower score is ignored. *)
  Topk_set.consider t ~complete:false (pm ~id:4 ~root:40 ~score:0.1 ~max_possible:1.0);
  Alcotest.(check int) "still two entries" 2 (Topk_set.cardinality t)

let test_per_root_dedup () =
  let t = Topk_set.create ~k:3 ~admit_partial:true in
  Topk_set.consider t ~complete:false (pm ~id:1 ~root:10 ~score:0.5 ~max_possible:1.0);
  Topk_set.consider t ~complete:false (pm ~id:2 ~root:10 ~score:0.7 ~max_possible:1.0);
  Alcotest.(check int) "one entry per root" 1 (Topk_set.cardinality t);
  (match Topk_set.entries t with
  | [ e ] -> Alcotest.(check (float 1e-9)) "kept the best score" 0.7 e.score
  | _ -> Alcotest.fail "expected one entry");
  (* A weaker match for the same root does not downgrade it. *)
  Topk_set.consider t ~complete:false (pm ~id:3 ~root:10 ~score:0.2 ~max_possible:1.0);
  match Topk_set.entries t with
  | [ e ] -> Alcotest.(check (float 1e-9)) "unchanged" 0.7 e.score
  | _ -> Alcotest.fail "expected one entry"

let test_admit_partial_false () =
  let t = Topk_set.create ~k:2 ~admit_partial:false in
  Topk_set.consider t ~complete:false (pm ~id:1 ~root:10 ~score:0.9 ~max_possible:1.0);
  Alcotest.(check int) "partials ignored" 0 (Topk_set.cardinality t);
  Topk_set.consider t ~complete:true (pm ~id:2 ~root:20 ~score:0.4 ~max_possible:0.4);
  Alcotest.(check int) "completes admitted" 1 (Topk_set.cardinality t)

let test_pruning () =
  let t = Topk_set.create ~k:1 ~admit_partial:true in
  Topk_set.consider t ~complete:false (pm ~id:1 ~root:10 ~score:0.8 ~max_possible:0.9);
  Alcotest.(check bool) "hopeless match pruned" true
    (Topk_set.should_prune t (pm ~id:2 ~root:20 ~score:0.1 ~max_possible:0.5));
  Alcotest.(check bool) "promising match kept" false
    (Topk_set.should_prune t (pm ~id:3 ~root:30 ~score:0.1 ~max_possible:1.5));
  (* A tie on max-possible cannot displace another root. *)
  Alcotest.(check bool) "tie pruned" true
    (Topk_set.should_prune t (pm ~id:4 ~root:40 ~score:0.8 ~max_possible:0.8));
  (* ... but the entry owner itself is not pruned. *)
  Alcotest.(check bool) "own entry survives" false
    (Topk_set.should_prune t (pm ~id:1 ~root:10 ~score:0.8 ~max_possible:0.9))

let test_entries_sorted () =
  let t = Topk_set.create ~k:5 ~admit_partial:true in
  List.iter
    (fun (id, root, score) ->
      Topk_set.consider t ~complete:false (pm ~id ~root ~score ~max_possible:score))
    [ (1, 10, 0.3); (2, 20, 0.9); (3, 30, 0.6); (4, 40, 0.9) ];
  let entries = Topk_set.entries t in
  Alcotest.(check (list int)) "sorted by score desc, ties by root"
    [ 20; 40; 30; 10 ]
    (List.map (fun (e : Topk_set.entry) -> e.root) entries)

let test_invalid_k () =
  Alcotest.check_raises "k must be positive"
    (Invalid_argument "Topk_set.create: k must be positive") (fun () ->
      ignore (Topk_set.create ~k:0 ~admit_partial:true))

(* The threshold never decreases under any sequence of considers. *)
let prop_threshold_monotone =
  QCheck2.Test.make ~name:"threshold is monotone" ~count:200
    QCheck2.Gen.(list (pair (int_range 1 20) (float_range 0.0 1.0)))
    (fun events ->
      let t = Topk_set.create ~k:3 ~admit_partial:true in
      let last = ref neg_infinity in
      List.for_all
        (fun (root, score) ->
          Topk_set.consider t ~complete:false
            (pm ~id:root ~root ~score ~max_possible:(score +. 0.1));
          let th = Topk_set.threshold t in
          let ok = th >= !last in
          last := th;
          ok)
        events)

let suite =
  [
    Alcotest.test_case "fill and threshold" `Quick test_fill_and_threshold;
    Alcotest.test_case "replacement" `Quick test_replacement;
    Alcotest.test_case "per-root dedup" `Quick test_per_root_dedup;
    Alcotest.test_case "admit_partial=false" `Quick test_admit_partial_false;
    Alcotest.test_case "pruning" `Quick test_pruning;
    Alcotest.test_case "entries sorted" `Quick test_entries_sorted;
    Alcotest.test_case "invalid k" `Quick test_invalid_k;
    QCheck_alcotest.to_alcotest prop_threshold_monotone;
  ]
