open Wp_pattern

let spec =
  (* item[./description/parlist and .//mailbox[./mail = 'x']] *)
  Pattern.n "item"
    [
      (Pattern.Pc, Pattern.n "description" [ (Pattern.Pc, Pattern.n "parlist" []) ]);
      (Pattern.Ad, Pattern.n "mailbox" [ (Pattern.Pc, Pattern.n ~value:"x" "mail" []) ]);
    ]

let pat = Pattern.of_spec ~root_edge:Pattern.Ad spec

let test_shape () =
  Alcotest.(check int) "size" 5 (Pattern.size pat);
  Alcotest.(check int) "root" 0 (Pattern.root pat);
  Alcotest.(check bool) "root edge" true (Pattern.root_edge pat = Pattern.Ad);
  Alcotest.(check string) "preorder tags" "item,description,parlist,mailbox,mail"
    (String.concat "," (List.map (Pattern.tag pat) (Pattern.node_ids pat)));
  Alcotest.(check (option string)) "value on mail" (Some "x") (Pattern.value pat 4);
  Alcotest.(check (option string)) "no value on root" None (Pattern.value pat 0)

let test_edges_and_parents () =
  Alcotest.(check (option int)) "root parent" None (Pattern.parent pat 0);
  Alcotest.(check (option int)) "parlist parent" (Some 1) (Pattern.parent pat 2);
  Alcotest.(check (option int)) "mailbox parent" (Some 0) (Pattern.parent pat 3);
  Alcotest.(check bool) "pc edge" true (Pattern.edge pat 1 = Pattern.Pc);
  Alcotest.(check bool) "ad edge" true (Pattern.edge pat 3 = Pattern.Ad);
  Alcotest.check_raises "edge of root"
    (Invalid_argument "Pattern.edge: the root has no parent edge") (fun () ->
      ignore (Pattern.edge pat 0))

let test_navigation () =
  Alcotest.(check (list int)) "root children" [ 1; 3 ] (Pattern.children pat 0);
  Alcotest.(check (list int)) "descendants of root" [ 1; 2; 3; 4 ]
    (Pattern.descendants pat 0);
  Alcotest.(check (list int)) "descendants of description" [ 2 ]
    (Pattern.descendants pat 1);
  Alcotest.(check (list int)) "ancestors of mail" [ 3; 0 ] (Pattern.ancestors pat 4);
  Alcotest.(check bool) "parlist is leaf" true (Pattern.is_leaf pat 2);
  Alcotest.(check bool) "description is not" false (Pattern.is_leaf pat 1)

let test_path_edges () =
  Alcotest.(check (option (list bool)))
    "root to parlist = pc,pc"
    (Some [ true; true ])
    (Option.map (List.map (fun e -> e = Pattern.Pc)) (Pattern.path_edges pat 0 2));
  Alcotest.(check (option (list bool)))
    "root to mail = ad,pc"
    (Some [ false; true ])
    (Option.map (List.map (fun e -> e = Pattern.Pc)) (Pattern.path_edges pat 0 4));
  Alcotest.(check bool) "self path is empty" true (Pattern.path_edges pat 1 1 = Some []);
  Alcotest.(check bool) "unrelated nodes" true (Pattern.path_edges pat 1 4 = None)

let test_spec_roundtrip () =
  let back = Pattern.of_spec ~root_edge:(Pattern.root_edge pat) (Pattern.to_spec pat) in
  Alcotest.(check bool) "of_spec . to_spec = id" true (Pattern.equal pat back)

let test_pp () =
  Alcotest.(check string)
    "xpath rendering"
    "//item[./description/parlist and .//mailbox/mail = 'x']"
    (Pattern.to_string pat);
  let single = Pattern.of_spec ~root_edge:Pattern.Pc (Pattern.n "book" []) in
  Alcotest.(check string) "single node" "/book" (Pattern.to_string single)

let suite =
  [
    Alcotest.test_case "shape" `Quick test_shape;
    Alcotest.test_case "edges and parents" `Quick test_edges_and_parents;
    Alcotest.test_case "navigation" `Quick test_navigation;
    Alcotest.test_case "path edges" `Quick test_path_edges;
    Alcotest.test_case "spec roundtrip" `Quick test_spec_roundtrip;
    Alcotest.test_case "pp" `Quick test_pp;
  ]
