open Wp_pattern

let parse = Xpath_parser.parse

let test_single_step () =
  let p = parse "//item" in
  Alcotest.(check int) "size" 1 (Pattern.size p);
  Alcotest.(check bool) "ad root edge" true (Pattern.root_edge p = Pattern.Ad);
  let p = parse "/book" in
  Alcotest.(check bool) "pc root edge" true (Pattern.root_edge p = Pattern.Pc)

let test_paper_q1 () =
  let p = parse Fixtures.q1 in
  Alcotest.(check int) "3 nodes" 3 (Pattern.size p);
  Alcotest.(check string) "tags" "item,description,parlist"
    (String.concat "," (List.map (Pattern.tag p) (Pattern.node_ids p)));
  Alcotest.(check bool) "all pc below root" true
    (Pattern.edge p 1 = Pattern.Pc && Pattern.edge p 2 = Pattern.Pc)

let test_paper_q2 () =
  let p = parse Fixtures.q2 in
  Alcotest.(check int) "6 nodes" 6 (Pattern.size p);
  Alcotest.(check (list int)) "root children" [ 1; 3 ] (Pattern.children p 0);
  Alcotest.(check string) "mail under mailbox" "mail" (Pattern.tag p 4)

let test_paper_q3 () =
  let p = parse Fixtures.q3 in
  Alcotest.(check int) "8 nodes" 8 (Pattern.size p);
  Alcotest.(check string) "tags" "item,mailbox,mail,text,bold,keyword,name,incategory"
    (String.concat "," (List.map (Pattern.tag p) (Pattern.node_ids p)));
  (* text has two predicate children *)
  Alcotest.(check (list int)) "text children" [ 4; 5 ] (Pattern.children p 3)

let test_values () =
  let p = parse Fixtures.q2a in
  Alcotest.(check int) "5 nodes" 5 (Pattern.size p);
  Alcotest.(check (option string)) "title value" (Some "wodehouse") (Pattern.value p 1);
  Alcotest.(check (option string)) "name value" (Some "psmith") (Pattern.value p 4);
  let p = parse "//a[./b = \"double\"]" in
  Alcotest.(check (option string)) "double quotes" (Some "double") (Pattern.value p 1)

let test_mixed_axes () =
  let p = parse "/book[.//title = 'wodehouse' and ./info//name]" in
  Alcotest.(check bool) "title via ad" true (Pattern.edge p 1 = Pattern.Ad);
  Alcotest.(check bool) "info via pc" true (Pattern.edge p 2 = Pattern.Pc);
  Alcotest.(check bool) "name via ad" true (Pattern.edge p 3 = Pattern.Ad)

let test_whitespace () =
  let a = parse "//item[ ./name and   ./incategory ]" in
  let b = parse "//item[./name and ./incategory]" in
  Alcotest.(check bool) "whitespace insensitive" true (Pattern.equal a b)

let test_attribute_names () =
  let p = parse "//incategory[./@category = 'category3']" in
  Alcotest.(check string) "attribute step" "@category" (Pattern.tag p 1)

let test_roundtrip_via_pp () =
  List.iter
    (fun q ->
      let p = parse q in
      let p' = parse (Pattern.to_string p) in
      Alcotest.(check bool) ("pp roundtrip: " ^ q) true (Pattern.equal p p'))
    [ Fixtures.q1; Fixtures.q2; Fixtures.q3; Fixtures.q2a; Fixtures.q2b;
      Fixtures.q2c; Fixtures.q2d; "//a[.//b[./c = 'v'] and ./d//e]" ]

let check_error input =
  match parse input with
  | exception Xpath_parser.Error _ -> ()
  | _ -> Alcotest.fail (Printf.sprintf "expected a parse error on %S" input)

let test_errors () =
  List.iter check_error
    [
      "";
      "item";
      "//";
      "//item[";
      "//item[./]";
      "//item[name]";
      "//item[./name and]";
      "//item[./name = ]";
      "//item[./name = 'unterminated]";
      "//item]";
      "//item[./a = 'v'/b]";
      "//item extra";
    ]

(* Random pattern generator: print with Pattern.pp, re-parse, compare. *)
let gen_pattern =
  let open QCheck2.Gen in
  let tag = map (fun i -> Printf.sprintf "t%d" i) (int_bound 6) in
  let value = opt ~ratio:0.25 (map (fun i -> Printf.sprintf "v%d" i) (int_bound 5)) in
  let edge = map (fun b -> if b then Pattern.Pc else Pattern.Ad) bool in
  let spec =
    sized @@ fix (fun self n ->
        if n = 0 then
          map2 (fun t v -> { Pattern.tag = t; value = v; children = [] }) tag value
        else
          (* A node with both a value and children prints as
             tag[preds] = 'v', which the parser accepts. *)
          map3
            (fun t v cs -> { Pattern.tag = t; value = v; children = cs })
            tag value
            (list_size (int_bound 3) (map2 (fun e s -> (e, s)) edge (self (n / 4)))))
  in
  map2
    (fun root_edge s -> Pattern.of_spec ~root_edge s)
    edge spec

let prop_pp_parse_roundtrip =
  QCheck2.Test.make ~name:"parse . pp = id" ~count:300 gen_pattern (fun p ->
      Pattern.equal p (parse (Pattern.to_string p)))

let suite =
  [
    Alcotest.test_case "single step" `Quick test_single_step;
    Alcotest.test_case "paper Q1" `Quick test_paper_q1;
    Alcotest.test_case "paper Q2" `Quick test_paper_q2;
    Alcotest.test_case "paper Q3" `Quick test_paper_q3;
    Alcotest.test_case "values" `Quick test_values;
    Alcotest.test_case "mixed axes" `Quick test_mixed_axes;
    Alcotest.test_case "whitespace" `Quick test_whitespace;
    Alcotest.test_case "attribute names" `Quick test_attribute_names;
    Alcotest.test_case "pp roundtrip" `Quick test_roundtrip_via_pp;
    Alcotest.test_case "errors" `Quick test_errors;
    QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
  ]
