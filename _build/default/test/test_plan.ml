open Whirlpool

let idx = Lazy.force Fixtures.xmark_index
let books = Fixtures.books_index
let parse = Fixtures.parse

let test_compile_shape () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  Alcotest.(check int) "servers = pattern nodes" 6 plan.n_servers;
  Alcotest.(check int) "full mask" 0b111111 plan.full_mask;
  Alcotest.(check int) "specs per node" 6 (Array.length plan.specs);
  Alcotest.(check int) "estimates per node" 6 (Array.length plan.est_fanout)

let test_admits_partial () =
  Alcotest.(check bool) "relaxed admits partials" true
    (Plan.admits_partial_answers (Run.compile idx (parse Fixtures.q1)));
  Alcotest.(check bool) "exact does not" false
    (Plan.admits_partial_answers
       (Run.compile ~config:Wp_relax.Relaxation.exact idx (parse Fixtures.q1)))

let test_root_candidates () =
  let plan = Run.compile books (parse "/book") in
  Alcotest.(check int) "three books" 3 (List.length (Plan.root_candidates plan));
  (* The synthetic document root never matches, even for its own tag. *)
  let plan = Run.compile books (parse "//bib") in
  Alcotest.(check int) "doc root excluded" 0
    (List.length (Plan.root_candidates plan))

let test_estimates_sane () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  for s = 1 to plan.n_servers - 1 do
    Alcotest.(check bool) "fanout non-negative" true (plan.est_fanout.(s) >= 0.0);
    Alcotest.(check bool) "p_exact within [0,1]" true
      (plan.est_p_exact.(s) >= 0.0 && plan.est_p_exact.(s) <= 1.0);
    Alcotest.(check bool) "p_empty within [0,1]" true
      (plan.est_p_empty.(s) >= 0.0 && plan.est_p_empty.(s) <= 1.0)
  done

let test_max_weight () =
  let plan =
    Run.compile ~normalization:Wp_score.Score_table.Sparse idx (parse Fixtures.q1)
  in
  for s = 0 to plan.n_servers - 1 do
    Alcotest.(check (float 1e-9)) "sparse max weight" 1.0 (Plan.max_weight plan s)
  done

let test_sample_bound () =
  (* A tiny sample still yields a usable plan. *)
  let plan =
    Plan.compile ~sample:1 idx Wp_relax.Relaxation.all (parse Fixtures.q2)
  in
  let r = Engine.run plan ~k:5 in
  Alcotest.(check bool) "answers found" true (List.length r.answers > 0)

let test_oversized_pattern_rejected () =
  let rec deep n =
    if n = 0 then Wp_pattern.Pattern.n "x" []
    else Wp_pattern.Pattern.n "x" [ (Wp_pattern.Pattern.Pc, deep (n - 1)) ]
  in
  let pat = Wp_pattern.Pattern.of_spec (deep 80) in
  Alcotest.check_raises "bitmask limit"
    (Invalid_argument "Plan.compile: pattern too large for bitmask bookkeeping")
    (fun () -> ignore (Run.compile books pat))

let suite =
  [
    Alcotest.test_case "compile shape" `Quick test_compile_shape;
    Alcotest.test_case "admits partial" `Quick test_admits_partial;
    Alcotest.test_case "root candidates" `Quick test_root_candidates;
    Alcotest.test_case "estimates sane" `Quick test_estimates_sane;
    Alcotest.test_case "max weight" `Quick test_max_weight;
    Alcotest.test_case "sample bound" `Quick test_sample_bound;
    Alcotest.test_case "oversized pattern" `Quick test_oversized_pattern_rejected;
  ]
