(* Whole-engine property tests: random documents x random patterns x
   random configurations, checked against the exhaustive no-pruning
   reference. *)

open Whirlpool

let gen_config =
  QCheck2.Gen.(
    map3
      (fun eg ld sp ->
        {
          Wp_relax.Relaxation.edge_generalization = eg;
          leaf_deletion = ld;
          subtree_promotion = sp;
          value_relaxation = false;
        })
      bool bool bool)

(* Documents with enough structure for patterns to bite: a couple of
   levels, few tags. *)
let gen_doc =
  QCheck2.Gen.map Wp_xml.Doc.of_tree Test_doc.gen_tree

let gen_inputs =
  QCheck2.Gen.triple gen_doc Test_matcher.small_pattern_gen gen_config

(* Different server orders sum the same weights in different sequences,
   so scores agree only up to float-addition reassociation noise. *)
let close a b =
  List.length a = List.length b
  && List.for_all2 (fun x y -> Float.abs (x -. y) < 1e-9) a b

let prop_engine_equals_noprun =
  QCheck2.Test.make ~name:"W-S top-k = no-pruning top-k (random everything)"
    ~count:120 gen_inputs (fun (doc, pat, config) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile ~config idx pat in
      let k = 4 in
      let a = Fixtures.sorted_scores (Engine.run plan ~k).answers in
      let b =
        Fixtures.sorted_scores (Lockstep.run ~prune:false plan ~k).answers
      in
      close a b)

let prop_lockstep_equals_noprun =
  QCheck2.Test.make ~name:"LockStep top-k = no-pruning top-k" ~count:120
    gen_inputs (fun (doc, pat, config) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile ~config idx pat in
      let k = 4 in
      close
        (Fixtures.sorted_scores (Lockstep.run plan ~k).answers)
        (Fixtures.sorted_scores (Lockstep.run ~prune:false plan ~k).answers))

let prop_exact_mode_equals_matcher =
  QCheck2.Test.make ~name:"exact engine roots are exact matches" ~count:120
    (QCheck2.Gen.pair gen_doc Test_matcher.small_pattern_gen)
    (fun (doc, pat) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile ~config:Wp_relax.Relaxation.exact idx pat in
      let answers = (Engine.run plan ~k:5).answers in
      let exact = Wp_pattern.Matcher.matching_roots idx pat in
      List.length answers = min 5 (List.length exact)
      && List.for_all
           (fun (e : Topk_set.entry) -> List.mem e.root exact)
           answers)

let prop_k_monotone =
  QCheck2.Test.make ~name:"answers grow with k and scores are prefixes"
    ~count:80
    (QCheck2.Gen.pair gen_doc Test_matcher.small_pattern_gen)
    (fun (doc, pat) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile idx pat in
      let s3 = Fixtures.sorted_scores (Engine.run plan ~k:3).answers in
      let s6 = Fixtures.sorted_scores (Engine.run plan ~k:6).answers in
      List.length s3 <= List.length s6
      && List.for_all2
           (fun a b -> Float.abs (a -. b) < 1e-9)
           s3
           (List.filteri (fun i _ -> i < List.length s3) s6))

let prop_scores_bounded =
  QCheck2.Test.make ~name:"scores within [0, max_total]" ~count:120 gen_inputs
    (fun (doc, pat, config) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile ~config idx pat in
      let bound = Wp_score.Score_table.max_total plan.scores +. 1e-9 in
      List.for_all
        (fun (e : Topk_set.entry) -> e.score >= 0.0 && e.score <= bound)
        (Engine.run plan ~k:5).answers)

let prop_run_above_consistent_with_top_k =
  QCheck2.Test.make ~name:"run_above agrees with top-k filtering" ~count:80
    (QCheck2.Gen.pair gen_doc Test_matcher.small_pattern_gen)
    (fun (doc, pat) ->
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile idx pat in
      let everything = Lockstep.run ~prune:false plan ~k:10_000 in
      let threshold =
        match Fixtures.sorted_scores everything.answers with
        | _ :: s :: _ -> s -. 1e-9
        | _ -> 0.0
      in
      let above = Engine.run_above plan ~threshold in
      let expected =
        List.filter
          (fun (e : Topk_set.entry) -> e.score > threshold)
          everything.answers
      in
      close
        (Fixtures.sorted_scores above.answers)
        (Fixtures.sorted_scores expected))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_engine_equals_noprun;
      prop_lockstep_equals_noprun;
      prop_exact_mode_equals_matcher;
      prop_k_monotone;
      prop_scores_bounded;
      prop_run_above_consistent_with_top_k;
    ]
