(* End-to-end scenarios across the whole stack: generate or parse a
   document, compile a query, run engines, validate against reference
   semantics. *)

open Whirlpool

let parse = Fixtures.parse

let test_xml_text_to_answers () =
  (* From raw XML text all the way to ranked answers. *)
  let xml =
    "<bib>\
     <book><title>wodehouse</title><info><publisher><name>psmith</name>\
     </publisher><price>48.95</price></info><isbn>1234</isbn></book>\
     <book><title>wodehouse</title><publisher><name>psmith</name>\
     <location>london</location></publisher><info><isbn>1234</isbn></info>\
     <price>48.95</price></book>\
     <book><reviews><title>wodehouse</title></reviews>\
     <location>london</location><isbn>1234</isbn><price>48.95</price></book>\
     </bib>"
  in
  let doc = Wp_xml.Parser.parse_doc xml in
  let idx = Wp_xml.Index.build doc in
  let r = Run.top_k ~normalization:Wp_score.Score_table.Raw idx (parse Fixtures.q2a) ~k:3 in
  Alcotest.(check int) "three ranked books" 3 (List.length r.answers);
  let scores = Fixtures.sorted_scores r.answers in
  Alcotest.(check bool) "strictly decreasing" true
    (match scores with
    | [ a; b; c ] -> a > b && b > c
    | _ -> false)

let test_parsed_equals_built () =
  (* The same document built programmatically and via the parser must
     produce identical rankings. *)
  let built = Fixtures.books_index in
  let reparsed =
    Wp_xml.Index.build
      (Wp_xml.Parser.parse_doc (Wp_xml.Printer.doc_to_string Fixtures.books_doc))
  in
  List.iter
    (fun q ->
      let r1 = Run.top_k built (parse q) ~k:3 in
      let r2 = Run.top_k reparsed (parse q) ~k:3 in
      Fixtures.check_scores_equal ~msg:("parse-roundtrip ranking: " ^ q)
        (Fixtures.sorted_scores r1.answers)
        (Fixtures.sorted_scores r2.answers))
    [ Fixtures.q2a; Fixtures.q2c; Fixtures.q2d ]

let test_relaxed_scores_dominate_exact_subsets () =
  (* Every exact match must rank at least as high as any approximate
     match under any normalization. *)
  let idx = Lazy.force Fixtures.xmark_index in
  let pat = parse Fixtures.q2 in
  List.iter
    (fun normalization ->
      let plan = Run.compile ~normalization idx pat in
      let r = Engine.run plan ~k:30 in
      let exact_roots = Wp_pattern.Matcher.matching_roots idx pat in
      let exact_scores, approx_scores =
        List.partition_map
          (fun (e : Topk_set.entry) ->
            if List.mem e.root exact_roots then Left e.score else Right e.score)
          r.answers
      in
      match (exact_scores, approx_scores) with
      | [], _ | _, [] -> ()
      | es, aps ->
          let min_exact = List.fold_left Float.min infinity es in
          let max_approx = List.fold_left Float.max neg_infinity aps in
          Alcotest.(check bool)
            (Format.asprintf "exact >= approx under %a"
               Wp_score.Score_table.pp_normalization normalization)
            true
            (min_exact >= max_approx -. 1e-9))
    [ Wp_score.Score_table.Raw; Wp_score.Score_table.Sparse ]

let test_consistency_across_document_sizes () =
  (* The invariant suite on three generated document sizes: all four
     algorithms agree with the no-pruning baseline. *)
  List.iter
    (fun target_bytes ->
      let doc = Wp_xmark.Generator.generate_doc ~seed:21 ~target_bytes () in
      let idx = Wp_xml.Index.build doc in
      let plan = Run.compile idx (parse Fixtures.q2) in
      let reference =
        Fixtures.sorted_scores (Run.run Run.Lockstep_noprun plan ~k:8).answers
      in
      List.iter
        (fun algo ->
          Fixtures.check_scores_equal
            ~msg:(Format.asprintf "%a at %d bytes" Run.pp_algorithm algo target_bytes)
            reference
            (Fixtures.sorted_scores (Run.run algo plan ~k:8).answers))
        [ Run.Whirlpool_s; Run.Whirlpool_m; Run.Lockstep ])
    [ 30_000; 80_000; 200_000 ]

let test_algorithm_parsing_roundtrip () =
  List.iter
    (fun a ->
      let s =
        String.lowercase_ascii (Format.asprintf "%a" Run.pp_algorithm a)
      in
      Alcotest.(check bool) ("algorithm " ^ s) true
        (Run.algorithm_of_string s = Some a))
    [ Run.Whirlpool_s; Run.Whirlpool_m; Run.Lockstep; Run.Lockstep_noprun ]

let test_per_query_workload_growth () =
  (* Larger queries do more work (paper Figure 10's x-axis). *)
  let idx = Lazy.force Fixtures.xmark_index in
  let ops q =
    let plan = Run.compile idx (parse q) in
    (Engine.run plan ~k:15).stats.server_ops
  in
  let o1 = ops Fixtures.q1 and o2 = ops Fixtures.q2 and o3 = ops Fixtures.q3 in
  Alcotest.(check bool)
    (Printf.sprintf "Q1(%d) <= Q2(%d) <= Q3(%d)" o1 o2 o3)
    true
    (o1 <= o2 && o2 <= o3)

let suite =
  [
    Alcotest.test_case "xml text to answers" `Quick test_xml_text_to_answers;
    Alcotest.test_case "parsed equals built" `Quick test_parsed_equals_built;
    Alcotest.test_case "exact dominates approx" `Quick test_relaxed_scores_dominate_exact_subsets;
    Alcotest.test_case "consistency across sizes" `Slow test_consistency_across_document_sizes;
    Alcotest.test_case "algorithm parsing" `Quick test_algorithm_parsing_roundtrip;
    Alcotest.test_case "workload grows with query" `Quick test_per_query_workload_growth;
  ]
