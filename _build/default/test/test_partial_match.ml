open Whirlpool

let root_pm =
  Partial_match.create_root ~plan_servers:4 ~id:1 ~root:10 ~weight:0.5
    ~max_rest:3.0

let test_create_root () =
  Alcotest.(check int) "root binding" 10 (Partial_match.root_binding root_pm);
  Alcotest.(check bool) "root visited" true (Partial_match.visited root_pm 0);
  Alcotest.(check bool) "others not" false (Partial_match.visited root_pm 1);
  Alcotest.(check (float 1e-9)) "score" 0.5 root_pm.score;
  Alcotest.(check (float 1e-9)) "max possible" 3.5 root_pm.max_possible;
  Alcotest.(check (list int)) "unvisited" [ 1; 2; 3 ]
    (Partial_match.unvisited_servers root_pm ~n_servers:4)

let test_extend_bound () =
  let ext =
    Partial_match.extend root_pm ~id:2 ~server:2 ~binding:(Some 42) ~weight:0.7
      ~server_max:1.0
  in
  Alcotest.(check (option int)) "binding" (Some 42) (Partial_match.bound ext 2);
  Alcotest.(check bool) "visited" true (Partial_match.visited ext 2);
  Alcotest.(check (float 1e-9)) "score grows" 1.2 ext.score;
  Alcotest.(check (float 1e-9)) "max shrinks by the gap" 3.2 ext.max_possible;
  (* the original is untouched *)
  Alcotest.(check bool) "copy-on-extend" false (Partial_match.visited root_pm 2);
  Alcotest.(check (list int)) "unvisited updated" [ 1; 3 ]
    (Partial_match.unvisited_servers ext ~n_servers:4)

let test_extend_unbound () =
  let ext =
    Partial_match.extend root_pm ~id:3 ~server:1 ~binding:None ~weight:0.0
      ~server_max:1.0
  in
  Alcotest.(check (option int)) "unbound" None (Partial_match.bound ext 1);
  Alcotest.(check bool) "still visited" true (Partial_match.visited ext 1);
  Alcotest.(check (float 1e-9)) "score unchanged" 0.5 ext.score;
  Alcotest.(check (float 1e-9)) "max loses the full weight" 2.5 ext.max_possible

let test_completion () =
  let full_mask = (1 lsl 4) - 1 in
  let pm = ref root_pm in
  Alcotest.(check bool) "not complete" false
    (Partial_match.is_complete !pm ~full_mask);
  List.iteri
    (fun i s ->
      pm :=
        Partial_match.extend !pm ~id:(10 + i) ~server:s ~binding:(Some s)
          ~weight:1.0 ~server_max:1.0)
    [ 1; 2; 3 ];
  Alcotest.(check bool) "complete after all servers" true
    (Partial_match.is_complete !pm ~full_mask);
  Alcotest.(check (float 1e-9)) "score = max at completion" !pm.score
    !pm.max_possible

let test_score_monotonicity () =
  (* max_possible never increases, score never decreases. *)
  let pm = root_pm in
  let ext =
    Partial_match.extend pm ~id:4 ~server:3 ~binding:(Some 7) ~weight:0.2
      ~server_max:1.0
  in
  Alcotest.(check bool) "score non-decreasing" true (ext.score >= pm.score);
  Alcotest.(check bool) "max non-increasing" true
    (ext.max_possible <= pm.max_possible)

let suite =
  [
    Alcotest.test_case "create_root" `Quick test_create_root;
    Alcotest.test_case "extend bound" `Quick test_extend_bound;
    Alcotest.test_case "extend unbound" `Quick test_extend_unbound;
    Alcotest.test_case "completion" `Quick test_completion;
    Alcotest.test_case "monotonicity" `Quick test_score_monotonicity;
  ]
