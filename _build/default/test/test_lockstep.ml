open Whirlpool

let idx = Lazy.force Fixtures.xmark_index
let parse = Fixtures.parse

let test_order_validation () =
  let plan = Run.compile idx (parse Fixtures.q1) in
  Alcotest.check_raises "short order rejected"
    (Invalid_argument "Lockstep.run: order must cover every non-root server")
    (fun () -> ignore (Lockstep.run ~order:[| 1 |] plan ~k:3))

let test_orders_agree () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let reference = Fixtures.sorted_scores (Lockstep.run plan ~k:10).answers in
  List.iter
    (fun order ->
      let r = Lockstep.run ~order plan ~k:10 in
      Fixtures.check_scores_equal ~msg:"lockstep permutation" reference
        (Fixtures.sorted_scores r.answers))
    [ [| 5; 4; 3; 2; 1 |]; [| 2; 4; 1; 5; 3 |]; [| 1; 2; 3; 4; 5 |] ]

let test_noprun_counts_everything () =
  let plan = Run.compile idx (parse Fixtures.q1) in
  let noprun = Lockstep.run ~prune:false plan ~k:3 in
  Alcotest.(check int) "nothing pruned" 0 noprun.stats.matches_pruned;
  (* Every root candidate survives outer-join semantics to completion. *)
  let roots = List.length (Plan.root_candidates plan) in
  Alcotest.(check bool) "at least one complete match per root" true
    (noprun.stats.completed >= roots)

let test_noprun_total_matches_is_upper_bound () =
  let plan = Run.compile idx (parse Fixtures.q2) in
  let noprun = Lockstep.run ~prune:false plan ~k:15 in
  List.iter
    (fun order ->
      let pruned = Lockstep.run ~order plan ~k:15 in
      Alcotest.(check bool) "pruning never creates more matches" true
        (pruned.stats.matches_created <= noprun.stats.matches_created))
    [ [| 1; 2; 3; 4; 5 |]; [| 5; 4; 3; 2; 1 |] ]

let test_lockstep_vs_engine_workload () =
  (* The paper's central claim (Figures 6/7): adaptive per-match
     processing does not do more server operations than the best
     lock-step execution, and the no-pruning variant is worst. *)
  let plan = Run.compile idx (parse Fixtures.q2) in
  let adaptive = Engine.run plan ~k:15 in
  let lockstep = Lockstep.run plan ~k:15 in
  let noprun = Lockstep.run ~prune:false plan ~k:15 in
  Alcotest.(check bool) "lockstep <= noprun ops" true
    (lockstep.stats.server_ops <= noprun.stats.server_ops);
  Alcotest.(check bool) "adaptive <= noprun ops" true
    (adaptive.stats.server_ops <= noprun.stats.server_ops)

let test_stage_sequencing () =
  (* In LockStep every alive match visits servers in stage order, so the
     visited masks at completion are identical across matches. *)
  let plan = Run.compile idx (parse Fixtures.q1) in
  let r = Lockstep.run ~order:[| 2; 1 |] plan ~k:100 in
  List.iter
    (fun (e : Topk_set.entry) ->
      Alcotest.(check int) "all bindings decided" (Wp_pattern.Pattern.size plan.pattern)
        (Array.length e.bindings))
    r.answers

let suite =
  [
    Alcotest.test_case "order validation" `Quick test_order_validation;
    Alcotest.test_case "orders agree" `Quick test_orders_agree;
    Alcotest.test_case "noprun counts everything" `Quick test_noprun_counts_everything;
    Alcotest.test_case "noprun is an upper bound" `Quick test_noprun_total_matches_is_upper_bound;
    Alcotest.test_case "workload ordering" `Quick test_lockstep_vs_engine_workload;
    Alcotest.test_case "stage sequencing" `Quick test_stage_sequencing;
  ]
