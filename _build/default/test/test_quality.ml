open Wp_score

let books = Fixtures.books_index
let parse = Fixtures.parse

let book_a, book_b, book_c =
  match Fixtures.book_roots with
  | [ a; b; c ] -> (a, b, c)
  | _ -> assert false

let grades = Quality.relevance_grades books Wp_relax.Relaxation.all (parse Fixtures.q2a)

let float_eq = Alcotest.(check (float 1e-9))

let test_grades () =
  (* Book (a) matches q2a exactly: grade 1. *)
  float_eq "book a grade" 1.0 (Quality.grade grades book_a);
  (* Books (b) and (c) need relaxations: lower positive grades. *)
  let gb = Quality.grade grades book_b and gc = Quality.grade grades book_c in
  Alcotest.(check bool) "book b approximate" true (gb > 0.0 && gb < 1.0);
  Alcotest.(check bool) "book c approximate" true (gc > 0.0 && gc < 1.0);
  Alcotest.(check bool) "b closer than c" true (gb > gc);
  float_eq "unmatched node" 0.0 (Quality.grade grades 999999)

let ranking = [ book_a; book_b; book_c ]

let test_precision_recall () =
  float_eq "P@1 for exact" 1.0
    (Quality.precision_at grades ~relevant_above:1.0 ~ranking ~k:1);
  float_eq "P@3 for exact" (1.0 /. 3.0)
    (Quality.precision_at grades ~relevant_above:1.0 ~ranking ~k:3);
  float_eq "R@1 for exact" 1.0
    (Quality.recall_at grades ~relevant_above:1.0 ~ranking ~k:1);
  float_eq "R@1 for any relevance" (1.0 /. 3.0)
    (Quality.recall_at grades ~relevant_above:0.01 ~ranking ~k:1);
  float_eq "R@3 complete" 1.0
    (Quality.recall_at grades ~relevant_above:0.01 ~ranking ~k:3);
  float_eq "nothing relevant -> recall 1" 1.0
    (Quality.recall_at grades ~relevant_above:2.0 ~ranking ~k:3)

let test_ndcg () =
  float_eq "ideal order has nDCG 1" 1.0 (Quality.ndcg_at grades ~ranking ~k:3);
  let reversed = List.rev ranking in
  Alcotest.(check bool) "reversed order is worse" true
    (Quality.ndcg_at grades ~ranking:reversed ~k:3 < 1.0);
  Alcotest.(check bool) "ndcg within [0,1]" true
    (Quality.ndcg_at grades ~ranking:reversed ~k:3 >= 0.0)

let test_average_precision () =
  (* book a is the only grade-1 item; it sits at rank 1: AP = 1. *)
  float_eq "AP for exact at top" 1.0
    (Quality.average_precision grades ~relevant_above:1.0 ~ranking);
  (* If it sat at rank 3, AP = 1/3. *)
  float_eq "AP for exact at bottom" (1.0 /. 3.0)
    (Quality.average_precision grades ~relevant_above:1.0
       ~ranking:[ book_c; book_b; book_a ]);
  (* All three are relevant at any positive grade and appear in order:
     AP = (1/1 + 2/2 + 3/3)/3 = 1. *)
  float_eq "AP over all relevant" 1.0
    (Quality.average_precision grades ~relevant_above:0.01 ~ranking);
  float_eq "nothing relevant" 1.0
    (Quality.average_precision grades ~relevant_above:2.0 ~ranking)

let test_kendall () =
  let a = [ (1, 3.0); (2, 2.0); (3, 1.0) ] in
  float_eq "identical rankings" 1.0 (Quality.kendall_tau a a);
  let reversed = [ (1, 1.0); (2, 2.0); (3, 3.0) ] in
  float_eq "reversed rankings" (-1.0) (Quality.kendall_tau a reversed);
  float_eq "single common item" 1.0
    (Quality.kendall_tau [ (1, 1.0) ] [ (1, 5.0) ]);
  (* Partial agreement. *)
  let mixed = [ (1, 3.0); (2, 1.0); (3, 2.0) ] in
  let tau = Quality.kendall_tau a mixed in
  Alcotest.(check bool) "partial agreement strictly between" true
    (tau > -1.0 && tau < 1.0)

let test_engine_ranking_quality () =
  (* The tf*idf engine ranking must be ideal on the books example: the
     relevance order by relaxation distance coincides with the score
     order. *)
  let plan =
    Whirlpool.Run.compile ~normalization:Score_table.Raw books (parse Fixtures.q2a)
  in
  let r = Whirlpool.Engine.run plan ~k:3 in
  let engine_ranking =
    List.map (fun (e : Whirlpool.Topk_set.entry) -> e.root) r.answers
  in
  float_eq "engine achieves ideal nDCG" 1.0
    (Quality.ndcg_at grades ~ranking:engine_ranking ~k:3);
  float_eq "P@3 at any relevance" 1.0
    (Quality.precision_at grades ~relevant_above:0.01 ~ranking:engine_ranking
       ~k:3)

let test_xmark_quality () =
  (* On generated data, the default engine ranking should stay close to
     ideal (every exact match ranks above every approximate one, which
     with grade-1 ties yields high nDCG). *)
  let idx = Lazy.force Fixtures.xmark_index in
  let pat = parse Fixtures.q1 in
  let g = Quality.relevance_grades idx Wp_relax.Relaxation.all pat in
  let plan = Whirlpool.Run.compile idx pat in
  let r = Whirlpool.Engine.run plan ~k:10 in
  let ranking =
    List.map (fun (e : Whirlpool.Topk_set.entry) -> e.root) r.answers
  in
  let ndcg = Quality.ndcg_at g ~ranking ~k:10 in
  Alcotest.(check bool)
    (Printf.sprintf "nDCG@10 high (got %.3f)" ndcg)
    true (ndcg > 0.9)

let suite =
  [
    Alcotest.test_case "grades" `Quick test_grades;
    Alcotest.test_case "precision and recall" `Quick test_precision_recall;
    Alcotest.test_case "ndcg" `Quick test_ndcg;
    Alcotest.test_case "average precision" `Quick test_average_precision;
    Alcotest.test_case "kendall tau" `Quick test_kendall;
    Alcotest.test_case "engine ranking quality" `Quick test_engine_ranking_quality;
    Alcotest.test_case "xmark quality" `Quick test_xmark_quality;
  ]
