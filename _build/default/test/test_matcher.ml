open Wp_pattern

let idx = Fixtures.books_index
let parse = Fixtures.parse

let roots q = Matcher.matching_roots idx (parse q)

let test_figure2_claims () =
  (* The paper's Figure 2: which books match which relaxed query. *)
  let a, b, c =
    match Fixtures.book_roots with
    | [ a; b; c ] -> (a, b, c)
    | _ -> Alcotest.fail "expected three books"
  in
  Alcotest.(check (list int)) "2(a) matches only book (a)" [ a ] (roots Fixtures.q2a);
  Alcotest.(check (list int)) "2(b) matches only book (a)" [ a ] (roots Fixtures.q2b);
  Alcotest.(check (list int)) "2(c) matches books (a),(b)" [ a; b ] (roots Fixtures.q2c);
  Alcotest.(check (list int)) "2(d) matches all three" [ a; b; c ] (roots Fixtures.q2d)

let test_value_filtering () =
  Alcotest.(check (list int)) "wrong value matches nothing" []
    (roots "/book[./title = 'dickens']");
  Alcotest.(check int) "right value" 2
    (List.length (roots "/book[./title = 'wodehouse']"))

let test_embedding_counts () =
  (* book (a) and (b) each have one title; query //book//name has one
     embedding per (book, name) pair. *)
  Alcotest.(check int) "name embeddings" 2
    (Matcher.count_embeddings idx (parse "//book[.//name]"));
  Alcotest.(check int) "isbn embeddings (all books)" 3
    (Matcher.count_embeddings idx (parse "//book[.//isbn]"))

let test_root_candidates () =
  Alcotest.(check int) "three books" 3
    (List.length (Matcher.root_candidates idx (parse "/book")));
  Alcotest.(check int) "root edge pc excludes non-children" 0
    (List.length (Matcher.root_candidates idx (parse "/title")));
  Alcotest.(check int) "ad reaches titles" 3
    (List.length (Matcher.root_candidates idx (parse "//title")))

let test_outer_embeddings () =
  (* Outer semantics: every book yields at least one embedding, with
     unmatched nodes unbound. *)
  let pat = parse Fixtures.q2a in
  let embeddings = ref [] in
  Matcher.iter_outer_embeddings idx pat (fun e -> embeddings := e :: !embeddings);
  Alcotest.(check int) "one outer embedding per book" 3 (List.length !embeddings);
  let complete =
    List.filter (fun e -> Array.for_all Option.is_some e) !embeddings
  in
  Alcotest.(check int) "one complete embedding (book a)" 1 (List.length complete);
  Alcotest.(check int) "counts agree" 3 (Matcher.count_outer_embeddings idx pat)

let test_outer_subtree_cutoff () =
  (* When an interior node is unbound, its whole pattern subtree stays
     unbound. *)
  let pat = parse "/book[./info/publisher/name]" in
  let ok = ref true in
  Matcher.iter_outer_embeddings idx pat (fun e ->
      (* e.(1)=info, e.(2)=publisher, e.(3)=name *)
      if e.(2) = None && e.(3) <> None then ok := false;
      if e.(1) = None && e.(2) <> None then ok := false);
  Alcotest.(check bool) "no orphan bindings" true !ok

(* Exact matcher agrees with a brute-force evaluator on random inputs. *)
let brute_force_roots doc pat =
  let module D = Wp_xml.Doc in
  let size = Pattern.size pat in
  let rec embeds binding i =
    if i >= size then true
    else
      let parent_doc =
        match Pattern.parent pat i with
        | None -> D.root doc
        | Some p -> binding.(p)
      in
      let edge = if i = 0 then Pattern.root_edge pat else Pattern.edge pat i in
      let candidates =
        List.filter
          (fun n ->
            String.equal (D.tag doc n) (Pattern.tag pat i)
            && (match Pattern.value pat i with
               | None -> true
               | Some v -> D.value doc n = Some v)
            &&
            match edge with
            | Pattern.Pc -> D.is_parent doc ~parent:parent_doc ~child:n
            | Pattern.Ad -> D.is_ancestor doc ~anc:parent_doc ~desc:n)
          (List.init (D.size doc) Fun.id)
      in
      List.exists
        (fun n ->
          binding.(i) <- n;
          embeds binding (i + 1))
        candidates
  in
  List.filter
    (fun r ->
      let binding = Array.make size (-1) in
      binding.(0) <- r;
      String.equal (D.tag doc r) (Pattern.tag pat 0)
      && (match Pattern.value pat 0 with
         | None -> true
         | Some v -> D.value doc r = Some v)
      && (match Pattern.root_edge pat with
         | Pattern.Pc -> D.is_parent doc ~parent:(D.root doc) ~child:r
         | Pattern.Ad -> D.is_ancestor doc ~anc:(D.root doc) ~desc:r)
      && embeds binding 1)
    (List.init (D.size doc) Fun.id)

let small_pattern_gen =
  let open QCheck2.Gen in
  let tag = map (fun i -> Printf.sprintf "t%d" i) (int_bound 4) in
  let edge = map (fun b -> if b then Pattern.Pc else Pattern.Ad) bool in
  let spec =
    fix
      (fun self depth ->
        if depth = 0 then map (fun t -> Pattern.n t []) tag
        else
          map2
            (fun t cs -> Pattern.n t cs)
            tag
            (list_size (int_bound 2)
               (map2 (fun e s -> (e, s)) edge (self (depth - 1)))))
      2
  in
  map2 (fun e s -> Pattern.of_spec ~root_edge:e s) edge spec

let prop_matcher_equals_brute_force =
  QCheck2.Test.make ~name:"matcher = brute force" ~count:150
    QCheck2.Gen.(pair Test_doc.gen_tree small_pattern_gen)
    (fun (tree, pat) ->
      let doc = Wp_xml.Doc.of_tree tree in
      let idx = Wp_xml.Index.build doc in
      Matcher.matching_roots idx pat = brute_force_roots doc pat)

let suite =
  [
    Alcotest.test_case "figure 2 claims" `Quick test_figure2_claims;
    Alcotest.test_case "value filtering" `Quick test_value_filtering;
    Alcotest.test_case "embedding counts" `Quick test_embedding_counts;
    Alcotest.test_case "root candidates" `Quick test_root_candidates;
    Alcotest.test_case "outer embeddings" `Quick test_outer_embeddings;
    Alcotest.test_case "outer subtree cutoff" `Quick test_outer_subtree_cutoff;
    QCheck_alcotest.to_alcotest prop_matcher_equals_brute_force;
  ]
