open Wp_relax
open Wp_pattern

let test_constants () =
  Alcotest.(check bool) "child bounds" true
    (Relation.child.min_depth = 1 && Relation.child.max_depth = Some 1);
  Alcotest.(check bool) "descendant bounds" true
    (Relation.descendant.min_depth = 1 && Relation.descendant.max_depth = None)

let test_of_edges () =
  let r = Relation.of_edges [ Pattern.Pc; Pattern.Pc; Pattern.Pc ] in
  Alcotest.(check bool) "pc^3 = depth exactly 3" true
    (r.min_depth = 3 && r.max_depth = Some 3);
  let r = Relation.of_edges [ Pattern.Pc; Pattern.Ad ] in
  Alcotest.(check bool) "pc.ad = depth >= 2" true
    (r.min_depth = 2 && r.max_depth = None);
  Alcotest.check_raises "empty path"
    (Invalid_argument "Relation.of_edges: empty path") (fun () ->
      ignore (Relation.of_edges []))

let test_compose_associative () =
  let rels =
    [ Relation.child; Relation.descendant;
      Relation.of_edges [ Pattern.Pc; Pattern.Pc ];
      Relation.of_edges [ Pattern.Ad; Pattern.Pc ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          List.iter
            (fun c ->
              Alcotest.(check bool) "assoc" true
                (Relation.equal
                   (Relation.compose (Relation.compose a b) c)
                   (Relation.compose a (Relation.compose b c))))
            rels)
        rels)
    rels

let test_generalize_promote () =
  let r = Relation.of_edges [ Pattern.Pc; Pattern.Pc ] in
  let g = Relation.generalize r in
  Alcotest.(check bool) "generalize keeps min" true
    (g.min_depth = 2 && g.max_depth = None);
  let p = Relation.promote g in
  Alcotest.(check bool) "promote collapses min" true
    (p.min_depth = 1 && p.max_depth = None);
  Alcotest.(check bool) "descendant is a fixpoint" true
    (Relation.equal (Relation.promote (Relation.generalize Relation.descendant))
       Relation.descendant)

let test_subrelation () =
  let pc2 = Relation.of_edges [ Pattern.Pc; Pattern.Pc ] in
  Alcotest.(check bool) "child <= descendant" true
    (Relation.is_subrelation Relation.child Relation.descendant);
  Alcotest.(check bool) "pc2 <= generalize pc2" true
    (Relation.is_subrelation pc2 (Relation.generalize pc2));
  Alcotest.(check bool) "exact <= its promotion" true
    (Relation.is_subrelation pc2 (Relation.promote (Relation.generalize pc2)));
  Alcotest.(check bool) "descendant not <= child" false
    (Relation.is_subrelation Relation.descendant Relation.child);
  Alcotest.(check bool) "child not <= pc2" false
    (Relation.is_subrelation Relation.child pc2)

let test_against_document () =
  let doc = Fixtures.books_doc in
  let module D = Wp_xml.Doc in
  (* bib(0) → book_a(1) → title(2), info(3) → publisher(4) → name(5) *)
  Alcotest.(check bool) "child holds" true
    (Relation.test doc Relation.child ~anc:1 ~desc:2);
  Alcotest.(check bool) "grandchild fails child" false
    (Relation.test doc Relation.child ~anc:1 ~desc:4);
  Alcotest.(check bool) "depth-2 relation" true
    (Relation.test doc (Relation.of_edges [ Pattern.Pc; Pattern.Pc ]) ~anc:1 ~desc:4);
  Alcotest.(check bool) "depth-3" true
    (Relation.test doc (Relation.of_edges [ Pattern.Pc; Pattern.Pc; Pattern.Pc ])
       ~anc:1 ~desc:5);
  Alcotest.(check bool) "unrelated nodes fail" false
    (Relation.test doc Relation.descendant ~anc:2 ~desc:5)

let gen_edges =
  QCheck2.Gen.(
    list_size (int_range 1 5)
      (map (fun b -> if b then Pattern.Pc else Pattern.Ad) bool))

let prop_of_edges_min_is_length =
  QCheck2.Test.make ~name:"min depth = path length" ~count:300 gen_edges
    (fun edges -> (Relation.of_edges edges).min_depth = List.length edges)

let prop_exact_bounded_iff_all_pc =
  QCheck2.Test.make ~name:"bounded iff all edges are pc" ~count:300 gen_edges
    (fun edges ->
      let r = Relation.of_edges edges in
      (r.max_depth <> None) = List.for_all (fun e -> e = Pattern.Pc) edges)

let prop_relaxations_are_superrelations =
  QCheck2.Test.make ~name:"generalize/promote only widen" ~count:300 gen_edges
    (fun edges ->
      let r = Relation.of_edges edges in
      Relation.is_subrelation r (Relation.generalize r)
      && Relation.is_subrelation r (Relation.promote (Relation.generalize r)))

let suite =
  [
    Alcotest.test_case "constants" `Quick test_constants;
    Alcotest.test_case "of_edges" `Quick test_of_edges;
    Alcotest.test_case "compose associativity" `Quick test_compose_associative;
    Alcotest.test_case "generalize / promote" `Quick test_generalize_promote;
    Alcotest.test_case "subrelation" `Quick test_subrelation;
    Alcotest.test_case "against a document" `Quick test_against_document;
    QCheck_alcotest.to_alcotest prop_of_edges_min_is_length;
    QCheck_alcotest.to_alcotest prop_exact_bounded_iff_all_pc;
    QCheck_alcotest.to_alcotest prop_relaxations_are_superrelations;
  ]
